"""The continuous benchmark suite: the repo's perf trajectory, as data.

Runs the canonical workloads (TPC-H Q1/Q6 with and without the Froid-
style UDF rewrite, Black-Scholes bs0) across the two paper
configurations — HorsePower-Naive (reference interpreter) and
HorsePower-Opt (fused pygen kernels) — and records, per workload ×
config:

* ``cold_seconds`` — first ``run_sql`` on a fresh session (full
  parse → plan → translate → compile → execute);
* ``warm_seconds`` — median cache-served repeat, profiling off;
* ``bytes_allocated`` / ``peak_bytes`` / ``intermediates_materialized``
  — one profiled warm run (bytes are deterministic at a fixed scale,
  which is what makes them a *blocking* regression signal);
* ``est_rows`` / ``actual_rows`` / ``q_error`` — the root cardinality
  estimate after ``ANALYZE`` vs the rows the query actually returned,
  from one final untimed run (the timed runs above stay stats-free so
  the wall numbers are comparable across PRs).

The result is written to ``BENCH_PR<N>.json`` at the repo root — one
file per PR, committed, so ``git log`` doubles as a perf timeline — and
compared against the newest prior ``BENCH_*.json``:

* bytes regressions > 10% **fail** (deterministic, so any regression is
  real);
* wall-time regressions > 15% **warn** by default (CI machines are
  noisy); ``--strict-time`` makes them fail too.

Usage::

    python benchmarks/bench_suite.py                  # write + compare
    python benchmarks/bench_suite.py --compare        # measure + compare
                                                      # only (no write)
    REPRO_BENCH_SCALE=0.1 python benchmarks/bench_suite.py  # CI scale
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from harness import (BLACKSCHOLES_ROWS, TPCH_SCALE_FACTOR, bench_scale,
                     time_callable)

from repro.data.blackscholes import load_blackscholes_table
from repro.data.tpch import generate_tpch
from repro.engine import EngineSession
from repro.engine.storage import Database
from repro.obs import (AllocationProfile, format_fusion_savings,
                       fusion_savings)
from repro.obs.prof import format_bytes
from repro.stats import q_error
from repro.workloads.bs_queries import SCALAR_QUERIES, register_bs_udfs
from repro.workloads.tpch_queries import (PLAIN_QUERIES, UDF_QUERIES,
                                          register_tpch_udfs)

SCHEMA_VERSION = 1
DEFAULT_OUT = "BENCH_PR9.json"
LABEL = "PR9"
BYTES_REGRESSION_BAR = 0.10   # blocking
TIME_REGRESSION_BAR = 0.15    # warn (blocking with --strict-time)
WARM_ROUNDS = 3

#: (workload key, sql source, udf registrar) — the canonical set the
#: acceptance criteria name.  ``register`` is applied to each fresh
#: session before the query runs.
WORKLOADS = [
    ("tpch_q1", lambda: PLAIN_QUERIES["q1"], None),
    ("tpch_q1_udf", lambda: UDF_QUERIES["q1"], register_tpch_udfs),
    ("tpch_q6", lambda: PLAIN_QUERIES["q6"], None),
    ("tpch_q6_udf", lambda: UDF_QUERIES["q6"], register_tpch_udfs),
    ("blackscholes", lambda: SCALAR_QUERIES["bs0_base"],
     register_bs_udfs),
]

#: The two paper configurations: statement-at-a-time naive execution on
#: the reference interpreter vs the fully optimized fused pipeline.
CONFIGS = [
    ("interp", "naive"),
    ("pygen", "opt"),
]


def repo_root() -> str:
    return os.path.dirname(os.path.abspath(os.path.dirname(__file__)))


def make_databases() -> dict[str, Database]:
    scale = bench_scale()
    tpch_db = generate_tpch(scale_factor=TPCH_SCALE_FACTOR * scale)
    bs_db = Database()
    load_blackscholes_table(bs_db, max(int(BLACKSCHOLES_ROWS * scale),
                                       1_000))
    return {"tpch": tpch_db, "bs": bs_db}


def bench_entry(db: Database, sql: str, register, backend: str,
                opt_level: str) -> dict:
    """One workload × config measurement on an isolated session."""
    import time

    with EngineSession(db, default_backend=backend) as session:
        if register is not None:
            register(session)
        start = time.perf_counter()
        session.run_sql(sql, opt_level=opt_level, backend=backend)
        cold = time.perf_counter() - start

        warm = time_callable(
            lambda: session.run_sql(sql, opt_level=opt_level,
                                    backend=backend),
            warmup=1, rounds=WARM_ROUNDS)

        # Bytes from ONE profiled warm run on an explicit context; the
        # timed runs above stay profile-free so profiling never skews
        # the wall numbers.
        profile = AllocationProfile()
        ctx = session.context()
        ctx.profile = profile
        session.run_sql(sql, opt_level=opt_level, backend=backend,
                        ctx=ctx)

        # Est-vs-actual from one final, untimed run: ANALYZE (which
        # invalidates the cached plan), re-prepare so the plan carries
        # ``est_rows``, then read the root estimate against the rows
        # the query actually returns.
        session.analyze()
        prepared = session.prepare(sql, opt_level=opt_level,
                                   backend=backend)
        est_rows = prepared.query.plan_json.get("est_rows")
        actual_rows = session.run_sql(sql, opt_level=opt_level,
                                      backend=backend).num_rows

    return {
        "backend": backend,
        "opt_level": opt_level,
        "cold_seconds": cold,
        "warm_seconds": warm.seconds,
        "bytes_allocated": profile.bytes_allocated,
        "peak_bytes": profile.peak_bytes,
        "intermediates_materialized":
            profile.intermediates_materialized,
        "est_rows": est_rows,
        "actual_rows": actual_rows,
        "q_error": None if est_rows is None
        else round(q_error(est_rows, actual_rows), 4),
    }


def run_suite() -> dict:
    dbs = make_databases()
    workloads: dict[str, dict] = {}
    profiles: dict[tuple, AllocationProfile] = {}
    for name, sql_of, register in WORKLOADS:
        db = dbs["bs"] if name == "blackscholes" else dbs["tpch"]
        sql = sql_of()
        for backend, opt_level in CONFIGS:
            key = f"{name}/{backend}-{opt_level}"
            entry = bench_entry(db, sql, register, backend, opt_level)
            workloads[key] = entry
            print(f"  {key:<34} cold={entry['cold_seconds'] * 1e3:8.2f}ms"
                  f" warm={entry['warm_seconds'] * 1e3:8.2f}ms"
                  f" alloc={format_bytes(entry['bytes_allocated']):>10}"
                  f" peak={format_bytes(entry['peak_bytes']):>10}"
                  f" intermediates="
                  f"{entry['intermediates_materialized']}"
                  f" est={entry['est_rows']}"
                  f" actual={entry['actual_rows']}")

    # The paper-style fusion report for the headline workload.
    savings = {}
    for name in ("tpch_q6_udf",):
        naive = workloads[f"{name}/interp-naive"]
        opt = workloads[f"{name}/pygen-opt"]
        pseudo_naive, pseudo_opt = (AllocationProfile(),
                                    AllocationProfile())
        pseudo_naive.record(naive["bytes_allocated"],
                            count=naive["intermediates_materialized"])
        pseudo_naive.update_peak(naive["peak_bytes"])
        pseudo_opt.record(opt["bytes_allocated"],
                          count=opt["intermediates_materialized"])
        pseudo_opt.update_peak(opt["peak_bytes"])
        delta = fusion_savings(pseudo_naive, pseudo_opt)
        savings[name] = delta.to_dict()
        print()
        print(format_fusion_savings(delta, title=f"{name} fusion "
                                                 f"savings"))

    import time

    return {
        "schema_version": SCHEMA_VERSION,
        "label": LABEL,
        "generated_at": time.time(),
        "generated_by": "benchmarks/bench_suite.py",
        "scale": {
            "bench_scale": bench_scale(),
            "tpch_scale_factor": TPCH_SCALE_FACTOR * bench_scale(),
            "blackscholes_rows": max(int(BLACKSCHOLES_ROWS
                                         * bench_scale()), 1_000),
        },
        "workloads": workloads,
        "fusion_savings": savings,
    }


def _baseline_key(path: str) -> tuple:
    """Ordering key for a candidate baseline, from *embedded* metadata.

    File mtimes are useless here: a fresh ``git clone``/checkout stamps
    every ``BENCH_*.json`` with checkout time, so "newest mtime" picked
    an arbitrary file on CI.  Instead the PR tag recorded *inside* the
    JSON (``label``, e.g. ``"PR4"``) orders candidates, the embedded
    run timestamp (``generated_at``) breaks ties between files with the
    same tag, and the filename is the final deterministic tiebreak.
    Files whose label carries no PR number (or that fail to parse) rank
    below every numbered one."""
    number = -1
    generated_at = 0.0
    try:
        with open(path) as handle:
            data = json.load(handle)
        match = re.search(r"(\d+)", str(data.get("label", "")))
        if match:
            number = int(match.group(1))
        generated_at = float(data.get("generated_at", 0.0))
    except (OSError, ValueError):
        pass
    if number < 0:
        match = re.search(r"BENCH_PR(\d+)\.json$",
                          os.path.basename(path))
        if match:
            number = int(match.group(1))
    return (number, generated_at, os.path.basename(path))


def find_baseline(exclude: str | None) -> str | None:
    """The newest prior ``BENCH_*.json`` at the repo root, ordered by
    the PR tag / run timestamp embedded in each file (never mtime)."""
    pattern = os.path.join(repo_root(), "BENCH_*.json")
    candidates = [path for path in glob.glob(pattern)
                  if exclude is None
                  or os.path.abspath(path) != os.path.abspath(exclude)]
    if not candidates:
        return None
    return max(candidates, key=_baseline_key)


def compare(current: dict, baseline_path: str,
            strict_time: bool) -> int:
    """Regressions vs the baseline file; returns the exit code."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    print(f"\n-- comparing against {os.path.basename(baseline_path)}")

    if baseline.get("scale") != current.get("scale"):
        print(f"   scale mismatch (baseline {baseline.get('scale')} vs "
              f"current {current.get('scale')}); skipping comparison")
        return 0

    failures = []
    warnings = []
    base_workloads = baseline.get("workloads", {})
    for key, entry in sorted(current["workloads"].items()):
        base = base_workloads.get(key)
        if base is None:
            print(f"   {key}: new workload (no baseline)")
            continue
        base_bytes = base.get("bytes_allocated", 0)
        if base_bytes > 0:
            delta = (entry["bytes_allocated"] - base_bytes) / base_bytes
            if delta > BYTES_REGRESSION_BAR:
                failures.append(
                    f"{key}: bytes_allocated "
                    f"{format_bytes(base_bytes)} -> "
                    f"{format_bytes(entry['bytes_allocated'])} "
                    f"(+{delta * 100:.1f}% > "
                    f"{BYTES_REGRESSION_BAR * 100:.0f}%)")
        base_warm = base.get("warm_seconds", 0.0)
        if base_warm > 0:
            delta = (entry["warm_seconds"] - base_warm) / base_warm
            if delta > TIME_REGRESSION_BAR:
                warnings.append(
                    f"{key}: warm_seconds {base_warm * 1e3:.2f}ms -> "
                    f"{entry['warm_seconds'] * 1e3:.2f}ms "
                    f"(+{delta * 100:.1f}% > "
                    f"{TIME_REGRESSION_BAR * 100:.0f}%)")

    for message in warnings:
        print(f"   WARN (time): {message}")
    for message in failures:
        print(f"   FAIL (bytes): {message}")
    if failures:
        print("-- bytes regression: FAILED")
        return 1
    if warnings and strict_time:
        print("-- time regression (strict mode): FAILED")
        return 1
    print(f"-- regression check OK "
          f"({len(warnings)} time warning(s))")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, metavar="PATH",
                        help=f"output JSON path (default "
                             f"{DEFAULT_OUT} at the repo root)")
    parser.add_argument("--compare", action="store_true",
                        help="measure and compare against the newest "
                             "BENCH_*.json without writing a new file")
    parser.add_argument("--strict-time", action="store_true",
                        help="make >15%% wall-time regressions fail "
                             "instead of warn")
    args = parser.parse_args(argv)

    print(f"bench_suite: scale={bench_scale()} "
          f"(REPRO_BENCH_SCALE), warm rounds={WARM_ROUNDS}")
    current = run_suite()

    if args.compare:
        baseline = find_baseline(exclude=None)
        if baseline is None:
            print("-- no BENCH_*.json baseline found; nothing to "
                  "compare (ok)")
            return 0
        return compare(current, baseline, args.strict_time)

    out = args.out or os.path.join(repo_root(), DEFAULT_OUT)
    baseline = find_baseline(exclude=out)
    code = 0
    if baseline is not None:
        code = compare(current, baseline, args.strict_time)
    with open(out, "w") as handle:
        json.dump(current, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"-- wrote {out}")
    return code


if __name__ == "__main__":
    raise SystemExit(main())

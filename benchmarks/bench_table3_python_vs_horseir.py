"""Table 3 — standalone Black-Scholes, single thread: Python/NumPy vs
HorseIR-Naive vs HorseIR-Opt.

Paper shape to reproduce: naive HorseIR ≈ NumPy (0.8–1.2×); optimized
HorseIR ≈ 2× over NumPy.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.harness import BLACKSCHOLES_ROWS, bench_scale
from repro.data.blackscholes import calc_option_price, generate_blackscholes
from repro.matlang import compile_matlab
from repro.workloads.matlab_sources import BLACKSCHOLES_MATLAB

_N = int(BLACKSCHOLES_ROWS * bench_scale())


def _args():
    data = generate_blackscholes(_N)
    return [data[c] for c in ("spotPrice", "strike", "rate",
                              "volatility", "otime", "optionType")]


@pytest.mark.parametrize("system", ["python-numpy", "horseir-naive",
                                    "horseir-opt"])
def test_table3(benchmark, system):
    args = _args()
    if system == "python-numpy":
        run = lambda: calc_option_price(*args)  # noqa: E731
    else:
        level = "naive" if system == "horseir-naive" else "opt"
        program = compile_matlab(BLACKSCHOLES_MATLAB, opt_level=level)
        run = lambda: program(*args)  # noqa: E731
    benchmark.extra_info.update(table="table3", system=system,
                                threads=1, size=_N)
    result = benchmark.pedantic(run, rounds=3, iterations=1,
                                warmup_rounds=1)
    assert np.all(np.isfinite(np.asarray(result, dtype=np.float64)))

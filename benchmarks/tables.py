"""Paper-style table rendering for the four evaluation tables.

Each ``report_tableN(emit)`` runs the measurements (through the same
harness the pytest benchmarks use) and prints rows matching the paper's
layout: execution times in milliseconds with speedup columns.
"""

from __future__ import annotations

from benchmarks.harness import (TABLE1_SIZES, bench_scale,
                                make_bs_systems, make_tpch_systems,
                                thread_counts, time_callable,
                                time_cold_warm)
from repro.data.blackscholes import calc_option_price, generate_blackscholes
from repro.data.morgan import generate_morgan
from repro.core.codegen.cgen import c_backend_available
from repro.matlang import compile_matlab
from repro.matlang.interp import MatlabInterpreter
from repro.matlang.parser import parse_program
from repro.workloads.bs_queries import (BS_VARIANT_NAMES,
                                        PAPER_SELECTIVITY, SCALAR_QUERIES,
                                        TABLE_QUERIES)
from repro.workloads.matlab_sources import (BLACKSCHOLES_MATLAB,
                                            MORGAN_MATLAB)
from repro.workloads.tpch_queries import TPCH_UDF_QUERY_NAMES, UDF_QUERIES

__all__ = ["report_table1", "report_table2", "report_table3",
           "report_table4", "report_plan_cache"]


def _fmt_ms(seconds: float) -> str:
    millis = seconds * 1000.0
    if millis >= 100:
        return f"{millis:8.0f}"
    if millis >= 1:
        return f"{millis:8.1f}"
    return f"{millis:8.3f}"


def _fmt_speedup(ratio: float) -> str:
    if ratio >= 100:
        return f"{ratio:6.0f}x"
    if ratio >= 10:
        return f"{ratio:6.1f}x"
    return f"{ratio:6.2f}x"


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def report_table1(emit) -> None:
    emit("## Table 1 — HorsePower vs MATLAB-interpreter "
         "(Black-Scholes & Morgan, times in ms)")
    emit()
    native = c_backend_available()
    header = (f"{'workload':14} {'size':>9} {'MATLAB':>9} {'Naive':>9} "
              f"{'SP':>7} {'Opt':>9} {'SP':>7}")
    if native:
        header += f" {'Opt-C':>9} {'SP':>7}"
    emit(header)

    sizes = [int(size * bench_scale()) for size in TABLE1_SIZES]
    configs = [
        ("blackscholes", BLACKSCHOLES_MATLAB, _bs_args, None),
        ("morgan", MORGAN_MATLAB, _morgan_args,
         [("f64", "scalar"), ("f64", "vector"), ("f64", "vector")]),
    ]
    for workload, source, make_args, specs in configs:
        interp = MatlabInterpreter(parse_program(source))
        naive = compile_matlab(source, param_specs=specs,
                               opt_level="naive")
        opt = compile_matlab(source, param_specs=specs, opt_level="opt")
        opt_c = compile_matlab(source, param_specs=specs,
                               opt_level="opt",
                               backend="c") if native else None
        for size in sizes:
            args = make_args(size)
            t_matlab = time_callable(lambda: interp.run(*args)).seconds
            t_naive = time_callable(lambda: naive(*args)).seconds
            t_opt = time_callable(lambda: opt(*args)).seconds
            row = (f"{workload:14} {size:>9} {_fmt_ms(t_matlab)} "
                   f"{_fmt_ms(t_naive)} "
                   f"{_fmt_speedup(t_matlab / t_naive)} "
                   f"{_fmt_ms(t_opt)} "
                   f"{_fmt_speedup(t_matlab / t_opt)}")
            if opt_c is not None:
                t_c = time_callable(lambda: opt_c(*args)).seconds
                row += (f" {_fmt_ms(t_c)} "
                        f"{_fmt_speedup(t_matlab / t_c)}")
            emit(row)
    emit()


def _bs_args(size: int):
    data = generate_blackscholes(size)
    return [data[c] for c in ("spotPrice", "strike", "rate",
                              "volatility", "otime", "optionType")]


def _morgan_args(size: int):
    price, volume = generate_morgan(size)
    return [1000.0, price, volume]


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------

def report_table2(emit) -> None:
    emit("## Table 2 — modified TPC-H with UDFs: MonetDB-like vs "
         "HorsePower (times in ms)")
    emit()
    header = f"{'threads':>8}"
    for query in TPCH_UDF_QUERY_NAMES:
        header += f" | {query + ' MDB':>9} {query + ' HP':>9} {'SP':>7}"
    emit(header)

    hp, mdb = make_tpch_systems()
    compiled = {query: hp.compile_sql(UDF_QUERIES[query])
                for query in TPCH_UDF_QUERY_NAMES}
    plans = {query: mdb.plan_sql(UDF_QUERIES[query])
             for query in TPCH_UDF_QUERY_NAMES}

    for threads in thread_counts():
        row = f"T{threads:<7}"
        for query in TPCH_UDF_QUERY_NAMES:
            t_mdb = time_callable(
                lambda q=query: mdb.executor.execute(
                    plans[q], n_threads=threads)).seconds
            t_hp = time_callable(
                lambda q=query: compiled[q].run(
                    n_threads=threads)).seconds
            row += (f" | {_fmt_ms(t_mdb)} {_fmt_ms(t_hp)} "
                    f"{_fmt_speedup(t_mdb / t_hp)}")
        emit(row)

    comp = "COMP(ms)"
    for query in TPCH_UDF_QUERY_NAMES:
        comp += f" | {compiled[query].compile_seconds * 1000:27.1f}"
    emit(comp)
    # The per-phase decomposition of COMP (CompileReport split).
    split = "  = opt/gen"
    for query in TPCH_UDF_QUERY_NAMES:
        report = compiled[query].program.report
        split += (f" | {report.optimize_seconds * 1000:15.1f}"
                  f" / {report.codegen_seconds * 1000:8.1f}")
    emit(split)
    emit()


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------

def report_table3(emit) -> None:
    emit("## Table 3 — standalone Black-Scholes, one thread "
         "(times in ms)")
    emit()
    from benchmarks.harness import BLACKSCHOLES_ROWS
    size = int(BLACKSCHOLES_ROWS * bench_scale())
    args = _bs_args(size)
    t_python = time_callable(lambda: calc_option_price(*args)).seconds
    naive = compile_matlab(BLACKSCHOLES_MATLAB, opt_level="naive")
    opt = compile_matlab(BLACKSCHOLES_MATLAB, opt_level="opt")
    t_naive = time_callable(lambda: naive(*args)).seconds
    t_opt = time_callable(lambda: opt(*args)).seconds
    header = (f"{'Python(T1)':>12} {'Naive(T1)':>12} {'SP':>7} "
              f"{'Opt(T1)':>12} {'SP':>7}")
    row = (f"{_fmt_ms(t_python):>12} {_fmt_ms(t_naive):>12} "
           f"{_fmt_speedup(t_python / t_naive)} {_fmt_ms(t_opt):>12} "
           f"{_fmt_speedup(t_python / t_opt)}")
    if c_backend_available():
        opt_c = compile_matlab(BLACKSCHOLES_MATLAB, opt_level="opt",
                               backend="c")
        t_c = time_callable(lambda: opt_c(*args)).seconds
        header += f" {'Opt-C(T1)':>12} {'SP':>7}"
        row += (f" {_fmt_ms(t_c):>12} "
                f"{_fmt_speedup(t_python / t_c)}")
    emit(header)
    emit(row)
    emit()


# ---------------------------------------------------------------------------
# Table 4
# ---------------------------------------------------------------------------

def report_table4(emit) -> None:
    emit("## Table 4 — Black-Scholes SQL variants: MonetDB-like (MDB) vs "
         "HorsePower (HP), times in ms")
    emit()
    threads = sorted({min(thread_counts()), max(thread_counts())})
    hp, mdb = make_bs_systems()

    for style, queries in (("Table UDF", TABLE_QUERIES),
                           ("Scalar UDF", SCALAR_QUERIES)):
        emit(f"### {style}")
        header = f"{'variant':>10} {'selec.':>7}"
        for t in threads:
            header += f" | {'MDB T%d' % t:>9} {'HP T%d' % t:>9} {'SP':>7}"
        header += f" | {'COMP':>7}"
        emit(header)
        for variant in BS_VARIANT_NAMES:
            sql = queries[variant]
            compiled = hp.compile_sql(sql)
            plan = mdb.plan_sql(sql)
            row = (f"{variant:>10} "
                   f"{PAPER_SELECTIVITY[variant] * 100:6.1f}%")
            for t in threads:
                t_mdb = time_callable(
                    lambda: mdb.executor.execute(
                        plan, n_threads=t)).seconds
                t_hp = time_callable(
                    lambda: compiled.run(n_threads=t)).seconds
                row += (f" | {_fmt_ms(t_mdb)} {_fmt_ms(t_hp)} "
                        f"{_fmt_speedup(t_mdb / t_hp)}")
            row += f" | {compiled.compile_seconds * 1000:6.1f}"
            emit(row)
        emit()


def report_plan_cache(emit) -> None:
    """Cold vs. warm ``run_sql``: the prepared-query cache payoff.

    COLD is the first call (parse -> plan -> optimize -> codegen +
    execution), WARM the median cache-served repeat (execution only);
    SPEEDUP is cold/warm -- the amortized compilation win for repeated
    query traffic.  COMP is the compile share of the cold call.
    """
    emit("## Prepared-query cache -- cold vs warm run_sql "
         "(TPC-H UDF queries)")
    emit()
    hp, _ = make_tpch_systems()
    emit(f"{'query':>8} | {'COLD ms':>9} {'WARM ms':>9} "
         f"{'COMP ms':>9} {'OPT ms':>9} {'GEN ms':>9} {'SPEEDUP':>8}")
    for query in TPCH_UDF_QUERY_NAMES:
        hp.plan_cache.invalidate()
        cw = time_cold_warm(hp, UDF_QUERIES[query])
        emit(f"{query:>8} | {_fmt_ms(cw.cold_seconds)} "
             f"{_fmt_ms(cw.warm_seconds)} "
             f"{_fmt_ms(cw.compile_seconds)} "
             f"{_fmt_ms(cw.optimize_seconds)} "
             f"{_fmt_ms(cw.codegen_seconds)} "
             f"{_fmt_speedup(cw.speedup)}")
    stats = hp.cache_stats
    emit(f"plan cache: {stats.summary()}")
    emit()

"""Table 1 — MATLAB interpreter vs HorsePower-Naive vs HorsePower-Opt on
Black-Scholes and Morgan, across input sizes.

Paper shape to reproduce: Naive ≈ interpreter (0.7–2.1×); Opt wins by
~3–10× over the interpreter on both kernels, roughly independent of size.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.harness import TABLE1_SIZES, bench_scale
from repro.data.blackscholes import generate_blackscholes
from repro.data.morgan import generate_morgan
from repro.matlang import compile_matlab
from repro.matlang.interp import MatlabInterpreter
from repro.matlang.parser import parse_program
from repro.workloads.matlab_sources import (BLACKSCHOLES_MATLAB,
                                            MORGAN_MATLAB)

_MORGAN_WINDOW = 1000.0  # the paper sets N=1000

_SIZES = [int(size * bench_scale()) for size in TABLE1_SIZES]


def _bs_args(size: int):
    data = generate_blackscholes(size)
    return [data[c] for c in ("spotPrice", "strike", "rate",
                              "volatility", "otime", "optionType")]


def _morgan_args(size: int):
    price, volume = generate_morgan(size)
    return [_MORGAN_WINDOW, price, volume]


_MORGAN_SPECS = [("f64", "scalar"), ("f64", "vector"), ("f64", "vector")]

_WORKLOADS = {
    "blackscholes": (BLACKSCHOLES_MATLAB, _bs_args, None),
    "morgan": (MORGAN_MATLAB, _morgan_args, _MORGAN_SPECS),
}


def _configurations():
    for workload in _WORKLOADS:
        for size in _SIZES:
            for system in ("matlab-interp", "hp-naive", "hp-opt"):
                yield (workload, size, system)


@pytest.mark.parametrize("workload,size,system",
                         list(_configurations()))
def test_table1(benchmark, workload, size, system):
    source, make_args, specs = _WORKLOADS[workload]
    args = make_args(size)

    if system == "matlab-interp":
        interp = MatlabInterpreter(parse_program(source))
        run = lambda: interp.run(*args)  # noqa: E731
    else:
        level = "naive" if system == "hp-naive" else "opt"
        program = compile_matlab(source, param_specs=specs,
                                 opt_level=level)
        run = lambda: program(*args)  # noqa: E731

    benchmark.extra_info.update(table="table1", workload=workload,
                                size=size, system=system)
    result = benchmark.pedantic(run, rounds=3, iterations=1,
                                warmup_rounds=1)
    assert np.all(np.isfinite(np.asarray(result, dtype=np.float64)))

"""Ablation study: isolate each design choice DESIGN.md calls out.

Configurations, all on the Black-Scholes kernel (the evaluation's most
fusion-sensitive workload):

* ``naive``            — no optimization at all (the floor);
* ``opt-nofuse``       — scalar optimizations only, fusion disabled;
* ``opt-nobuffers``    — fusion + chunking, but every fused statement
                         allocates a fresh temporary (no out= buffers);
* ``opt-full``         — the shipped configuration;
* ``opt-chunk-{4k,32k,256k}`` — chunk-size sensitivity;
* plus a UDF-inlining on/off pair on the Figure-6 query.

Run under ``pytest benchmarks/bench_ablation.py --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.harness import bench_scale
from repro.core import from_numpy
from repro.core.compiler import compile_module
from repro.core.optimizer import optimize
from repro.data.blackscholes import generate_blackscholes
from repro.matlang import compile_matlab, matlab_to_module
from repro.workloads.matlab_sources import BLACKSCHOLES_MATLAB

_N = int(400_000 * bench_scale())


def _args():
    data = generate_blackscholes(_N)
    return [data[c] for c in ("spotPrice", "strike", "rate",
                              "volatility", "otime", "optionType")]


def _compile_nofuse():
    """Scalar optimizations, no fusion: optimize the module, then compile
    with segmentation disabled."""
    module = matlab_to_module(BLACKSCHOLES_MATLAB)
    module, _ = optimize(module)
    return compile_module(module, "naive")


def _compile_nobuffers():
    """Full fusion, buffer reuse disabled (ufunc out= suppressed)."""
    from repro.core import builtins as hb
    saved = {}
    for name, builtin in hb.BUILTINS.items():
        if builtin.ufunc is not None:
            saved[name] = builtin.ufunc
            object.__setattr__(builtin, "ufunc", None)
    try:
        program = compile_matlab(BLACKSCHOLES_MATLAB, opt_level="opt")
    finally:
        for name, ufunc in saved.items():
            object.__setattr__(hb.BUILTINS[name], "ufunc", ufunc)
    return program


_CONFIGS = {
    "naive": lambda: compile_matlab(BLACKSCHOLES_MATLAB,
                                    opt_level="naive"),
    "opt-nofuse": _compile_nofuse,
    "opt-nobuffers": _compile_nobuffers,
    "opt-full": lambda: compile_matlab(BLACKSCHOLES_MATLAB,
                                       opt_level="opt"),
}

from repro.core.codegen.cgen import c_backend_available  # noqa: E402

if c_backend_available():
    _CONFIGS["opt-c-native"] = lambda: compile_matlab(
        BLACKSCHOLES_MATLAB, opt_level="opt", backend="c")


@pytest.mark.parametrize("config", list(_CONFIGS))
def test_ablation_optimizations(benchmark, config):
    program = _CONFIGS[config]()
    args = _args()
    benchmark.extra_info.update(table="ablation", config=config, size=_N)
    run = getattr(program, "run", None)
    if run is not None:  # CompiledProgram (nofuse path)
        values = [from_numpy(np.asarray(a)) for a in args]
        result = benchmark.pedantic(lambda: program.run(args=values),
                                    rounds=3, iterations=1,
                                    warmup_rounds=1)
    else:
        result = benchmark.pedantic(lambda: program(*args), rounds=3,
                                    iterations=1, warmup_rounds=1)
    assert result is not None


@pytest.mark.parametrize("chunk_exp", [12, 15, 18])
def test_ablation_chunk_size(benchmark, chunk_exp):
    program = compile_matlab(BLACKSCHOLES_MATLAB, opt_level="opt")
    args = _args()
    chunk = 1 << chunk_exp
    benchmark.extra_info.update(table="ablation",
                                config=f"opt-chunk-{chunk}", size=_N)
    result = benchmark.pedantic(
        lambda: program(*args, chunk_size=chunk), rounds=3,
        iterations=1, warmup_rounds=1)
    assert result is not None


_UDF_QUERY = """
    SELECT SUM(calcRevenue(l_extendedprice, l_discount)) AS revenue
    FROM lineitem
    WHERE l_discount >= 0.05
"""

_UDF_MATLAB = """
function r = calcRevenue(price, discount)
    r = price .* discount;
end
"""


@pytest.mark.parametrize("inlining", ["enabled", "disabled"])
def test_ablation_udf_inlining(benchmark, inlining):
    """Cost of keeping the UDF as an opaque method call vs inlining it."""
    from repro.core import types as ht
    from repro.engine.storage import Database
    from repro.horsepower import HorsePowerSystem
    from repro.horsepower.translate import build_query_module
    from repro.core.optimizer.inline import inline_methods

    rng = np.random.default_rng(5)
    n = int(400_000 * bench_scale())
    db = Database()
    db.create_table("lineitem", {
        "l_extendedprice": rng.uniform(100, 10_000, n),
        "l_discount": np.round(rng.uniform(0, 0.1, n), 2),
    })
    hp = HorsePowerSystem(db)
    hp.register_scalar_udf("calcRevenue", _UDF_MATLAB, [ht.F64, ht.F64],
                           ht.F64)
    plan_json = hp.plan_sql(_UDF_QUERY)
    module = build_query_module(plan_json, hp.udfs)
    if inlining == "enabled":
        program = compile_module(module, "opt")
    else:
        # Compile with segmentation but without merging the UDF body:
        # naive-compile keeps the call opaque and materialized.
        program = compile_module(module, "naive")
    tables = db.to_table_values()
    benchmark.extra_info.update(table="ablation",
                                config=f"inlining-{inlining}", size=n)
    result = benchmark.pedantic(lambda: program.run(tables), rounds=3,
                                iterations=1, warmup_rounds=1)
    assert result is not None

"""Shared benchmark infrastructure.

Scaling: the paper's testbed is a 40-core Xeon with SF-1 TPC-H (≈6 M
lineitem rows) and 1M–8M element arrays.  Benchmarks here default to a
laptop/CI-friendly scale and honour two environment variables:

* ``REPRO_BENCH_SCALE`` — multiplier on every workload size (default 1.0;
  10 approximates the paper's sizes);
* ``REPRO_BENCH_THREADS`` — comma-separated thread counts for the sweep
  columns (default ``1,2,4``; the paper uses up to 64).

Every benchmark records ``extra_info`` (system, workload, threads) so the
pytest-benchmark JSON can be post-processed into paper-style tables;
``benchmarks/report.py`` prints those tables directly.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.data.blackscholes import load_blackscholes_table
from repro.data.tpch import generate_tpch
from repro.engine.storage import Database
from repro.horsepower import HorsePowerSystem, MonetDBLike
from repro.sql.udf import UDFRegistry
from repro.workloads.bs_queries import register_bs_udfs
from repro.workloads.tpch_queries import register_tpch_udfs

__all__ = ["bench_scale", "thread_counts", "make_tpch_systems",
           "make_bs_systems", "time_callable", "Timed",
           "time_cold_warm", "ColdWarm", "trace_dir",
           "install_bench_tracer", "dump_bench_trace"]


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def trace_dir() -> str | None:
    """When ``REPRO_BENCH_TRACE`` names a directory, every benchmark run
    records spans and the tables dump one Chrome trace per section."""
    return os.environ.get("REPRO_BENCH_TRACE") or None


def install_bench_tracer():
    """Attach a tracer for the whole benchmark process when the
    ``REPRO_BENCH_TRACE`` directory flag is set; returns it (or None)."""
    directory = trace_dir()
    if directory is None:
        return None
    from repro.obs import Tracer, set_tracer
    os.makedirs(directory, exist_ok=True)
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def dump_bench_trace(name: str) -> str | None:
    """Write the spans recorded since the last dump to
    ``$REPRO_BENCH_TRACE/<name>.trace.json`` and clear the tracer."""
    directory = trace_dir()
    if directory is None:
        return None
    from repro.obs import chrome_trace_json, get_tracer
    tracer = get_tracer()
    if not tracer.enabled:
        return None
    path = os.path.join(directory, f"{name}.trace.json")
    with open(path, "w") as handle:
        handle.write(chrome_trace_json(tracer.roots))
    tracer.reset()
    return path


def _default_threads() -> str:
    cpus = os.cpu_count() or 1
    counts = [1]
    while counts[-1] * 2 <= cpus:
        counts.append(counts[-1] * 2)
    return ",".join(str(c) for c in counts)


def thread_counts() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_THREADS", _default_threads())
    return [int(part) for part in raw.split(",") if part.strip()]


# Workload sizes at scale 1.0 (paper scale ≈ 10x these).
TABLE1_SIZES = [100_000, 200_000, 400_000, 800_000]
TPCH_SCALE_FACTOR = 0.02          # lineitem ≈ 120k rows
BLACKSCHOLES_ROWS = 400_000

_CACHE: dict = {}


def make_tpch_systems() -> tuple[HorsePowerSystem, MonetDBLike]:
    """Module-cached TPC-H database + both systems with UDFs
    registered."""
    key = ("tpch", bench_scale())
    if key not in _CACHE:
        db = generate_tpch(
            scale_factor=TPCH_SCALE_FACTOR * bench_scale())
        udfs = UDFRegistry()
        hp = HorsePowerSystem(db, udfs)
        mdb = MonetDBLike(db, udfs)
        register_tpch_udfs(hp)
        _CACHE[key] = (hp, mdb)
    return _CACHE[key]


def make_bs_systems() -> tuple[HorsePowerSystem, MonetDBLike]:
    key = ("bs", bench_scale())
    if key not in _CACHE:
        db = Database()
        load_blackscholes_table(db, int(BLACKSCHOLES_ROWS
                                        * bench_scale()))
        udfs = UDFRegistry()
        hp = HorsePowerSystem(db, udfs)
        mdb = MonetDBLike(db, udfs)
        register_bs_udfs(hp)
        _CACHE[key] = (hp, mdb)
    return _CACHE[key]


class Timed:
    """Result of :func:`time_callable`: best-of-N wall time + the value."""

    def __init__(self, seconds: float, value):
        self.seconds = seconds
        self.value = value

    @property
    def millis(self) -> float:
        return self.seconds * 1000.0


def time_callable(fn, *, warmup: int = 1, rounds: int = 3) -> Timed:
    """Median-of-``rounds`` timing after ``warmup`` calls (the paper
    averages steady-state runs after warm-up)."""
    value = None
    for _ in range(warmup):
        value = fn()
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        times.append(time.perf_counter() - start)
    return Timed(float(np.median(times)), value)


class ColdWarm:
    """Cold (first, compiling) vs warm (cache-served) ``run_sql`` cost.

    ``speedup`` is the prepared-query payoff: how much of the cold call
    was compilation that the :class:`~repro.horsepower.cache.PlanCache`
    amortizes away on repeat traffic.
    """

    def __init__(self, cold_seconds: float, warm_seconds: float,
                 compile_seconds: float,
                 optimize_seconds: float = 0.0,
                 codegen_seconds: float = 0.0):
        self.cold_seconds = cold_seconds
        self.warm_seconds = warm_seconds
        self.compile_seconds = compile_seconds
        #: The per-phase decomposition of ``compile_seconds`` (COMP =
        #: optimize + codegen; see ``CompileReport``).
        self.optimize_seconds = optimize_seconds
        self.codegen_seconds = codegen_seconds

    @property
    def speedup(self) -> float:
        return (self.cold_seconds / self.warm_seconds
                if self.warm_seconds > 0 else float("inf"))


def time_cold_warm(system: HorsePowerSystem, sql: str, *,
                   n_threads: int = 1, warm_rounds: int = 3) -> ColdWarm:
    """Measure one cold ``run_sql`` (fresh cache entry: full
    parse→plan→optimize→codegen) and the median warm repeat (plan-cache
    hit: execution only)."""
    start = time.perf_counter()
    prepared = system.prepare(sql)
    prepared.run(n_threads=n_threads)
    cold = time.perf_counter() - start
    if prepared.cached:
        # The entry pre-dated this call: measuring a warmed query as
        # "cold" would understate the compile cost, so fail loudly.
        raise RuntimeError(f"query already cached; cold timing is "
                           f"meaningless: {sql!r}")
    warm = time_callable(
        lambda: system.run_sql(sql, n_threads=n_threads),
        warmup=1, rounds=warm_rounds)
    report = prepared.program.report
    return ColdWarm(cold, warm.seconds, prepared.compile_seconds,
                    optimize_seconds=report.optimize_seconds,
                    codegen_seconds=report.codegen_seconds)

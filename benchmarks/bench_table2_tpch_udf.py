"""Table 2 — modified TPC-H (q1, q6, q12, q14, q19) with MATLAB/Python
UDFs: MonetDB-like baseline vs HorsePower, across thread counts, plus the
HorsePower compilation-time row.

Paper shape to reproduce: the baseline is orders of magnitude slower on
the WHERE-clause UDF queries (q6, q12, q19 — column conversion dominates
and does not parallelize); HorsePower wins everywhere and scales with
threads; q1/q14 wins are moderate (SELECT-clause UDFs on reduced data).
"""

from __future__ import annotations

import pytest

from benchmarks.harness import make_tpch_systems, thread_counts
from repro.workloads.tpch_queries import TPCH_UDF_QUERY_NAMES, UDF_QUERIES


def _configurations():
    for query in TPCH_UDF_QUERY_NAMES:
        for threads in thread_counts():
            for system in ("monetdb-like", "horsepower"):
                yield (query, threads, system)


@pytest.mark.parametrize("query,threads,system", list(_configurations()))
def test_table2(benchmark, query, threads, system):
    hp, mdb = make_tpch_systems()
    sql = UDF_QUERIES[query]
    if system == "horsepower":
        compiled = hp.compile_sql(sql)
        run = lambda: compiled.run(n_threads=threads)  # noqa: E731
        benchmark.extra_info.update(
            compile_seconds=compiled.compile_seconds)
    else:
        plan = mdb.plan_sql(sql)
        run = lambda: mdb.executor.execute(  # noqa: E731
            plan, n_threads=threads)
    benchmark.extra_info.update(table="table2", query=query,
                                threads=threads, system=system)
    result = benchmark.pedantic(run, rounds=3, iterations=1,
                                warmup_rounds=1)
    assert result is not None


@pytest.mark.parametrize("query", TPCH_UDF_QUERY_NAMES)
def test_table2_compile_time(benchmark, query):
    """The COMP row: SQL → plan → HorseIR → optimized kernels."""
    hp, _ = make_tpch_systems()
    sql = UDF_QUERIES[query]
    benchmark.extra_info.update(table="table2-comp", query=query)
    compiled = benchmark.pedantic(lambda: hp.compile_sql(sql),
                                  rounds=3, iterations=1,
                                  warmup_rounds=1)
    assert compiled.program is not None

"""Regenerate every evaluation table of the paper in one run.

Usage::

    python benchmarks/report.py [--scale S] [--threads 1,2,4] [--out FILE]

Prints Tables 1–4 in the paper's layout (execution times in milliseconds,
speedups, compile times).  Absolute numbers differ from the paper — the
substrate is NumPy on this host, not generated C on a 40-core Xeon — but
the comparisons (who wins, by what factor, where the crossovers are) are
the reproduction target; see EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import io
import os
import sys

# Allow running as a plain script: put the repository root on sys.path so
# `benchmarks` imports as a package.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (paper ≈ 10)")
    parser.add_argument("--threads", type=str, default="1,2,4",
                        help="comma-separated thread counts")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    parser.add_argument("--tables", type=str, default="1,2,3,4,cache",
                        help="which tables to run (e.g. 1,4,cache; "
                             "'cache' is the prepared-query cold/warm "
                             "table)")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    os.environ["REPRO_BENCH_THREADS"] = args.threads

    # Import after the env is set: the harness reads it at call time.
    from benchmarks import tables

    wanted = {part.strip() for part in args.tables.split(",")}
    buffer = io.StringIO()

    def emit(text: str = "") -> None:
        print(text)
        buffer.write(text + "\n")

    emit(f"# HorsePower reproduction report "
         f"(scale={args.scale}, threads={args.threads})")
    emit()
    if "1" in wanted:
        tables.report_table1(emit)
    if "2" in wanted:
        tables.report_table2(emit)
    if "3" in wanted:
        tables.report_table3(emit)
    if "4" in wanted:
        tables.report_table4(emit)
    if "cache" in wanted:
        tables.report_plan_cache(emit)

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(buffer.getvalue())
        print(f"\nreport written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Regenerate every evaluation table of the paper in one run.

Usage::

    python benchmarks/report.py [--scale S] [--threads 1,2,4] [--out FILE]

Prints Tables 1–4 in the paper's layout (execution times in milliseconds,
speedups, compile times).  Absolute numbers differ from the paper — the
substrate is NumPy on this host, not generated C on a 40-core Xeon — but
the comparisons (who wins, by what factor, where the crossovers are) are
the reproduction target; see EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import io
import os
import sys

# Allow running as a plain script: put the repository root on sys.path so
# `benchmarks` imports as a package.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (paper ≈ 10)")
    parser.add_argument("--threads", type=str, default="1,2,4",
                        help="comma-separated thread counts")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    parser.add_argument("--tables", type=str, default="1,2,3,4,cache",
                        help="which tables to run (e.g. 1,4,cache; "
                             "'cache' is the prepared-query cold/warm "
                             "table)")
    parser.add_argument("--metrics-json", type=str, default=None,
                        help="write the process-global metrics "
                             "(kernels, rows, pool, plan cache, "
                             "per-phase compile totals) as flat JSON "
                             "after the run")
    parser.add_argument("--trace-dir", type=str, default=None,
                        help="record spans for every benchmark run and "
                             "write one Chrome-trace JSON per table "
                             "into this directory")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    os.environ["REPRO_BENCH_THREADS"] = args.threads
    if args.trace_dir:
        os.environ["REPRO_BENCH_TRACE"] = args.trace_dir

    # Import after the env is set: the harness reads it at call time.
    from benchmarks import tables
    from benchmarks.harness import dump_bench_trace, install_bench_tracer

    install_bench_tracer()
    wanted = {part.strip() for part in args.tables.split(",")}
    buffer = io.StringIO()

    def emit(text: str = "") -> None:
        print(text)
        buffer.write(text + "\n")

    emit(f"# HorsePower reproduction report "
         f"(scale={args.scale}, threads={args.threads})")
    emit()
    sections = (("1", "table1", tables.report_table1),
                ("2", "table2", tables.report_table2),
                ("3", "table3", tables.report_table3),
                ("4", "table4", tables.report_table4),
                ("cache", "plan_cache", tables.report_plan_cache))
    for key, name, report_fn in sections:
        if key in wanted:
            report_fn(emit)
            path = dump_bench_trace(name)
            if path:
                emit(f"(trace written to {path})")

    if args.metrics_json:
        import json

        from repro.obs import global_metrics
        with open(args.metrics_json, "w") as handle:
            json.dump({"metrics": global_metrics().snapshot()}, handle,
                      indent=2, default=str)
        emit(f"(metrics written to {args.metrics_json})")

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(buffer.getvalue())
        print(f"\nreport written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Micro-benchmark: the cost of *disabled* tracing and profiling on
TPC-H Q6.

Tracing is off by default and must stay near free: every
instrumentation site costs one ``get_tracer()`` read plus one no-op
``span()`` call when disabled.  This benchmark bounds that cost on the
paper's Q6:

1. median warm Q6 runtime with the default :data:`NULL_TRACER`;
2. the number of span sites one Q6 run passes through (counted by
   running once under a real tracer);
3. the measured per-site cost of a disabled span (tight loop).

``overhead = sites x per-site cost / runtime`` — the acceptance bar is
**<2%**.  For reference it also reports the *enabled* tracing runtime,
which is allowed to be slower (it allocates and timestamps real spans).

The allocation profiler (PR 4) gets the same treatment: its disabled
form is a single ``if profile.enabled:`` branch on the
:data:`NULL_PROFILE` singleton, its site count is the number of charge
events a profiled Q6 run records, and its disabled overhead must also
stay **<2%** of the warm runtime.

The query governor (PR 6) follows the same pattern a third time: every
cancellation checkpoint (chunk / statement / plan item / optimizer
pass) is one ``if limits.enabled:`` branch on the ``NULL_LIMITS``
singleton when no timeout or budget is set, the site count is
``limits.checks`` after one governed run with an unreachable deadline,
and the disabled overhead must stay **<2%** of warm Q6.

Session telemetry (PR 7) is the cheapest of the four: exactly **one**
site per query — the ``if telemetry.enabled:`` branch at the top of
``run_sql`` on an unconfigured :class:`~repro.obs.SessionTelemetry`
(``enabled`` is a plain ``False`` attribute).  Everything else (the
private tracer, the record dict, the query log write) is behind that
branch, so the disabled cost is one attribute read + truth test,
bounded by the same **<2%** bar.

The inter-pass IR verifier (PR 8) rounds out the set: every pass
application ends in a ``_verify_method``/``_verify_module`` call whose
first action is ``if not self.verify: return`` when ``--verify-ir`` is
off.  The site count is the number of those calls one cold Q6 compile
makes, the per-site cost is the measured disabled call, and the
overhead (against the same warm-Q6 denominator as the others, although
warm runs compile nothing at all) must stay **<2%**.

Table statistics (PR 9) follow the telemetry pattern: with no
``ANALYZE`` run, the :class:`~repro.stats.StatsStore` is empty and a
warm query pays exactly two sites — the ``stats.fingerprint()`` call in
the plan-cache key and the ``if self.stats.enabled:`` branch after
execution (``plan_sql`` pays a third on the cold path only).  Both are
measured on an empty store and bounded by the same **<2%** bar.

Static analysis (PR 10) adds **zero** new disabled sites: the semantic
type/shape checker runs inside ``_verify_method``/``_verify_module``,
entirely behind the verifier's existing ``if not self.verify: return``
early exit measured above — so the PR-8 verifier gate is also the
disabled-analysis gate, with the same site count and the same **<2%**
bar.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

Exits non-zero if any disabled overhead exceeds the 2% bar.
"""

from __future__ import annotations

import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from benchmarks.harness import make_tpch_systems, time_callable  # noqa: E402
from repro.core.limits import NULL_LIMITS  # noqa: E402
from repro.obs import (NULL_PROFILE, NULL_TRACER, AllocationProfile,  # noqa: E402
                       SessionTelemetry, Tracer, use_profile, use_tracer)
from repro.workloads.tpch_queries import PLAIN_QUERIES  # noqa: E402

OVERHEAD_BAR = 0.02
_NULL_SPAN_LOOPS = 200_000


def measure_null_span_cost(loops: int = _NULL_SPAN_LOOPS) -> float:
    """Seconds per disabled instrumentation site (span enter+exit)."""
    span = NULL_TRACER.span  # the bound method a hot site pays for
    start = time.perf_counter()
    for _ in range(loops):
        with span("x"):
            pass
    return (time.perf_counter() - start) / loops


def measure_null_profile_cost(loops: int = _NULL_SPAN_LOOPS) -> float:
    """Seconds per disabled profiler site (the ``if profile.enabled:``
    branch every charge point pays when profiling is off)."""
    profile = NULL_PROFILE
    sink = 0
    start = time.perf_counter()
    for _ in range(loops):
        if profile.enabled:
            sink += 1  # pragma: no cover - NULL_PROFILE is disabled
    elapsed = time.perf_counter() - start
    assert sink == 0
    return elapsed / loops


def measure_null_limits_cost(loops: int = _NULL_SPAN_LOOPS) -> float:
    """Seconds per disabled governor checkpoint (the ``if
    limits.enabled:`` branch every checkpoint site pays when the query
    is ungoverned)."""
    limits = NULL_LIMITS
    sink = 0
    start = time.perf_counter()
    for _ in range(loops):
        if limits.enabled:
            sink += 1  # pragma: no cover - NULL_LIMITS is disabled
    elapsed = time.perf_counter() - start
    assert sink == 0
    return elapsed / loops


def measure_disabled_telemetry_cost(loops: int = _NULL_SPAN_LOOPS) -> float:
    """Seconds per disabled telemetry site (the ``if
    telemetry.enabled:`` branch ``run_sql`` pays once per query when
    telemetry is unconfigured)."""
    telemetry = SessionTelemetry()
    assert not telemetry.enabled
    sink = 0
    start = time.perf_counter()
    for _ in range(loops):
        if telemetry.enabled:
            sink += 1  # pragma: no cover - unconfigured telemetry
    elapsed = time.perf_counter() - start
    assert sink == 0
    return elapsed / loops


# ``run_sql`` consults ``telemetry.enabled`` exactly once per query;
# there are no other disabled-telemetry sites in the pipeline.
TELEMETRY_SITES_PER_QUERY = 1


def measure_disabled_stats_cost(loops: int = _NULL_SPAN_LOOPS) -> float:
    """Seconds per disabled statistics site on an empty
    :class:`~repro.stats.StatsStore`: one ``fingerprint()`` call (the
    plan-cache key component) averaged with one ``if stats.enabled:``
    branch (the est-vs-actual hook), the two sites a warm query pays."""
    from repro.stats import StatsStore

    stats = StatsStore()
    assert not stats.enabled and stats.fingerprint() is None
    sink = 0
    start = time.perf_counter()
    for _ in range(loops):
        stats.fingerprint()
        if stats.enabled:
            sink += 1  # pragma: no cover - store is empty
    elapsed = time.perf_counter() - start
    assert sink == 0
    return elapsed / (2 * loops)


# A warm query pays ``stats.fingerprint()`` in ``prepare`` plus the
# ``if self.stats.enabled:`` branch after execution; ``plan_sql`` adds
# a third read on the cold path only.
STATS_SITES_PER_QUERY = 2


def measure_disabled_verify_cost(loops: int = _NULL_SPAN_LOOPS) -> float:
    """Seconds per disabled verification site (the
    ``if not self.verify: return`` call every pass application pays
    when ``--verify-ir`` is off)."""
    from repro.core.passes import PassManager, preset

    manager = PassManager(preset("O2"))
    assert not manager.verify
    check = manager._verify_method
    start = time.perf_counter()
    for _ in range(loops):
        check("x", None, None)
    return (time.perf_counter() - start) / loops


def count_verify_sites_per_compile(hp, sql: str) -> int:
    """Verification call sites one cold Q6 compile passes through
    (counted by wrapping the manager's verify hooks)."""
    from repro.core import passes as passes_mod

    counts = [0]
    orig_method = passes_mod.PassManager._verify_method
    orig_module = passes_mod.PassManager._verify_module

    def counting_method(self, *args, **kwargs):
        counts[0] += 1
        return orig_method(self, *args, **kwargs)

    def counting_module(self, *args, **kwargs):
        counts[0] += 1
        return orig_module(self, *args, **kwargs)

    passes_mod.PassManager._verify_method = counting_method
    passes_mod.PassManager._verify_module = counting_module
    try:
        hp.compile_sql(sql)
    finally:
        passes_mod.PassManager._verify_method = orig_method
        passes_mod.PassManager._verify_module = orig_module
    return counts[0]


def count_checkpoints_per_run(hp, sql: str) -> int:
    """Cancellation checkpoints one warm, governed Q6 run passes
    through — measured by granting a deadline far in the future and
    reading ``limits.checks`` back."""
    limits = hp.governor.grant(timeout=3600.0)
    ctx = hp.session.context()
    ctx.limits = limits
    hp.run_sql(sql, ctx=ctx)
    return limits.checks


def count_spans_per_run(hp, sql: str) -> int:
    """Span sites one warm Q6 run passes through."""
    tracer = Tracer()
    with use_tracer(tracer):
        hp.run_sql(sql)
    return len(tracer.all_spans())


def count_charge_sites_per_run(hp, sql: str) -> int:
    """Profiler charge events one warm, profiled Q6 run records."""
    profile = AllocationProfile()
    with use_profile(profile):
        hp.run_sql(sql)
    return profile.events


def main() -> int:
    hp, _ = make_tpch_systems()
    sql = PLAIN_QUERIES["q6"]
    hp.run_sql(sql)  # compile + cache: measurements below are warm

    disabled = time_callable(lambda: hp.run_sql(sql), warmup=2,
                             rounds=7)
    site_cost = measure_null_span_cost()
    sites = count_spans_per_run(hp, sql)

    tracer = Tracer()
    with use_tracer(tracer):
        enabled = time_callable(lambda: hp.run_sql(sql), warmup=2,
                                rounds=7)

    prof_site_cost = measure_null_profile_cost()
    charge_sites = count_charge_sites_per_run(hp, sql)

    gov_site_cost = measure_null_limits_cost()
    checkpoints = count_checkpoints_per_run(hp, sql)

    tel_site_cost = measure_disabled_telemetry_cost()

    stats_site_cost = measure_disabled_stats_cost()

    verify_site_cost = measure_disabled_verify_cost()
    verify_sites = count_verify_sites_per_compile(hp, sql)

    overhead = sites * site_cost / disabled.seconds
    prof_overhead = charge_sites * prof_site_cost / disabled.seconds
    gov_overhead = checkpoints * gov_site_cost / disabled.seconds
    tel_overhead = (TELEMETRY_SITES_PER_QUERY * tel_site_cost
                    / disabled.seconds)
    stats_overhead = (STATS_SITES_PER_QUERY * stats_site_cost
                      / disabled.seconds)
    verify_overhead = (verify_sites * verify_site_cost
                       / disabled.seconds)
    print("# Disabled-tracer overhead on TPC-H Q6 (warm, cached plan)")
    print(f"warm Q6 runtime (tracing off) : {disabled.millis:9.3f} ms")
    print(f"warm Q6 runtime (tracing on)  : {enabled.millis:9.3f} ms")
    print(f"span sites per run            : {sites:9d}")
    print(f"cost per disabled site        : {site_cost * 1e9:9.1f} ns")
    print(f"disabled overhead             : {overhead:9.4%} "
          f"(bar: <{OVERHEAD_BAR:.0%})")
    print()
    print("# Disabled-profiler overhead on TPC-H Q6 (warm, cached plan)")
    print(f"charge sites per profiled run : {charge_sites:9d}")
    print(f"cost per disabled check       : {prof_site_cost * 1e9:9.1f}"
          f" ns")
    print(f"disabled overhead             : {prof_overhead:9.4%} "
          f"(bar: <{OVERHEAD_BAR:.0%})")
    print()
    print("# Disabled-governor overhead on TPC-H Q6 (warm, cached plan)")
    print(f"checkpoints per governed run  : {checkpoints:9d}")
    print(f"cost per disabled check       : {gov_site_cost * 1e9:9.1f}"
          f" ns")
    print(f"disabled overhead             : {gov_overhead:9.4%} "
          f"(bar: <{OVERHEAD_BAR:.0%})")
    print()
    print("# Disabled-telemetry overhead on TPC-H Q6 (warm, cached plan)")
    print(f"telemetry sites per query     : "
          f"{TELEMETRY_SITES_PER_QUERY:9d}")
    print(f"cost per disabled check       : {tel_site_cost * 1e9:9.1f}"
          f" ns")
    print(f"disabled overhead             : {tel_overhead:9.4%} "
          f"(bar: <{OVERHEAD_BAR:.0%})")
    print()
    print("# Disabled-statistics overhead on TPC-H Q6 (warm, cached "
          "plan)")
    print(f"stats sites per query         : "
          f"{STATS_SITES_PER_QUERY:9d}")
    print(f"cost per disabled check       : "
          f"{stats_site_cost * 1e9:9.1f} ns")
    print(f"disabled overhead             : {stats_overhead:9.4%} "
          f"(bar: <{OVERHEAD_BAR:.0%})")
    print()
    print("# Disabled-verifier overhead on TPC-H Q6 (cold compile)")
    print(f"verify sites per cold compile : {verify_sites:9d}")
    print(f"cost per disabled check       : "
          f"{verify_site_cost * 1e9:9.1f} ns")
    print(f"disabled overhead             : {verify_overhead:9.4%} "
          f"(bar: <{OVERHEAD_BAR:.0%})")
    failed = False
    if overhead >= OVERHEAD_BAR:
        print("FAIL: disabled tracing is not near-free")
        failed = True
    if prof_overhead >= OVERHEAD_BAR:
        print("FAIL: disabled profiling is not near-free")
        failed = True
    if gov_overhead >= OVERHEAD_BAR:
        print("FAIL: disabled governor checkpoints are not near-free")
        failed = True
    if tel_overhead >= OVERHEAD_BAR:
        print("FAIL: disabled telemetry is not near-free")
        failed = True
    if stats_overhead >= OVERHEAD_BAR:
        print("FAIL: disabled statistics are not near-free")
        failed = True
    if verify_overhead >= OVERHEAD_BAR:
        print("FAIL: disabled IR verification is not near-free")
        failed = True
    if failed:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Table 4 — Black-Scholes SQL variants bs0–bs3 × {table UDF, scalar UDF}
× {MonetDB-like, HorsePower} × {1 thread, max threads}, plus HorsePower
compile times.

Paper shape to reproduce:

* bs0/bs1/bs3: HorsePower ≈3–4× at one thread (no conversion + fusion),
  larger with threads;
* bs1 scalar: both systems filter before pricing (small absolute times);
* bs2 scalar: both systems prune the unused column (≈1× speedup);
* bs2 *table*: only HorsePower eliminates the UDF (backward slicing
  across the inlined black box) — the largest speedups in the table.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import make_bs_systems, thread_counts
from repro.workloads.bs_queries import (BS_VARIANT_NAMES, SCALAR_QUERIES,
                                        TABLE_QUERIES)

_THREADS = [min(thread_counts()), max(thread_counts())]


def _configurations():
    for variant in BS_VARIANT_NAMES:
        for style in ("table", "scalar"):
            for threads in dict.fromkeys(_THREADS):
                for system in ("monetdb-like", "horsepower"):
                    yield (variant, style, threads, system)


@pytest.mark.parametrize("variant,style,threads,system",
                         list(_configurations()))
def test_table4(benchmark, variant, style, threads, system):
    hp, mdb = make_bs_systems()
    queries = TABLE_QUERIES if style == "table" else SCALAR_QUERIES
    sql = queries[variant]
    if system == "horsepower":
        compiled = hp.compile_sql(sql)
        run = lambda: compiled.run(n_threads=threads)  # noqa: E731
        benchmark.extra_info.update(
            compile_seconds=compiled.compile_seconds)
    else:
        plan = mdb.plan_sql(sql)
        run = lambda: mdb.executor.execute(  # noqa: E731
            plan, n_threads=threads)
    benchmark.extra_info.update(table="table4", variant=variant,
                                style=style, threads=threads,
                                system=system)
    result = benchmark.pedantic(run, rounds=3, iterations=1,
                                warmup_rounds=1)
    assert result is not None

"""Prepared-query cache — cold vs. warm ``run_sql``.

The paper's COMP column is a one-time cost; this cell shows the
reproduction now treats it that way.  For each workload query the first
``run_sql`` pays parse → plan → optimize → codegen (cold), every repeat
is a :class:`~repro.horsepower.cache.PlanCache` hit that pays execution
only (warm).  ``extra_info`` carries the cold/warm split and the measured
warm-vs-cold speedup so ``benchmarks/report.py`` JSON post-processing can
print an amortization table next to the paper-style ones.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import make_tpch_systems, time_cold_warm
from repro.workloads.tpch_queries import TPCH_UDF_QUERY_NAMES, UDF_QUERIES


@pytest.mark.parametrize("query", TPCH_UDF_QUERY_NAMES)
def test_prepared_cache_cold_vs_warm(benchmark, query):
    hp, _ = make_tpch_systems()
    sql = UDF_QUERIES[query]
    hp.plan_cache.invalidate()

    cw = time_cold_warm(hp, sql, warm_rounds=3)
    stats = hp.cache_stats

    benchmark.extra_info.update(
        table="prepared-cache", query=query,
        cold_seconds=cw.cold_seconds,
        warm_seconds=cw.warm_seconds,
        compile_seconds=cw.compile_seconds,
        warm_speedup=cw.speedup,
        cache_hits=stats.hits, cache_misses=stats.misses,
        cache_evictions=stats.evictions)

    # The benchmarked quantity is the steady state: warm, cache-served
    # execution.
    result = benchmark.pedantic(lambda: hp.run_sql(sql),
                                rounds=3, iterations=1, warmup_rounds=1)
    assert result is not None
    # Warm calls must actually skip compilation (pure cache hits).
    assert hp.cache_stats.hits > 0
    assert cw.speedup >= 1.0

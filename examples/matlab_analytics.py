"""MATLAB analytics through the McLab-style pipeline (paper Section 3.2).

Compiles the two Table-1 workloads — Black-Scholes (PARSEC) and Morgan —
from MATLAB source to HorseIR and compares three executions:

* the MATLAB interpreter baseline (tree-walking over NumPy);
* HorsePower-Naive (HorseIR, statement-at-a-time, full materialization);
* HorsePower-Opt (inlined, fused, chunked kernels).

Also prints the intermediate artifacts: the typed TameIR and the HorseIR
module, showing how ``A(I)`` logical indexing becomes ``@compress`` and
``x(a:b)`` becomes a zero-copy ``@subseq``.

Run:  python examples/matlab_analytics.py [size]
"""

import sys
import time

import numpy as np

from repro.core.printer import print_module
from repro.data.blackscholes import calc_option_price, generate_blackscholes
from repro.data.morgan import generate_morgan, morgan_reference
from repro.matlang import compile_matlab, matlab_to_module
from repro.matlang.interp import MatlabInterpreter
from repro.matlang.parser import parse_program
from repro.matlang.tamer import tame_source
from repro.workloads.matlab_sources import (BLACKSCHOLES_MATLAB,
                                            MORGAN_MATLAB)


def best_of(fn, rounds: int = 3) -> float:
    fn()
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times) * 1000


def show_pipeline_artifacts() -> None:
    source = """
    function y = demo(x, k)
        m = x(x > k);
        y = sum(m .* m);
    end
    """
    print("MATLAB source:")
    print(source)
    print("Typed TameIR (after the Tamer):")
    tamed = tame_source(source, [("f64", "vector"), ("f64", "scalar")])
    for stmt in tamed.entry.body:
        print("   ", stmt)
    print()
    print("HorseIR (logical indexing became @compress):")
    print(print_module(matlab_to_module(
        source, [("f64", "vector"), ("f64", "scalar")])))


def run_blackscholes(size: int) -> None:
    data = generate_blackscholes(size)
    args = [data[c] for c in ("spotPrice", "strike", "rate",
                              "volatility", "otime", "optionType")]
    interp = MatlabInterpreter(parse_program(BLACKSCHOLES_MATLAB))
    naive = compile_matlab(BLACKSCHOLES_MATLAB, opt_level="naive")
    opt = compile_matlab(BLACKSCHOLES_MATLAB, opt_level="opt")

    reference = calc_option_price(*args)
    assert np.allclose(np.asarray(opt(*args)), reference)

    t_interp = best_of(lambda: interp.run(*args))
    t_naive = best_of(lambda: naive(*args))
    t_opt = best_of(lambda: opt(*args))
    print(f"Black-Scholes ({size} options)")
    print(f"  MATLAB interpreter : {t_interp:8.1f} ms")
    print(f"  HorsePower-Naive   : {t_naive:8.1f} ms "
          f"({t_interp / t_naive:.2f}x)")
    print(f"  HorsePower-Opt     : {t_opt:8.1f} ms "
          f"({t_interp / t_opt:.2f}x)")
    print(f"  (one fused kernel covers "
          f"{opt.report.fused_statements} statements)")
    print()


def run_morgan(size: int) -> None:
    price, volume = generate_morgan(size)
    specs = [("f64", "scalar"), ("f64", "vector"), ("f64", "vector")]
    interp = MatlabInterpreter(parse_program(MORGAN_MATLAB))
    naive = compile_matlab(MORGAN_MATLAB, param_specs=specs,
                           opt_level="naive")
    opt = compile_matlab(MORGAN_MATLAB, param_specs=specs,
                         opt_level="opt")

    reference = morgan_reference(1000, price, volume)
    assert np.isclose(float(opt(1000.0, price, volume)), reference)

    t_interp = best_of(lambda: interp.run(1000.0, price, volume))
    t_naive = best_of(lambda: naive(1000.0, price, volume))
    t_opt = best_of(lambda: opt(1000.0, price, volume))
    print(f"Morgan ({size} ticks, window 1000)")
    print(f"  MATLAB interpreter : {t_interp:8.1f} ms")
    print(f"  HorsePower-Naive   : {t_naive:8.1f} ms "
          f"({t_interp / t_naive:.2f}x)")
    print(f"  HorsePower-Opt     : {t_opt:8.1f} ms "
          f"({t_interp / t_opt:.2f}x)")
    print()


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 800_000
    show_pipeline_artifacts()
    run_blackscholes(size)
    run_morgan(size)


if __name__ == "__main__":
    main()

"""Advanced analytics over TPC-H: SQL + MATLAB UDFs on both systems.

Generates TPC-H data, registers the Froid-style UDFs, and runs the
modified q6 and q12 on the MonetDB-like baseline and on HorsePower,
showing why the baseline collapses when a UDF sits in the WHERE clause
over date/string columns (per-element conversion through the black-box
bridge, Tables 2's q6/q12 story) while HorsePower compiles the UDF into
the query.

Run:  python examples/tpch_udf_analytics.py [scale_factor]
"""

import sys
import time

from repro.data.tpch import generate_tpch
from repro.horsepower import HorsePowerSystem, MonetDBLike
from repro.sql.udf import UDFRegistry
from repro.workloads.tpch_queries import UDF_QUERIES, register_tpch_udfs


def best_of(fn, rounds: int = 3) -> float:
    fn()
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times) * 1000


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    print(f"Generating TPC-H at SF {scale} ...")
    db = generate_tpch(scale_factor=scale)
    print(f"  lineitem: {db.table('lineitem').num_rows} rows")

    udfs = UDFRegistry()
    hp = HorsePowerSystem(db, udfs)
    mdb = MonetDBLike(db, udfs)
    register_tpch_udfs(hp)

    for name in ("q6", "q12"):
        sql = UDF_QUERIES[name]
        print(f"\n=== modified {name} "
              f"(UDF in the WHERE clause) ===")
        print(sql)

        compiled = hp.compile_sql(sql)
        plan = mdb.plan_sql(sql)

        mdb.bridge.calls = 0
        mdb.bridge.values_converted_in = 0
        t_mdb = best_of(lambda: mdb.executor.execute(plan))
        t_hp = best_of(lambda: compiled.run())

        print(f"MonetDB-like : {t_mdb:9.1f} ms   "
              f"(bridge calls: {mdb.bridge.calls}, values converted "
              f"per run: {mdb.bridge.values_converted_in // 4})")
        print(f"HorsePower   : {t_hp:9.1f} ms   "
              f"(UDF inlined; {compiled.program.report.fused_segments} "
              f"fused kernels; compile "
              f"{compiled.compile_seconds * 1000:.1f} ms)")
        print(f"speedup      : {t_mdb / t_hp:9.2f}x")

        hp_result = compiled.run()
        mdb_result = mdb.run_sql(sql)
        print("results match:",
              hp_result.num_rows == mdb_result.num_rows)


if __name__ == "__main__":
    main()

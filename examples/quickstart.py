"""Quickstart: the Figure 2 pipeline end to end.

Runs the paper's example query (simplified TPC-H q6) through HorsePower:
SQL → logical plan → JSON → HorseIR → optimized fused kernel → result —
printing each artifact along the way, including the generated HorseIR
(Figure 2b) and the fused kernel source (the Figure 3 analog).

Run:  python examples/quickstart.py
"""

import json

import numpy as np

from repro import Database, HorsePowerSystem, MonetDBLike
from repro.core.printer import print_module


def main() -> None:
    # 1. A tiny lineitem table.
    rng = np.random.default_rng(1)
    n = 100_000
    db = Database()
    db.create_table("lineitem", {
        "l_extendedprice": rng.uniform(100.0, 10_000.0, n),
        "l_discount": np.round(rng.uniform(0.0, 0.1, n), 2),
    })

    hp = HorsePowerSystem(db)
    sql = """
        SELECT SUM(l_extendedprice * l_discount) AS RevenueChange
        FROM lineitem
        WHERE l_discount >= 0.05
    """
    print("SQL:")
    print(sql)

    # 2. The logical plan, as the JSON the translator consumes.
    plan_json = hp.plan_sql(sql)
    print("Logical plan (JSON):")
    print(json.dumps(plan_json, indent=2)[:800])
    print()

    # 3. The HorseIR program (compare the paper's Figure 2b).
    compiled = hp.compile_sql(sql)
    print("Generated HorseIR (before optimization):")
    print(print_module(compiled.module_before_opt))

    # 4. The optimized module and its fused kernel (Figure 3 analog).
    print("After optimization:")
    print(print_module(compiled.program.module))
    if compiled.kernel_sources:
        print("Fused kernel source:")
        for source in compiled.kernel_sources:
            print(source)
    else:
        print("No loop kernel was needed: pattern-based fusion collapsed "
              "the whole pipeline\ninto a single @dot_masked call "
              "(predicate + compress + multiply + sum in one pass).\n")

    # 5. Execute, and cross-check against the MonetDB-like baseline.
    result = compiled.run()
    print("HorsePower result:", result.to_pylist())

    baseline = MonetDBLike(db, hp.udfs)
    mdb_result = baseline.run_sql(sql)
    print("Baseline result:  ",
          float(mdb_result.column("RevenueChange")[0]))
    print(f"(compile time: {compiled.compile_seconds * 1000:.1f} ms)")


if __name__ == "__main__":
    main()

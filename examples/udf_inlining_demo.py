"""The Figures 6 & 7 story: cross-optimization through method inlining.

Registers the paper's scalar UDF ``calcRevenueChangeScalar`` (written in
MATLAB), embeds it in the example query, and shows:

1. the merged HorseIR module with the UDF as a separate method (Fig. 6);
2. the dependence graph of ``main`` with the call as an opaque node, and
   the graph after inlining where fusion can span everything (Fig. 7),
   both printed as Graphviz;
3. the final single fused kernel;
4. timings: baseline (black-box Python UDF) vs HorsePower.

Run:  python examples/udf_inlining_demo.py
"""

import time

import numpy as np

from repro import Database, HorsePowerSystem, MonetDBLike
from repro.core import types as ht
from repro.core.depgraph import build_depgraph
from repro.core.printer import print_module
from repro.sql.udf import UDFRegistry

MATLAB_UDF = """
function r = calcRevenueChangeScalar(price, discount)
    r = price .* discount;
end
"""


def python_udf(price, discount):
    return price * discount


SQL = """
    SELECT SUM(calcRevenueChangeScalar(l_extendedprice, l_discount))
           AS RevenueChange
    FROM lineitem
    WHERE l_discount >= 0.05
"""


def main() -> None:
    rng = np.random.default_rng(2)
    n = 1_000_000
    db = Database()
    db.create_table("lineitem", {
        "l_extendedprice": rng.uniform(100.0, 10_000.0, n),
        "l_discount": np.round(rng.uniform(0.0, 0.1, n), 2),
    })
    udfs = UDFRegistry()
    hp = HorsePowerSystem(db, udfs)
    hp.register_scalar_udf("calcRevenueChangeScalar", MATLAB_UDF,
                           [ht.F64, ht.F64], ht.F64,
                           python_impl=python_udf)

    compiled = hp.compile_sql(SQL)

    print("Merged HorseIR before optimization (compare Figure 6):")
    print(print_module(compiled.module_before_opt))

    main_before = compiled.module_before_opt.methods["main"]
    print("Dependence graph with the UDF call opaque "
          "(left side of Figure 7):")
    print(build_depgraph(main_before.body).to_dot())
    print()

    main_after = compiled.program.module.methods["main"]
    print("Dependence graph after inlining "
          "(right side of Figure 7):")
    print(build_depgraph(main_after.body).to_dot())
    print()

    print("Fused kernel(s) — the whole query is one loop (Figure 3):")
    for source in compiled.kernel_sources:
        print(source)

    # Timings: black-box UDF vs holistic compilation.
    baseline = MonetDBLike(db, udfs)
    plan = baseline.plan_sql(SQL)

    def best_of(fn, rounds=3):
        fn()
        return min(_timed(fn) for _ in range(rounds))

    def _timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    t_mdb = best_of(lambda: baseline.executor.execute(plan))
    t_hp = best_of(lambda: compiled.run())
    print(f"MonetDB-like (black-box UDF): {t_mdb * 1000:8.1f} ms")
    print(f"HorsePower (inlined + fused): {t_hp * 1000:8.1f} ms "
          f"({t_mdb / t_hp:.2f}x)")


if __name__ == "__main__":
    main()

"""Building HorseIR programmatically and watching the optimizer work.

Uses :class:`repro.core.module_builder.ModuleBuilder` to construct the
paper's example query without any frontend, then walks it through every
compiler stage: verification, the optimization pipeline (with pass
statistics), segmentation, kernel generation, and execution at both
levels.

Run:  python examples/ir_playground.py
"""

import numpy as np

from repro.core import from_numpy, types as ht
from repro.core.compiler import compile_module
from repro.core.module_builder import ModuleBuilder
from repro.core.optimizer import optimize
from repro.core.printer import print_module


def build_module():
    b = ModuleBuilder("Playground")

    # A UDF built as its own method, to exercise inlining.
    with b.method("revenue", [("price", ht.F64),
                              ("discount", ht.F64)], ht.F64) as m:
        m.ret(m.call("mul", m.param("price"), m.param("discount"),
                     type=ht.F64))

    with b.method("main", [("price", ht.F64),
                           ("discount", ht.F64)], ht.F64) as m:
        mask = m.call("geq", m.param("discount"), 0.05, type=ht.BOOL)
        kept_price = m.call("compress", mask, m.param("price"),
                            type=ht.F64)
        kept_disc = m.call("compress", mask, m.param("discount"),
                           type=ht.F64)
        contribution = m.invoke("revenue", kept_price, kept_disc,
                                type=ht.F64)
        # A dead computation for backward slicing to remove.
        m.call("sqrt", m.param("price"), type=ht.F64, name="unused")
        m.ret(m.call("sum", contribution, type=ht.F64))

    return b.build()


def main() -> None:
    module = build_module()
    print("Constructed module (verified):")
    print(print_module(module))

    optimized, stats = optimize(module)
    print(f"Optimizer: rounds={stats.rounds}, "
          f"methods inlined away={stats.inlined_methods_removed}, "
          f"passes={stats.passes_applied}")
    print(print_module(optimized))

    program = compile_module(build_module(), "opt")
    print(f"Fused segments: {program.report.fused_segments} "
          f"covering {program.report.fused_statements} statements")
    for source in program.kernel_sources:
        print(source)

    rng = np.random.default_rng(3)
    price = from_numpy(rng.uniform(100, 1000, 1_000_000))
    discount = from_numpy(np.round(rng.uniform(0, 0.1, 1_000_000), 2))

    naive = compile_module(build_module(), "naive")
    expected = naive.run(args=[price, discount])
    actual = program.run(args=[price, discount])
    print(f"naive  = {expected.item():.2f}")
    print(f"opt    = {actual.item():.2f}")
    assert abs(expected.item() - actual.item()) < 1e-6 * abs(
        expected.item())
    print("naive and optimized agree.")


if __name__ == "__main__":
    main()

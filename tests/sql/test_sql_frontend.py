"""Unit tests for the SQL frontend: lexer/parser, planner (pushdown,
pruning, aggregation planning), plan JSON, and plan→HorseIR."""

import numpy as np
import pytest

from repro.core import types as ht
from repro.errors import CatalogError, PlanError, SQLSyntaxError
from repro.sql import ast
from repro.sql import plan as p
from repro.sql.catalog import Catalog, TableSchema
from repro.sql.parser import parse_sql
from repro.sql.plan import plan_to_json
from repro.sql.planner import plan_query
from repro.sql.plan_to_ir import json_plan_to_module
from repro.sql.udf import ScalarUDF, TableUDFDef, UDFRegistry


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add(TableSchema("t", [
        ("a", ht.I64), ("b", ht.F64), ("c", ht.STR), ("d", ht.DATE),
    ]))
    cat.add(TableSchema("u", [
        ("k", ht.I64), ("v", ht.F64),
    ]))
    return cat


class TestParser:
    def test_simple_select(self):
        select = parse_sql("SELECT a, b FROM t")
        assert len(select.items) == 2
        assert isinstance(select.from_items[0], ast.TableRef)

    def test_keywords_case_insensitive(self):
        select = parse_sql("select A from T where A > 1 group by A")
        assert select.where is not None
        assert len(select.group_by) == 1

    def test_expression_precedence(self):
        select = parse_sql("SELECT a + b * 2 AS x FROM t")
        expr = select.items[0].expr
        assert isinstance(expr, ast.BinOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "*"

    def test_and_binds_tighter_than_or(self):
        select = parse_sql(
            "SELECT a FROM t WHERE a = 1 OR a = 2 AND b > 0")
        assert select.where.op == "or"

    def test_string_escaping(self):
        select = parse_sql("SELECT a FROM t WHERE c = 'it''s'")
        assert select.where.right.value == "it's"

    def test_date_and_interval_literals(self):
        select = parse_sql(
            "SELECT a FROM t WHERE d <= DATE '1998-12-01' "
            "- INTERVAL '90' DAY")
        right = select.where.right
        assert isinstance(right, ast.BinOp)
        assert isinstance(right.left, ast.DateLit)
        assert isinstance(right.right, ast.IntervalLit)
        assert right.right.amount == 90

    def test_between_in_like(self):
        select = parse_sql(
            "SELECT a FROM t WHERE b BETWEEN 1 AND 2 "
            "AND c IN ('x', 'y') AND c LIKE 'PRO%'")
        conjuncts = []

        def flatten(e):
            if isinstance(e, ast.BinOp) and e.op == "and":
                flatten(e.left)
                flatten(e.right)
            else:
                conjuncts.append(e)
        flatten(select.where)
        kinds = [type(c).__name__ for c in conjuncts]
        assert kinds == ["Between", "InList", "BinOp"]

    def test_not_variants(self):
        select = parse_sql(
            "SELECT a FROM t WHERE b NOT BETWEEN 1 AND 2 "
            "AND c NOT IN ('x')")
        assert select.where.left.negated
        assert select.where.right.negated

    def test_case_when(self):
        select = parse_sql(
            "SELECT SUM(CASE WHEN a > 1 THEN b ELSE 0.0 END) AS s "
            "FROM t")
        case = select.items[0].expr.args[0]
        assert isinstance(case, ast.CaseWhen)
        assert case.else_expr is not None

    def test_order_by_and_limit(self):
        select = parse_sql(
            "SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 5")
        assert select.order_by[0][1] is False
        assert select.order_by[1][1] is True
        assert select.limit == 5

    def test_derived_table(self):
        select = parse_sql(
            "SELECT x FROM (SELECT a AS x FROM t) AS sub")
        assert isinstance(select.from_items[0], ast.SubqueryRef)

    def test_table_udf_call(self):
        select = parse_sql(
            "SELECT p FROM myUdf((SELECT a, b FROM t)) AS x")
        ref = select.from_items[0]
        assert isinstance(ref, ast.TableUDFRef)
        assert ref.name == "myUdf"

    def test_explicit_join(self):
        select = parse_sql(
            "SELECT a FROM t INNER JOIN u ON a = k")
        join = select.from_items[1]
        assert join[0] == "join"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError, match="trailing"):
            parse_sql("SELECT a FROM t 123")

    def test_unterminated_expression_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a + FROM t")


class TestPlanner:
    def test_single_table_filter_pushdown_structure(self, catalog):
        plan = plan_query(parse_sql(
            "SELECT a FROM t WHERE b > 1"), catalog)
        # Project (the SELECT list) over Filter over Scan.
        assert isinstance(plan, p.Project)
        assert isinstance(plan.child, p.Filter)
        assert isinstance(plan.child.child, p.Scan)

    def test_scan_columns_are_pruned(self, catalog):
        plan = plan_query(parse_sql("SELECT a FROM t"), catalog)
        scan = plan
        while not isinstance(scan, p.Scan):
            scan = scan.child
        assert scan.columns == ["a"]

    def test_comma_join_extracts_equi_keys(self, catalog):
        plan = plan_query(parse_sql(
            "SELECT SUM(v) AS s FROM t, u WHERE a = k AND b > 0"),
            catalog)
        join = _find(plan, p.Join)
        assert join is not None
        assert (join.left_keys, join.right_keys) in ([(["a"], ["k"]),
                                                      (["k"], ["a"])])

    def test_single_table_predicates_pushed_below_join(self, catalog):
        plan = plan_query(parse_sql(
            "SELECT SUM(v) AS s FROM t, u WHERE a = k AND b > 0"),
            catalog)
        join = _find(plan, p.Join)
        # The b > 0 filter must sit under the join, not above it.
        sides = [join.left, join.right]
        assert any(isinstance(side, p.Filter) for side in sides)

    def test_cross_join_without_keys_rejected(self, catalog):
        with pytest.raises(PlanError, match="equi-join"):
            plan_query(parse_sql("SELECT a FROM t, u WHERE b > 0"),
                       catalog)

    def test_aggregation_splits_into_projection_and_group(self, catalog):
        plan = plan_query(parse_sql(
            "SELECT c, SUM(a * b) AS s FROM t GROUP BY c"), catalog)
        group = _find(plan, p.GroupAggregate)
        assert group.keys == ["c"]
        assert group.aggregates[0][1] == "sum"
        assert isinstance(group.child, p.Project)

    def test_expression_over_aggregates(self, catalog):
        plan = plan_query(parse_sql(
            "SELECT 100.0 * SUM(a) / SUM(b) AS pct FROM t"), catalog)
        assert isinstance(plan, p.Project)
        group = _find(plan, p.GroupAggregate)
        assert len(group.aggregates) == 2

    def test_bare_column_outside_group_by_rejected(self, catalog):
        with pytest.raises(PlanError, match="GROUP BY"):
            plan_query(parse_sql("SELECT c, SUM(a) AS s FROM t"),
                       catalog)

    def test_unknown_column_rejected(self, catalog):
        with pytest.raises((PlanError, CatalogError)):
            plan_query(parse_sql("SELECT nope FROM t"), catalog)

    def test_interval_folding(self, catalog):
        plan = plan_query(parse_sql(
            "SELECT a FROM t "
            "WHERE d <= DATE '1998-12-01' - INTERVAL '90' DAY"), catalog)
        filt = _find(plan, p.Filter)
        assert isinstance(filt.predicate.right, ast.DateLit)
        assert filt.predicate.right.value == "1998-09-02"

    def test_month_interval_folding(self, catalog):
        plan = plan_query(parse_sql(
            "SELECT a FROM t "
            "WHERE d < DATE '1995-09-01' + INTERVAL '1' MONTH"), catalog)
        filt = _find(plan, p.Filter)
        assert filt.predicate.right.value == "1995-10-01"

    def test_filter_pushes_through_passthrough_projection(self, catalog):
        plan = plan_query(parse_sql(
            "SELECT x FROM (SELECT a AS x, b AS y FROM t) AS s "
            "WHERE x > 3"), catalog)
        # The filter lands below the projection, on the scan.
        node = plan
        seen = []
        while True:
            seen.append(type(node).__name__)
            children = node.children()
            if not children:
                break
            node = children[0]
        assert seen.index("Filter") > seen.index("Project") \
            or "Filter" not in seen[:seen.index("Scan")]

    def test_udf_predicate_not_pushed_below_join(self, catalog):
        udfs = UDFRegistry()
        udfs.register(ScalarUDF("f", [ht.F64], ht.F64))
        plan = plan_query(parse_sql(
            "SELECT SUM(v) AS s FROM t, u "
            "WHERE a = k AND f(b) > 0"), catalog, udfs)
        filt = _find(plan, p.Filter)
        assert isinstance(filt.child, p.Join)

    def test_table_udf_is_a_pruning_barrier(self, catalog):
        udfs = UDFRegistry()
        udfs.register(TableUDFDef(
            "tf", [ht.I64, ht.F64],
            [("o1", ht.F64), ("o2", ht.F64)]))
        plan = plan_query(parse_sql(
            "SELECT o1 FROM tf((SELECT a, b FROM t))"), catalog, udfs)
        udf_node = _find(plan, p.TableUDF)
        # Both declared outputs survive pruning (black box), and both
        # inputs are produced.
        assert [name for name, _ in udf_node.output] == ["o1", "o2"]
        assert udf_node.input_columns == ["a", "b"]


class TestPlanJSON:
    def test_json_structure(self, catalog):
        plan = plan_query(parse_sql(
            "SELECT c, SUM(b) AS s FROM t WHERE a > 1 GROUP BY c "
            "ORDER BY c LIMIT 3"), catalog)
        data = plan_to_json(plan)
        ops = []

        def walk(node):
            ops.append(node["op"])
            for key in ("child", "left", "right"):
                if key in node:
                    walk(node[key])
        walk(data)
        # The outer project renames agg outputs; the inner one computes
        # aggregate arguments.
        assert ops == ["limit", "sort", "project", "group", "project",
                       "filter", "scan"]

    def test_translated_module_verifies(self, catalog):
        from repro.core.verify import verify_module
        plan = plan_query(parse_sql(
            "SELECT c, SUM(b) AS s FROM t WHERE a > 1 AND c LIKE 'x%' "
            "GROUP BY c"), catalog)
        module = json_plan_to_module(plan_to_json(plan))
        verify_module(module)

    def test_translated_module_executes(self, catalog):
        from repro.core.interp import run_module
        from repro.core.values import TableValue, from_numpy

        table = TableValue([
            ("a", from_numpy(np.array([1, 2, 3], dtype=np.int64))),
            ("b", from_numpy(np.array([1.0, 2.0, 3.0]))),
        ])
        plan = plan_query(parse_sql(
            "SELECT SUM(b) AS s FROM t WHERE a >= 2"), catalog)
        module = json_plan_to_module(plan_to_json(plan))
        result = run_module(module, {"t": table})
        assert result.column("s").data[0] == pytest.approx(5.0)


class TestCatalog:
    def test_duplicate_table_rejected(self, catalog):
        with pytest.raises(CatalogError, match="duplicate"):
            catalog.add(TableSchema("t", [("z", ht.F64)]))

    def test_duplicate_column_across_tables_rejected(self, catalog):
        with pytest.raises(CatalogError, match="globally unique"):
            catalog.add(TableSchema("w", [("a", ht.F64)]))

    def test_owner_lookup(self, catalog):
        assert catalog.owner_of("v") == "u"
        assert catalog.owner_of("nope") is None
        assert catalog.column_type("b") == ht.F64


def _find(node, kind):
    if isinstance(node, kind):
        return node
    for child in node.children():
        found = _find(child, kind)
        if found is not None:
            return found
    return None


class TestDistinctAndHaving:
    @pytest.fixture
    def db_systems(self):
        from repro.engine.storage import Database
        from repro.horsepower import HorsePowerSystem, MonetDBLike
        from repro.sql.udf import UDFRegistry

        db = Database()
        db.create_table("s", {
            "grp": np.array(["a", "b", "a", "c", "b", "a"],
                            dtype=object),
            "val": np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        })
        udfs = UDFRegistry()
        return HorsePowerSystem(db, udfs), MonetDBLike(db, udfs)

    def test_select_distinct(self, db_systems):
        hp, mdb = db_systems
        sql = "SELECT DISTINCT grp FROM s ORDER BY grp"
        hp_result = hp.run_sql(sql)
        mdb_result = mdb.run_sql(sql)
        assert hp_result.column("grp").data.tolist() == ["a", "b", "c"]
        assert mdb_result.column("grp").tolist() == ["a", "b", "c"]

    def test_select_distinct_expression(self, db_systems):
        hp, _ = db_systems
        sql = "SELECT DISTINCT val * 0 AS z FROM s"
        result = hp.run_sql(sql)
        assert result.num_rows == 1

    def test_having_filters_groups(self, db_systems):
        hp, mdb = db_systems
        sql = """
        SELECT grp, SUM(val) AS total
        FROM s
        GROUP BY grp
        HAVING SUM(val) > 6
        ORDER BY grp
        """
        hp_result = hp.run_sql(sql)
        mdb_result = mdb.run_sql(sql)
        assert hp_result.column("grp").data.tolist() == ["a", "b"]
        assert hp_result.column("total").data.tolist() == [10.0, 7.0]
        assert mdb_result.column("grp").tolist() == ["a", "b"]

    def test_having_with_aggregate_not_in_select(self, db_systems):
        hp, mdb = db_systems
        sql = """
        SELECT grp
        FROM s
        GROUP BY grp
        HAVING COUNT(*) >= 2
        ORDER BY grp
        """
        assert hp.run_sql(sql).column("grp").data.tolist() == ["a", "b"]
        assert mdb.run_sql(sql).column("grp").tolist() == ["a", "b"]

    def test_having_without_group_rejected(self, db_systems):
        hp, _ = db_systems
        with pytest.raises(PlanError, match="HAVING"):
            hp.run_sql("SELECT val FROM s HAVING val > 1")

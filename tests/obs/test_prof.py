"""Allocation-profiler tests: unit behavior, the naive-vs-opt parity
invariant (opt never allocates more than naive; fused Q6+UDF
materializes strictly fewer intermediates), render/export integration,
session metrics, and the disabled-profile overhead smoke."""

import json
import time

import pytest

from repro.data.blackscholes import load_blackscholes_table
from repro.data.tpch import generate_tpch
from repro.engine import EngineSession
from repro.engine.storage import Database
from repro.obs import (NULL_PROFILE, AllocationProfile, Tracer,
                       chrome_trace, format_fusion_savings,
                       fusion_savings, get_profile, render_explain_analyze,
                       set_profile, use_profile, use_tracer)
from repro.obs.prof import format_bytes
from repro.workloads.bs_queries import SCALAR_QUERIES, register_bs_udfs
from repro.workloads.tpch_queries import (PLAIN_QUERIES, UDF_QUERIES,
                                          register_tpch_udfs)

TPCH_SCALE = 0.002
BS_ROWS = 4_000


@pytest.fixture(scope="module")
def tpch_db():
    return generate_tpch(scale_factor=TPCH_SCALE)


@pytest.fixture(scope="module")
def bs_db():
    db = Database()
    load_blackscholes_table(db, BS_ROWS)
    return db


def profile_query(db, sql, *, backend, opt_level, register=None,
                  n_threads=1):
    """Run one query in an isolated session with a fresh profile."""
    profile = AllocationProfile()
    with EngineSession(db, profile=profile,
                       default_backend=backend) as session:
        if register is not None:
            register(session)
        result = session.run_sql(sql, opt_level=opt_level,
                                 backend=backend, n_threads=n_threads)
    return profile, result


def naive_vs_opt(db, sql, register=None, n_threads=1):
    naive, _ = profile_query(db, sql, backend="interp",
                             opt_level="naive", register=register,
                             n_threads=n_threads)
    opt, _ = profile_query(db, sql, backend="pygen", opt_level="opt",
                           register=register, n_threads=n_threads)
    return naive, opt


class TestAllocationProfile:
    def test_record_totals_and_sites(self):
        profile = AllocationProfile()
        profile.record(100, site="interp:a")
        profile.record(50, site="interp:a")
        profile.record(8, site="kernel:_k0", count=3)
        assert profile.bytes_allocated == 158
        assert profile.intermediates_materialized == 5
        assert profile.sites["interp:a"] == [2, 150]
        assert profile.sites["kernel:_k0"] == [3, 8]

    def test_builtin_breakdown_does_not_touch_the_total(self):
        profile = AllocationProfile()
        profile.record_builtin("mul", 400)
        profile.record_builtin("mul", 100)
        assert profile.bytes_allocated == 0
        assert profile.intermediates_materialized == 0
        assert profile.builtins["mul"] == [2, 500]

    def test_peak_is_a_high_water_mark(self):
        profile = AllocationProfile()
        profile.update_peak(10)
        profile.update_peak(500)
        profile.update_peak(20)
        assert profile.peak_bytes == 500

    def test_to_dict_round_trips_through_json(self):
        profile = AllocationProfile()
        profile.record(64, site="interp:x")
        profile.record_builtin("sum", 64)
        profile.update_peak(128)
        payload = json.loads(json.dumps(profile.to_dict()))
        assert payload["bytes_allocated"] == 64
        assert payload["peak_bytes"] == 128
        assert payload["sites"]["interp:x"] == {"count": 1, "bytes": 64}
        assert payload["builtins"]["sum"] == {"count": 1, "bytes": 64}

    def test_reset_zeroes_everything(self):
        profile = AllocationProfile()
        profile.record(64, site="interp:x")
        profile.update_peak(64)
        profile.reset()
        assert profile.bytes_allocated == 0
        assert profile.peak_bytes == 0
        assert profile.sites == {}

    def test_null_profile_is_inert(self):
        NULL_PROFILE.record(1000, site="x")
        NULL_PROFILE.record_builtin("mul", 1000)
        NULL_PROFILE.update_peak(1000)
        assert NULL_PROFILE.bytes_allocated == 0
        assert NULL_PROFILE.counters() == (0, 0)
        assert not NULL_PROFILE.enabled
        assert NULL_PROFILE.to_dict()["bytes_allocated"] == 0

    def test_ambient_slot_installs_and_restores(self):
        assert get_profile() is NULL_PROFILE
        profile = AllocationProfile()
        with use_profile(profile):
            assert get_profile() is profile
        assert get_profile() is NULL_PROFILE
        set_profile(profile)
        try:
            assert get_profile() is profile
        finally:
            set_profile(None)
        assert get_profile() is NULL_PROFILE

    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(1536) == "1.5KiB"
        assert format_bytes(3 << 20) == "3.0MiB"
        assert format_bytes(2 << 30) == "2.0GiB"


class TestParityInvariant:
    """The paper's claim as an assertion: the optimized pipeline never
    materializes more bytes than naive execution of the same query."""

    @pytest.mark.parametrize("name", sorted(PLAIN_QUERIES))
    def test_tpch_plain(self, tpch_db, name):
        naive, opt = naive_vs_opt(tpch_db, PLAIN_QUERIES[name])
        assert naive.bytes_allocated > 0
        assert opt.bytes_allocated <= naive.bytes_allocated, name

    @pytest.mark.parametrize("name", sorted(UDF_QUERIES))
    def test_tpch_udf(self, tpch_db, name):
        naive, opt = naive_vs_opt(tpch_db, UDF_QUERIES[name],
                                  register=register_tpch_udfs)
        assert naive.bytes_allocated > 0
        assert opt.bytes_allocated <= naive.bytes_allocated, name

    @pytest.mark.parametrize("name", ["bs0_base", "bs1_med", "bs3_med"])
    def test_blackscholes(self, bs_db, name):
        naive, opt = naive_vs_opt(bs_db, SCALAR_QUERIES[name],
                                  register=register_bs_udfs)
        assert naive.bytes_allocated > 0
        assert opt.bytes_allocated <= naive.bytes_allocated, name

    def test_multithreaded_kernels_charge_like_serial(self, tpch_db):
        serial, _ = profile_query(tpch_db, UDF_QUERIES["q6"],
                                  backend="pygen", opt_level="opt",
                                  register=register_tpch_udfs)
        threaded, _ = profile_query(tpch_db, UDF_QUERIES["q6"],
                                    backend="pygen", opt_level="opt",
                                    register=register_tpch_udfs,
                                    n_threads=2)
        assert threaded.bytes_allocated == serial.bytes_allocated
        assert (threaded.intermediates_materialized
                == serial.intermediates_materialized)


class TestFusionSavings:
    def test_q6_udf_eliminates_intermediates(self, tpch_db):
        """The acceptance criterion: on Q6+UDF the fused pipeline
        allocates strictly fewer bytes than naive and eliminates at
        least one intermediate."""
        naive, opt = naive_vs_opt(tpch_db, UDF_QUERIES["q6"],
                                  register=register_tpch_udfs)
        savings = fusion_savings(naive, opt)
        assert savings.opt_bytes < savings.naive_bytes
        assert savings.intermediates_eliminated >= 1
        assert (opt.intermediates_materialized
                < naive.intermediates_materialized)
        assert 0.0 < savings.bytes_ratio < 1.0

    def test_report_text(self, tpch_db):
        naive, opt = naive_vs_opt(tpch_db, UDF_QUERIES["q6"],
                                  register=register_tpch_udfs)
        text = format_fusion_savings(fusion_savings(naive, opt),
                                     title="q6_udf")
        assert "q6_udf" in text
        assert "intermediates eliminated" in text
        assert "bytes allocated" in text

    def test_savings_dict_is_consistent(self):
        naive = AllocationProfile()
        naive.record(1000, count=10)
        naive.update_peak(800)
        opt = AllocationProfile()
        opt.record(300, count=3)
        opt.update_peak(400)
        payload = fusion_savings(naive, opt).to_dict()
        assert payload["bytes_saved"] == 700
        assert payload["intermediates_eliminated"] == 7
        assert payload["bytes_ratio"] == pytest.approx(0.3)


class TestRenderIntegration:
    def test_explain_analyze_shows_alloc_columns_when_profiling(
            self, tpch_db):
        tracer = Tracer()
        profile = AllocationProfile()
        with EngineSession(tpch_db, tracer=tracer,
                           profile=profile) as session:
            register_tpch_udfs(session)
            session.run_sql(UDF_QUERIES["q6"])
        rendered = render_explain_analyze(tracer.last_root())
        assert "alloc=" in rendered
        assert "peak=" in rendered

    def test_explain_analyze_unchanged_without_profiling(self, tpch_db):
        tracer = Tracer()
        with EngineSession(tpch_db, tracer=tracer) as session:
            register_tpch_udfs(session)
            session.run_sql(UDF_QUERIES["q6"])
        rendered = render_explain_analyze(tracer.last_root())
        assert "alloc=" not in rendered
        assert "peak=" not in rendered

    def test_chrome_trace_gains_memory_counter_track(self, tpch_db):
        tracer = Tracer()
        profile = AllocationProfile()
        with EngineSession(tpch_db, tracer=tracer,
                           profile=profile) as session:
            register_tpch_udfs(session)
            session.run_sql(UDF_QUERIES["q6"])
        events = chrome_trace(tracer.roots)["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "no memory counter samples"
        assert all(e["name"] == "allocated bytes" for e in counters)
        totals = [e["args"]["allocated"] for e in counters]
        assert totals == sorted(totals)  # running total, monotonic
        assert totals[-1] == profile.bytes_allocated

    def test_chrome_trace_unchanged_without_profiling(self, tpch_db):
        tracer = Tracer()
        with EngineSession(tpch_db, tracer=tracer) as session:
            register_tpch_udfs(session)
            session.run_sql(UDF_QUERIES["q6"])
        events = chrome_trace(tracer.roots)["traceEvents"]
        spans = sum(1 for _ in tracer.roots[0].walk())
        assert all(e["ph"] == "X" for e in events)
        assert len(events) == spans


class TestSessionMetrics:
    def test_prof_metrics_recorded_per_query(self, tpch_db):
        profile = AllocationProfile()
        with EngineSession(tpch_db, profile=profile) as session:
            register_tpch_udfs(session)
            session.run_sql(UDF_QUERIES["q6"])
            snapshot = session.metrics.snapshot()
        assert (snapshot["prof.bytes_allocated"]
                == profile.bytes_allocated)
        assert (snapshot["prof.intermediates_materialized"]
                == profile.intermediates_materialized)
        assert snapshot["prof.peak_bytes"] == profile.peak_bytes
        hist = snapshot["prof.query_bytes"]
        assert hist["count"] == 1
        assert hist["sum"] == profile.bytes_allocated
        # Byte-scale buckets: the observation lands in a bucket instead
        # of overflowing a seconds-scale histogram.
        assert sum(hist["buckets"].values()) == 1

    def test_no_prof_metrics_without_profiling(self, tpch_db):
        with EngineSession(tpch_db) as session:
            register_tpch_udfs(session)
            session.run_sql(UDF_QUERIES["q6"])
            snapshot = session.metrics.snapshot()
        assert not any(name.startswith("prof.") for name in snapshot)

    def test_ambient_use_profile_reaches_facade_queries(self, tpch_db):
        from repro.horsepower import HorsePowerSystem
        from repro.sql.udf import UDFRegistry

        hp = HorsePowerSystem(tpch_db, UDFRegistry())
        register_tpch_udfs(hp)
        profile = AllocationProfile()
        with use_profile(profile):
            hp.run_sql(UDF_QUERIES["q6"], use_cache=False)
        assert profile.bytes_allocated > 0


class TestDisabledOverhead:
    def test_noop_profile_site_cost(self):
        """A disabled charge site is one ``.enabled`` attribute read;
        the same loose 10µs bar as the tracer's no-op smoke test."""
        loops = 50_000
        profile = NULL_PROFILE
        start = time.perf_counter()
        for _ in range(loops):
            if profile.enabled:
                profile.record(0)
        per_site = (time.perf_counter() - start) / loops
        assert per_site < 10e-6

    def test_disabled_by_default_everywhere(self, tpch_db):
        """With no profile installed, a full query leaves the ambient
        NULL_PROFILE untouched (nothing charged anywhere)."""
        with EngineSession(tpch_db) as session:
            register_tpch_udfs(session)
            session.run_sql(UDF_QUERIES["q6"])
        assert get_profile() is NULL_PROFILE
        assert NULL_PROFILE.bytes_allocated == 0

"""Span/tracer semantics: nesting, error paths, threading, no-op cost."""

import threading
import time

import pytest

from repro.obs import (NULL_TRACER, NullTracer, Tracer, get_tracer,
                       set_tracer, use_tracer)


class TestSpanTree:
    def test_nesting_builds_parent_child_structure(self):
        tracer = Tracer()
        with tracer.span("query") as query:
            with tracer.span("prepare") as prepare:
                with tracer.span("parse"):
                    pass
                with tracer.span("plan"):
                    pass
            with tracer.span("execute"):
                pass
        assert tracer.roots == [query]
        assert [c.name for c in query.children] == ["prepare", "execute"]
        assert [c.name for c in prepare.children] == ["parse", "plan"]
        assert prepare.parent is query
        assert query.parent is None

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.roots] == ["a", "b"]
        assert tracer.last_root().name == "b"

    def test_span_times_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", label="x") as span:
            time.sleep(0.01)
            span.set(rows=7)
            span.add("count")
            span.add("count", 2)
        assert span.seconds >= 0.01
        assert span.attrs == {"label": "x", "rows": 7, "count": 3}
        assert span.thread_id == threading.get_ident()

    def test_exception_inside_span_still_closes_it(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        outer = tracer.last_root()
        assert outer.name == "outer"
        inner = outer.children[0]
        assert inner.end >= inner.start > 0
        assert inner.attrs["error"] == "ValueError: boom"
        assert outer.attrs["error"] == "ValueError: boom"
        # The contextvar unwound: new spans are roots again.
        assert tracer.current() is None
        with tracer.span("after"):
            pass
        assert tracer.last_root().name == "after"

    def test_explicit_parent_across_threads(self):
        tracer = Tracer()
        with tracer.span("kernel") as kernel:
            def chunk(index):
                with tracer.span("chunk", parent=kernel, index=index):
                    pass
            threads = [threading.Thread(target=chunk, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(kernel.children) == 4
        assert {c.attrs["index"] for c in kernel.children} == {0, 1, 2, 3}
        assert all(c.name == "chunk" for c in kernel.children)
        # Worker spans carry their own thread ids.
        assert all(c.thread_id != kernel.thread_id
                   for c in kernel.children)

    def test_walk_and_all_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert [s.name for s in tracer.all_spans()] == ["a", "b", "c"]

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.last_root() is None


class TestGlobalTracer:
    def test_default_is_null(self):
        assert isinstance(get_tracer(), NullTracer)
        assert not get_tracer().enabled

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_tracer(Tracer()):
                raise RuntimeError
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_null(self):
        set_tracer(Tracer())
        try:
            assert get_tracer().enabled
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER


class TestNullTracer:
    def test_null_span_is_shared_and_inert(self):
        first = NULL_TRACER.span("a", rows=1)
        second = NULL_TRACER.span("b")
        assert first is second
        with first as span:
            span.set(x=1)
            span.add("y")
        assert span.attrs == {}
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.all_spans() == []
        assert NULL_TRACER.current() is None

    def test_null_span_swallows_exceptions_like_a_real_span(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("x"):
                raise ValueError

    def test_noop_overhead_smoke(self):
        """A disabled span site must cost well under 10µs (the real
        figure is ~0.2µs; the loose bar keeps slow CI green while still
        catching accidental allocation or formatting on the no-op
        path)."""
        loops = 50_000
        span = NULL_TRACER.span
        start = time.perf_counter()
        for _ in range(loops):
            with span("site"):
                pass
        per_site = (time.perf_counter() - start) / loops
        assert per_site < 10e-6

"""Metrics registry behavior, thread safety, and pool instrumentation."""

import logging
import threading
import time

import pytest

from repro.core.execpool import ExecutorPool
from repro.obs import MetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


class TestInstruments:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set_max(3)
        assert gauge.value == 5
        gauge.set_max(9)
        assert gauge.value == 9

    def test_histogram(self):
        hist = Histogram("h")
        for value in (0.0005, 0.005, 0.005, 2.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.min == 0.0005
        assert hist.max == 2.0
        assert hist.mean == pytest.approx((0.0005 + 0.01 + 2.0) / 4)
        snap = hist._snapshot()
        assert snap["buckets"]["le_0.001"] == 1
        assert snap["buckets"]["le_0.01"] == 2
        assert snap["buckets"]["le_10"] == 1

    def test_histogram_overflow_accounting(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        bounds, buckets, overflow, count, total = hist.bucket_state()
        assert bounds == (1.0, 10.0)
        assert buckets == (1, 1)
        assert overflow == 2
        assert sum(buckets) + overflow == count == 4
        assert total == pytest.approx(555.5)
        snap = hist._snapshot()
        assert snap["buckets"]["le_inf"] == 2

    def test_histogram_snapshot_omits_empty_overflow(self):
        """Snapshots without overflow stay byte-identical to the
        pre-overflow-bucket format."""
        hist = Histogram("h", bounds=(1.0, 10.0))
        hist.observe(0.5)
        assert "le_inf" not in hist._snapshot()["buckets"]

    def test_histogram_reset_clears_overflow(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(99.0)
        assert hist.bucket_state()[2] == 1
        hist._reset()
        assert hist.bucket_state() == ((1.0,), (0,), 0, 0, 0.0)

    def test_registry_get_or_create_and_kind_conflict(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_flat_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.size").set(4)
        registry.histogram("c.seconds").observe(0.5)
        snap = registry.snapshot()
        assert list(snap) == ["a.size", "b.count", "c.seconds"]
        assert snap["b.count"] == 2
        assert snap["c.seconds"]["count"] == 1

    def test_reset_zeroes_in_place_keeping_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        hist = registry.histogram("h")
        counter.inc(5)
        hist.observe(1.0)
        registry.reset()
        assert registry.counter("x") is counter
        assert counter.value == 0
        assert hist.count == 0 and hist.min is None
        counter.inc()
        assert registry.counter("x").value == 1


class TestThreadSafety:
    def test_counter_increments_under_pool_workers_are_exact(self):
        """A registry is shared by every pool worker; concurrent
        increments through the pool must not lose updates."""
        registry = MetricsRegistry()
        counter = registry.counter("hammer")
        hist = registry.histogram("hammer.seconds")
        with ExecutorPool(metrics=registry) as pool:
            executor = pool.get(8)

            def hammer(index):
                for _ in range(500):
                    counter.inc()
                    hist.observe(index * 1e-6)

            list(executor.map(hammer, range(16)))
        assert counter.value == 16 * 500
        assert hist.count == 16 * 500

    def test_concurrent_instrument_creation_yields_one_instance(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            seen.append(registry.counter("contended"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(instrument is seen[0] for instrument in seen)


class TestPoolInstrumentation:
    """Pools carry their own telemetry: each test builds a private
    ``ExecutorPool`` over a private registry, so nothing here touches —
    or needs to reset — process state."""

    def test_pool_metrics_recorded(self):
        metrics = MetricsRegistry()
        with ExecutorPool(max_workers=4, metrics=metrics) as pool:
            executor = pool.get(4)
            assert list(executor.map(lambda v: v + 1, range(10))) == \
                list(range(1, 11))
        assert metrics.counter("pool.tasks_submitted").value == 10
        assert metrics.counter("pool.tasks_completed").value == 10
        assert metrics.counter("pool.task_seconds_total").value > 0
        assert metrics.gauge("pool.size").value == 4
        assert metrics.gauge("pool.peak_concurrent_tasks").value >= 1

    def test_submit_is_instrumented_too(self):
        metrics = MetricsRegistry()
        with ExecutorPool(metrics=metrics) as pool:
            future = pool.get(2).submit(lambda: 41 + 1)
            assert future.result() == 42
        assert metrics.counter("pool.tasks_completed").value == 1

    def test_slow_worker_wait_warns_once_per_pool(self, caplog):
        """A task waiting >100ms for a worker logs one warning per
        *pool* (and counts every occurrence in the pool's registry)."""
        metrics = MetricsRegistry()
        with ExecutorPool(max_workers=1, metrics=metrics) as pool:
            executor = pool.get(1)
            with caplog.at_level(logging.WARNING,
                                 logger="repro.obs.execpool"):
                # One worker, two 120ms tasks: the second waits >100ms.
                list(executor.map(lambda _: time.sleep(0.12), range(2)))
                list(executor.map(lambda _: time.sleep(0.12), range(2)))
        records = [r for r in caplog.records
                   if "waited" in r.getMessage()]
        assert len(records) == 1
        assert metrics.counter("pool.wait_warnings").value >= 2

    def test_wait_warning_state_is_per_pool_not_per_process(self, caplog):
        """A second saturated pool warns again — the once-only latch
        lives in the pool's telemetry, not in module globals."""
        def saturate(pool):
            executor = pool.get(1)
            with caplog.at_level(logging.WARNING,
                                 logger="repro.obs.execpool"):
                list(executor.map(lambda _: time.sleep(0.12), range(2)))

        with ExecutorPool(max_workers=1,
                          metrics=MetricsRegistry()) as pool:
            saturate(pool)
        with ExecutorPool(max_workers=1,
                          metrics=MetricsRegistry()) as pool:
            saturate(pool)
        records = [r for r in caplog.records
                   if "waited" in r.getMessage()]
        assert len(records) == 2

    def test_instrumented_executor_delegates_introspection(self):
        with ExecutorPool() as pool:
            executor = pool.get(2)
            assert executor._shutdown is False  # ThreadPoolExecutor attr

    def test_close_is_idempotent_across_owners(self):
        """Several owners (session, fixture, atexit hook) may each close
        the same pool; every close after the first is a no-op."""
        pool = ExecutorPool(metrics=MetricsRegistry())
        assert pool.get(2).submit(lambda: 1).result() == 1
        pool.close()
        pool.close()
        with pool:      # context-manager exit closes a third time
            pass
        assert pool.closed
        with pytest.raises(RuntimeError):
            pool.get(2)

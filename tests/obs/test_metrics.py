"""Metrics registry behavior, thread safety, and pool instrumentation."""

import logging
import threading
import time

import pytest

from repro.core import execpool
from repro.core.execpool import (ExecutorPool, close_shared_pool,
                                 get_pool, shared_pool)
from repro.obs import MetricsRegistry, global_metrics
from repro.obs.metrics import Counter, Gauge, Histogram


class TestInstruments:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set_max(3)
        assert gauge.value == 5
        gauge.set_max(9)
        assert gauge.value == 9

    def test_histogram(self):
        hist = Histogram("h")
        for value in (0.0005, 0.005, 0.005, 2.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.min == 0.0005
        assert hist.max == 2.0
        assert hist.mean == pytest.approx((0.0005 + 0.01 + 2.0) / 4)
        snap = hist._snapshot()
        assert snap["buckets"]["le_0.001"] == 1
        assert snap["buckets"]["le_0.01"] == 2
        assert snap["buckets"]["le_10"] == 1

    def test_registry_get_or_create_and_kind_conflict(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_flat_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.size").set(4)
        registry.histogram("c.seconds").observe(0.5)
        snap = registry.snapshot()
        assert list(snap) == ["a.size", "b.count", "c.seconds"]
        assert snap["b.count"] == 2
        assert snap["c.seconds"]["count"] == 1

    def test_reset_zeroes_in_place_keeping_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        hist = registry.histogram("h")
        counter.inc(5)
        hist.observe(1.0)
        registry.reset()
        assert registry.counter("x") is counter
        assert counter.value == 0
        assert hist.count == 0 and hist.min is None
        counter.inc()
        assert registry.counter("x").value == 1


class TestThreadSafety:
    def test_counter_increments_under_shared_pool_are_exact(self):
        """The registry is shared by every pool worker; concurrent
        increments through the process pool must not lose updates."""
        close_shared_pool()
        try:
            registry = MetricsRegistry()
            counter = registry.counter("hammer")
            hist = registry.histogram("hammer.seconds")
            pool = shared_pool().get(8)

            def hammer(index):
                for _ in range(500):
                    counter.inc()
                    hist.observe(index * 1e-6)

            list(pool.map(hammer, range(16)))
            assert counter.value == 16 * 500
            assert hist.count == 16 * 500
        finally:
            close_shared_pool()

    def test_concurrent_instrument_creation_yields_one_instance(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            seen.append(registry.counter("contended"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(instrument is seen[0] for instrument in seen)


class TestPoolInstrumentation:
    def test_pool_metrics_recorded(self):
        close_shared_pool()
        try:
            metrics = global_metrics()
            submitted_before = metrics.counter(
                "pool.tasks_submitted").value
            completed_before = metrics.counter(
                "pool.tasks_completed").value
            seconds_before = metrics.counter(
                "pool.task_seconds_total").value
            pool = get_pool(4)
            assert list(pool.map(lambda v: v + 1, range(10))) == \
                list(range(1, 11))
            assert metrics.counter("pool.tasks_submitted").value \
                == submitted_before + 10
            assert metrics.counter("pool.tasks_completed").value \
                == completed_before + 10
            assert metrics.counter("pool.task_seconds_total").value \
                > seconds_before
            assert metrics.gauge("pool.size").value >= 4
            assert metrics.gauge("pool.peak_concurrent_tasks").value >= 1
        finally:
            close_shared_pool()

    def test_submit_is_instrumented_too(self):
        close_shared_pool()
        try:
            metrics = global_metrics()
            before = metrics.counter("pool.tasks_completed").value
            future = get_pool(2).submit(lambda: 41 + 1)
            assert future.result() == 42
            assert metrics.counter("pool.tasks_completed").value \
                == before + 1
        finally:
            close_shared_pool()

    def test_slow_worker_wait_warns_once(self, caplog, monkeypatch):
        """A task waiting >100ms for a worker logs one warning per
        process (and counts every occurrence in the registry)."""
        monkeypatch.setattr(execpool, "_wait_warned", False)
        warnings_before = global_metrics().counter(
            "pool.wait_warnings").value
        with ExecutorPool(max_workers=1) as pool:
            executor = pool.get(1)
            with caplog.at_level(logging.WARNING,
                                 logger="repro.obs.execpool"):
                # One worker, two 120ms tasks: the second waits >100ms.
                list(executor.map(lambda _: time.sleep(0.12), range(2)))
                list(executor.map(lambda _: time.sleep(0.12), range(2)))
        records = [r for r in caplog.records
                   if "waited" in r.getMessage()]
        assert len(records) == 1
        assert global_metrics().counter("pool.wait_warnings").value \
            >= warnings_before + 2

    def test_instrumented_executor_delegates_introspection(self):
        close_shared_pool()
        try:
            pool = get_pool(2)
            assert pool._shutdown is False  # ThreadPoolExecutor attr
        finally:
            close_shared_pool()

"""Renderer tests: EXPLAIN ANALYZE (golden), the estimated-plan
renderer (golden), Chrome trace round-trip, and end-to-end
instrumentation of both systems on TPC-H."""

import json
import os

import pytest

from repro.data.tpch import generate_tpch
from repro.horsepower import HorsePowerSystem, MonetDBLike
from repro.obs import (Tracer, chrome_trace, chrome_trace_json,
                       phase_coverage, render_explain_analyze,
                       render_plan, use_tracer)
from repro.sql.parser import parse_sql
from repro.sql.planner import plan_query
from repro.sql.udf import UDFRegistry
from repro.workloads.tpch_queries import (PLAIN_QUERIES, UDF_QUERIES,
                                          register_tpch_udfs)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: TPC-H generation is seeded, so plan shapes, optimizer pass effects and
#: row counts — everything the timing-free render shows — are stable.
TPCH_SCALE = 0.002


@pytest.fixture(scope="module")
def hp_system():
    db = generate_tpch(scale_factor=TPCH_SCALE)
    hp = HorsePowerSystem(db, UDFRegistry())
    register_tpch_udfs(hp)
    return hp


def _trace_query(hp, sql, **kwargs):
    tracer = Tracer()
    with use_tracer(tracer):
        hp.run_sql(sql, **kwargs)
    root = tracer.last_root()
    assert root is not None and root.name == "query"
    return tracer, root


class TestExplainAnalyze:
    def test_golden_q6_udf(self, hp_system):
        """The timing-free EXPLAIN ANALYZE tree for the Froid-style Q6
        UDF rewrite is stable run to run; regenerate the golden with
        ``python tests/obs/test_render.py`` after intentional plan or
        instrumentation changes."""
        _, root = _trace_query(hp_system, UDF_QUERIES["q6"])
        rendered = render_explain_analyze(root, timings=False)
        golden_path = os.path.join(GOLDEN_DIR,
                                   "explain_analyze_q6_udf.txt")
        with open(golden_path) as handle:
            assert rendered == handle.read().rstrip("\n")

    def test_rendered_tree_is_deterministic(self, hp_system):
        hp_system.plan_cache.invalidate()
        _, first = _trace_query(hp_system, UDF_QUERIES["q12"])
        hp_system.plan_cache.invalidate()
        _, second = _trace_query(hp_system, UDF_QUERIES["q12"])
        assert render_explain_analyze(first, timings=False) == \
            render_explain_analyze(second, timings=False)

    def test_timed_render_has_totals_and_coverage(self, hp_system):
        hp_system.plan_cache.invalidate()
        _, root = _trace_query(hp_system, UDF_QUERIES["q6"])
        rendered = render_explain_analyze(root)
        assert " ms" in rendered
        assert "-- phases cover" in rendered
        assert "%" in rendered

    def test_phase_times_cover_query_total(self, hp_system):
        """The acceptance bar is 95% coverage; assert a slightly looser
        90% here so a noisy CI scheduler cannot flake the suite."""
        hp_system.plan_cache.invalidate()
        _, root = _trace_query(hp_system, UDF_QUERIES["q6"])
        covered, total, fraction = phase_coverage(root)
        assert total > 0
        assert covered <= total * 1.001
        assert fraction > 0.90


def _estimated_plan(hp, sql):
    """Plan ``sql`` with the system's (analyzed) statistics, as
    ``run-sql --analyze --explain`` does."""
    stats = hp.stats
    return plan_query(parse_sql(sql), hp.db.catalog(), hp.udfs,
                      table_stats=stats if stats.enabled else None)


class TestExplainPlanGolden:
    """``--explain`` renderings (est_rows per operator after ANALYZE)
    for Q6 plain and the Froid-style Q6 UDF rewrite are stable: TPC-H
    generation is seeded, so histograms — and therefore every estimate
    — are deterministic at a fixed scale.  Regenerate with
    ``python tests/obs/test_render.py``."""

    @pytest.mark.parametrize("queries,golden", [
        (PLAIN_QUERIES, "explain_plan_q6.txt"),
        (UDF_QUERIES, "explain_plan_q6_udf.txt"),
    ], ids=["plain", "udf"])
    def test_golden_q6_estimated_plan(self, hp_system, queries, golden):
        hp_system.analyze()
        rendered = render_plan(_estimated_plan(hp_system,
                                               queries["q6"]))
        with open(os.path.join(GOLDEN_DIR, golden)) as handle:
            assert rendered == handle.read().rstrip("\n")

    def test_plan_without_stats_renders_without_est_rows(self,
                                                         hp_system):
        plan = plan_query(parse_sql(PLAIN_QUERIES["q6"]),
                          hp_system.db.catalog(), hp_system.udfs)
        rendered = render_plan(plan)
        assert "est_rows" not in rendered
        assert "out=[" in rendered


class TestSpanTaxonomy:
    def test_horsepower_cold_run_has_full_pipeline_spans(self, hp_system):
        hp_system.plan_cache.invalidate()
        tracer, root = _trace_query(hp_system, UDF_QUERIES["q6"])
        names = {span.name for span in tracer.all_spans()}
        for expected in ("query", "prepare", "parse", "plan",
                         "translate", "compile", "optimize", "codegen",
                         "pass:inline", "execute"):
            assert expected in names, expected
        assert any(name.startswith("kernel:") for name in names)

    def test_warm_run_skips_compile_spans(self, hp_system):
        hp_system.plan_cache.invalidate()
        _trace_query(hp_system, UDF_QUERIES["q6"])  # cold, fills cache
        tracer, root = _trace_query(hp_system, UDF_QUERIES["q6"])
        names = {span.name for span in tracer.all_spans()}
        assert "compile" not in names and "parse" not in names
        prepare = next(s for s in root.children if s.name == "prepare")
        assert prepare.attrs["cached"] is True

    def test_monetdb_baseline_traces_are_comparable(self, hp_system):
        mdb = MonetDBLike(hp_system.db, hp_system.udfs)
        tracer = Tracer()
        with use_tracer(tracer):
            mdb.run_sql(UDF_QUERIES["q6"])
        root = tracer.last_root()
        assert root.name == "query"
        assert root.attrs["system"] == "monetdb"
        names = {span.name for span in tracer.all_spans()}
        assert {"parse", "plan", "execute"} <= names
        assert any(name.startswith("op:") for name in names)
        scan = next(s for s in tracer.all_spans()
                    if s.name == "op:Scan")
        assert scan.attrs["rows_out"] > 0


class TestChromeTrace:
    def test_round_trip_is_valid_json_with_required_keys(self, hp_system):
        hp_system.plan_cache.invalidate()
        tracer, _ = _trace_query(hp_system, UDF_QUERIES["q6"],
                                 n_threads=2)
        payload = json.loads(chrome_trace_json(tracer.roots))
        events = payload["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["name"]
            assert "tid" in event and "pid" in event

    def test_event_count_matches_span_count(self, hp_system):
        tracer, _ = _trace_query(hp_system, UDF_QUERIES["q14"])
        payload = chrome_trace(tracer.roots)
        assert len(payload["traceEvents"]) == len(tracer.all_spans())

    def test_args_carry_span_attributes(self, hp_system):
        tracer, _ = _trace_query(hp_system, UDF_QUERIES["q6"])
        payload = chrome_trace(tracer.roots)
        query = next(e for e in payload["traceEvents"]
                     if e["name"] == "query")
        assert query["args"]["system"] == "horsepower"


def _regenerate_golden() -> None:
    db = generate_tpch(scale_factor=TPCH_SCALE)
    hp = HorsePowerSystem(db, UDFRegistry())
    register_tpch_udfs(hp)
    _, root = _trace_query(hp, UDF_QUERIES["q6"])
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    path = os.path.join(GOLDEN_DIR, "explain_analyze_q6_udf.txt")
    with open(path, "w") as handle:
        handle.write(render_explain_analyze(root, timings=False) + "\n")
    print(f"wrote {path}")
    hp.analyze()
    for queries, name in ((PLAIN_QUERIES, "explain_plan_q6.txt"),
                          (UDF_QUERIES, "explain_plan_q6_udf.txt")):
        path = os.path.join(GOLDEN_DIR, name)
        with open(path, "w") as handle:
            handle.write(render_plan(_estimated_plan(hp, queries["q6"]))
                         + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    _regenerate_golden()

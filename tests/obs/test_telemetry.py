"""Session telemetry: query log, flight recorder, diagnostics bundles,
and the Prometheus scrape endpoint (PR 7)."""

import io
import json
import re
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.engine import EngineSession, default_registry
from repro.engine.storage import Database
from repro.errors import HorseRuntimeError, QueryTimeout
from repro.obs import (FlightRecorder, MetricsRegistry, QueryLog,
                       SessionTelemetry, Tracer, use_tracer)
from repro.obs.render import render_explain_analyze
from repro.obs.telemetry import (QUERY_LOG_FIELDS, phase_seconds,
                                 sql_fingerprint)


def make_db(rows=100, seed=0):
    rng = np.random.default_rng(seed)
    db = Database()
    db.create_table("t", {
        "x": rng.random(rows),
        "y": rng.random(rows),
    })
    return db


SQL = "SELECT SUM(x * y) AS s FROM t WHERE x > 0.1"


# -- Prometheus exposition format ------------------------------------------


def parse_prometheus(text: str) -> dict:
    """A deliberately strict mini-parser for the text exposition
    format: returns ``{metric_name: {"type": ..., "samples": [(labels,
    value), ...]}}`` and asserts the structural invariants a real
    scraper relies on."""
    metrics: dict = {}
    current = None
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if line.startswith("# HELP "):
            name = line.split()[2]
            assert name not in metrics, f"duplicate HELP for {name}"
            metrics[name] = {"type": None, "samples": []}
            current = name
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(maxsplit=3)
            assert name == current, "TYPE must follow its HELP"
            assert kind in ("counter", "gauge", "histogram")
            metrics[name]["type"] = kind
        else:
            match = re.fullmatch(
                r'([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)', line)
            assert match, f"unparseable sample line: {line!r}"
            name, labels, value = match.groups()
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            owner = name if name in metrics else base
            assert owner in metrics, f"sample {name} before its HELP"
            metrics[owner]["samples"].append(
                (name, labels, float(value)))
    return metrics


class TestPrometheusExport:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("query.count").inc(3)
        registry.gauge("pool.workers").set(4)
        hist = registry.histogram("query.seconds")
        for value in (1e-5, 0.002, 0.002, 0.5, 99.0):  # 99 overflows
            hist.observe(value)
        return registry

    def test_help_and_type_for_every_metric(self):
        metrics = parse_prometheus(self.make_registry().to_prometheus())
        assert set(metrics) == {"query_count", "pool_workers",
                                "query_seconds"}
        assert metrics["query_count"]["type"] == "counter"
        assert metrics["pool_workers"]["type"] == "gauge"
        assert metrics["query_seconds"]["type"] == "histogram"

    def test_names_are_sanitized(self):
        text = self.make_registry().to_prometheus()
        for line in text.splitlines():
            if not line.startswith("#"):
                name = line.split("{")[0].split()[0]
                assert "." not in name
                assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name)

    def test_counter_and_gauge_values(self):
        metrics = parse_prometheus(self.make_registry().to_prometheus())
        assert metrics["query_count"]["samples"] == [
            ("query_count", None, 3.0)]
        assert metrics["pool_workers"]["samples"] == [
            ("pool_workers", None, 4.0)]

    def test_histogram_buckets_cumulative_and_inf_equals_count(self):
        metrics = parse_prometheus(self.make_registry().to_prometheus())
        samples = metrics["query_seconds"]["samples"]
        buckets = [(labels, value) for name, labels, value in samples
                   if name == "query_seconds_bucket"]
        values = [value for _, value in buckets]
        assert values == sorted(values), "buckets must be cumulative"
        assert buckets[-1][0] == 'le="+Inf"'
        count = [value for name, _, value in samples
                 if name == "query_seconds_count"][0]
        assert buckets[-1][1] == count == 5
        # The overflow observation (99.0) is only in +Inf: the last
        # finite bucket holds the 4 in-range observations.
        assert buckets[-2][1] == 4
        total = [value for name, _, value in samples
                 if name == "query_seconds_sum"][0]
        assert total == pytest.approx(1e-5 + 0.002 + 0.002 + 0.5 + 99.0)

    def test_leading_digit_names_get_prefixed(self):
        registry = MetricsRegistry()
        registry.counter("99th.latency").inc()
        metrics = parse_prometheus(registry.to_prometheus())
        assert "_99th_latency" in metrics

    def test_session_scrape_contains_query_metrics(self):
        with EngineSession(make_db()) as session:
            session.run_sql(SQL)
            metrics = parse_prometheus(session.metrics.to_prometheus())
        assert metrics["query_count"]["samples"][0][2] == 1.0
        assert metrics["query_seconds"]["type"] == "histogram"


# -- query log --------------------------------------------------------------


class TestQueryLog:
    def test_jsonl_schema_and_monotonic_ids(self):
        sink = io.StringIO()
        with EngineSession(make_db(), query_log=sink) as session:
            session.run_sql(SQL)
            session.run_sql(SQL)
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        for record in records:
            assert tuple(record) == QUERY_LOG_FIELDS
            assert record["fingerprint"] == sql_fingerprint(SQL)
            assert record["outcome"] == "ok"
            assert record["backend"] == "pygen"
            assert record["rows"] == 1
            assert record["wall_seconds"] > 0
            assert "execute" in record["phases"]
        assert [r["query_id"] for r in records] == [1, 2]
        # First run compiles, second hits the plan cache.
        assert [r["cache_hit"] for r in records] == [False, True]

    def test_slow_threshold_marks_records(self):
        sink = io.StringIO()
        with EngineSession(make_db(), query_log=sink) as session:
            session.configure_telemetry(slow_query_ms=0.0)
            session.run_sql(SQL)
            assert session.metrics.counter(
                "telemetry.slow_queries").value == 1
        record = json.loads(sink.getvalue().splitlines()[0])
        assert record["slow"] is True

    def test_sampling_is_deterministic(self):
        sink = io.StringIO()
        log = QueryLog(sink, sample_rate=0.5)
        for i in range(10):
            log.emit({"query_id": i, "outcome": "ok", "slow": False})
        assert log.emitted == 5
        assert log.sampled_out == 5
        kept = [json.loads(line)["query_id"]
                for line in sink.getvalue().splitlines()]
        assert kept == [1, 3, 5, 7, 9]

    def test_errors_and_slow_bypass_sampling(self):
        sink = io.StringIO()
        log = QueryLog(sink, sample_rate=0.01)
        log.emit({"outcome": "timeout", "slow": False})
        log.emit({"outcome": "ok", "slow": True})
        assert log.emitted == 2

    def test_sample_rate_validation(self):
        with pytest.raises(ValueError):
            QueryLog(io.StringIO(), sample_rate=0.0)
        with pytest.raises(ValueError):
            QueryLog(io.StringIO(), sample_rate=1.5)

    def test_path_sink_owned_and_closed(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with EngineSession(make_db(), query_log=path) as session:
            session.run_sql(SQL)
        record = json.loads(path.read_text().splitlines()[0])
        assert record["query_id"] == 1
        assert session.telemetry.query_log._stream is None

    def test_long_sql_truncated_but_fingerprint_full(self):
        sink = io.StringIO()
        log_record = None
        padding = " " * 2000  # collapses in the fingerprint
        sql = SQL + padding + "-- " + "x" * 2000
        fingerprint = sql_fingerprint(sql)
        telemetry = SessionTelemetry()
        telemetry.configure(query_log=QueryLog(sink))
        log_record = telemetry.begin_query(
            sql, backend="pygen", opt_level="opt", n_threads=1)
        assert len(log_record["sql"]) <= 501
        assert log_record["fingerprint"] == fingerprint


# -- flight recorder and diagnostics ---------------------------------------


class TestFlightRecorder:
    def test_capacity_bound_keeps_newest(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record({"query_id": i})
        assert len(recorder) == 3
        assert [r["query_id"] for r in recorder.records()] == [7, 8, 9]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_session_records_without_query_log(self):
        with EngineSession(make_db()) as session:
            session.configure_telemetry(flight_recorder=8)
            session.run_sql(SQL)
            records = session.telemetry.recorder.records()
        assert len(records) == 1
        assert records[0]["outcome"] == "ok"


class _FailState:
    def __init__(self):
        self.failures = 0


def _flaky_registry(fail_state):
    """A backend that fails at runtime and declares pygen as fallback
    (same shape as the governor test's degradation scenario)."""
    registry = default_registry()
    pygen = registry.get("pygen")

    class FlakyBackend(type(pygen)):
        name = "flaky"
        description = "fails at runtime; falls back to pygen"
        fallback = "pygen"

        def execute(self, program, ctx, **kwargs):
            fail_state.failures += 1
            raise HorseRuntimeError("kernel blew up at runtime")

    registry.register(FlakyBackend())
    return registry


class TestDiagnostics:
    BUNDLE_FILES = ("record.json", "span_tree.txt", "metrics.json",
                    "profile.json", "backends.json", "env.json",
                    "flight_records.jsonl")

    def test_timeout_dumps_automatic_bundle(self, tmp_path):
        sink = io.StringIO()
        with EngineSession(make_db(rows=10_000),
                           query_log=sink) as session:
            session.configure_telemetry(diagnostics_dir=tmp_path)
            with pytest.raises(QueryTimeout):
                session.run_sql(SQL, backend="interp", timeout=1e-9)
        record = json.loads(sink.getvalue().splitlines()[0])
        assert record["outcome"] == "timeout"
        assert record["error"].startswith("QueryTimeout")
        bundles = list(tmp_path.iterdir())
        assert len(bundles) == 1
        assert bundles[0].name == "diag-q000001-timeout"
        for filename in self.BUNDLE_FILES:
            assert (bundles[0] / filename).stat().st_size > 0
        bundled = json.loads((bundles[0] / "record.json").read_text())
        assert bundled["outcome"] == "timeout"

    def test_flaky_backend_bundle_contains_retried_span(self, tmp_path):
        fail_state = _FailState()
        with EngineSession(make_db(),
                           backends=_flaky_registry(fail_state)) \
                as session:
            session.configure_telemetry(slow_query_ms=1e9)
            result = session.run_sql(SQL, backend="flaky")
            assert result.num_rows == 1
            assert fail_state.failures == 1
            bundle = session.dump_diagnostics(tmp_path)
        tree = (tmp_path / bundle.split("/")[-1] /
                "span_tree.txt").read_text()
        assert "retried_from=flaky" in tree
        record = json.loads(
            (tmp_path / bundle.split("/")[-1] /
             "record.json").read_text())
        assert record["retries"] == 1
        assert record["retried_from"] == "flaky"
        assert record["backend"] == "pygen"
        assert record["backend_requested"] == "flaky"
        assert record["outcome"] == "ok"

    def test_bundle_counts_in_flight_records(self, tmp_path):
        with EngineSession(make_db()) as session:
            session.configure_telemetry(flight_recorder=4)
            for _ in range(3):
                session.run_sql(SQL)
            session.dump_diagnostics(tmp_path)
            assert session.metrics.counter(
                "telemetry.diagnostics_bundles").value == 1
        bundle = next(tmp_path.iterdir())
        lines = (bundle / "flight_records.jsonl") \
            .read_text().splitlines()
        assert [json.loads(line)["query_id"]
                for line in lines] == [1, 2, 3]

    def test_failure_without_diagnostics_dir_writes_nothing(
            self, tmp_path):
        with EngineSession(make_db(rows=10_000)) as session:
            session.configure_telemetry(slow_query_ms=1e9)
            with pytest.raises(QueryTimeout):
                session.run_sql(SQL, backend="interp", timeout=1e-9)
        assert list(tmp_path.iterdir()) == []


# -- metrics server ---------------------------------------------------------


class TestMetricsServer:
    def test_scrape_over_http(self):
        with EngineSession(make_db()) as session:
            telemetry = session.configure_telemetry(serve_metrics=0)
            session.run_sql(SQL)
            url = telemetry.server.url
            assert url.startswith("http://127.0.0.1:")
            with urllib.request.urlopen(url) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4")
                body = response.read().decode()
            metrics = parse_prometheus(body)
            assert metrics["query_count"]["samples"][0][2] == 1.0
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    url.replace("/metrics", "/nope"))
            assert excinfo.value.code == 404
        # Session close stopped the server.
        assert session.telemetry.server is None

    def test_close_is_idempotent(self):
        telemetry = SessionTelemetry(metrics=MetricsRegistry())
        telemetry.configure(serve_metrics=0)
        server = telemetry.server
        telemetry.close()
        server.close()
        assert telemetry.server is None

    def test_serve_metrics_alone_does_not_enable_recording(self):
        telemetry = SessionTelemetry(metrics=MetricsRegistry())
        telemetry.configure(serve_metrics=0)
        try:
            assert not telemetry.enabled
        finally:
            telemetry.close()


# -- span/record provenance -------------------------------------------------


class TestRowsAttribute:
    def test_rows_rendered_when_telemetry_on(self):
        tracer = Tracer()
        with EngineSession(make_db(), tracer=tracer) as session:
            session.configure_telemetry(flight_recorder=4)
            with use_tracer(tracer):
                session.run_sql(SQL)
        text = render_explain_analyze(tracer.last_root(),
                                      timings=False)
        assert "rows=1" in text

    def test_rows_absent_when_telemetry_off(self):
        tracer = Tracer()
        with EngineSession(make_db(), tracer=tracer) as session:
            with use_tracer(tracer):
                session.run_sql(SQL)
        text = render_explain_analyze(tracer.last_root(),
                                      timings=False)
        assert "rows=" not in text


class TestHelpers:
    def test_fingerprint_collapses_whitespace(self):
        assert sql_fingerprint("SELECT  1") == \
            sql_fingerprint("SELECT\n\t1 ")
        assert sql_fingerprint("SELECT 1") != sql_fingerprint("SELECT 2")
        assert re.fullmatch(r"[0-9a-f]{16}",
                            sql_fingerprint("SELECT 1"))

    def test_phase_seconds_sums_repeated_phases(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            with tracer.span("execute"):
                pass
            with tracer.span("execute"):
                pass
            with tracer.span("irrelevant"):
                pass
        phases = phase_seconds(root)
        assert set(phases) == {"execute"}
        assert phases["execute"] >= 0
        assert phase_seconds(None) == {}

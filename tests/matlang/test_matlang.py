"""MATLAB-subset frontend tests: lexer/parser, interpreter, Tamer, and the
MATLAB→HorseIR pipeline (compiled output must match the interpreter)."""

import numpy as np
import pytest

from repro.errors import (MatlangRuntimeError, MatlangSyntaxError,
                          MatlangTypeError)
from repro.matlang import compile_matlab, matlab_to_module
from repro.matlang import ast
from repro.matlang.interp import run_matlab
from repro.matlang.parser import parse_program
from repro.matlang.tamer import tame_source

SCALE_FN = """
function y = scale(x, k)
    y = x .* k;
end
"""


class TestParser:
    def test_function_header(self):
        program = parse_program(SCALE_FN)
        fn = program.entry
        assert fn.name == "scale"
        assert fn.params == ["x", "k"]
        assert fn.output == "y"
        assert len(fn.body) == 1

    def test_multiple_functions(self):
        source = """
        function r = main(x)
            r = helper(x) + 1;
        end
        function h = helper(x)
            h = x .* 2;
        end
        """
        program = parse_program(source)
        assert [fn.name for fn in program.functions] == ["main", "helper"]

    def test_if_elseif_else(self):
        source = """
        function r = f(x)
            if x > 10
                r = 1;
            elseif x > 5
                r = 2;
            else
                r = 3;
            end
        end
        """
        fn = parse_program(source).entry
        stmt = fn.body[0]
        assert isinstance(stmt, ast.If)
        assert len(stmt.branches) == 2
        assert stmt.else_body

    def test_for_loop_is_rejected_with_guidance(self):
        source = """
        function r = f(x)
            for i = 1:10
                r = i;
            end
        end
        """
        with pytest.raises(MatlangSyntaxError, match="array operations"):
            parse_program(source)

    def test_multiple_outputs_rejected(self):
        source = """
        function [a, b] = f(x)
            a = x;
            b = x;
        end
        """
        with pytest.raises(MatlangSyntaxError, match="single value"):
            parse_program(source)

    def test_comments_and_continuations(self):
        source = """
        % leading comment
        function y = f(x)  % trailing comment
            y = x + ...
                1;
        end
        """
        program = parse_program(source)
        assert isinstance(program.entry.body[0], ast.Assign)

    def test_operator_precedence(self):
        source = """
        function y = f(a, b, c)
            y = a + b .* c;
        end
        """
        assign = parse_program(source).entry.body[0]
        assert isinstance(assign.expr, ast.BinOp)
        assert assign.expr.op == "+"
        assert assign.expr.right.op == ".*"

    def test_range_binds_looser_than_plus(self):
        source = """
        function y = f(n)
            y = 1:n-1;
        end
        """
        assign = parse_program(source).entry.body[0]
        assert isinstance(assign.expr, ast.Range)
        assert isinstance(assign.expr.stop, ast.BinOp)

    def test_matrix_literal_rows_rejected(self):
        source = """
        function y = f(x)
            y = [1, 2
                 3, 4];
        end
        """
        with pytest.raises(MatlangSyntaxError, match="row vectors"):
            parse_program(source)


class TestInterpreter:
    def test_elementwise_pipeline(self):
        result = run_matlab(SCALE_FN, np.array([1.0, 2.0, 3.0]), 2.0)
        assert np.allclose(result, [2.0, 4.0, 6.0])

    def test_logical_indexing(self):
        source = """
        function y = pick(x)
            y = x(x > 2);
        end
        """
        result = run_matlab(source, np.array([1.0, 3.0, 2.0, 5.0]))
        assert np.allclose(result, [3.0, 5.0])

    def test_numeric_indexing_is_one_based(self):
        source = """
        function y = head(x)
            y = x(1:3);
        end
        """
        result = run_matlab(source, np.array([10.0, 20.0, 30.0, 40.0]))
        assert np.allclose(result, [10.0, 20.0, 30.0])

    def test_end_in_index(self):
        source = """
        function y = tail(x)
            y = x(2:end);
        end
        """
        result = run_matlab(source, np.array([1.0, 2.0, 3.0]))
        assert np.allclose(result, [2.0, 3.0])

    def test_end_arithmetic_in_index(self):
        source = """
        function y = trim(x, n)
            y = x(1:end-n);
        end
        """
        result = run_matlab(source, np.arange(1.0, 7.0), 2.0)
        assert np.allclose(result, [1.0, 2.0, 3.0, 4.0])

    def test_vector_star_vector_guides_to_elementwise(self):
        source = """
        function y = f(a, b)
            y = a * b;
        end
        """
        with pytest.raises(MatlangRuntimeError, match="elementwise"):
            run_matlab(source, np.ones(3), np.ones(3))

    def test_user_function_call(self):
        source = """
        function r = main(x)
            r = twice(x) + 1;
        end
        function t = twice(x)
            t = x .* 2;
        end
        """
        result = run_matlab(source, np.array([1.0, 2.0]))
        assert np.allclose(result, [3.0, 5.0])

    def test_while_loop(self):
        source = """
        function total = f(n)
            total = 0;
            i = 0;
            while i < n
                total = total + i;
                i = i + 1;
            end
        end
        """
        assert run_matlab(source, 5.0) == 10.0

    def test_if_branches(self):
        source = """
        function r = f(x)
            if x > 0
                r = 1;
            elseif x < 0
                r = -1;
            else
                r = 0;
            end
        end
        """
        assert run_matlab(source, 5.0) == 1
        assert run_matlab(source, -5.0) == -1
        assert run_matlab(source, 0.0) == 0

    def test_builtins(self):
        source = """
        function r = f(x)
            r = sum(abs(x)) + max(x) - min(x) + mean(x);
        end
        """
        x = np.array([-1.0, 2.0, -3.0])
        expected = 6.0 + 2.0 - (-3.0) + np.mean(x)
        assert run_matlab(source, x) == pytest.approx(expected)

    def test_cumsum_and_concat(self):
        source = """
        function s = msum(x, n)
            c = cumsum(x);
            s = c(n:end) - [0, c(1:end-n)];
        end
        """
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        result = run_matlab(source, x, 2.0)
        expected = np.convolve(x, np.ones(2), mode="valid")
        assert np.allclose(result, expected)

    def test_string_comparison(self):
        source = """
        function r = f(s)
            r = sum(strcmp(s, 'abc'));
        end
        """
        strings = np.array(["abc", "def", "abc"], dtype=object)
        assert run_matlab(source, strings) == 2

    def test_nonscalar_condition_rejected(self):
        source = """
        function r = f(x)
            if x > 0
                r = 1;
            else
                r = 0;
            end
        end
        """
        with pytest.raises(MatlangRuntimeError, match="scalar"):
            run_matlab(source, np.array([1.0, -1.0]))

    def test_early_return(self):
        source = """
        function r = f(x)
            r = 0;
            if x > 0
                r = 1;
                return
            end
            r = 2;
        end
        """
        assert run_matlab(source, 5.0) == 1
        assert run_matlab(source, -5.0) == 2


class TestTamer:
    def test_entry_types_seed_inference(self):
        tamed = tame_source(SCALE_FN, [("f64", "vector"),
                                       ("f64", "scalar")])
        fn = tamed.entry
        assert fn.ret_type == "f64"
        assert fn.ret_shape == "vector"

    def test_comparison_produces_bool(self):
        source = """
        function m = f(x)
            m = x > 1;
        end
        """
        tamed = tame_source(source, [("f64", "vector")])
        assert tamed.entry.ret_type == "bool"

    def test_logical_index_recognized(self):
        source = """
        function y = f(x)
            y = x(x > 1);
        end
        """
        tamed = tame_source(source, [("f64", "vector")])
        ops = [s.op for s in tamed.entry.body
               if hasattr(s, "op")]
        assert "index_logical" in ops

    def test_user_function_specialized_per_signature(self):
        source = """
        function r = main(x, k)
            a = ident(x);
            b = ident(k);
            r = a .* b;
        end
        function y = ident(v)
            y = v;
        end
        """
        tamed = tame_source(source, [("f64", "vector"),
                                     ("f64", "scalar")])
        names = [fn.name for fn in tamed.functions]
        assert "main" in names
        specialized = [n for n in names if n.startswith("ident")]
        assert len(specialized) == 2

    def test_recursion_rejected(self):
        source = """
        function r = f(x)
            r = f(x);
        end
        """
        with pytest.raises(MatlangTypeError, match="recursive"):
            tame_source(source, [("f64", "vector")])

    def test_string_less_than_rejected(self):
        source = """
        function r = f(s)
            r = s < 'abc';
        end
        """
        with pytest.raises(MatlangTypeError, match="strcmp"):
            tame_source(source, [("str", "vector")])


class TestPipeline:
    """MATLAB → HorseIR: compiled results must match the interpreter."""

    def check(self, source, *args, specs=None, **kwargs):
        expected = run_matlab(source, *args)
        program = compile_matlab(source, param_specs=specs)
        actual = program(*args, **kwargs)
        if isinstance(expected, np.ndarray) and expected.size > 1:
            assert np.allclose(np.asarray(actual, dtype=np.float64),
                               expected)
        else:
            assert float(actual) == pytest.approx(float(np.asarray(
                expected).reshape(-1)[0]))

    def test_scale(self):
        self.check(SCALE_FN, np.array([1.0, 2.0, 3.0]), 2.0,
                   specs=[("f64", "vector"), ("f64", "scalar")])

    def test_logical_indexing(self):
        source = """
        function y = pick(x)
            y = x(x > 2) .* 10;
        end
        """
        self.check(source, np.array([1.0, 3.0, 2.0, 5.0]))

    def test_numeric_indexing_and_end(self):
        source = """
        function y = mid(x)
            y = x(2:end-1);
        end
        """
        self.check(source, np.arange(1.0, 8.0))

    def test_msum_window(self):
        source = """
        function s = msum(x, n)
            c = cumsum(x);
            s = c(n:end) - [0, c(1:end-n)];
        end
        """
        self.check(source, np.arange(1.0, 20.0), 3.0,
                   specs=[("f64", "vector"), ("f64", "scalar")])

    def test_reductions(self):
        source = """
        function r = f(x)
            r = sum(x) + mean(x) + max(x) - min(x);
        end
        """
        self.check(source, np.array([4.0, -2.0, 7.5, 0.0]))

    def test_user_function_inlined_and_correct(self):
        source = """
        function r = main(x)
            r = square(x) + square(x .* 2);
        end
        function s = square(v)
            s = v .* v;
        end
        """
        self.check(source, np.array([1.0, 2.0, 3.0]))
        module = matlab_to_module(source)
        from repro.core.compiler import compile_module
        program = compile_module(module, "opt")
        # The helper is inlined away.
        assert list(program.module.methods) == ["main"]

    def test_while_loop_compiles(self):
        source = """
        function total = f(n)
            total = 0;
            i = 0;
            while i < n
                total = total + i;
                i = i + 1;
            end
        end
        """
        self.check(source, 6.0, specs=[("f64", "scalar")])

    def test_if_branches_compile(self):
        source = """
        function r = f(x)
            s = sum(x);
            if s > 0
                r = s .* 2;
            else
                r = 0 - s;
            end
        end
        """
        self.check(source, np.array([1.0, 2.0]))
        self.check(source, np.array([-1.0, -2.0]))

    def test_two_arg_min_max(self):
        source = """
        function y = clamp(x)
            y = min(max(x, 0), 1);
        end
        """
        self.check(source, np.array([-0.5, 0.25, 1.5]))

    def test_strings_flow_through(self):
        source = """
        function r = f(s, v)
            m = strcmp(s, 'keep');
            r = sum(v(m));
        end
        """
        strings = np.array(["keep", "drop", "keep"], dtype=object)
        values = np.array([1.0, 10.0, 100.0])
        expected = run_matlab(source, strings, values)
        program = compile_matlab(
            source, param_specs=[("str", "vector"), ("f64", "vector")])
        assert program(strings, values) == pytest.approx(float(expected))

    def test_naive_and_opt_levels_agree(self):
        source = """
        function y = f(x)
            a = exp(x ./ 10);
            b = a(a > 1.05);
            y = sum(b .* b);
        end
        """
        x = np.linspace(0, 2, 500)
        naive = compile_matlab(source, opt_level="naive")(x)
        opt = compile_matlab(source, opt_level="opt")(x)
        assert float(naive) == pytest.approx(float(opt))


class TestExtendedBuiltins:
    """The library beyond the paper's minimum subset: sort, find, prod,
    var/std, dot, fliplr, isempty."""

    def check(self, source, *args, specs=None):
        expected = np.atleast_1d(np.asarray(
            run_matlab(source, *args), dtype=np.float64))
        program = compile_matlab(source, param_specs=specs)
        actual = np.atleast_1d(np.asarray(program(*args),
                                          dtype=np.float64))
        assert np.allclose(actual, expected)

    def test_sort(self):
        self.check("""
        function y = f(x)
            y = sort(x);
        end
        """, np.array([3.0, 1.0, 2.0, -5.0]))

    def test_find_returns_one_based_positions(self):
        source = """
        function y = f(x)
            y = find(x > 2);
        end
        """
        result = run_matlab(source, np.array([1.0, 5.0, 0.5, 3.0]))
        assert result.tolist() == [2.0, 4.0]
        self.check(source, np.array([1.0, 5.0, 0.5, 3.0]))

    def test_prod(self):
        self.check("""
        function y = f(x)
            y = prod(x);
        end
        """, np.array([2.0, 3.0, 4.0]))

    def test_var_and_std_use_sample_normalization(self):
        x = np.array([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        source = """
        function y = f(x)
            y = var(x) + std(x);
        end
        """
        expected = np.var(x, ddof=1) + np.std(x, ddof=1)
        program = compile_matlab(source)
        assert float(program(x)) == pytest.approx(expected)

    def test_dot(self):
        self.check("""
        function y = f(a, b)
            y = dot(a, b);
        end
        """, np.array([1.0, 2.0]), np.array([3.0, 4.0]))

    def test_fliplr(self):
        self.check("""
        function y = f(x)
            y = fliplr(x);
        end
        """, np.array([1.0, 2.0, 3.0]))

    def test_isempty(self):
        source = """
        function y = f(x)
            e = x(x > 100);
            if isempty(e)
                y = -1;
            else
                y = sum(e);
            end
        end
        """
        assert run_matlab(source, np.array([1.0, 2.0])) == -1
        program = compile_matlab(source)
        assert float(program(np.array([1.0, 2.0]))) == -1.0
        assert float(program(np.array([150.0, 2.0]))) == 150.0

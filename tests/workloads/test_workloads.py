"""Workload-level tests: TPC-H data properties, query agreement between
plain and UDF forms, and agreement between HorsePower and the baseline."""

import numpy as np
import pytest

from repro.data import generate_blackscholes, generate_tpch
from repro.data.blackscholes import calc_option_price, load_blackscholes_table
from repro.data.morgan import generate_morgan, morgan_reference, msum_reference
from repro.engine.storage import Database
from repro.horsepower import HorsePowerSystem, MonetDBLike
from repro.sql.udf import UDFRegistry
from repro.workloads.bs_queries import (BS_VARIANT_NAMES, SCALAR_QUERIES,
                                        TABLE_QUERIES, register_bs_udfs)
from repro.workloads.tpch_queries import (PLAIN_QUERIES, UDF_QUERIES,
                                          register_tpch_udfs)


@pytest.fixture(scope="module")
def tpch_db():
    return generate_tpch(scale_factor=0.002)


@pytest.fixture(scope="module")
def tpch_systems(tpch_db):
    udfs = UDFRegistry()
    hp = HorsePowerSystem(tpch_db, udfs)
    mdb = MonetDBLike(tpch_db, udfs)
    register_tpch_udfs(hp)
    return hp, mdb


def _columns(result) -> dict[str, np.ndarray]:
    if hasattr(result, "columns"):  # TableValue
        return {name: vec.data for name, vec in result.columns()}
    return {name: result.column(name) for name in result.column_names}


def assert_results_match(a, b):
    left, right = _columns(a), _columns(b)
    assert sorted(left) == sorted(right)
    for name in left:
        x, y = left[name], right[name]
        assert len(x) == len(y), f"column {name}"
        if np.asarray(x).dtype.kind == "f" \
                or np.asarray(y).dtype.kind == "f":
            np.testing.assert_allclose(
                np.asarray(x, dtype=np.float64),
                np.asarray(y, dtype=np.float64), rtol=1e-9,
                err_msg=f"column {name}")
        else:
            assert (np.asarray(x) == np.asarray(y)).all(), f"column {name}"


class TestTPCHData:
    def test_all_tables_present(self, tpch_db):
        assert set(tpch_db.table_names()) == {
            "region", "nation", "supplier", "customer", "part",
            "partsupp", "orders", "lineitem"}

    def test_cardinalities_scale(self, tpch_db):
        lineitem = tpch_db.table("lineitem")
        orders = tpch_db.table("orders")
        # ~4 lineitems per order on average (1..7 uniform).
        assert 2.5 < lineitem.num_rows / orders.num_rows < 5.5

    def test_q6_selectivity_near_spec(self, tpch_db):
        lineitem = tpch_db.table("lineitem")
        ship = lineitem.column("l_shipdate")
        disc = lineitem.column("l_discount")
        qty = lineitem.column("l_quantity")
        mask = ((ship >= np.datetime64("1994-01-01"))
                & (ship < np.datetime64("1995-01-01"))
                & (disc >= 0.05) & (disc <= 0.07) & (qty < 24))
        fraction = mask.mean()
        # TPC-H spec-ish: around 2%.
        assert 0.005 < fraction < 0.06

    def test_foreign_keys_resolve(self, tpch_db):
        lineitem = tpch_db.table("lineitem")
        orders = tpch_db.table("orders")
        assert lineitem.column("l_orderkey").max() \
            <= orders.column("o_orderkey").max()
        part = tpch_db.table("part")
        assert lineitem.column("l_partkey").max() \
            <= part.column("p_partkey").max()


class TestTPCHQueries:
    @pytest.mark.parametrize("name", list(PLAIN_QUERIES))
    def test_plain_queries_agree_across_systems(self, tpch_systems, name):
        hp, mdb = tpch_systems
        assert_results_match(hp.run_sql(PLAIN_QUERIES[name]),
                             mdb.run_sql(PLAIN_QUERIES[name]))

    @pytest.mark.parametrize("name", list(UDF_QUERIES))
    def test_udf_queries_agree_across_systems(self, tpch_systems, name):
        hp, mdb = tpch_systems
        assert_results_match(hp.run_sql(UDF_QUERIES[name]),
                             mdb.run_sql(UDF_QUERIES[name]))

    @pytest.mark.parametrize("name", list(UDF_QUERIES))
    def test_udf_form_equals_plain_form(self, tpch_systems, name):
        hp, _ = tpch_systems
        assert_results_match(hp.run_sql(PLAIN_QUERIES[name]),
                             hp.run_sql(UDF_QUERIES[name]))

    @pytest.mark.parametrize("name", list(UDF_QUERIES))
    def test_horsepower_inlines_all_udfs(self, tpch_systems, name):
        hp, _ = tpch_systems
        compiled = hp.compile_sql(UDF_QUERIES[name])
        assert list(compiled.program.module.methods) == ["main"]

    def test_multithreaded_agrees(self, tpch_systems):
        hp, mdb = tpch_systems
        sql = UDF_QUERIES["q6"]
        assert_results_match(hp.run_sql(sql, n_threads=4),
                             mdb.run_sql(sql, n_threads=4))


@pytest.fixture(scope="module")
def bs_systems():
    db = Database()
    load_blackscholes_table(db, 5000)
    udfs = UDFRegistry()
    hp = HorsePowerSystem(db, udfs)
    mdb = MonetDBLike(db, udfs)
    register_bs_udfs(hp)
    return hp, mdb


class TestBlackScholesQueries:
    @pytest.mark.parametrize("variant", BS_VARIANT_NAMES)
    def test_scalar_variant_agrees(self, bs_systems, variant):
        hp, mdb = bs_systems
        sql = SCALAR_QUERIES[variant]
        assert_results_match(hp.run_sql(sql), mdb.run_sql(sql))

    @pytest.mark.parametrize("variant", BS_VARIANT_NAMES)
    def test_table_variant_agrees(self, bs_systems, variant):
        hp, mdb = bs_systems
        sql = TABLE_QUERIES[variant]
        assert_results_match(hp.run_sql(sql), mdb.run_sql(sql))

    @pytest.mark.parametrize("variant", BS_VARIANT_NAMES)
    def test_scalar_and_table_forms_agree(self, bs_systems, variant):
        hp, _ = bs_systems
        scalar_cols = _columns(hp.run_sql(SCALAR_QUERIES[variant]))
        table_cols = _columns(hp.run_sql(TABLE_QUERIES[variant]))
        assert sorted(scalar_cols) == sorted(table_cols)
        for name in scalar_cols:
            np.testing.assert_allclose(scalar_cols[name],
                                       table_cols[name], rtol=1e-9)

    def test_bs2_table_udf_sliced_by_horsepower(self, bs_systems):
        hp, _ = bs_systems
        compiled = hp.compile_sql(TABLE_QUERIES["bs2_med"])
        from repro.core.printer import print_module
        text = print_module(compiled.program.module)
        # The pricing math (cndf's exp) must be gone entirely.
        assert "@exp" not in text

    def test_bs2_table_udf_not_sliced_by_baseline(self, bs_systems):
        _, mdb = bs_systems
        before = mdb.bridge.calls
        mdb.run_sql(TABLE_QUERIES["bs2_med"])
        # The baseline still pays the full black-box UDF call.
        assert mdb.bridge.calls == before + 1

    def test_selectivities_are_near_paper(self, bs_systems):
        hp, _ = bs_systems
        base = _columns(hp.run_sql(SCALAR_QUERIES["bs0_base"]))
        n = len(base["spotPrice"])
        high = _columns(hp.run_sql(SCALAR_QUERIES["bs1_high"]))
        med = _columns(hp.run_sql(SCALAR_QUERIES["bs1_med"]))
        low = _columns(hp.run_sql(SCALAR_QUERIES["bs1_low"]))
        assert len(high["spotPrice"]) / n < 0.02
        assert 0.4 < len(med["spotPrice"]) / n < 0.6
        assert len(low["spotPrice"]) / n > 0.97


class TestMorganReference:
    def test_msum_matches_convolution(self):
        x = np.arange(1.0, 50.0)
        assert np.allclose(msum_reference(x, 7),
                           np.convolve(x, np.ones(7), mode="valid"))

    def test_morgan_is_deterministic(self):
        price, volume = generate_morgan(5000, seed=3)
        a = morgan_reference(100, price, volume)
        b = morgan_reference(100, price, volume)
        assert a == b


class TestBlackScholesReference:
    def test_put_call_parity(self):
        data = generate_blackscholes(2000, seed=5)
        call = calc_option_price(
            data["spotPrice"], data["strike"], data["rate"],
            data["volatility"], data["otime"],
            np.zeros_like(data["spotPrice"]))
        put = calc_option_price(
            data["spotPrice"], data["strike"], data["rate"],
            data["volatility"], data["otime"],
            np.ones_like(data["spotPrice"]))
        # C - P = S - K * exp(-rT), up to the CNDF polynomial's tolerance.
        rhs = (data["spotPrice"] - data["strike"]
               * np.exp(-data["rate"] * data["otime"]))
        np.testing.assert_allclose(call - put, rhs, atol=5e-4)

    def test_prices_nonnegative(self):
        data = generate_blackscholes(2000, seed=6)
        price = calc_option_price(
            data["spotPrice"], data["strike"], data["rate"],
            data["volatility"], data["otime"], data["optionType"])
        assert (price > -1e-6).all()


class TestExtendedTPCHQueries:
    """q3 (3-way join + top-k), q5 (6-way join) and q10 (join + wide
    group) — coverage toward the paper's full-TPC-H claim."""

    @pytest.mark.parametrize("name", ["q3", "q5", "q10"])
    def test_extended_queries_agree_across_systems(self, tpch_systems,
                                                   name):
        from repro.workloads.tpch_queries import EXTENDED_PLAIN_QUERIES
        hp, mdb = tpch_systems
        sql = EXTENDED_PLAIN_QUERIES[name]
        assert_results_match(hp.run_sql(sql), mdb.run_sql(sql))

    def test_q3_is_a_top_k(self, tpch_systems):
        from repro.workloads.tpch_queries import EXTENDED_PLAIN_QUERIES
        hp, _ = tpch_systems
        result = hp.run_sql(EXTENDED_PLAIN_QUERIES["q3"])
        revenue = result.column("revenue").data
        assert len(revenue) <= 10
        assert np.all(np.diff(revenue) <= 1e-9)  # descending

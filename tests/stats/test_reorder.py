"""The stats-driven ``selectivity-reorder`` plan pass: a no-op without
statistics, provably reorders Q6's filter conjuncts with them, and
keeps query output bit-identical."""

import numpy as np
import pytest

from repro.core.passes import preset, registered_pass_names
from repro.data.tpch import generate_tpch
from repro.engine import EngineSession
from repro.horsepower import HorsePowerSystem
from repro.sql.parser import parse_sql
from repro.sql.plan_passes import reorder_by_selectivity
from repro.sql.planner import plan_query
from repro.workloads.tpch_queries import PLAIN_QUERIES

TPCH_SCALE = 0.01


@pytest.fixture(scope="module")
def tpch_db():
    return generate_tpch(scale_factor=TPCH_SCALE)


def _find(plan, kind):
    found = []

    def walk(node):
        if type(node).__name__ == kind:
            found.append(node)
        for child in node.children():
            walk(child)

    walk(plan)
    return found


class TestPassWiring:
    def test_registered_and_preset_placement(self):
        assert "selectivity-reorder" in registered_pass_names()
        o0 = [p.name for p in preset("O0").passes]
        assert "selectivity-reorder" not in o0
        for name in ("O1", "O2"):
            assert "selectivity-reorder" in \
                [p.name for p in preset(name).plan_passes]

    def test_noop_without_stats_preserves_identity(self, tpch_db):
        plan = plan_query(parse_sql(PLAIN_QUERIES["q6"]),
                          tpch_db.catalog())
        assert reorder_by_selectivity(plan) is plan
        assert reorder_by_selectivity(plan, None, None) is plan

    def test_plans_identical_without_stats(self, tpch_db):
        """O2 with an empty stats context must produce the same plan
        as before the pass existed (byte-identity guarantee)."""
        select = parse_sql(PLAIN_QUERIES["q6"])
        with_pass = plan_query(select, tpch_db.catalog())
        select = parse_sql(PLAIN_QUERIES["q6"])
        filters = _find(with_pass, "Filter")
        assert filters
        reordered = reorder_by_selectivity(with_pass)
        assert _find(reordered, "Filter")[0].predicate is \
            filters[0].predicate


class TestConjunctReorder:
    def test_q6_conjunct_order_changes_with_stats(self, tpch_db):
        """The acceptance criterion: the pass provably reorders at
        least one workload's filter conjuncts."""
        session = EngineSession(tpch_db)
        session.analyze()
        select = parse_sql(PLAIN_QUERIES["q6"])
        without = plan_query(select, tpch_db.catalog())
        select = parse_sql(PLAIN_QUERIES["q6"])
        with_stats = plan_query(select, tpch_db.catalog(),
                                table_stats=session.stats)
        before = str(_find(without, "Filter")[0].predicate)
        after = str(_find(with_stats, "Filter")[0].predicate)
        assert before != after
        # Same conjuncts, different order: the most selective one
        # (the BETWEEN on l_discount) moves to the front.
        assert after.startswith("(((")
        assert "BETWEEN" in after.split(" and ")[0]
        session.close()

    def test_q6_output_bit_identical_with_and_without_stats(
            self, tpch_db):
        """AND-of-masks is commutative: reordering conjuncts must not
        change a single output bit."""
        with EngineSession(tpch_db) as plain:
            baseline = plain.run_sql(PLAIN_QUERIES["q6"])
            plain_cols = {name: vec.data.copy() for name, vec
                          in baseline.columns()}
        with EngineSession(tpch_db) as analyzed:
            analyzed.analyze()
            result = analyzed.run_sql(PLAIN_QUERIES["q6"])
            stats_cols = {name: vec.data for name, vec
                          in result.columns()}
        assert plain_cols.keys() == stats_cols.keys()
        for name in plain_cols:
            assert np.array_equal(plain_cols[name], stats_cols[name]), \
                name

    def test_q1_output_bit_identical(self, tpch_db):
        with EngineSession(tpch_db) as plain:
            plain_rows = plain.run_sql(PLAIN_QUERIES["q1"])
            expected = {name: vec.data.copy() for name, vec
                        in plain_rows.columns()}
        with EngineSession(tpch_db) as analyzed:
            analyzed.analyze()
            actual = analyzed.run_sql(PLAIN_QUERIES["q1"])
            got = {name: vec.data for name, vec in actual.columns()}
        for name in expected:
            assert np.array_equal(expected[name], got[name]), name


class TestJoinSideSwap:
    SQL = ("SELECT o_orderkey AS k, l_quantity AS q "
           "FROM orders, lineitem WHERE o_orderkey = l_orderkey")

    def _join(self, db, table_stats=None):
        plan = plan_query(parse_sql(self.SQL), db.catalog(),
                          table_stats=table_stats)
        joins = _find(plan, "Join")
        assert len(joins) == 1
        return joins[0]

    def _tables_under(self, node):
        return {scan.table for scan in _find(node, "Scan")}

    def test_smaller_estimated_side_becomes_build_side(self, tpch_db):
        """``@join_index`` builds its hash table on the *right* input,
        so the pass moves the smaller side there."""
        session = EngineSession(tpch_db)
        session.analyze()
        before = self._join(tpch_db)
        after = self._join(tpch_db, table_stats=session.stats)
        assert self._tables_under(before.left) == {"orders"}
        assert self._tables_under(after.right) == {"orders"}
        assert self._tables_under(after.left) == {"lineitem"}
        # Keys swap with the inputs; output schema is preserved.
        assert after.left_keys == before.right_keys
        assert after.right_keys == before.left_keys
        assert after.output_names() == before.output_names()
        session.close()

    def test_swapped_join_returns_the_same_rows(self, tpch_db):
        """Row *order* may change when the probe side swaps, so compare
        as sorted row sets."""
        def rows(session):
            result = session.run_sql(self.SQL)
            cols = [vec.data for _, vec in result.columns()]
            return sorted(zip(*[c.tolist() for c in cols]))

        with EngineSession(tpch_db) as plain:
            expected = rows(plain)
        with EngineSession(tpch_db) as analyzed:
            analyzed.analyze()
            got = rows(analyzed)
        assert expected == got
        assert len(expected) > 0

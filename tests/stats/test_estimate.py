"""Cardinality estimation end to end: plan annotation, ``plan_to_json``
surfacing, per-operator est-vs-actual spans, and the acceptance bar —
q-error ≤ 2.0 on the Q1/Q6 filters after ANALYZE."""

import pytest

from repro.data.tpch import generate_tpch
from repro.horsepower import MonetDBLike
from repro.obs import Tracer, use_tracer
from repro.sql.parser import parse_sql
from repro.sql.plan import plan_to_json
from repro.sql.planner import plan_query
from repro.stats import annotate_plan, q_error
from repro.workloads.tpch_queries import PLAIN_QUERIES

TPCH_SCALE = 0.01


@pytest.fixture(scope="module")
def analyzed_mdb():
    mdb = MonetDBLike(generate_tpch(scale_factor=TPCH_SCALE))
    mdb.analyze()
    return mdb


def _filter_spans(mdb, sql):
    tracer = Tracer()
    with use_tracer(tracer):
        mdb.run_sql(sql)
    return tracer, [s for s in tracer.all_spans()
                    if s.name == "op:Filter"]


class TestAcceptanceQError:
    """The ISSUE's acceptance criterion: after ANALYZE, the Q1 and Q6
    filter estimates stay within a factor 2 of the actual counts."""

    @pytest.mark.parametrize("name", ["q1", "q6"])
    def test_filter_q_error_within_two(self, analyzed_mdb, name):
        _, filters = _filter_spans(analyzed_mdb, PLAIN_QUERIES[name])
        assert filters, f"{name}: no filter operators traced"
        for span in filters:
            est = span.attrs["est_rows"]
            actual = span.attrs["rows_out"]
            assert q_error(est, actual) <= 2.0, \
                f"{name}: est={est} actual={actual}"


class TestPerOperatorSpans:
    def test_every_workload_query_reports_est_and_actual(
            self, analyzed_mdb):
        """EXPLAIN ANALYZE on every TPC-H workload query shows both
        sides on every operator span."""
        for name, sql in PLAIN_QUERIES.items():
            tracer = Tracer()
            with use_tracer(tracer):
                analyzed_mdb.run_sql(sql)
            operators = [s for s in tracer.all_spans()
                         if s.name.startswith("op:")]
            assert operators, name
            for span in operators:
                assert span.attrs.get("est_rows") is not None, \
                    (name, span.name)
                assert span.attrs.get("rows_out") is not None, \
                    (name, span.name)

    def test_scan_estimate_is_exact(self, analyzed_mdb):
        tracer, _ = _filter_spans(analyzed_mdb, PLAIN_QUERIES["q6"])
        scan = next(s for s in tracer.all_spans()
                    if s.name == "op:Scan")
        assert scan.attrs["est_rows"] == scan.attrs["rows_out"]

    def test_spans_without_stats_carry_actuals_only(self):
        mdb = MonetDBLike(generate_tpch(scale_factor=0.002))
        tracer = Tracer()
        with use_tracer(tracer):
            mdb.run_sql(PLAIN_QUERIES["q6"])
        operators = [s for s in tracer.all_spans()
                     if s.name.startswith("op:")]
        assert operators
        for span in operators:
            assert "est_rows" not in span.attrs
            assert span.attrs.get("rows_out") is not None


class TestPlanAnnotation:
    def _plan(self, mdb, sql, with_stats=True):
        return plan_query(parse_sql(sql), mdb.db.catalog(), mdb.udfs,
                          table_stats=mdb.stats if with_stats else None)

    def test_annotate_covers_every_node(self, analyzed_mdb):
        plan = self._plan(analyzed_mdb, PLAIN_QUERIES["q6"])
        seen = []

        def walk(node):
            seen.append(node)
            for child in node.children():
                walk(child)

        walk(plan)
        assert len(seen) >= 3
        for node in seen:
            assert node.est_rows is not None, type(node).__name__

    def test_scan_estimate_matches_row_count(self, analyzed_mdb):
        plan = self._plan(analyzed_mdb, PLAIN_QUERIES["q6"])
        node = plan
        while node.children():
            node = node.children()[0]
        row_count = analyzed_mdb.stats.table("lineitem").row_count
        assert node.est_rows == row_count

    def test_join_estimate_present_and_bounded(self, analyzed_mdb):
        sql = ("SELECT o_orderkey AS k FROM orders, lineitem "
               "WHERE o_orderkey = l_orderkey")
        plan = self._plan(analyzed_mdb, sql)
        joins = []

        def walk(node):
            if type(node).__name__ == "Join":
                joins.append(node)
            for child in node.children():
                walk(child)

        walk(plan)
        assert joins
        stats = analyzed_mdb.stats
        cross = (stats.table("orders").row_count
                 * stats.table("lineitem").row_count)
        for join in joins:
            assert 1 <= join.est_rows <= cross

    def test_annotate_plan_returns_root_estimate(self, analyzed_mdb):
        plan = self._plan(analyzed_mdb, PLAIN_QUERIES["q6"],
                          with_stats=False)
        assert plan.est_rows is None
        root_est = annotate_plan(plan, analyzed_mdb.stats)
        assert root_est is not None
        assert plan.est_rows == int(round(root_est))


class TestPlanToJson:
    def test_output_names_always_present(self, analyzed_mdb):
        plan = plan_query(parse_sql(PLAIN_QUERIES["q6"]),
                          analyzed_mdb.db.catalog(), analyzed_mdb.udfs)

        def walk(node_json):
            assert node_json["output_names"] == \
                [name for name, _ in node_json["output"]]
            assert "est_rows" not in node_json
            for key in ("child", "left", "right"):
                if key in node_json:
                    walk(node_json[key])

        walk(plan_to_json(plan))

    def test_est_rows_surfaces_after_analyze(self, analyzed_mdb):
        plan = plan_query(parse_sql(PLAIN_QUERIES["q6"]),
                          analyzed_mdb.db.catalog(), analyzed_mdb.udfs,
                          table_stats=analyzed_mdb.stats)
        node_json = plan_to_json(plan)

        def walk(node_json):
            assert node_json["est_rows"] >= 1
            for key in ("child", "left", "right"):
                if key in node_json:
                    walk(node_json[key])

        walk(node_json)

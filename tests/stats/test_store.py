"""ANALYZE mechanics: per-column statistics, equi-depth histograms,
the q-error metric, and the store's fingerprint/versioning contract."""

import numpy as np
import pytest

from repro.core import types as ht
from repro.engine.table import ColumnTable
from repro.stats import (DEFAULT_HISTOGRAM_BUCKETS,
                         MISESTIMATE_THRESHOLD, StatsStore, q_error)
from repro.stats.store import analyze_column


class TestQError:
    def test_perfect_estimate_is_one(self):
        assert q_error(10, 10) == 1.0

    def test_symmetric(self):
        assert q_error(1, 4) == q_error(4, 1) == 4.0

    def test_zero_clamps_to_one_row(self):
        assert q_error(0, 0) == 1.0
        assert q_error(0, 5) == 5.0

    def test_threshold_is_twice_the_acceptance_bar(self):
        assert MISESTIMATE_THRESHOLD == 4.0


class TestAnalyzeColumn:
    def test_uniform_ints_exact_edges_and_ndv(self):
        stats = analyze_column("x", np.arange(1000, dtype=np.int64),
                               ht.I64)
        assert stats.count == 1000
        assert stats.null_count == 0
        assert stats.n_distinct == 1000
        assert stats.min == 0 and stats.max == 999
        assert len(stats.bounds) == len(stats.depths) + 1
        assert stats.bounds[0] == 0 and stats.bounds[-1] == 999
        assert int(stats.depths.sum()) == 1000

    def test_fraction_le_tracks_true_quantiles(self):
        stats = analyze_column("x", np.arange(1000, dtype=np.int64),
                               ht.I64)
        for value, expected in ((499, 0.5), (99, 0.1), (899, 0.9)):
            assert stats.fraction_le(value) == \
                pytest.approx(expected, abs=0.02)
        assert stats.fraction_le(-1) == 0.0
        assert stats.fraction_le(5000) == 1.0

    def test_float_nulls_excluded_from_everything(self):
        values = np.array([1.0, np.nan, 3.0, np.nan, 5.0])
        stats = analyze_column("x", values, ht.F64)
        assert stats.count == 5
        assert stats.null_count == 2
        assert stats.null_fraction == pytest.approx(0.4)
        assert stats.n_distinct == 3
        assert stats.min == 1.0 and stats.max == 5.0
        assert int(stats.depths.sum()) == 3

    def test_dates_histogram_in_days_since_epoch(self):
        days = np.arange(9131, 9131 + 365)  # the year 1995
        values = days.astype("datetime64[D]")
        stats = analyze_column("d", values, ht.DATE)
        assert stats.n_distinct == 365
        mid = float(days[len(days) // 2])
        assert stats.fraction_le(mid) == pytest.approx(0.5, abs=0.02)

    def test_strings_get_ndv_but_no_histogram(self):
        values = np.array(["apple", "pear", "apple", "fig"],
                          dtype=object)
        stats = analyze_column("s", values, ht.STR)
        assert stats.n_distinct == 3
        assert stats.min == "apple" and stats.max == "pear"
        assert stats.bounds is None and stats.depths is None
        assert stats.fraction_le(0.0) is None

    def test_heavy_duplicates_collapse_buckets_not_counts(self):
        values = np.array([7] * 990 + list(range(10)), dtype=np.int64)
        stats = analyze_column("x", values, ht.I64)
        assert int(stats.depths.sum()) == 1000
        assert stats.n_distinct == 10
        # Collapsed boundaries merge: strictly increasing interior.
        assert np.all(np.diff(stats.bounds) >= 0)

    def test_empty_column(self):
        stats = analyze_column("x", np.array([], dtype=np.int64),
                               ht.I64)
        assert stats.count == 0 and stats.n_distinct == 0
        assert stats.min is None and stats.fraction_le(1.0) is None

    def test_bucket_count_honors_request(self):
        stats = analyze_column("x", np.arange(10_000, dtype=np.int64),
                               ht.I64, buckets=8)
        assert len(stats.depths) == 8
        default = analyze_column("x", np.arange(10_000, dtype=np.int64),
                                 ht.I64)
        assert len(default.depths) == DEFAULT_HISTOGRAM_BUCKETS

    def test_to_dict_is_json_shaped(self):
        stats = analyze_column("x", np.arange(10, dtype=np.int64),
                               ht.I64)
        info = stats.to_dict()
        assert info["name"] == "x"
        assert info["count"] == 10
        assert info["histogram_buckets"] == len(stats.depths)


def _table(rows=100):
    return ColumnTable("t", {
        "x": np.arange(rows, dtype=np.int64),
        "y": np.linspace(0.0, 1.0, rows),
    })


class TestStatsStore:
    def test_disabled_and_unfingerprinted_until_first_analyze(self):
        store = StatsStore()
        assert not store.enabled
        assert store.fingerprint() is None
        assert not store
        assert len(store) == 0

    def test_analyze_enables_and_fills(self):
        store = StatsStore()
        table_stats = store.analyze("t", _table())
        assert store.enabled
        assert "t" in store
        assert store.table("t") is table_stats
        assert table_stats.row_count == 100
        assert table_stats.column("x").n_distinct == 100
        assert table_stats.column("missing") is None

    def test_fingerprint_bumps_on_every_analyze(self):
        store = StatsStore()
        store.analyze("t", _table())
        first = store.fingerprint()
        store.analyze("t", _table(200))
        second = store.fingerprint()
        assert first is not None and second is not None
        assert first != second

    def test_clear_disables_and_restores_legacy_fingerprint(self):
        store = StatsStore()
        store.analyze("t", _table())
        store.clear()
        assert not store.enabled
        assert store.fingerprint() is None
        assert store.tables() == []

"""Plan feedback: ANALYZE invalidates cached plans (stats fingerprint
in the cache key), stale statistics trip the ``stats.misestimates``
counter, and est/actual land in the telemetry query log."""

import io
import json

import numpy as np

from repro.engine import EngineSession
from repro.engine.storage import Database
from repro.engine.table import ColumnTable
from repro.obs.telemetry import QUERY_LOG_FIELDS
from repro.stats import MISESTIMATE_THRESHOLD, q_error


def make_db(rows=100):
    db = Database()
    db.create_table("t", {
        "x": np.arange(rows, dtype=np.int64),
        "y": np.linspace(0.0, 1.0, rows),
    })
    return db


SQL = "SELECT SUM(y) AS s FROM t WHERE x >= 0"

#: Root cardinality scales with the table (aggregates collapse to one
#: row and would hide a stale row count from the session-level check).
SCALING_SQL = "SELECT y AS y FROM t WHERE x >= 0"


def _swap_table(db, rows):
    db.drop_table("t")
    db.add_table(ColumnTable("t", {
        "x": np.arange(rows, dtype=np.int64),
        "y": np.linspace(0.0, 1.0, rows),
    }))


class TestCacheInvalidation:
    def test_analyze_invalidates_cached_plans(self):
        with EngineSession(make_db()) as session:
            session.run_sql(SQL)
            session.run_sql(SQL)
            assert session.cache_stats.hits == 1
            session.analyze()
            session.run_sql(SQL)
            assert session.cache_stats.hits == 1  # recompiled
            assert session.cache_stats.invalidations >= 1
            session.run_sql(SQL)
            assert session.cache_stats.hits == 2  # warm again

    def test_reanalyze_changes_the_cache_key(self):
        with EngineSession(make_db()) as session:
            session.analyze()
            first = session.stats.fingerprint()
            session.analyze()
            assert session.stats.fingerprint() != first

    def test_stats_free_key_is_legacy_shaped(self):
        with EngineSession(make_db()) as session:
            assert session.stats.fingerprint() is None
            session.run_sql(SQL)
            (key,) = list(session.plan_cache.keys()) \
                if hasattr(session.plan_cache, "keys") else [None]
            if key is not None:
                assert key[-1] is None


class TestStaleStatsMisestimates:
    def test_stale_store_trips_the_counter(self):
        """ANALYZE a 10-row table, grow it 1000×, re-run: the root
        estimate is ~10 vs ~10 000 actual — q-error far past the
        threshold — so ``stats.misestimates`` must fire."""
        db = make_db(rows=10)
        with EngineSession(db) as session:
            session.analyze()
            session.run_sql(SCALING_SQL)
            assert session.metrics.counter(
                "stats.misestimates").value == 0
            _swap_table(db, 10_000)
            session.plan_cache.invalidate()  # stats are stale, plan too
            session.run_sql(SCALING_SQL)
            assert session.metrics.counter(
                "stats.misestimates").value >= 1
            hist = session.metrics.histogram("stats.q_error")
            assert hist.count >= 2
            assert hist.max > MISESTIMATE_THRESHOLD

    def test_fresh_stats_do_not_trip_the_counter(self):
        with EngineSession(make_db(rows=1000)) as session:
            session.analyze()
            session.run_sql(SQL)
            assert session.metrics.counter(
                "stats.misestimates").value == 0
            assert session.metrics.histogram(
                "stats.q_error").count >= 1

    def test_baseline_executor_records_operator_misestimates(self):
        """The interpreting path keeps est-vs-actual metrics flowing
        even with tracing off."""
        db = make_db(rows=10)
        with EngineSession(db, default_backend="baseline") as session:
            session.analyze()
            _swap_table(db, 10_000)
            session.plan_cache.invalidate()
            session.run_sql(SCALING_SQL, backend="baseline")
            assert session.metrics.counter(
                "stats.misestimates").value >= 1


class TestTelemetryFields:
    def test_schema_ends_with_est_and_q_error(self):
        assert QUERY_LOG_FIELDS[-2:] == ("est_rows", "q_error")

    def test_record_carries_est_and_q_after_analyze(self):
        sink = io.StringIO()
        with EngineSession(make_db(), query_log=sink) as session:
            session.analyze()
            session.run_sql(SQL)
        record = json.loads(sink.getvalue().splitlines()[0])
        assert tuple(record) == QUERY_LOG_FIELDS
        assert record["est_rows"] >= 1
        assert record["q_error"] == q_error(record["est_rows"],
                                            record["rows"])

    def test_record_fields_stay_null_without_stats(self):
        sink = io.StringIO()
        with EngineSession(make_db(), query_log=sink) as session:
            session.run_sql(SQL)
        record = json.loads(sink.getvalue().splitlines()[0])
        assert tuple(record) == QUERY_LOG_FIELDS
        assert record["est_rows"] is None
        assert record["q_error"] is None

"""The dataflow-analysis framework: CFG construction, the worklist
solver, and the five standard analyses (liveness, reaching
definitions, use-def/def-use chains, constants, intervals)."""

import math

from repro.core import ir
from repro.core import types as ht
from repro.core.analysis import (build_cfg, constant_facts,
                                 def_use_chains, interval_facts,
                                 liveness, reaching_definitions,
                                 use_def_chains)
from repro.core.analysis.dataflow import NONCONST


def _straight_line():
    return ir.Method("main", [ir.Param("v", ht.F64)], ht.F64, [
        ir.Assign("a", ht.F64, ir.BuiltinCall("mul", [
            ir.Var("v"), ir.Literal(2.0, ht.F64)])),
        ir.Assign("dead", ht.F64, ir.BuiltinCall("add", [
            ir.Var("v"), ir.Literal(1.0, ht.F64)])),
        ir.Assign("b", ht.F64, ir.BuiltinCall("sum", [ir.Var("a")])),
        ir.Return(ir.Var("b")),
    ])


def _loop():
    return ir.Method("main", [ir.Param("n", ht.I64)], ht.I64, [
        ir.Assign("i", ht.I64, ir.Literal(0, ht.I64)),
        ir.Assign("acc", ht.I64, ir.Literal(0, ht.I64)),
        ir.Assign("cond", ht.BOOL, ir.BuiltinCall("lt", [
            ir.Var("i"), ir.Var("n")])),
        ir.While(ir.Var("cond"), [
            ir.Assign("acc", ht.I64, ir.BuiltinCall("add", [
                ir.Var("acc"), ir.Var("i")])),
            ir.Assign("i", ht.I64, ir.BuiltinCall("add", [
                ir.Var("i"), ir.Literal(1, ht.I64)])),
            ir.Assign("cond", ht.BOOL, ir.BuiltinCall("lt", [
                ir.Var("i"), ir.Var("n")])),
        ]),
        ir.Return(ir.Var("acc")),
    ])


def _branch():
    return ir.Method("main", [ir.Param("p", ht.BOOL)], ht.I64, [
        ir.Assign("x", ht.I64, ir.Literal(1, ht.I64)),
        ir.If(ir.Var("p"), [
            ir.Assign("x", ht.I64, ir.Literal(2, ht.I64)),
        ], [
            ir.Assign("y", ht.I64, ir.Literal(3, ht.I64)),
        ]),
        ir.Return(ir.Var("x")),
    ])


class TestCFG:
    def test_straight_line_is_one_real_block(self):
        cfg = build_cfg(_straight_line())
        stmts = list(cfg.statements())
        assert len(stmts) == 4
        # Exactly one block carries statements; it flows to exit.
        carrying = [b for b in cfg.blocks if b.stmts]
        assert len(carrying) == 1
        assert cfg.exit in cfg.succs[carrying[0].index]

    def test_loop_has_back_edge(self):
        cfg = build_cfg(_loop())
        back_edges = [(b.index, s) for b in cfg.blocks
                      for s in cfg.succs[b.index] if s <= b.index]
        assert back_edges, "while loop must produce a back edge"

    def test_branch_joins(self):
        cfg = build_cfg(_branch())
        # Some block has two predecessors: the join point.
        preds = cfg.preds
        assert any(len(p) == 2 for p in preds)

    def test_every_statement_appears_once(self):
        for method in (_straight_line(), _loop(), _branch()):
            cfg = build_cfg(method)
            ids = [id(s) for s in cfg.statements()]
            assert len(ids) == len(set(ids))
            walked = [id(s) for s in method.walk_stmts()]
            assert set(ids) == set(walked)


class TestLiveness:
    def test_dead_definition_is_not_live(self):
        method = _straight_line()
        live = liveness(method)
        ret = method.body[-1]
        live_in, _ = live[id(ret)]
        assert "b" in live_in
        assert "dead" not in live_in

    def test_loop_carried_variable_stays_live(self):
        method = _loop()
        live = liveness(method)
        body_first = method.body[3].body[0]
        live_in, _ = live[id(body_first)]
        # acc and i feed the next iteration; n feeds the condition.
        assert {"acc", "i", "n"} <= live_in

    def test_def_kills_liveness(self):
        method = _straight_line()
        live = liveness(method)
        first = method.body[0]
        live_in, live_out = live[id(first)]
        assert "a" not in live_in
        assert "a" in live_out


class TestReachingDefinitions:
    def test_param_def_reaches_first_use(self):
        method = _straight_line()
        reaching = reaching_definitions(method)
        first = method.body[0]
        fact_in, _ = reaching[id(first)]
        assert ("v", ("param", "v")) in fact_in

    def test_branch_merges_both_defs(self):
        method = _branch()
        chains = use_def_chains(method)
        ret = method.body[-1]
        defs = chains[id(ret)]["x"]
        # x = 1 before the if and x = 2 inside it both reach.
        assert len(defs) == 2

    def test_loop_body_sees_two_defs(self):
        method = _loop()
        chains = use_def_chains(method)
        body_first = method.body[3].body[0]
        assert len(chains[id(body_first)]["acc"]) == 2
        assert len(chains[id(body_first)]["i"]) == 2

    def test_def_use_is_inverse_of_use_def(self):
        method = _straight_line()
        uses = def_use_chains(method)
        first = method.body[0]          # defines a
        third = method.body[2]          # uses a
        assert id(third) in uses[("stmt", id(first))]
        # The parameter feeds both the first two statements.
        assert id(first) in uses[("param", "v")]


class TestConstants:
    def test_literals_propagate(self):
        method = _straight_line()
        consts = constant_facts(method)
        third = method.body[2]
        fact_in, _ = consts[id(third)]
        assert fact_in.get("a") is NONCONST  # builtin result: unknown

    def test_branch_disagreement_is_nonconst(self):
        method = _branch()
        consts = constant_facts(method)
        ret = method.body[-1]
        fact_in, _ = consts[id(ret)]
        assert fact_in.get("x") is NONCONST

    def test_branch_agreement_stays_const(self):
        method = ir.Method("main", [ir.Param("p", ht.BOOL)], ht.I64, [
            ir.Assign("x", ht.I64, ir.Literal(7, ht.I64)),
            ir.If(ir.Var("p"), [
                ir.Assign("x", ht.I64, ir.Literal(7, ht.I64)),
            ], []),
            ir.Return(ir.Var("x")),
        ])
        consts = constant_facts(method)
        fact_in, _ = consts[id(method.body[-1])]
        assert fact_in.get("x") == 7

    def test_loop_head_is_nonconst(self):
        method = _loop()
        consts = constant_facts(method)
        fact_in, _ = consts[id(method.body[3])]
        assert fact_in.get("i") is NONCONST
        assert fact_in.get("acc") is NONCONST


class TestIntervals:
    def test_range_bounds(self):
        method = ir.Method("main", [], ht.I64, [
            ir.Assign("r", ht.I64, ir.BuiltinCall("range", [
                ir.Literal(10, ht.I64)])),
            ir.Return(ir.Var("r")),
        ])
        iv = interval_facts(method)
        fact_in, _ = iv[id(method.body[-1])]
        assert fact_in["r"] == (0.0, 9.0)

    def test_arithmetic_propagates(self):
        method = ir.Method("main", [], ht.I64, [
            ir.Assign("a", ht.I64, ir.Literal(3, ht.I64)),
            ir.Assign("b", ht.I64, ir.Literal(4, ht.I64)),
            ir.Assign("c", ht.I64, ir.BuiltinCall("add", [
                ir.Var("a"), ir.Var("b")])),
            ir.Return(ir.Var("c")),
        ])
        iv = interval_facts(method)
        fact_in, _ = iv[id(method.body[-1])]
        assert fact_in["c"] == (7.0, 7.0)

    def test_loop_widens_instead_of_diverging(self):
        method = _loop()
        iv = interval_facts(method)  # must terminate
        fact_in, _ = iv[id(method.body[-1])]
        lo, hi = fact_in["i"]
        assert hi == math.inf  # widened: the loop bound is dynamic

    def test_comparison_is_bool_interval(self):
        method = _loop()
        iv = interval_facts(method)
        _, fact_out = iv[id(method.body[2])]
        assert fact_out["cond"] == (0.0, 1.0)

"""Meta-properties of the optimizer: idempotence, semantics preservation
on a corpus of real modules, and pass interaction."""

import numpy as np
import pytest

from repro.core import from_numpy
from repro.core.compiler import compile_module
from repro.core.interp import run_module
from repro.core.optimizer import optimize
from repro.core.parser import parse_module
from repro.core.printer import print_module
from repro.matlang import matlab_to_module
from repro.workloads.matlab_sources import (BLACKSCHOLES_MATLAB,
                                            MORGAN_MATLAB)

_MORGAN_SPECS = [("f64", "scalar"), ("f64", "vector"), ("f64", "vector")]


def _corpus():
    """Real modules from the evaluation workloads."""
    yield ("blackscholes", matlab_to_module(BLACKSCHOLES_MATLAB))
    yield ("morgan", matlab_to_module(MORGAN_MATLAB, _MORGAN_SPECS))
    yield ("figure6", parse_module("""
    module ExampleQuery {
        def calcRevenueChangeScalar(price:f64, discount:f64): f64 {
            x0:f64 = @mul(price, discount);
            return x0;
        }
        def main(t1:f64, t2:f64): f64 {
            t3:bool = @geq(t2, 0.05:f64);
            t4:f64 = @compress(t3, t1);
            t5:f64 = @compress(t3, t2);
            t6:f64 = @calcRevenueChangeScalar(t4, t5);
            t7:f64 = @sum(t6);
            return t7;
        }
    }
    """))


class TestOptimizerMetaProperties:
    @pytest.mark.parametrize("name,module",
                             list(_corpus()),
                             ids=[n for n, _ in _corpus()])
    def test_optimize_is_idempotent(self, name, module):
        once, _ = optimize(module)
        twice, stats = optimize(once)
        assert print_module(once) == print_module(twice)

    def test_optimization_preserves_semantics_blackscholes(self):
        rng = np.random.default_rng(17)
        n = 2000
        args = [
            from_numpy(rng.uniform(10, 100, n)),    # spot
            from_numpy(rng.uniform(10, 100, n)),    # strike
            from_numpy(rng.uniform(0.01, 0.1, n)),  # rate
            from_numpy(rng.uniform(0.1, 0.6, n)),   # volatility
            from_numpy(rng.uniform(0.1, 2.0, n)),   # otime
            from_numpy(rng.integers(0, 2, n).astype(np.float64)),
        ]
        module = matlab_to_module(BLACKSCHOLES_MATLAB)
        baseline = run_module(matlab_to_module(BLACKSCHOLES_MATLAB),
                              args=args)
        optimized, _ = optimize(module)
        transformed = run_module(optimized, args=args)
        np.testing.assert_allclose(transformed.data, baseline.data,
                                   rtol=1e-12)

    def test_every_level_agrees_on_morgan(self):
        rng = np.random.default_rng(23)
        price = from_numpy(100 + np.cumsum(rng.normal(0, 0.5, 5000)))
        volume = from_numpy(np.exp(rng.normal(8, 0.5, 5000)))
        window = from_numpy(np.array([50.0]))
        args = [window, price, volume]

        module_text = print_module(matlab_to_module(MORGAN_MATLAB,
                                                    _MORGAN_SPECS))
        interp = run_module(parse_module(module_text), args=args)
        naive = compile_module(parse_module(module_text), "naive").run(
            args=args)
        opt = compile_module(parse_module(module_text), "opt").run(
            args=args, chunk_size=512)
        assert naive.item() == pytest.approx(interp.item())
        assert opt.item() == pytest.approx(interp.item())

    def test_optimized_module_still_prints_and_reparses(self):
        for _, module in _corpus():
            optimized, _ = optimize(module)
            text = print_module(optimized)
            assert print_module(parse_module(text)) == text

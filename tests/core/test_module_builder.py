"""Tests for the programmatic IR builder."""

import numpy as np
import pytest

from repro.core import TableValue, from_numpy, types as ht, vector
from repro.core.compiler import compile_module
from repro.core.interp import run_module
from repro.core.module_builder import ModuleBuilder
from repro.errors import HorseIRError, HorseVerifyError


def build_revenue_module():
    b = ModuleBuilder("Revenue")
    with b.method("main", [], ht.F64) as m:
        t = m.call("load_table", m.sym("lineitem"), type=ht.TABLE)
        price = m.call("column_value", t, m.sym("l_extendedprice"),
                       type=ht.F64)
        disc = m.call("column_value", t, m.sym("l_discount"),
                      type=ht.F64)
        mask = m.call("geq", disc, 0.05, type=ht.BOOL)
        kept_p = m.call("compress", mask, price, type=ht.F64)
        kept_d = m.call("compress", mask, disc, type=ht.F64)
        product = m.call("mul", kept_p, kept_d, type=ht.F64)
        m.ret(m.call("sum", product, type=ht.F64))
    return b.build()


@pytest.fixture
def lineitem():
    return TableValue([
        ("l_extendedprice", from_numpy(np.array([10.0, 20.0, 30.0]))),
        ("l_discount", from_numpy(np.array([0.01, 0.05, 0.10]))),
    ])


class TestBuilder:
    def test_built_module_executes(self, lineitem):
        module = build_revenue_module()
        result = run_module(module, {"lineitem": lineitem})
        assert result.item() == pytest.approx(20 * 0.05 + 30 * 0.10)

    def test_built_module_compiles_optimized(self, lineitem):
        module = build_revenue_module()
        program = compile_module(module, "opt")
        result = program.run({"lineitem": lineitem})
        assert result.item() == pytest.approx(20 * 0.05 + 30 * 0.10)

    def test_parameters(self):
        b = ModuleBuilder("P")
        with b.method("main", [("x", ht.F64)], ht.F64) as m:
            doubled = m.call("mul", m.param("x"), 2.0, type=ht.F64)
            m.ret(m.call("sum", doubled, type=ht.F64))
        module = b.build()
        result = run_module(module,
                            args=[vector([1.0, 2.0], ht.F64)])
        assert result.item() == pytest.approx(6.0)

    def test_unknown_parameter_rejected(self):
        b = ModuleBuilder("P")
        with pytest.raises(HorseIRError, match="no parameter"):
            with b.method("main", [("x", ht.F64)], ht.F64) as m:
                m.param("y")
                m.ret(m.param("x"))

    def test_if_else_blocks(self):
        b = ModuleBuilder("Cond")
        with b.method("main", [("x", ht.I64)], ht.I64) as m:
            cond = m.call("gt", m.param("x"), 10, type=ht.BOOL)
            with m.if_(cond) as orelse:
                m.let(1, ht.I64, name="r")
                with orelse():
                    m.let(0, ht.I64, name="r")
            m.ret(_var("r"))
        module = b.build()
        assert run_module(module,
                          args=[vector([20], ht.I64)]).item() == 1
        assert run_module(module,
                          args=[vector([3], ht.I64)]).item() == 0

    def test_while_block(self):
        b = ModuleBuilder("Loop")
        with b.method("main", [("n", ht.I64)], ht.I64) as m:
            m.let(0, ht.I64, name="total")
            m.let(0, ht.I64, name="i")
            m.call("lt", _var("i"), m.param("n"), type=ht.BOOL,
                   name="c")
            with m.while_(_var("c")):
                m.call("add", _var("total"), _var("i"), type=ht.I64,
                       name="total")
                m.call("add", _var("i"), 1, type=ht.I64, name="i")
                m.call("lt", _var("i"), m.param("n"), type=ht.BOOL,
                       name="c")
            m.ret(_var("total"))
        module = b.build()
        assert run_module(module,
                          args=[vector([5], ht.I64)]).item() == 10

    def test_unknown_builtin_rejected(self):
        b = ModuleBuilder("Bad")
        with pytest.raises(HorseIRError, match="unknown builtin"):
            with b.method("main", [], ht.F64) as m:
                m.call("frobnicate", 1.0)
                m.ret(m.lit(0.0, ht.F64))

    def test_build_verifies(self):
        b = ModuleBuilder("NoReturn")
        with b.method("main", [], ht.F64) as m:
            m.let(1.0, ht.F64)
        with pytest.raises(HorseVerifyError, match="return"):
            b.build()

    def test_invoke_user_method(self):
        b = ModuleBuilder("TwoMethods")
        with b.method("helper", [("v", ht.F64)], ht.F64) as m:
            m.ret(m.call("mul", m.param("v"), 3.0, type=ht.F64))
        with b.method("main", [("x", ht.F64)], ht.F64) as m:
            tripled = m.invoke("helper", m.param("x"), type=ht.F64)
            m.ret(m.call("sum", tripled, type=ht.F64))
        module = b.build()
        result = run_module(module, args=[vector([1.0, 2.0], ht.F64)])
        assert result.item() == pytest.approx(9.0)
        # And the optimizer can inline the built method.
        program = compile_module(module, "opt")
        assert list(program.module.methods) == ["main"]


def _var(name):
    from repro.core import ir
    return ir.Var(name)

"""End-to-end checks of the parser + interpreter on the paper's examples."""

import numpy as np
import pytest

from repro.core import F64, I64, TableValue, Vector, from_numpy, vector
from repro.core.builtins import EvalContext
from repro.core.interp import Interpreter, run_module
from repro.core.parser import parse_module
from repro.core.printer import print_module
from repro.core.verify import verify_module
from repro.errors import HorseRuntimeError, HorseSyntaxError, HorseVerifyError

# The running example of the paper (Figure 2b), verbatim up to builtin
# spelling: TPC-H q6 simplified to SUM(l_extendedprice * l_discount)
# WHERE l_discount >= 0.05.
FIGURE_2B = """
module ExampleQuery {
    def main(): table {
        // load table
        t0:table = @load_table(`lineitem:sym);
        t1:f64 = check_cast(@column_value(t0, `l_extendedprice:sym), f64);
        t2:f64 = check_cast(@column_value(t0, `l_discount:sym), f64);
        // compute revenue change
        t3:bool = @geq(t2, 0.05:f64);
        t4:f64 = @compress(t3, t1);
        t5:f64 = @compress(t3, t2);
        t6:f64 = @mul(t4, t5);
        t7:f64 = @sum(t6);
        t8:sym = `RevenueChange:sym;
        t9:list<f64> = @list(t7);
        t10:table = @table(t8, t9);
        return t10;
    }
}
"""


@pytest.fixture
def lineitem():
    price = np.array([100.0, 200.0, 300.0, 400.0], dtype=np.float64)
    discount = np.array([0.01, 0.05, 0.06, 0.04], dtype=np.float64)
    return TableValue([
        ("l_extendedprice", from_numpy(price)),
        ("l_discount", from_numpy(discount)),
    ])


def test_figure_2b_parses_and_verifies():
    module = parse_module(FIGURE_2B)
    assert module.name == "ExampleQuery"
    assert list(module.methods) == ["main"]
    verify_module(module)


def test_figure_2b_executes(lineitem):
    module = parse_module(FIGURE_2B)
    result = run_module(module, {"lineitem": lineitem})
    assert isinstance(result, TableValue)
    assert result.column_names == ["RevenueChange"]
    expected = 200.0 * 0.05 + 300.0 * 0.06
    assert result.column("RevenueChange").data[0] == pytest.approx(expected)


def test_printer_round_trips():
    module = parse_module(FIGURE_2B)
    text = print_module(module)
    again = parse_module(text)
    assert print_module(again) == text


def test_udf_method_call(lineitem):
    source = """
    module WithUdf {
        def calcRevenueChangeScalar(price:f64, discount:f64): f64 {
            x0:f64 = @mul(price, discount);
            return x0;
        }
        def main(): f64 {
            t0:table = @load_table(`lineitem:sym);
            t1:f64 = check_cast(@column_value(t0, `l_extendedprice:sym), f64);
            t2:f64 = check_cast(@column_value(t0, `l_discount:sym), f64);
            t3:bool = @geq(t2, 0.05:f64);
            t4:f64 = @compress(t3, t1);
            t5:f64 = @compress(t3, t2);
            t6:f64 = @calcRevenueChangeScalar(t4, t5);
            t7:f64 = @sum(t6);
            return t7;
        }
    }
    """
    module = parse_module(source)
    verify_module(module)
    result = run_module(module, {"lineitem": lineitem})
    assert result.data[0] == pytest.approx(200.0 * 0.05 + 300.0 * 0.06)


def test_control_flow_if_else():
    source = """
    module Flow {
        def main(x:i64): i64 {
            c:bool = @gt(x, 10:i64);
            if (c) {
                r:i64 = @mul(x, 2:i64);
            } else {
                r:i64 = @add(x, 1:i64);
            }
            return r;
        }
    }
    """
    module = parse_module(source)
    verify_module(module)
    big = run_module(module, args=[vector([20], I64)])
    small = run_module(module, args=[vector([3], I64)])
    assert big.item() == 40
    assert small.item() == 4


def test_while_loop_accumulates():
    source = """
    module Loop {
        def main(n:i64): i64 {
            total:i64 = 0:i64;
            i:i64 = 0:i64;
            c:bool = @lt(i, n);
            while (c) {
                total:i64 = @add(total, i);
                i:i64 = @add(i, 1:i64);
                c:bool = @lt(i, n);
            }
            return total;
        }
    }
    """
    module = parse_module(source)
    verify_module(module)
    result = run_module(module, args=[vector([5], I64)])
    assert result.item() == 0 + 1 + 2 + 3 + 4


def test_nonscalar_condition_rejected_at_runtime():
    source = """
    module Bad {
        def main(x:bool): i64 {
            if (x) {
                r:i64 = 1:i64;
            } else {
                r:i64 = 0:i64;
            }
            return r;
        }
    }
    """
    module = parse_module(source)
    args = [Vector(__import__("repro.core.types", fromlist=["BOOL"]).BOOL,
                   np.array([True, False]))]
    with pytest.raises(HorseRuntimeError, match="scalar"):
        run_module(module, args=args)


def test_use_before_def_rejected_by_verifier():
    source = """
    module Bad {
        def main(): i64 {
            a:i64 = @add(b, 1:i64);
            b:i64 = 2:i64;
            return a;
        }
    }
    """
    with pytest.raises(HorseVerifyError, match="before assignment"):
        verify_module(parse_module(source))


def test_syntax_error_reports_location():
    with pytest.raises(HorseSyntaxError):
        parse_module("module M { def main(): i64 { return }")


def test_materialization_counter_counts_assignments(lineitem):
    module = parse_module(FIGURE_2B)
    interp = Interpreter(module, EvalContext({"lineitem": lineitem}))
    interp.run()
    # 11 assignment statements in Figure 2b's main.
    assert interp.materialized == 11


def test_date_literals_compare():
    source = """
    module Dates {
        def main(d:date): bool {
            c:bool = @leq(d, 1998-12-01:date);
            r:bool = @all(c);
            return r;
        }
    }
    """
    module = parse_module(source)
    dates = from_numpy(np.array(["1998-01-01", "1998-11-30"],
                                dtype="datetime64[D]"))
    assert run_module(module, args=[dates]).item() is True


def test_scalar_broadcasting_in_elementwise():
    source = """
    module Broadcast {
        def main(x:f64): f64 {
            y:f64 = @mul(x, 2.0:f64);
            return y;
        }
    }
    """
    module = parse_module(source)
    result = run_module(module, args=[vector([1.0, 2.0, 3.0], F64)])
    assert np.allclose(result.data, [2.0, 4.0, 6.0])

"""The unified pass pipeline: presets, resolution, the PassManager's
fixed-point driver, per-pass stats, IR dumping, and pass idempotence."""

import pytest

from repro.core import ir
from repro.core.parser import parse_module
from repro.core.passes import (DEFAULT_DUMP_DIR, MAX_ROUNDS, PRESET_NAMES,
                               MethodPass, OptimizeStats, PassManager,
                               Pipeline, custom_pipeline, preset,
                               registered_pass_names, resolve_pipeline)
from repro.core.printer import print_module
from repro.errors import OptimizerError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

Q6_LIKE = """
module Q {
    def scale(price:f64, discount:f64): f64 {
        x0:f64 = @mul(price, discount);
        return x0;
    }
    def main(): f64 {
        t0:table = @load_table(`lineitem:sym);
        t1:f64 = check_cast(@column_value(t0, `l_extendedprice:sym), f64);
        t2:f64 = check_cast(@column_value(t0, `l_discount:sym), f64);
        t3:bool = @geq(t2, 0.05:f64);
        t4:f64 = @compress(t3, t1);
        t5:f64 = @compress(t3, t2);
        t6:f64 = @scale(t4, t5);
        t7:f64 = @sum(t6);
        return t7;
    }
}
"""


class TestPresets:
    def test_preset_names_are_the_public_tuple(self):
        assert PRESET_NAMES == ("O0", "O1", "O2")
        for name in PRESET_NAMES:
            assert preset(name).is_preset

    def test_o0_is_plan_passes_only(self):
        pipe = preset("O0")
        assert [p.name for p in pipe.passes] == [
            "predicate-pushdown", "column-pruning"]
        assert pipe.ir_passes == []
        assert len(pipe.plan_passes) == 2

    def test_o1_adds_inline_and_the_fixed_point_round(self):
        pipe = preset("O1")
        names = [p.name for p in pipe.ir_passes]
        assert names == ["inline", "list-forwarding", "constprop",
                         "copyprop", "cse", "dce"]
        by_name = {p.name: p for p in pipe.ir_passes}
        assert not by_name["inline"].fixed_point
        for name in names[1:]:
            assert by_name[name].fixed_point, name

    def test_o2_adds_patterns_and_a_cleanup_dce(self):
        pipe = preset("O2")
        names = [p.name for p in pipe.ir_passes]
        assert names == ["inline", "list-forwarding", "constprop",
                         "copyprop", "cse", "dce", "patterns", "dce"]
        cleanup = pipe.ir_passes[-1]
        # The trailing dce is the silent cleanup variant: it neither
        # traces, records stats, nor snapshots into --dump-ir.
        assert not cleanup.traced and not cleanup.records \
            and not cleanup.checkpoint

    def test_unknown_preset_is_rejected(self):
        with pytest.raises(OptimizerError, match="unknown pipeline"):
            preset("O3")


class TestResolution:
    def test_none_maps_opt_level_to_preset(self):
        assert resolve_pipeline(None, opt_level="opt").fingerprint() == "O2"
        assert resolve_pipeline(None, opt_level="naive").fingerprint() \
            == "O0"

    def test_pipeline_passes_through(self):
        pipe = preset("O1")
        assert resolve_pipeline(pipe) is pipe

    def test_string_preset_and_comma_list(self):
        assert resolve_pipeline("O1").fingerprint() == "O1"
        pipe = resolve_pipeline("inline, dce")
        assert [p.name for p in pipe.passes] == ["inline", "dce"]
        assert pipe.fingerprint() == "custom(inline,dce)"

    def test_sequence_of_names(self):
        pipe = resolve_pipeline(["constprop", "dce"])
        assert [p.name for p in pipe.passes] == ["constprop", "dce"]

    def test_unknown_pass_names_the_registry(self):
        with pytest.raises(OptimizerError,
                           match="unknown pass 'loopfusion'"):
            resolve_pipeline("loopfusion")
        with pytest.raises(OptimizerError, match="registered passes"):
            resolve_pipeline("loopfusion")

    def test_empty_spec_is_rejected(self):
        with pytest.raises(OptimizerError, match="empty pass list"):
            custom_pipeline([])

    def test_registry_covers_both_levels(self):
        names = registered_pass_names()
        assert "predicate-pushdown" in names and "inline" in names
        for name in names:
            resolve_pipeline([name])  # every advertised name resolves


class TestPassManagerRun:
    def test_o2_inlines_and_collects_stats(self):
        module = parse_module(Q6_LIKE)
        manager = PassManager(preset("O2"))
        optimized, stats = manager.run_module(module, entry="main")
        assert list(optimized.methods) == ["main"]
        assert stats.pipeline == "O2"
        assert stats.inlined_methods_removed == 1
        assert not stats.fixed_point_exhausted
        by_name = {ps.name: ps for ps in stats.pass_stats}
        assert by_name["inline"].rewrites == 1
        assert by_name["dce"].runs >= 1
        for ps in stats.pass_stats:
            assert ps.seconds >= 0.0

    def test_custom_pipeline_runs_only_named_passes(self):
        module = parse_module(Q6_LIKE)
        manager = PassManager(custom_pipeline(["inline", "dce"]))
        optimized, stats = manager.run_module(module, entry="main")
        assert {ps.name for ps in stats.pass_stats} == {"inline", "dce"}
        assert list(optimized.methods) == ["main"]

    def test_pass_spans_are_emitted_under_the_active_tracer(self):
        module = parse_module(Q6_LIKE)
        tracer = Tracer()
        manager = PassManager(preset("O2"))
        with tracer.span("optimize"):
            manager.run_module(module, entry="main", tracer=tracer)
        root = tracer.roots[0]
        names = {span.name for span in root.walk()}
        assert "pass:inline" in names
        assert any(name.startswith("pass:dce") for name in names)

    def test_fixed_point_exhaustion_is_observable(self):
        # A pass that rewrites on every application never converges.
        def oscillate(method):
            return True

        pipe = Pipeline("wiggle",
                        [MethodPass("oscillate", oscillate,
                                    fixed_point=True)])
        module = parse_module(Q6_LIKE)
        metrics = MetricsRegistry()
        tracer = Tracer()
        manager = PassManager(pipe, max_rounds=3)
        with tracer.span("optimize") as span:
            _, stats = manager.run_module(
                module, entry="main", metrics=metrics, span=span)
        assert stats.fixed_point_exhausted
        assert stats.rounds == 3
        counter = metrics.counter("optimizer.fixed_point_exhausted")
        assert counter.value == 1
        root = tracer.roots[0]
        assert root.attrs["fixed_point_exhausted"] is True
        assert root.attrs["rounds"] == 3

    def test_convergent_run_does_not_flag_exhaustion(self):
        module = parse_module(Q6_LIKE)
        metrics = MetricsRegistry()
        manager = PassManager(preset("O2"), max_rounds=MAX_ROUNDS)
        _, stats = manager.run_module(module, entry="main",
                                      metrics=metrics)
        assert not stats.fixed_point_exhausted
        assert metrics.counter(
            "optimizer.fixed_point_exhausted").value == 0

    def test_pass_stat_dict_round_trip(self):
        module = parse_module(Q6_LIKE)
        _, stats = PassManager(preset("O2")).run_module(module,
                                                        entry="main")
        rows = [ps.to_dict() for ps in stats.pass_stats]
        assert {row["name"] for row in rows} \
            >= {"inline", "dce", "patterns"}
        for row in rows:
            assert set(row) == {"name", "level", "runs", "rewrites",
                                "seconds"}


class TestDumpIR:
    def test_snapshots_are_numbered_and_labelled(self, tmp_path):
        module = parse_module(Q6_LIKE)
        dump = tmp_path / "snapshots"
        manager = PassManager(custom_pipeline(["inline", "dce"]),
                              dump_dir=str(dump))
        manager.run_module(module, entry="main")
        names = sorted(p.name for p in dump.iterdir())
        assert names[0] == "000-input.hir"
        assert names[1] == "001-inline.hir"
        assert any(name.endswith("-dce.hir") for name in names[2:])
        # The input snapshot still contains the UDF; later ones do not.
        assert "def scale" in (dump / "000-input.hir").read_text()
        assert "def scale" not in (dump / names[-1]).read_text()

    def test_default_dump_dir_constant(self):
        assert DEFAULT_DUMP_DIR == "ir-dump"


def _ir_pass_names():
    """Every registered IR pass name (plan passes excluded).

    Classified per-pass through ``custom_pipeline`` (O0 no longer
    contains every plan pass: selectivity-reorder only rides at
    O1/O2)."""
    return [n for n in registered_pass_names()
            if not custom_pipeline([n]).plan_passes]


class TestIdempotence:
    """Applying any registered pass twice must equal applying it once.

    Runs over the workload-shaped module above plus a Black-Scholes-
    style branching kernel — the two IR shapes the parity suites
    exercise."""

    BS_LIKE = """
    module BS {
        def main(spot:f64, strike:f64): f64 {
            a:f64 = @div(spot, strike);
            b:f64 = @log(a);
            c:f64 = @mul(b, 2.0:f64);
            d:f64 = @mul(b, 2.0:f64);
            e:f64 = @add(c, d);
            f:f64 = @mul(e, 1.0:f64);
            return f;
        }
    }
    """

    @pytest.mark.parametrize("source", [Q6_LIKE, BS_LIKE],
                             ids=["tpch-q6", "black-scholes"])
    @pytest.mark.parametrize("name", _ir_pass_names())
    def test_pass_twice_equals_once(self, source, name):
        once = parse_module(source)
        twice = parse_module(source)
        once, _ = PassManager(custom_pipeline([name])) \
            .run_module(once, entry="main")
        twice, _ = PassManager(custom_pipeline([name, name])) \
            .run_module(twice, entry="main")
        assert print_module(once) == print_module(twice)

    def test_whole_o2_pipeline_is_idempotent(self):
        module = parse_module(Q6_LIKE)
        once, _ = PassManager(preset("O2")).run_module(module,
                                                       entry="main")
        again, _ = PassManager(preset("O2")).run_module(once,
                                                        entry="main")
        assert print_module(once) == print_module(again)

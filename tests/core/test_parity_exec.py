"""Property-style parity suite: interpreter vs. compiled vs. chunked.

The three execution paths — reference interpreter (HorsePower-Naive
semantics), compiled single-chunk, and chunked multi-threaded — must be
*bit-identical*: same values, same output dtypes, and the same errors
(type and message) on the failure paths.  Covers every reduction combine,
empty inputs, broadcast scalars in either argument order, int32 overflow
wraparound across chunk boundaries, and Table/List cast rejection.
"""

import numpy as np
import pytest

from repro.core import types as ht
from repro.core.compiler import compile_module
from repro.core.execpool import (
    ExecutorPool, close_shared_pool, get_pool, shared_pool,
)
from repro.core.interp import run_module
from repro.core.parser import parse_module
from repro.core.values import TableValue, Vector, coerce, from_numpy
from repro.errors import BuiltinError, HorseRuntimeError

#: Forces many chunks even on small inputs.
TINY_CHUNK = 64


def _reduce_module(red: str, in_type: str, out_type: str) -> str:
    return f"""
    module P {{
        def main(x:{in_type}, t:{in_type}): {out_type} {{
            m:bool = @geq(x, t);
            c:{in_type} = @compress(m, x);
            r:{out_type} = @{red}(c);
            return r;
        }}
    }}
    """


def _all_paths(source: str, args):
    """Run all three paths; returns [(label, result_or_error), ...]."""
    module = parse_module(source)
    outcomes = []
    for label, runner in [
        ("interp", lambda: run_module(module, args=list(args))),
        ("naive", lambda: compile_module(module, "naive").run(
            args=list(args))),
        ("opt-1t", lambda: compile_module(module, "opt").run(
            args=list(args))),
        ("opt-4t", lambda: compile_module(module, "opt").run(
            args=list(args), n_threads=4, chunk_size=TINY_CHUNK)),
    ]:
        try:
            outcomes.append((label, runner()))
        except Exception as exc:  # noqa: BLE001 - parity includes errors
            outcomes.append((label, exc))
    return outcomes


def _assert_identical(outcomes):
    """Every path produced the same value+dtype, or the same error."""
    ref_label, ref = outcomes[0]
    for label, got in outcomes[1:]:
        if isinstance(ref, Exception):
            assert isinstance(got, Exception), \
                f"{ref_label} raised {ref!r} but {label} returned {got!r}"
            assert type(got) is type(ref), (label, got, ref)
            assert str(got) == str(ref), (label, got, ref)
            continue
        assert not isinstance(got, Exception), \
            f"{ref_label} returned but {label} raised {got!r}"
        assert isinstance(got, Vector) and isinstance(ref, Vector)
        assert got.type == ref.type, (label, got.type, ref.type)
        assert got.data.dtype == ref.data.dtype, \
            f"{label}: dtype {got.data.dtype} != {ref.data.dtype}"
        np.testing.assert_array_equal(got.data, ref.data, err_msg=label)


REDUCTIONS = [
    ("sum", "i32", "i64"), ("sum", "i64", "i64"),
    ("sum", "f32", "f32"), ("sum", "f64", "f64"),
    ("prod", "i64", "i64"), ("prod", "f64", "f64"),
    ("min", "i32", "i32"), ("min", "f64", "f64"),
    ("max", "i64", "i64"), ("max", "f32", "f32"),
    ("count", "f64", "i64"),
    ("avg", "f64", "f64"),
]

_NP_OF = {"i32": np.int32, "i64": np.int64,
          "f32": np.float32, "f64": np.float64}


class TestReductionCombineParity:
    @pytest.mark.parametrize("red,in_type,out_type", REDUCTIONS)
    def test_filtered_reduction_all_paths(self, red, in_type, out_type):
        rng = np.random.default_rng(11)
        data = rng.integers(-50, 50, size=1000).astype(_NP_OF[in_type])
        x = from_numpy(data)
        t = from_numpy(np.asarray([0], dtype=_NP_OF[in_type]))
        source = _reduce_module(red, in_type, out_type)
        _assert_identical(_all_paths(source, [x, t]))

    @pytest.mark.parametrize("red", ["any", "all"])
    def test_bool_reductions(self, red):
        rng = np.random.default_rng(3)
        data = rng.uniform(-1, 1, 1000)
        source = f"""
        module P {{
            def main(x:f64, t:f64): bool {{
                m:bool = @gt(x, t);
                r:bool = @{red}(m);
                return r;
            }}
        }}
        """
        for threshold in (-2.0, 0.0, 2.0):
            args = [from_numpy(data), from_numpy(np.asarray([threshold]))]
            _assert_identical(_all_paths(source, args))

    def test_int32_sum_wraps_identically_across_chunks(self):
        # Per-chunk partials accumulate as int64 inside the kernel;
        # the combine must truncate back to the declared i32 so chunked
        # wraparound matches the interpreter's single np.sum.
        data = np.full(1000, 2**30, dtype=np.int32)
        source = """
        module P {
            def main(x:i32, t:i32): i32 {
                m:bool = @geq(x, t);
                c:i32 = @compress(m, x);
                r:i32 = @sum(c);
                return r;
            }
        }
        """
        args = [from_numpy(data),
                from_numpy(np.asarray([0], dtype=np.int32))]
        _assert_identical(_all_paths(source, args))

    def test_bool_sum_keeps_declared_output_dtype(self):
        # Summing a bool mask: partials are ints; the declared i64
        # output must come back as i64 on every path (the old combine
        # let NumPy pick the accumulator dtype).
        data = np.arange(1000, dtype=np.float64)
        source = """
        module P {
            def main(x:f64, t:f64): i64 {
                m:bool = @geq(x, t);
                n:i64 = check_cast(@sum(m), i64);
                return n;
            }
        }
        """
        args = [from_numpy(data), from_numpy(np.asarray([500.0]))]
        _assert_identical(_all_paths(source, args))


class TestEmptyInputParity:
    def _args(self, dtype=np.float64):
        return [from_numpy(np.empty(0, dtype=dtype)),
                from_numpy(np.asarray([0], dtype=dtype))]

    @pytest.mark.parametrize("red,out_type,identity", [
        ("sum", "f64", 0.0), ("prod", "f64", 1.0), ("count", "i64", 0),
    ])
    def test_identity_reductions_on_empty(self, red, out_type, identity):
        source = _reduce_module(red, "f64", out_type)
        outcomes = _all_paths(source, self._args())
        _assert_identical(outcomes)
        assert outcomes[0][1].data[0] == identity

    @pytest.mark.parametrize("red", ["min", "max"])
    def test_min_max_on_empty_raise_builtin_error_everywhere(self, red):
        source = _reduce_module(red, "f64", "f64")
        outcomes = _all_paths(source, self._args())
        _assert_identical(outcomes)
        for label, outcome in outcomes:
            assert isinstance(outcome, BuiltinError), (label, outcome)
            assert str(outcome) == f"@{red} of an empty vector", label

    @pytest.mark.parametrize("red", ["min", "max"])
    def test_min_max_over_all_false_mask(self, red):
        # Non-empty input whose compressed selection is empty: the fused
        # per-chunk np.min used to leak a raw ValueError ("zero-size
        # array to reduction operation") instead of the builtin's error.
        source = _reduce_module(red, "f64", "f64")
        args = [from_numpy(np.full(500, -1.0)),
                from_numpy(np.asarray([0.0]))]
        outcomes = _all_paths(source, args)
        _assert_identical(outcomes)
        for label, outcome in outcomes:
            assert isinstance(outcome, BuiltinError), (label, outcome)
            assert str(outcome) == f"@{red} of an empty vector", label

    @pytest.mark.parametrize("red", ["min", "max"])
    def test_min_max_partial_chunk_emptiness_is_fine(self, red):
        # Only SOME chunks select nothing: the merge must drop the empty
        # partials and reduce over the rest, not raise.
        data = np.full(1000, -1.0)
        data[777] = 42.0
        source = _reduce_module(red, "f64", "f64")
        args = [from_numpy(data), from_numpy(np.asarray([0.0]))]
        outcomes = _all_paths(source, args)
        _assert_identical(outcomes)
        assert outcomes[0][1].data[0] == 42.0

    @pytest.mark.parametrize("red", ["min", "max"])
    def test_c_backend_min_max_over_all_false_mask(self, red):
        from repro.core.codegen.cgen import c_backend_available
        if not c_backend_available():
            pytest.skip("gcc not available")
        source = _reduce_module(red, "f64", "f64")
        module = parse_module(source)
        program = compile_module(module, "opt", backend="c")
        args = [from_numpy(np.full(500, -1.0)),
                from_numpy(np.asarray([0.0]))]
        with pytest.raises(BuiltinError,
                           match=f"@{red} of an empty vector"):
            program.run(args=list(args))

    @pytest.mark.parametrize("red,expected", [("any", False),
                                              ("all", True)])
    def test_bool_reductions_on_empty(self, red, expected):
        source = f"""
        module P {{
            def main(x:f64, t:f64): bool {{
                m:bool = @gt(x, t);
                r:bool = @{red}(m);
                return r;
            }}
        }}
        """
        outcomes = _all_paths(source, self._args())
        _assert_identical(outcomes)
        assert outcomes[0][1].data[0] == expected
        assert outcomes[0][1].data.dtype == np.bool_


BROADCAST_MODULE = """
module P {
    def main(%s): f64 {
        a:f64 = @mul(x, y);
        r:f64 = @sum(a);
        return r;
    }
}
"""


class TestBroadcastAndLengths:
    @pytest.mark.parametrize("params", ["x:f64, y:f64", "y:f64, x:f64"])
    def test_length1_broadcast_in_either_position(self, params):
        # A length-1 streamed input is a broadcast scalar no matter
        # which argument slot it occupies.
        long = from_numpy(np.arange(1000, dtype=np.float64))
        one = from_numpy(np.asarray([3.0]))
        source = BROADCAST_MODULE % params
        args = [long, one] if params.startswith("x") else [one, long]
        _assert_identical(_all_paths(source, args))

    @pytest.mark.parametrize("la,lb", [(0, 500), (500, 0), (300, 500)])
    def test_streamed_length_mismatch_raises(self, la, lb):
        # 0-vs-n used to dodge the length check entirely and surface a
        # kernel-internal NumPy broadcast error instead.
        a = np.arange(la, dtype=np.float64)
        b = np.arange(lb, dtype=np.float64)
        source = BROADCAST_MODULE % "x:f64, y:f64"
        module = parse_module(source)
        program = compile_module(module, "opt")
        with pytest.raises(HorseRuntimeError):
            program.run(args=[from_numpy(a), from_numpy(b)],
                        n_threads=2, chunk_size=TINY_CHUNK)


class TestCoerceParity:
    def test_table_to_vector_cast_fails_identically(self):
        table = TableValue([
            ("c", from_numpy(np.arange(4, dtype=np.float64)))])
        source = """
        module P {
            def main(t:table): f64 {
                x:f64 = check_cast(t, f64);
                r:f64 = @sum(x);
                return r;
            }
        }
        """
        outcomes = dict(_all_paths(source, [table]))
        # Every path rejects the cast with a HorseRuntimeError ...
        for label, outcome in outcomes.items():
            assert isinstance(outcome, HorseRuntimeError), \
                (label, outcome)
        # ... and the statement-at-a-time paths (interpreter vs compiled
        # naive, which share the coerce helper) use the exact message.
        # Fused opt mode rejects at the segment-input guard instead.
        assert str(outcomes["interp"]) == str(outcomes["naive"])
        assert "cannot cast TableValue" in str(outcomes["interp"])

    def test_shared_helper_is_used_by_both_runtimes(self):
        from repro.core import compiler, interp
        assert compiler._coerce is coerce
        assert interp.Interpreter._coerce is coerce

    def test_coerce_passes_matching_containers(self):
        table = TableValue([
            ("c", from_numpy(np.arange(2, dtype=np.float64)))])
        assert coerce(table, ht.TABLE) is table
        assert coerce(table, ht.WILDCARD) is table
        with pytest.raises(HorseRuntimeError):
            coerce(table, ht.F64)


class TestNaNMinMaxParity:
    """np.minimum/np.maximum/np.min/np.max propagate NaN; C's
    fmin/fmax (and a plain ternary) return the non-NaN operand, which
    silently flipped downstream comparison masks."""

    NAN_MODULE = """
    module P {
        def main(x:f64, y:f64): f64 {
            t:f64 = @%s(x, y);
            m:bool = @lt(t, y);
            c:f64 = @compress(m, t);
            r:f64 = @%s(c);
            return r;
        }
    }
    """

    @pytest.mark.parametrize("ew,red", [("min2", "sum"), ("max2", "sum"),
                                        ("min2", "min"), ("max2", "max")])
    def test_nan_operands_propagate_on_all_paths(self, ew, red):
        x = np.asarray([-1.0, float("nan"), 2.0, float("nan"), 0.5])
        y = np.asarray([1.0, 3.0, float("nan"), float("nan"), 0.25])
        source = self.NAN_MODULE % (ew, red)
        args = [from_numpy(x), from_numpy(y)]
        _assert_identical(_all_paths(source, args))

    @pytest.mark.parametrize("ew", ["min2", "max2"])
    def test_c_backend_propagates_nan(self, ew):
        from repro.core.codegen.cgen import c_backend_available
        if not c_backend_available():
            pytest.skip("gcc not available")
        # The falsifying shape from the backend fuzzer: sqrt(-1) -> NaN
        # feeding min2, whose result gates a compress into a sum.
        source = f"""
        module P {{
            def main(x:f64): f64 {{
                s:f64 = @sqrt(x);
                t:f64 = @{ew}(s, x);
                m:bool = @lt(t, x);
                c:f64 = @compress(m, s);
                r:f64 = @sum(c);
                return r;
            }}
        }}
        """
        module = parse_module(source)
        args = [from_numpy(np.asarray([-1.0, 4.0, -9.0, 0.0]))]
        ref = run_module(module, args=list(args))
        native = compile_module(module, "opt", backend="c").run(
            args=list(args))
        np.testing.assert_array_equal(native.data, ref.data)

    @pytest.mark.parametrize("red", ["min", "max"])
    def test_c_reduction_propagates_nan(self, red):
        from repro.core.codegen.cgen import c_backend_available
        if not c_backend_available():
            pytest.skip("gcc not available")
        source = f"""
        module P {{
            def main(x:f64): f64 {{
                s:f64 = @sqrt(x);
                r:f64 = @{red}(s);
                return r;
            }}
        }}
        """
        module = parse_module(source)
        args = [from_numpy(np.asarray([4.0, -1.0, 9.0]))]
        ref = run_module(module, args=list(args))
        native = compile_module(module, "opt", backend="c").run(
            args=list(args))
        assert np.isnan(ref.data[0])
        np.testing.assert_array_equal(native.data, ref.data)


class TestExecutorPool:
    def test_shared_pool_is_reused_across_calls(self):
        close_shared_pool()
        first = get_pool(4)
        second = get_pool(2)
        assert first is second
        assert shared_pool().stats.acquisitions >= 2
        close_shared_pool()

    def test_pool_grows_and_closes_cleanly(self):
        with ExecutorPool() as pool:
            small = pool.get(2)
            assert pool.workers >= 2
            big = pool.get(pool.workers + 3)
            assert pool.workers >= 3
            assert list(big.map(lambda v: v * v, range(5))) == \
                [0, 1, 4, 9, 16]
            assert small is big or small._shutdown
        assert pool.closed
        with pytest.raises(RuntimeError):
            pool.get(2)

    def test_get_pool_serial_is_none(self):
        assert get_pool(1) is None

    def test_shared_pool_recreates_after_close(self):
        """Ambient callers must never receive a closed pool: a close
        (test teardown, the interpreter-exit hook) makes the next
        ``shared_pool()`` build a fresh one."""
        pool = shared_pool()
        close_shared_pool()
        assert pool.closed
        fresh = shared_pool()
        try:
            assert fresh is not pool
            assert not fresh.closed
        finally:
            close_shared_pool()

    def test_failing_kernel_leaks_no_pool_threads(self):
        import threading

        close_shared_pool()
        source = _reduce_module("min", "f64", "f64")
        module = parse_module(source)
        program = compile_module(module, "opt")
        empty = [from_numpy(np.empty(0)),
                 from_numpy(np.asarray([0.0]))]
        for _ in range(5):
            with pytest.raises(BuiltinError):
                program.run(args=list(empty), n_threads=4,
                            chunk_size=TINY_CHUNK)
        workers = [t for t in threading.enumerate()
                   if t.name.startswith("repro-exec")]
        assert len(workers) <= shared_pool().workers
        close_shared_pool()

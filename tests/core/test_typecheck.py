"""The compile-time type/shape checker (the semantic half of
``--verify-ir``): seeded ill-typed mutations are rejected before
execution with a diagnostic naming the statement, every workload
compiles clean with verification on (bit-identical to the unverified
compile), and the per-method verdict is cached across passes."""

import numpy as np
import pytest

from repro.core import ir
from repro.core import types as ht
from repro.core.analysis import (SCALAR, broadcast_shapes, check_method,
                                 check_module, infer_method)
from repro.core.analysis.typeshape import vector_shape
from repro.core.parser import parse_module
from repro.core.passes import MethodPass, PassManager, Pipeline, preset
from repro.core.printer import print_module
from repro.data import generate_tpch
from repro.data.blackscholes import load_blackscholes_table
from repro.engine.storage import Database
from repro.errors import HorseTypeError, PassVerificationError
from repro.horsepower import HorsePowerSystem
from repro.sql.udf import UDFRegistry
from repro.workloads.bs_queries import (SCALAR_QUERIES, TABLE_QUERIES,
                                        register_bs_udfs)
from repro.workloads.tpch_queries import (PLAIN_QUERIES, UDF_QUERIES,
                                          register_tpch_udfs)


def _method(body, params=(), ret=ht.F64):
    return ir.Method("main", list(params), ret, body)


class TestSeededIllTypedMutations:
    """The acceptance gate: each mutation class is caught at compile
    time, and the diagnostic names the offending statement."""

    def test_wrong_element_type_into_arith_builtin(self):
        method = _method([
            ir.Assign("x", ht.F64, ir.BuiltinCall("mul", [
                ir.Var("s"), ir.Literal(2.0, ht.F64)])),
            ir.Return(ir.Var("x")),
        ], params=[ir.Param("s", ht.STR)])
        with pytest.raises(HorseTypeError) as exc:
            check_method(method)
        assert "@mul" in str(exc.value)
        assert "numeric" in str(exc.value)
        assert "x:f64 = @mul(s, 2.0:f64);" in str(exc.value)

    def test_broadcast_incompatible_lengths(self):
        method = _method([
            ir.Assign("a", ht.I64, ir.BuiltinCall("range", [
                ir.Literal(5, ht.I64)])),
            ir.Assign("b", ht.I64, ir.BuiltinCall("range", [
                ir.Literal(7, ht.I64)])),
            ir.Assign("c", ht.I64, ir.BuiltinCall("add", [
                ir.Var("a"), ir.Var("b")])),
            ir.Return(ir.Var("c")),
        ], ret=ht.I64)
        with pytest.raises(HorseTypeError) as exc:
            check_method(method)
        assert "5 vs 7" in str(exc.value)
        assert "c:i64 = @add(a, b);" in str(exc.value)

    def test_bad_cast_is_rejected(self):
        method = _method([
            ir.Assign("x", ht.F64, ir.Cast(ir.Var("t"), ht.F64)),
            ir.Return(ir.Var("x")),
        ], params=[ir.Param("t", ht.TABLE)])
        with pytest.raises(HorseTypeError, match="cannot cast"):
            check_method(method)

    def test_bool_constraint_on_compress_mask(self):
        method = _method([
            ir.Assign("m", ht.F64, ir.BuiltinCall("mul", [
                ir.Var("v"), ir.Literal(2.0, ht.F64)])),
            ir.Assign("c", ht.F64, ir.BuiltinCall("compress", [
                ir.Var("m"), ir.Var("v")])),
            ir.Return(ir.Var("c")),
        ], params=[ir.Param("v", ht.F64)])
        with pytest.raises(HorseTypeError, match="bool"):
            check_method(method)

    def test_comparison_across_groups_is_rejected(self):
        method = _method([
            ir.Assign("c", ht.BOOL, ir.BuiltinCall("lt", [
                ir.Var("s"), ir.Literal(1.0, ht.F64)])),
            ir.Return(ir.Var("c")),
        ], params=[ir.Param("s", ht.STR)], ret=ht.BOOL)
        with pytest.raises(HorseTypeError, match="compare"):
            check_method(method)

    def test_method_call_argument_mismatch(self):
        module = parse_module("""
        module M {
            def helper(x:f64): f64 {
                y:f64 = @mul(x, 2.0:f64);
                return y;
            }
            def main(t:table): f64 {
                b:f64 = @helper(t);
                return b;
            }
        }
        """)
        with pytest.raises(HorseTypeError, match="helper"):
            check_module(module)

    def test_clean_module_checks_silently(self):
        module = parse_module("""
        module M {
            def main(v:f64): f64 {
                m:bool = @gt(v, 1.0:f64);
                c:f64 = @compress(m, v);
                s:f64 = @sum(c);
                return s;
            }
        }
        """)
        check_module(module)


class TestShapeLattice:
    def test_scalar_broadcasts_with_anything(self):
        shape = broadcast_shapes([SCALAR, vector_shape(length=7)])
        assert shape.length == 7

    def test_equal_lengths_merge(self):
        shape = broadcast_shapes([vector_shape(length=7),
                                  vector_shape(length=7)])
        assert shape.length == 7

    def test_unequal_lengths_raise(self):
        with pytest.raises(HorseTypeError, match="3 vs 7"):
            broadcast_shapes([vector_shape(length=3),
                              vector_shape(length=7)],
                             context="@add")

    def test_matching_tokens_flow_through(self):
        a = vector_shape(token=("rows", "t"))
        b = vector_shape(token=("rows", "t"))
        assert broadcast_shapes([a, b]).token == ("rows", "t")

    def test_compressed_vectors_share_mask_token(self):
        # The Q6 fact: two compressions by the same mask agree.
        module = parse_module("""
        module M {
            def main(x:f64, y:f64): f64 {
                m:bool = @gt(x, 1.0:f64);
                a:f64 = @compress(m, x);
                b:f64 = @compress(m, y);
                p:f64 = @mul(a, b);
                s:f64 = @sum(p);
                return s;
            }
        }
        """)
        check_module(module)  # must not report a mismatch
        facts = infer_method(module.methods["main"], module)
        body = module.methods["main"].body
        shape_a = facts.stmt_facts[id(body[1])].shape
        shape_b = facts.stmt_facts[id(body[2])].shape
        assert shape_a.token == shape_b.token


class TestPassManagerIntegration:
    """verify=True runs the semantic checker after every pass and
    caches the per-method verdict."""

    def _ill_typed_module(self):
        module = parse_module("""
        module M {
            def main(s:str): f64 {
                x:f64 = @mul(s, 2.0:f64);
                return x;
            }
        }
        """)
        return module

    def test_ill_typed_input_fails_before_any_pass(self):
        manager = PassManager(preset("O2"), verify=True)
        with pytest.raises(PassVerificationError) as exc:
            manager.run_module(self._ill_typed_module(), entry="main")
        assert exc.value.pass_name == "input"

    def test_typecheck_is_a_registered_pass(self):
        from repro.core.passes import (registered_pass_names,
                                       resolve_pipeline)
        assert "typecheck" in registered_pass_names()
        pipeline = resolve_pipeline(["typecheck"])
        module = parse_module("""
        module M {
            def main(v:f64): f64 {
                x:f64 = @mul(v, 2.0:f64);
                return x;
            }
        }
        """)
        manager = PassManager(pipeline)
        manager.run_module(module, entry="main")  # clean: no raise

    def test_typecheck_pass_raises_on_bad_module(self):
        from repro.core.passes import resolve_pipeline
        manager = PassManager(resolve_pipeline(["typecheck"]))
        with pytest.raises(HorseTypeError):
            manager.run_module(self._ill_typed_module(), entry="main")

    def test_verdict_is_cached_across_passes(self):
        module = parse_module("""
        module M {
            def main(v:f64): f64 {
                x:f64 = @mul(v, 2.0:f64);
                return x;
            }
        }
        """)
        manager = PassManager(preset("O2"), verify=True)
        manager.run_module(module, entry="main")
        cache = manager.analyses
        # One miss to compute main's verdict; every later pass hits.
        typecheck_misses = cache.misses
        assert typecheck_misses >= 1
        assert cache.hits > cache.misses

    def test_invalidation_forces_recheck(self):
        module = parse_module("""
        module M {
            def main(v:f64): f64 {
                x:f64 = @mul(v, 2.0:f64);
                return x;
            }
        }
        """)

        def break_types(method):
            # A buggy rewrite: retype the multiply's operand slot.
            method.body[0] = ir.Assign(
                "x", ht.F64,
                ir.BuiltinCall("mul", [ir.SymbolLit("oops"),
                                       ir.Literal(2.0, ht.F64)]))
            return True

        bad = MethodPass("buggy", break_types,
                         invalidates=("typecheck",))
        manager = PassManager(Pipeline("custom", [bad]), verify=True)
        with pytest.raises(PassVerificationError) as exc:
            manager.run_module(module, entry="main")
        assert exc.value.pass_name == "buggy"

    def test_preserving_pass_keeps_verdict(self):
        module = parse_module("""
        module M {
            def main(v:f64): f64 {
                x:f64 = @mul(v, 2.0:f64);
                return x;
            }
        }
        """)
        noop = MethodPass("noop", lambda method: True, invalidates=())
        manager = PassManager(Pipeline("custom", [noop]), verify=True)
        manager.run_module(module, entry="main")
        # input check missed once; the post-pass check hit the cache
        # because the pass declared it invalidates nothing.
        assert manager.analyses.hits >= 1
        assert manager.analyses.misses == 1


@pytest.fixture(scope="module")
def tpch_hp():
    db = generate_tpch(scale_factor=0.002)
    hp = HorsePowerSystem(db, UDFRegistry())
    register_tpch_udfs(hp)
    return hp


@pytest.fixture(scope="module")
def bs_hp():
    db = Database()
    load_blackscholes_table(db, 400)
    hp = HorsePowerSystem(db, UDFRegistry())
    register_bs_udfs(hp)
    return hp


class TestWorkloadsTypecheckClean:
    """Every workload compiles under ``--verify-ir`` (now structural
    *and* semantic) with output bit-identical to the unverified
    compile."""

    @pytest.mark.parametrize("name", sorted(PLAIN_QUERIES))
    def test_tpch_plain(self, tpch_hp, name):
        self._assert_identical(tpch_hp, PLAIN_QUERIES[name])

    @pytest.mark.parametrize("name", sorted(UDF_QUERIES))
    def test_tpch_udf(self, tpch_hp, name):
        self._assert_identical(tpch_hp, UDF_QUERIES[name])

    @pytest.mark.parametrize("name", sorted(SCALAR_QUERIES))
    def test_bs_scalar(self, bs_hp, name):
        self._assert_identical(bs_hp, SCALAR_QUERIES[name])

    @pytest.mark.parametrize("name", sorted(TABLE_QUERIES))
    def test_bs_table(self, bs_hp, name):
        self._assert_identical(bs_hp, TABLE_QUERIES[name])

    @staticmethod
    def _assert_identical(hp, sql):
        unverified = hp.compile_sql(sql)
        verified = hp.compile_sql(sql, verify_ir=True)
        assert print_module(verified.program.module) \
            == print_module(unverified.program.module)

    def test_results_match_with_verification(self, bs_hp):
        sql = TABLE_QUERIES["bs0_base"]
        plain = bs_hp.run_sql(sql, use_cache=False)
        checked = bs_hp.run_sql(sql, verify_ir=True, use_cache=False)
        for name in plain.column_names:
            a = np.asarray(plain.column(name).data)
            b = np.asarray(checked.column(name).data)
            assert np.array_equal(a, b, equal_nan=True), name

"""The inter-pass IR verifier (``--verify-ir``): seeded mutations are
rejected with the right error, and every workload module verifies
clean — before and after optimization."""

import pytest

from repro.core import ir
from repro.core import types as ht
from repro.core.parser import parse_module
from repro.core.passes import (MethodPass, PassManager, Pipeline,
                               custom_pipeline, preset)
from repro.core.verify_ir import verify_ir_method, verify_ir_module
from repro.data import generate_tpch
from repro.data.blackscholes import load_blackscholes_table
from repro.engine.storage import Database
from repro.errors import HorseVerifyError, PassVerificationError
from repro.horsepower import HorsePowerSystem
from repro.sql.udf import UDFRegistry
from repro.workloads.bs_queries import (SCALAR_QUERIES, TABLE_QUERIES,
                                        register_bs_udfs)
from repro.workloads.tpch_queries import (PLAIN_QUERIES, UDF_QUERIES,
                                          register_tpch_udfs)

CLEAN = """
module M {
    def helper(x:f64): f64 {
        y:f64 = @mul(x, 2.0:f64);
        return y;
    }
    def main(a:f64): f64 {
        b:f64 = @helper(a);
        c:f64 = @add(b, 1.0:f64);
        return c;
    }
}
"""


def _module():
    return parse_module(CLEAN)


class TestSeededMutations:
    def test_clean_module_verifies(self):
        verify_ir_module(_module())

    def test_use_before_def_is_rejected(self):
        module = _module()
        main = module.methods["main"]
        # Reference a variable no statement ever assigns.
        main.body[1].expr.args[0] = ir.Var("ghost")
        with pytest.raises(HorseVerifyError, match="ghost"):
            verify_ir_module(module)

    def test_wrong_builtin_arity_is_rejected(self):
        module = _module()
        main = module.methods["main"]
        main.body[1].expr = ir.BuiltinCall("add", [ir.Var("b")])
        with pytest.raises(HorseVerifyError, match="add"):
            verify_ir_method(main, module)

    def test_unknown_builtin_is_a_verify_error(self):
        module = _module()
        main = module.methods["main"]
        main.body[1].expr = ir.BuiltinCall("frobnicate", [ir.Var("b")])
        with pytest.raises(HorseVerifyError, match="unknown builtin"):
            verify_ir_method(main, module)

    def test_dangling_method_ref_is_rejected(self):
        module = _module()
        # Simulate a buggy inliner: drop the helper but keep the call.
        del module.methods["helper"]
        with pytest.raises(HorseVerifyError, match="helper"):
            verify_ir_module(module)

    def test_orphaned_statement_is_rejected(self):
        module = _module()
        helper = module.methods["helper"]
        helper.body.append(ir.Return(ir.Var("y")))
        with pytest.raises(HorseVerifyError, match="orphaned"):
            verify_ir_module(module)

    def test_literal_type_mismatch_is_rejected(self):
        module = _module()
        helper = module.methods["helper"]
        helper.body[0] = ir.Assign("y", ht.I64,
                                   ir.Literal(2.0, ht.F64))
        with pytest.raises(HorseVerifyError, match="type mismatch"):
            verify_ir_module(module)

    def test_empty_module_is_rejected(self):
        module = _module()
        module.methods.clear()
        with pytest.raises(HorseVerifyError, match="no methods"):
            verify_ir_module(module)

    def test_return_type_mismatch_is_rejected(self):
        module = _module()
        helper = module.methods["helper"]
        # Declared f64, but the returned variable is declared i64.
        helper.body[0] = ir.Assign("y", ht.I64, ir.Literal(2, ht.I64))
        with pytest.raises(HorseVerifyError,
                           match="return type mismatch"):
            verify_ir_method(helper, module)

    def test_return_literal_type_mismatch_is_rejected(self):
        module = _module()
        helper = module.methods["helper"]
        helper.body[1] = ir.Return(ir.Literal(1, ht.I64))
        with pytest.raises(HorseVerifyError,
                           match="return type mismatch"):
            verify_ir_method(helper, module)

    def test_conflicting_redeclaration_opts_out_of_return_check(self):
        # A variable declared under two different types has no single
        # static type; the return check must not guess.
        module = _module()
        helper = module.methods["helper"]
        helper.body = [
            ir.Assign("y", ht.I64, ir.BuiltinCall("sum", [ir.Var("x")])),
            ir.Assign("y", ht.F64, ir.BuiltinCall("abs", [ir.Var("y")])),
            ir.Return(ir.Var("y")),
        ]
        verify_ir_method(helper, module)


class TestPassManagerVerification:
    """``--verify-ir`` mode: the manager re-verifies after every pass
    and wraps violations in a PassVerificationError naming the pass."""

    def test_broken_pass_is_caught_and_named(self):
        def breaks_ir(method):
            if method.name == "main":
                method.body[0].expr.args[0] = ir.Var("ghost")
                return True
            return False

        pipe = Pipeline("bad", [MethodPass("breaker", breaks_ir)])
        manager = PassManager(pipe, verify=True)
        with pytest.raises(PassVerificationError) as excinfo:
            manager.run_module(_module(), entry="main")
        assert excinfo.value.pass_name == "breaker"
        assert excinfo.value.method == "main"
        assert "ghost" in excinfo.value.detail

    def test_broken_input_is_caught_before_any_pass(self):
        module = _module()
        del module.methods["helper"]
        manager = PassManager(custom_pipeline(["dce"]), verify=True)
        with pytest.raises(PassVerificationError) as excinfo:
            manager.run_module(module, entry="main")
        assert excinfo.value.pass_name == "input"

    def test_clean_pipeline_verifies_silently(self):
        manager = PassManager(preset("O2"), verify=True)
        optimized, stats = manager.run_module(_module(), entry="main")
        assert list(optimized.methods) == ["main"]
        assert stats.pipeline == "O2"

    def test_error_message_names_pass_and_method(self):
        err = PassVerificationError("cse", "boom", method="main")
        text = str(err)
        assert "cse" in text and "main" in text and "boom" in text


@pytest.fixture(scope="module")
def tpch_hp():
    db = generate_tpch(scale_factor=0.002)
    hp = HorsePowerSystem(db, UDFRegistry())
    register_tpch_udfs(hp)
    return hp


@pytest.fixture(scope="module")
def bs_hp():
    db = Database()
    load_blackscholes_table(db, 500)
    hp = HorsePowerSystem(db, UDFRegistry())
    register_bs_udfs(hp)
    return hp


class TestWorkloadsVerifyClean:
    """Every workload compiles under ``--verify-ir`` (the manager
    verifies the translator's input module and the state after every
    pass application), and the final module verifies standalone."""

    @pytest.mark.parametrize("name", list(PLAIN_QUERIES))
    def test_tpch_plain(self, tpch_hp, name):
        compiled = tpch_hp.compile_sql(PLAIN_QUERIES[name],
                                       verify_ir=True)
        verify_ir_module(compiled.program.module)

    @pytest.mark.parametrize("name", list(UDF_QUERIES))
    def test_tpch_udf(self, tpch_hp, name):
        compiled = tpch_hp.compile_sql(UDF_QUERIES[name],
                                       verify_ir=True)
        verify_ir_module(compiled.program.module)

    @pytest.mark.parametrize("sql", list(SCALAR_QUERIES.values())
                             + list(TABLE_QUERIES.values()))
    def test_black_scholes(self, bs_hp, sql):
        compiled = bs_hp.compile_sql(sql, verify_ir=True)
        verify_ir_module(compiled.program.module)

    def test_verified_compile_matches_unverified(self, tpch_hp):
        from repro.core.printer import print_module
        sql = PLAIN_QUERIES["q6"]
        plain = tpch_hp.compile_sql(sql)
        verified = tpch_hp.compile_sql(sql, verify_ir=True)
        assert print_module(plain.program.module) \
            == print_module(verified.program.module)

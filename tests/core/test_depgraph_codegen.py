"""Tests for the dependence graph and the kernel code generator
(including the buffer-reuse planner)."""

import numpy as np
import pytest

from repro.core import from_numpy
from repro.core.compiler import compile_module
from repro.core.depgraph import build_depgraph
from repro.core.optimizer.fusion import FusedItem, segment_method
from repro.core.codegen.pygen import generate_kernel
from repro.core.parser import parse_method, parse_module


def _figure2_method():
    return parse_method("""
    def main(t1:f64, t2:f64): f64 {
        t3:bool = @geq(t2, 0.05:f64);
        t4:f64 = @compress(t3, t1);
        t5:f64 = @compress(t3, t2);
        t6:f64 = @mul(t4, t5);
        t7:f64 = @sum(t6);
        return t7;
    }
    """)


class TestDepGraph:
    def test_edges_follow_def_use(self):
        method = _figure2_method()
        graph = build_depgraph(method.body)
        # S0 (t3) feeds S1 and S2; S3 (t6) feeds S4.
        assert graph.consumers(0) == {1, 2}
        assert graph.consumers(3) == {4}
        assert graph.producers(3) == {1, 2}

    def test_external_inputs_recorded(self):
        method = _figure2_method()
        graph = build_depgraph(method.body)
        assert graph.external_inputs[0] == {"t2"}
        assert graph.external_inputs[1] == {"t1"}

    def test_single_consumer(self):
        method = _figure2_method()
        graph = build_depgraph(method.body)
        assert graph.single_consumer(3)
        assert not graph.single_consumer(0)

    def test_redefinition_rebinds_producer(self):
        method = parse_method("""
        def main(x:f64): f64 {
            a:f64 = @mul(x, 2.0:f64);
            a:f64 = @add(a, 1.0:f64);
            b:f64 = @mul(a, a);
            return b;
        }
        """)
        graph = build_depgraph(method.body)
        # b reads the *second* definition of a.
        assert graph.producers(2) == {1}

    def test_to_dot_renders(self):
        method = _figure2_method()
        dot = build_depgraph(method.body).to_dot()
        assert dot.startswith("digraph")
        assert "s0 -> s1" in dot


def _first_segment(source: str):
    method = parse_method(source)
    plan = segment_method(method)
    for item in plan:
        if isinstance(item, FusedItem):
            return item.segment
    raise AssertionError("no fused segment")


class TestKernelCodegen:
    def test_kernel_structure_matches_figure3(self):
        segment = _first_segment("""
        def main(t1:f64, t2:f64): f64 {
            t3:bool = @geq(t2, 0.05:f64);
            t4:f64 = @compress(t3, t1);
            t5:f64 = @compress(t3, t2);
            t6:f64 = @mul(t4, t5);
            t7:f64 = @sum(t6);
            return t7;
        }
        """)
        kernel = generate_kernel(segment)
        assert "t4 = (t1)[t3]" in kernel.source
        assert "np.sum(t6)" in kernel.source
        assert kernel.outputs == [("t7", "reduce:sum")]

    def test_buffers_are_reused_across_statements(self):
        segment = _first_segment("""
        def main(x:f64): f64 {
            a:f64 = @mul(x, 2.0:f64);
            b:f64 = @add(a, 1.0:f64);
            c:f64 = @mul(b, 3.0:f64);
            d:f64 = @add(c, 4.0:f64);
            s:f64 = @sum(d);
            return s;
        }
        """)
        kernel = generate_kernel(segment)
        # Chain of 4 elementwise ops with disjoint lifetimes: at most 2
        # f64 buffers are needed (ping-pong), not 4.
        buffer_count = kernel.source.count("np.empty")
        assert 1 <= buffer_count <= 2
        assert "out=_buf" in kernel.source

    def test_output_buffer_never_reused(self):
        segment = _first_segment("""
        def main(x:f64): f64 {
            a:f64 = @mul(x, 2.0:f64);
            b:f64 = @add(a, 1.0:f64);
            c:f64 = @mul(a, b);
            return c;
        }
        """)
        kernel = generate_kernel(segment)
        module = parse_module("""
        module M {
            def main(x:f64): f64 {
                a:f64 = @mul(x, 2.0:f64);
                b:f64 = @add(a, 1.0:f64);
                c:f64 = @mul(a, b);
                return c;
            }
        }
        """)
        program = compile_module(module, "opt")
        data = np.arange(1000, dtype=np.float64)
        result = program.run(args=[from_numpy(data)], chunk_size=64)
        assert np.allclose(result.data, (data * 2) * (data * 2 + 1))

    def test_compressed_domain_statements_skip_buffers(self):
        segment = _first_segment("""
        def main(x:f64): f64 {
            m:bool = @gt(x, 0.5:f64);
            y:f64 = @compress(m, x);
            z:f64 = @mul(y, y);
            s:f64 = @sum(z);
            return s;
        }
        """)
        kernel = generate_kernel(segment)
        # z lives in the compressed domain: its length differs from the
        # base, so it must not write into a base-sized buffer.
        assert "z = (y * y)" in kernel.source

    def test_bool_and_float_buffers_are_separate(self):
        segment = _first_segment("""
        def main(x:f64, y:f64): f64 {
            a:bool = @gt(x, 0.0:f64);
            b:bool = @lt(y, 1.0:f64);
            c:bool = @and(a, b);
            d:f64 = @mul(x, y);
            e:f64 = @add(d, 1.0:f64);
            s:f64 = @sum(e);
            return s;
        }
        """)
        kernel = generate_kernel(segment)
        assert "dtype=np.bool_" in kernel.source
        assert "dtype=np.float64" in kernel.source

    def test_string_comparison_not_buffered(self):
        # @eq over strings writes into a bool out-buffer only via
        # np.equal (which supports it); @and over non-bool operands must
        # fall back — construct the risky case and check correctness.
        module = parse_module("""
        module M {
            def main(s:str, v:f64): f64 {
                m:bool = @eq(s, "keep":str);
                x:f64 = @compress(m, v);
                r:f64 = @sum(x);
                return r;
            }
        }
        """)
        program = compile_module(module, "opt")
        strings = np.empty(4, dtype=object)
        for i, value in enumerate(["keep", "drop", "keep", "drop"]):
            strings[i] = value
        values = np.array([1.0, 10.0, 100.0, 1000.0])
        result = program.run(args=[from_numpy(strings),
                                   from_numpy(values)])
        assert result.item() == pytest.approx(101.0)

    def test_scalar_chain_inputs_stay_scalar(self):
        """Reduction results flowing into later arithmetic must not be
        broadcast to base length by buffered kernels."""
        module = parse_module("""
        module M {
            def main(x:f64): f64 {
                s:f64 = @sum(x);
                c:f64 = @count(x);
                m:f64 = @div(s, c);
                lo:f64 = @min(x);
                d:f64 = @sub(m, lo);
                return d;
            }
        }
        """)
        program = compile_module(module, "opt")
        data = np.array([1.0, 2.0, 3.0, 4.0])
        result = program.run(args=[from_numpy(data)])
        assert len(result) == 1
        assert result.item() == pytest.approx(2.5 - 1.0)

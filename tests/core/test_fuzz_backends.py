"""Randomized differential testing of the three execution paths.

Hypothesis generates random straight-line HorseIR programs (elementwise
DAGs over two input columns, boolean subexpressions, optional compress +
reduction tails) through the ModuleBuilder, then checks that the
reference interpreter, the naive backend and the fused/buffered backend
produce identical results — including NaN/inf propagation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import from_numpy, types as ht
from repro.core.compiler import compile_module
from repro.core.interp import run_module
from repro.core.module_builder import ModuleBuilder

_UNARY_F64 = ("abs", "sqrt", "exp", "floor", "neg")
_BINARY_F64 = ("add", "sub", "mul", "min2", "max2")
_COMPARE = ("lt", "leq", "gt", "geq")
_BOOL_BIN = ("and", "or")


@st.composite
def random_program(draw):
    """A random module plus a human-readable op trace."""
    n_ops = draw(st.integers(min_value=3, max_value=14))
    builder = ModuleBuilder("Fuzz")
    trace = []
    with builder.method("main", [("x", ht.F64), ("y", ht.F64)],
                        ht.F64) as m:
        floats = [m.param("x"), m.param("y")]
        bools = []
        for _ in range(n_ops):
            kind = draw(st.sampled_from(
                ["unary", "binary", "compare", "boolbin", "ifelse"]))
            if kind == "unary":
                op = draw(st.sampled_from(_UNARY_F64))
                arg = draw(st.sampled_from(floats))
                floats.append(m.call(op, arg, type=ht.F64))
                trace.append(op)
            elif kind == "binary":
                op = draw(st.sampled_from(_BINARY_F64))
                a = draw(st.sampled_from(floats))
                b = draw(st.sampled_from(floats))
                floats.append(m.call(op, a, b, type=ht.F64))
                trace.append(op)
            elif kind == "compare":
                op = draw(st.sampled_from(_COMPARE))
                a = draw(st.sampled_from(floats))
                threshold = draw(st.floats(-2.0, 2.0, allow_nan=False))
                bools.append(m.call(op, a, threshold, type=ht.BOOL))
                trace.append(op)
            elif kind == "boolbin" and bools:
                op = draw(st.sampled_from(_BOOL_BIN))
                a = draw(st.sampled_from(bools))
                b = draw(st.sampled_from(bools))
                bools.append(m.call(op, a, b, type=ht.BOOL))
                trace.append(op)
            elif kind == "ifelse" and bools:
                mask = draw(st.sampled_from(bools))
                a = draw(st.sampled_from(floats))
                b = draw(st.sampled_from(floats))
                floats.append(m.call("if_else", mask, a, b,
                                     type=ht.F64))
                trace.append("if_else")

        value = draw(st.sampled_from(floats))
        if bools and draw(st.booleans()):
            mask = draw(st.sampled_from(bools))
            value = m.call("compress", mask, value, type=ht.F64)
            trace.append("compress")
        reducer = draw(st.sampled_from(["sum", "count"]))
        m.ret(m.call(reducer, value, type=ht.F64
                     if reducer == "sum" else ht.I64))
        trace.append(reducer)
    return builder.build(), trace


@st.composite
def input_pair(draw):
    n = draw(st.integers(min_value=0, max_value=300))
    elements = st.floats(min_value=-3.0, max_value=3.0,
                         allow_nan=False, allow_infinity=False,
                         width=64)
    x = np.asarray(draw(st.lists(elements, min_size=n, max_size=n)),
                   dtype=np.float64)
    y = np.asarray(draw(st.lists(elements, min_size=n, max_size=n)),
                   dtype=np.float64)
    return x, y


@settings(max_examples=60, deadline=None)
@given(random_program(), input_pair(),
       st.integers(min_value=5, max_value=128))
def test_backends_agree_on_random_programs(program_and_trace, inputs,
                                           chunk):
    module, trace = program_and_trace
    x, y = inputs
    args = [from_numpy(x), from_numpy(y)]

    with np.errstate(all="ignore"):
        interpreted = run_module(module, args=args)
        naive = compile_module(module, "naive").run(args=args)
        fused = compile_module(module, "opt").run(args=args,
                                                  chunk_size=chunk)

    reference = np.asarray(interpreted.data, dtype=np.float64)
    for label, result in (("naive", naive), ("opt", fused)):
        got = np.asarray(result.data, dtype=np.float64)
        assert got.shape == reference.shape, (label, trace)
        np.testing.assert_allclose(
            got, reference, rtol=1e-9, atol=1e-12, equal_nan=True,
            err_msg=f"{label} diverged; ops={trace}")


@settings(max_examples=25, deadline=None)
@given(random_program(), input_pair())
def test_threading_matches_serial_on_random_programs(program_and_trace,
                                                     inputs):
    module, trace = program_and_trace
    x, y = inputs
    args = [from_numpy(x), from_numpy(y)]
    program = compile_module(module, "opt")
    with np.errstate(all="ignore"):
        serial = program.run(args=args, n_threads=1, chunk_size=32)
        threaded = program.run(args=args, n_threads=4, chunk_size=32)
    np.testing.assert_allclose(
        np.asarray(serial.data, dtype=np.float64),
        np.asarray(threaded.data, dtype=np.float64),
        rtol=1e-9, equal_nan=True, err_msg=f"ops={trace}")


from repro.core.codegen.cgen import c_backend_available  # noqa: E402


@pytest.mark.skipif(not c_backend_available(), reason="gcc not available")
@settings(max_examples=40, deadline=None)
@given(random_program(), input_pair())
def test_c_backend_agrees_on_random_programs(program_and_trace, inputs):
    """The native backend must match the interpreter on random programs
    (with per-segment fallback for whatever it cannot compile)."""
    module, trace = program_and_trace
    x, y = inputs
    args = [from_numpy(x), from_numpy(y)]
    with np.errstate(all="ignore"):
        interpreted = run_module(module, args=args)
        native = compile_module(module, "opt", backend="c").run(args=args)
    np.testing.assert_allclose(
        np.asarray(native.data, dtype=np.float64),
        np.asarray(interpreted.data, dtype=np.float64),
        rtol=1e-9, atol=1e-12, equal_nan=True,
        err_msg=f"c backend diverged; ops={trace}")

"""Unit tests for the HorseIR builtin library."""

import numpy as np
import pytest

from repro.core import builtins as hb
from repro.core import types as ht
from repro.core.values import ListValue, TableValue, Vector, from_numpy, \
    scalar, vector
from repro.errors import BuiltinError

CTX = hb.EvalContext()


def run(name, *args):
    return hb.get(name).run(list(args), CTX)


def vec(values, type_=ht.F64):
    return vector(list(values), type_)


class TestArithmetic:
    def test_add_promotes_int_and_float(self):
        result = run("add", vec([1, 2], ht.I64), vec([0.5, 0.5]))
        assert result.type == ht.F64
        assert np.allclose(result.data, [1.5, 2.5])

    def test_div_always_float(self):
        result = run("div", vec([3, 1], ht.I64), vec([2, 2], ht.I64))
        assert result.type == ht.F64
        assert np.allclose(result.data, [1.5, 0.5])

    def test_scalar_broadcast(self):
        result = run("mul", vec([1.0, 2.0, 3.0]), scalar(2.0))
        assert np.allclose(result.data, [2.0, 4.0, 6.0])

    def test_neg_abs_sign(self):
        data = vec([-2.0, 0.0, 3.0])
        assert np.allclose(run("neg", data).data, [2.0, 0.0, -3.0])
        assert np.allclose(run("abs", data).data, [2.0, 0.0, 3.0])
        assert np.allclose(run("sign", data).data, [-1.0, 0.0, 1.0])

    def test_unary_math(self):
        x = vec([1.0, 4.0])
        assert np.allclose(run("sqrt", x).data, [1.0, 2.0])
        assert np.allclose(run("exp", vec([0.0])).data, [1.0])
        assert np.allclose(run("log", vec([1.0])).data, [0.0])

    def test_floor_ceil_round(self):
        x = vec([1.4, 2.6, -1.5])
        assert np.allclose(run("floor", x).data, [1.0, 2.0, -2.0])
        assert np.allclose(run("ceil", x).data, [2.0, 3.0, -1.0])

    def test_mod_and_power(self):
        assert np.allclose(
            run("mod", vec([7, 8], ht.I64), vec([3, 3], ht.I64)).data,
            [1, 2])
        assert np.allclose(
            run("power", vec([2.0, 3.0]), vec([3.0, 2.0])).data, [8, 9])

    def test_wrong_arity_rejected(self):
        with pytest.raises(BuiltinError, match="expects 2"):
            run("add", vec([1.0]))


class TestComparisonsAndLogic:
    def test_comparisons_yield_bool(self):
        result = run("geq", vec([1.0, 2.0, 3.0]), scalar(2.0))
        assert result.type == ht.BOOL
        assert result.data.tolist() == [False, True, True]

    def test_string_equality(self):
        strings = vec(["a", "b", "a"], ht.STR)
        result = run("eq", strings, scalar("a"))
        assert result.data.tolist() == [True, False, True]

    def test_date_comparison(self):
        dates = from_numpy(np.array(["2020-01-01", "2021-06-15"],
                                    dtype="datetime64[D]"))
        pivot = scalar(np.datetime64("2020-12-31"), ht.DATE)
        assert run("lt", dates, pivot).data.tolist() == [True, False]

    def test_boolean_connectives(self):
        a = vec([True, True, False], ht.BOOL)
        b = vec([True, False, False], ht.BOOL)
        assert run("and", a, b).data.tolist() == [True, False, False]
        assert run("or", a, b).data.tolist() == [True, True, False]
        assert run("not", a).data.tolist() == [False, False, True]

    def test_if_else_elementwise(self):
        mask = vec([True, False], ht.BOOL)
        result = run("if_else", mask, vec([1.0, 1.0]), vec([9.0, 9.0]))
        assert np.allclose(result.data, [1.0, 9.0])

    def test_min2_max2(self):
        a, b = vec([1.0, 5.0]), vec([3.0, 2.0])
        assert np.allclose(run("min2", a, b).data, [1.0, 2.0])
        assert np.allclose(run("max2", a, b).data, [3.0, 5.0])


class TestReductions:
    def test_sum_int_widens_to_i64(self):
        result = run("sum", vec([1, 2, 3], ht.I32))
        assert result.type == ht.I64
        assert result.item() == 6

    def test_avg_min_max_count(self):
        x = vec([2.0, 4.0, 9.0])
        assert run("avg", x).item() == pytest.approx(5.0)
        assert run("min", x).item() == 2.0
        assert run("max", x).item() == 9.0
        assert run("count", x).item() == 3

    def test_any_all(self):
        assert run("any", vec([False, True], ht.BOOL)).item() is True
        assert run("all", vec([False, True], ht.BOOL)).item() is False

    def test_sum_of_empty_is_zero(self):
        assert run("sum", vec([], ht.F64)).item() == 0

    def test_min_of_empty_raises(self):
        with pytest.raises(BuiltinError, match="empty"):
            run("min", vec([], ht.F64))

    def test_cumsum(self):
        result = run("cumsum", vec([1.0, 2.0, 3.0]))
        assert np.allclose(result.data, [1.0, 3.0, 6.0])


class TestCompressIndexSlice:
    def test_compress(self):
        mask = vec([True, False, True], ht.BOOL)
        result = run("compress", mask, vec([10.0, 20.0, 30.0]))
        assert np.allclose(result.data, [10.0, 30.0])

    def test_compress_length_mismatch(self):
        with pytest.raises(BuiltinError, match="length mismatch"):
            run("compress", vec([True], ht.BOOL), vec([1.0, 2.0]))

    def test_compress_requires_bool_mask(self):
        with pytest.raises(BuiltinError, match="bool"):
            run("compress", vec([1, 0], ht.I64), vec([1.0, 2.0]))

    def test_index(self):
        result = run("index", vec([10.0, 20.0, 30.0]),
                     vec([2, 0], ht.I64))
        assert np.allclose(result.data, [30.0, 10.0])

    def test_where(self):
        result = run("where", vec([False, True, True], ht.BOOL))
        assert result.data.tolist() == [1, 2]

    def test_subseq_is_one_based_inclusive_view(self):
        base = vec([1.0, 2.0, 3.0, 4.0, 5.0])
        result = run("subseq", base, scalar(2, ht.I64),
                     scalar(4, ht.I64))
        assert np.allclose(result.data, [2.0, 3.0, 4.0])
        # Zero-copy: the view shares memory with the base vector.
        assert result.data.base is base.data

    def test_subseq_bounds_checked(self):
        with pytest.raises(BuiltinError, match="out of range"):
            run("subseq", vec([1.0, 2.0]), scalar(0, ht.I64),
                scalar(2, ht.I64))

    def test_take_and_reverse(self):
        x = vec([1.0, 2.0, 3.0])
        assert np.allclose(run("take", x, scalar(2, ht.I64)).data,
                           [1.0, 2.0])
        assert np.allclose(run("reverse", x).data, [3.0, 2.0, 1.0])


class TestVectorConstructors:
    def test_range(self):
        assert run("range", scalar(4, ht.I64)).data.tolist() == [0, 1, 2,
                                                                 3]

    def test_fill(self):
        result = run("fill", scalar(3, ht.I64), scalar(7.5))
        assert np.allclose(result.data, [7.5, 7.5, 7.5])

    def test_concat_promotes(self):
        result = run("concat", vec([1], ht.I64), vec([2.5]))
        assert result.type == ht.F64
        assert np.allclose(result.data, [1.0, 2.5])

    def test_unique_preserves_first_appearance(self):
        result = run("unique", vec(["b", "a", "b", "c"], ht.STR))
        assert result.data.tolist() == ["b", "a", "c"]

    def test_len_of_vector_list_table(self):
        assert run("len", vec([1.0, 2.0])).item() == 2
        assert run("len", ListValue([vec([1.0])])).item() == 1
        table = TableValue([("x", vec([1.0, 2.0, 3.0]))])
        assert run("len", table).item() == 3


class TestStringPredicates:
    def test_like_translates_sql_wildcards(self):
        values = vec(["PROMO TIN", "LARGE TIN", "PRO"], ht.STR)
        assert run("like", values,
                   scalar("PROMO%")).data.tolist() == [True, False,
                                                       False]
        assert run("like", values,
                   scalar("%TIN")).data.tolist() == [True, True, False]
        assert run("like", vec(["ab", "ax"], ht.STR),
                   scalar("a_")).data.tolist() == [True, True]

    def test_like_escapes_regex_metacharacters(self):
        values = vec(["a.b", "axb"], ht.STR)
        assert run("like", values,
                   scalar("a.b")).data.tolist() == [True, False]

    def test_startswith(self):
        values = vec(["PROMO X", "ECONOMY"], ht.STR)
        assert run("startswith", values,
                   scalar("PROMO")).data.tolist() == [True, False]

    def test_member(self):
        values = vec(["MAIL", "AIR", "SHIP"], ht.STR)
        pool = vec(["MAIL", "SHIP"], ht.STR)
        assert run("member", values, pool).data.tolist() == [True, False,
                                                             True]


class TestGrouping:
    def test_group_single_key(self):
        keys = vec(["b", "a", "b", "a", "c"], ht.STR)
        grouped = run("group", keys)
        first, codes = grouped[0], grouped[1]
        # Groups numbered by first appearance: b=0, a=1, c=2.
        assert codes.data.tolist() == [0, 1, 0, 1, 2]
        assert first.data.tolist() == [0, 1, 4]

    def test_group_multi_key(self):
        k1 = vec(["x", "x", "y", "y"], ht.STR)
        k2 = vec([1, 2, 1, 1], ht.I64)
        grouped = run("group", k1, k2)
        codes = grouped[1].data
        assert codes[2] == codes[3]  # (y,1) == (y,1)
        assert len(set(codes.tolist())) == 3

    def test_group_aggregates(self):
        codes = vec([0, 1, 0, 1], ht.I64)
        ngroups = scalar(2, ht.I64)
        values = vec([1.0, 10.0, 2.0, 20.0])
        assert run("group_sum", values, codes,
                   ngroups).data.tolist() == [3.0, 30.0]
        assert run("group_count", values, codes,
                   ngroups).data.tolist() == [2, 2]
        assert np.allclose(run("group_avg", values, codes,
                               ngroups).data, [1.5, 15.0])
        assert run("group_min", values, codes,
                   ngroups).data.tolist() == [1.0, 10.0]
        assert run("group_max", values, codes,
                   ngroups).data.tolist() == [2.0, 20.0]


class TestJoinAndOrder:
    def test_inner_join_single_numeric_key(self):
        left = vec([1, 2, 3, 2], ht.I64)
        right = vec([2, 3, 4], ht.I64)
        pair = run("join_index", left, right, scalar("inner", ht.SYM))
        lidx, ridx = pair[0].data, pair[1].data
        matches = sorted(zip(lidx.tolist(), ridx.tolist()))
        assert matches == [(1, 0), (2, 1), (3, 0)]

    def test_inner_join_multi_key(self):
        left = ListValue([vec([1, 1, 2], ht.I64),
                          vec(["a", "b", "a"], ht.STR)])
        right = ListValue([vec([1, 2], ht.I64),
                           vec(["b", "a"], ht.STR)])
        pair = run("join_index", left, right, scalar("inner", ht.SYM))
        matches = sorted(zip(pair[0].data.tolist(),
                             pair[1].data.tolist()))
        assert matches == [(1, 0), (2, 1)]

    def test_left_join_emits_minus_one(self):
        left = vec([1, 9], ht.I64)
        right = vec([1], ht.I64)
        pair = run("join_index", left, right, scalar("left", ht.SYM))
        assert pair[1].data.tolist() == [0, -1]

    def test_order_single_key_desc(self):
        keys = vec([3.0, 1.0, 2.0])
        asc = vec([False], ht.BOOL)
        assert run("order", keys, asc).data.tolist() == [0, 2, 1]

    def test_order_multi_key_mixed_direction(self):
        major = vec(["b", "a", "a"], ht.STR)
        minor = vec([1.0, 2.0, 1.0])
        keys = ListValue([major, minor])
        asc = vec([True, False], ht.BOOL)
        order = run("order", keys, asc).data.tolist()
        # a-group first (major asc), within it minor desc: 2.0 before 1.0.
        assert order == [1, 2, 0]

    def test_order_is_stable(self):
        keys = vec([1.0, 1.0, 1.0])
        asc = vec([True], ht.BOOL)
        assert run("order", keys, asc).data.tolist() == [0, 1, 2]


class TestMaskedReductions:
    def test_sum_masked_equals_sum_of_compress(self):
        mask = vec([True, False, True], ht.BOOL)
        x = vec([1.5, 100.0, 2.5])
        direct = run("sum_masked", mask, x)
        composed = run("sum", run("compress", mask, x))
        assert direct.item() == pytest.approx(composed.item())

    def test_dot_masked_equals_composition(self):
        mask = vec([True, True, False], ht.BOOL)
        x = vec([1.0, 2.0, 3.0])
        y = vec([4.0, 5.0, 6.0])
        direct = run("dot_masked", mask, x, y)
        composed = run("sum", run("mul", run("compress", mask, x),
                                  run("compress", mask, y)))
        assert direct.item() == pytest.approx(composed.item())


class TestTablesAndLists:
    def test_table_construction(self):
        names = vec(["a", "b"], ht.SYM)
        cols = ListValue([vec([1.0]), vec([2.0])])
        table = run("table", names, cols)
        assert table.column_names == ["a", "b"]

    def test_table_name_count_mismatch(self):
        names = vec(["a"], ht.SYM)
        cols = ListValue([vec([1.0]), vec([2.0])])
        with pytest.raises(BuiltinError, match="names"):
            run("table", names, cols)

    def test_load_table_uses_context(self):
        table = TableValue([("x", vec([1.0]))])
        ctx = hb.EvalContext({"t": table})
        loaded = hb.get("load_table").run([scalar("t", ht.SYM)], ctx)
        assert loaded is table

    def test_load_table_unknown(self):
        with pytest.raises(BuiltinError, match="unknown table"):
            run("load_table", scalar("missing", ht.SYM))

    def test_column_value(self):
        table = TableValue([("x", vec([7.0]))])
        result = run("column_value", table, scalar("x", ht.SYM))
        assert result.data.tolist() == [7.0]

    def test_list_item_bounds(self):
        lst = ListValue([vec([1.0])])
        with pytest.raises(BuiltinError, match="out of range"):
            run("list_item", lst, scalar(3, ht.I64))


class TestDateBuiltins:
    def test_date_parts(self):
        dates = from_numpy(np.array(["1998-09-02"], dtype="datetime64[D]"))
        assert run("date_year", dates).item() == 1998
        assert run("date_month", dates).item() == 9
        assert run("date_day", dates).item() == 2

    def test_date_to_i64_matches_numpy_epoch(self):
        dates = from_numpy(np.array(["1970-01-02"], dtype="datetime64[D]"))
        assert run("date_to_i64", dates).item() == 1

    def test_unknown_builtin(self):
        with pytest.raises(BuiltinError, match="unknown builtin"):
            hb.get("definitely_not_a_builtin")

"""Unit tests for the optimizer passes (inline, constprop, cse, dce,
patterns)."""

import pytest

from repro.core import ir
from repro.core import types as ht
from repro.core.optimizer import optimize
from repro.core.optimizer.constprop import propagate_constants
from repro.core.optimizer.copyprop import propagate_copies
from repro.core.optimizer.cse import eliminate_common_subexpressions
from repro.core.optimizer.dce import backward_slice, eliminate_dead_code
from repro.core.optimizer.inline import can_inline, inline_methods
from repro.core.optimizer.patterns import apply_patterns
from repro.core.parser import parse_method, parse_module
from repro.core.printer import print_method, print_module
from repro.core.verify import verify_module

# Figure 6 of the paper: the scalar-UDF version of the example query.
FIGURE_6 = """
module ExampleQuery {
    def calcRevenueChangeScalar(price:f64, discount:f64): f64 {
        x0:f64 = @mul(price, discount);
        return x0;
    }
    def main(): f64 {
        t0:table = @load_table(`lineitem:sym);
        t1:f64 = check_cast(@column_value(t0, `l_extendedprice:sym), f64);
        t2:f64 = check_cast(@column_value(t0, `l_discount:sym), f64);
        t3:bool = @geq(t2, 0.05:f64);
        t4:f64 = @compress(t3, t1);
        t5:f64 = @compress(t3, t2);
        t6:f64 = @calcRevenueChangeScalar(t4, t5);
        t7:f64 = @sum(t6);
        return t7;
    }
}
"""


class TestInlining:
    def test_udf_body_is_merged_into_main(self):
        module = parse_module(FIGURE_6)
        inlined = inline_methods(module)
        # The UDF is inlined at its only call site and removed.
        assert list(inlined.methods) == ["main"]
        text = print_module(inlined)
        assert "calcRevenueChangeScalar" not in text
        assert "@mul" in text
        verify_module(inlined)

    def test_inlined_module_is_semantically_identical(self):
        import numpy as np
        from repro.core import TableValue, from_numpy
        from repro.core.interp import run_module

        table = TableValue([
            ("l_extendedprice", from_numpy(
                np.array([10.0, 20.0, 30.0]))),
            ("l_discount", from_numpy(np.array([0.10, 0.02, 0.06]))),
        ])
        module = parse_module(FIGURE_6)
        inlined = inline_methods(module)
        original = run_module(module, {"lineitem": table})
        optimized = run_module(inlined, {"lineitem": table})
        assert original.item() == pytest.approx(optimized.item())

    def test_multiple_call_sites_all_inlined(self):
        source = """
        module M {
            def double(x:f64): f64 {
                y:f64 = @mul(x, 2.0:f64);
                return y;
            }
            def main(a:f64): f64 {
                b:f64 = @double(a);
                c:f64 = @double(b);
                d:f64 = @add(b, c);
                return d;
            }
        }
        """
        module = parse_module(source)
        inlined = inline_methods(module)
        assert list(inlined.methods) == ["main"]
        verify_module(inlined)

    def test_reassigned_parameter_gets_a_private_copy(self):
        source = """
        module M {
            def bump(x:f64): f64 {
                x:f64 = @add(x, 1.0:f64);
                return x;
            }
            def main(a:f64): f64 {
                b:f64 = @bump(a);
                c:f64 = @add(a, b);
                return c;
            }
        }
        """
        from repro.core import F64, vector
        from repro.core.interp import run_module

        module = parse_module(source)
        inlined = inline_methods(module)
        verify_module(inlined)
        result = run_module(inlined, args=[vector([10.0], F64)])
        # a must still be 10 after the call: 10 + 11.
        assert result.item() == pytest.approx(21.0)

    def test_control_flow_callee_is_not_inlined(self):
        source = """
        module M {
            def pick(x:i64): i64 {
                c:bool = @gt(x, 0:i64);
                if (c) {
                    r:i64 = 1:i64;
                } else {
                    r:i64 = 0:i64;
                }
                return r;
            }
            def main(a:i64): i64 {
                b:i64 = @pick(a);
                return b;
            }
        }
        """
        module = parse_module(source)
        assert not can_inline(module.methods["pick"])
        inlined = inline_methods(module)
        assert "pick" in inlined.methods

    def test_nested_calls_inline_to_fixpoint(self):
        source = """
        module M {
            def inner(x:f64): f64 {
                y:f64 = @mul(x, 3.0:f64);
                return y;
            }
            def outer(x:f64): f64 {
                y:f64 = @inner(x);
                z:f64 = @add(y, 1.0:f64);
                return z;
            }
            def main(a:f64): f64 {
                b:f64 = @outer(a);
                return b;
            }
        }
        """
        inlined = inline_methods(parse_module(source))
        assert list(inlined.methods) == ["main"]


class TestConstProp:
    def test_literal_propagates_and_folds(self):
        method = parse_method("""
        def main(): f64 {
            a:f64 = 2.0:f64;
            b:f64 = 3.0:f64;
            c:f64 = @mul(a, b);
            return c;
        }
        """)
        assert propagate_constants(method)
        text = print_method(method)
        # After substitution, @mul(2.0, 3.0) folds to 6.0.
        assert "@mul(2.0:f64, 3.0:f64)" in text or "6.0:f64" in text

    def test_loop_carried_variables_not_propagated(self):
        method = parse_method("""
        def main(n:i64): i64 {
            i:i64 = 0:i64;
            c:bool = @lt(i, n);
            while (c) {
                i:i64 = @add(i, 1:i64);
                c:bool = @lt(i, n);
            }
            return i;
        }
        """)
        propagate_constants(method)
        # The loop must still reference i, not the constant 0.
        loop = method.body[2]
        assert isinstance(loop, ir.While)
        text = print_method(method)
        assert "@add(i, 1:i64)" in text


class TestCopyProp:
    def test_alias_collapses(self):
        method = parse_method("""
        def main(a:f64): f64 {
            b:f64 = a;
            c:f64 = @mul(b, b);
            return c;
        }
        """)
        assert propagate_copies(method)
        assert "@mul(a, a)" in print_method(method)


class TestCSE:
    def test_duplicate_expression_computed_once(self):
        method = parse_method("""
        def main(a:f64, b:f64): f64 {
            x:f64 = @mul(a, b);
            y:f64 = @mul(a, b);
            z:f64 = @add(x, y);
            return z;
        }
        """)
        assert eliminate_common_subexpressions(method)
        text = print_method(method)
        assert text.count("@mul(a, b)") == 1

    def test_source_builtins_never_merged(self):
        method = parse_method("""
        def main(): table {
            a:table = @load_table(`t:sym);
            b:table = @load_table(`t:sym);
            return b;
        }
        """)
        assert not eliminate_common_subexpressions(method)


class TestDCE:
    def test_unused_column_computation_removed(self):
        # The bs2 scenario: a computed value never reaches the return.
        method = parse_method("""
        def main(price:f64, vol:f64): f64 {
            expensive:f64 = @exp(vol);
            keep:f64 = @mul(price, 2.0:f64);
            r:f64 = @sum(keep);
            return r;
        }
        """)
        assert eliminate_dead_code(method)
        text = print_method(method)
        assert "@exp" not in text
        assert "@mul" in text

    def test_backward_slice_includes_transitive_deps(self):
        method = parse_method("""
        def main(a:f64): f64 {
            b:f64 = @mul(a, 2.0:f64);
            c:f64 = @add(b, 1.0:f64);
            dead:f64 = @exp(a);
            return c;
        }
        """)
        live = backward_slice(method)
        assert {"a", "b", "c"} <= live
        assert "dead" not in live

    def test_transitively_dead_chain_removed(self):
        method = parse_method("""
        def main(a:f64): f64 {
            u:f64 = @exp(a);
            v:f64 = @log(u);
            w:f64 = @sqrt(v);
            r:f64 = @mul(a, a);
            return r;
        }
        """)
        assert eliminate_dead_code(method)
        assert len(method.body) == 2


class TestPatterns:
    def test_avg_splits_into_sum_and_count(self):
        method = parse_method("""
        def main(x:f64): f64 {
            m:f64 = @avg(x);
            return m;
        }
        """)
        assert apply_patterns(method)
        text = print_method(method)
        assert "@sum" in text and "@count" in text and "@div" in text
        assert "@avg" not in text

    def test_masked_dot_pattern_fires_on_figure2_shape(self):
        method = parse_method("""
        def main(t1:f64, t2:f64): f64 {
            t3:bool = @geq(t2, 0.05:f64);
            t4:f64 = @compress(t3, t1);
            t5:f64 = @compress(t3, t2);
            t6:f64 = @mul(t4, t5);
            t7:f64 = @sum(t6);
            return t7;
        }
        """)
        assert apply_patterns(method)
        text = print_method(method)
        assert "@dot_masked" in text
        assert "@compress" not in text

    def test_masked_sum_pattern(self):
        method = parse_method("""
        def main(m:bool, x:f64): f64 {
            a:f64 = @compress(m, x);
            s:f64 = @sum(a);
            return s;
        }
        """)
        assert apply_patterns(method)
        assert "@sum_masked" in print_method(method)

    def test_pattern_respects_multiple_consumers(self):
        # t4 is used twice: the compress must NOT be folded away.
        method = parse_method("""
        def main(m:bool, x:f64): f64 {
            a:f64 = @compress(m, x);
            s:f64 = @sum(a);
            c:f64 = @sum(a);
            r:f64 = @add(s, c);
            return r;
        }
        """)
        apply_patterns(method)
        assert "@compress" in print_method(method)


class TestPipeline:
    def test_full_pipeline_on_figure6(self):
        module = parse_module(FIGURE_6)
        optimized, stats = optimize(module)
        verify_module(optimized)
        assert list(optimized.methods) == ["main"]
        assert stats.inlined_methods_removed == 1
        text = print_module(optimized)
        # After inlining + patterns, the whole WHERE/SELECT pipeline is a
        # single masked dot product.
        assert "@dot_masked" in text

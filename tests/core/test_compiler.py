"""Tests for fusion segmentation, kernel codegen, and the compiled
executor — including naive-vs-opt equivalence."""

import numpy as np
import pytest

from repro.core import F64, I64, TableValue, from_numpy, vector
from repro.core.compiler import compile_module
from repro.core.interp import run_module
from repro.core.optimizer.fusion import FusedItem, OpaqueItem, segment_method
from repro.core.parser import parse_method, parse_module

FIGURE_2B = """
module ExampleQuery {
    def main(): table {
        t0:table = @load_table(`lineitem:sym);
        t1:f64 = check_cast(@column_value(t0, `l_extendedprice:sym), f64);
        t2:f64 = check_cast(@column_value(t0, `l_discount:sym), f64);
        t3:bool = @geq(t2, 0.05:f64);
        t4:f64 = @compress(t3, t1);
        t5:f64 = @compress(t3, t2);
        t6:f64 = @mul(t4, t5);
        t7:f64 = @sum(t6);
        t8:sym = `RevenueChange:sym;
        t9:list<f64> = @list(t7);
        t10:table = @table(t8, t9);
        return t10;
    }
}
"""


@pytest.fixture
def lineitem():
    rng = np.random.default_rng(7)
    n = 10_000
    return TableValue([
        ("l_extendedprice", from_numpy(rng.uniform(100, 1000, n))),
        ("l_discount", from_numpy(rng.uniform(0.0, 0.1, n))),
    ])


class TestSegmentation:
    def test_figure2_fuses_predicate_compress_mul_sum(self):
        method = parse_method("""
        def main(t1:f64, t2:f64): f64 {
            t3:bool = @geq(t2, 0.05:f64);
            t4:f64 = @compress(t3, t1);
            t5:f64 = @compress(t3, t2);
            t6:f64 = @mul(t4, t5);
            t7:f64 = @sum(t6);
            return t7;
        }
        """)
        plan = segment_method(method)
        fused = [item for item in plan if isinstance(item, FusedItem)]
        assert len(fused) == 1
        assert len(fused[0].segment.stmts) == 5
        assert fused[0].segment.outputs == [("t7", "reduce:sum")]

    def test_naive_mode_produces_no_segments(self):
        method = parse_method("""
        def main(t1:f64, t2:f64): f64 {
            t3:f64 = @mul(t1, t2);
            t4:f64 = @sum(t3);
            return t4;
        }
        """)
        plan = segment_method(method, enabled=False)
        assert all(not isinstance(item, FusedItem) for item in plan)

    def test_opaque_statement_breaks_segment(self):
        method = parse_method("""
        def main(x:f64): f64 {
            a:f64 = @mul(x, 2.0:f64);
            b:f64 = @cumsum(a);
            c:f64 = @add(b, 1.0:f64);
            d:f64 = @mul(c, c);
            e:f64 = @sum(d);
            return e;
        }
        """)
        plan = segment_method(method)
        kinds = [type(item).__name__ for item in plan]
        assert "OpaqueItem" in kinds  # the cumsum
        fused = [item for item in plan if isinstance(item, FusedItem)]
        # add/mul/sum after the scan fuse together.
        assert any(len(f.segment.stmts) >= 3 for f in fused)

    def test_reduction_result_not_consumed_in_same_segment(self):
        method = parse_method("""
        def main(x:f64): f64 {
            s:f64 = @sum(x);
            y:f64 = @div(x, s);
            t:f64 = @sum(y);
            return t;
        }
        """)
        plan = segment_method(method)
        for item in plan:
            if isinstance(item, FusedItem):
                targets = {s.target for s in item.segment.stmts}
                if "s" in targets:
                    assert "y" not in targets

    def test_mismatched_mask_domains_do_not_fuse(self):
        method = parse_method("""
        def main(x:f64, y:f64): f64 {
            m1:bool = @gt(x, 0.5:f64);
            m2:bool = @lt(y, 0.5:f64);
            a:f64 = @compress(m1, x);
            b:f64 = @compress(m2, y);
            c:f64 = @mul(a, b);
            d:f64 = @sum(c);
            return d;
        }
        """)
        plan = segment_method(method)
        for item in plan:
            if isinstance(item, FusedItem):
                targets = {s.target for s in item.segment.stmts}
                # a and b live in different compressed domains; c cannot
                # join a segment containing both.
                assert not ({"a", "b", "c"} <= targets)

    def test_single_statement_stays_opaque(self):
        method = parse_method("""
        def main(x:f64): f64 {
            y:f64 = @mul(x, 2.0:f64);
            return y;
        }
        """)
        plan = segment_method(method)
        assert all(isinstance(item, OpaqueItem) or
                   not isinstance(item, FusedItem) for item in plan)


class TestCompiledExecution:
    def test_opt_matches_interpreter_on_figure2(self, lineitem):
        module = parse_module(FIGURE_2B)
        expected = run_module(module, {"lineitem": lineitem})
        program = compile_module(parse_module(FIGURE_2B), "opt")
        actual = program.run({"lineitem": lineitem})
        assert actual.column("RevenueChange").data[0] == pytest.approx(
            expected.column("RevenueChange").data[0])

    def test_naive_matches_interpreter_on_figure2(self, lineitem):
        module = parse_module(FIGURE_2B)
        expected = run_module(module, {"lineitem": lineitem})
        program = compile_module(parse_module(FIGURE_2B), "naive")
        actual = program.run({"lineitem": lineitem})
        assert actual.column("RevenueChange").data[0] == pytest.approx(
            expected.column("RevenueChange").data[0])

    def test_multithreaded_matches_single_thread(self, lineitem):
        program = compile_module(parse_module(FIGURE_2B), "opt")
        t1 = program.run({"lineitem": lineitem}, n_threads=1,
                         chunk_size=512)
        t4 = program.run({"lineitem": lineitem}, n_threads=4,
                         chunk_size=512)
        assert t1.column("RevenueChange").data[0] == pytest.approx(
            t4.column("RevenueChange").data[0])

    def test_chunked_vector_outputs_concatenate_in_order(self):
        source = """
        module M {
            def main(x:f64): f64 {
                a:f64 = @mul(x, 2.0:f64);
                b:f64 = @add(a, 1.0:f64);
                return b;
            }
        }
        """
        data = np.arange(10_000, dtype=np.float64)
        program = compile_module(parse_module(source), "opt")
        result = program.run(args=[from_numpy(data)], chunk_size=128)
        assert np.allclose(result.data, data * 2.0 + 1.0)

    def test_compressed_vector_output_across_chunks(self):
        source = """
        module M {
            def main(x:f64): f64 {
                m:bool = @gt(x, 0.5:f64);
                y:f64 = @compress(m, x);
                z:f64 = @mul(y, 10.0:f64);
                return z;
            }
        }
        """
        rng = np.random.default_rng(11)
        data = rng.uniform(0, 1, 5000)
        program = compile_module(parse_module(source), "opt")
        result = program.run(args=[from_numpy(data)], chunk_size=64)
        expected = data[data > 0.5] * 10.0
        assert np.allclose(result.data, expected)

    def test_min_max_reductions_combine_across_chunks(self):
        source = """
        module M {
            def main(x:f64): f64 {
                a:f64 = @mul(x, 1.0:f64);
                lo:f64 = @min(a);
                hi:f64 = @max(a);
                r:f64 = @sub(hi, lo);
                return r;
            }
        }
        """
        rng = np.random.default_rng(3)
        data = rng.normal(0, 10, 9999)
        program = compile_module(parse_module(source), "opt")
        result = program.run(args=[from_numpy(data)], chunk_size=100)
        assert result.item() == pytest.approx(data.max() - data.min())

    def test_scalar_arguments_broadcast_into_chunks(self):
        source = """
        module M {
            def main(x:f64, k:f64): f64 {
                y:f64 = @mul(x, k);
                z:f64 = @sum(y);
                return z;
            }
        }
        """
        data = np.ones(4000)
        program = compile_module(parse_module(source), "opt")
        result = program.run(args=[from_numpy(data), vector([2.5], F64)],
                             chunk_size=64)
        assert result.item() == pytest.approx(10_000.0)

    def test_empty_input_produces_identity_sum(self):
        source = """
        module M {
            def main(x:f64): f64 {
                y:f64 = @mul(x, 2.0:f64);
                z:f64 = @sum(y);
                return z;
            }
        }
        """
        program = compile_module(parse_module(source), "opt")
        result = program.run(args=[from_numpy(np.empty(0))])
        assert result.item() == 0

    def test_udf_module_compiles_with_inlining(self, lineitem):
        source = """
        module WithUdf {
            def calc(price:f64, discount:f64): f64 {
                x0:f64 = @mul(price, discount);
                return x0;
            }
            def main(): f64 {
                t0:table = @load_table(`lineitem:sym);
                t1:f64 = check_cast(
                    @column_value(t0, `l_extendedprice:sym), f64);
                t2:f64 = check_cast(
                    @column_value(t0, `l_discount:sym), f64);
                t3:bool = @geq(t2, 0.05:f64);
                t4:f64 = @compress(t3, t1);
                t5:f64 = @compress(t3, t2);
                t6:f64 = @calc(t4, t5);
                t7:f64 = @sum(t6);
                return t7;
            }
        }
        """
        expected = run_module(parse_module(source), {"lineitem": lineitem})
        program = compile_module(parse_module(source), "opt")
        assert list(program.module.methods) == ["main"]
        actual = program.run({"lineitem": lineitem})
        assert actual.item() == pytest.approx(expected.item())

    def test_compile_report_records_kernels_and_time(self, lineitem):
        program = compile_module(parse_module(FIGURE_2B), "opt")
        report = program.report
        assert report.opt_level == "opt"
        assert report.compile_seconds > 0

    def test_control_flow_executes_in_compiled_program(self):
        source = """
        module M {
            def main(n:i64): i64 {
                total:i64 = 0:i64;
                i:i64 = 0:i64;
                c:bool = @lt(i, n);
                while (c) {
                    total:i64 = @add(total, i);
                    i:i64 = @add(i, 1:i64);
                    c:bool = @lt(i, n);
                }
                return total;
            }
        }
        """
        program = compile_module(parse_module(source), "opt")
        result = program.run(args=[vector([100], I64)])
        assert result.item() == sum(range(100))

    def test_kernel_source_is_recorded(self):
        source = """
        module M {
            def main(x:f64): f64 {
                a:f64 = @mul(x, 2.0:f64);
                b:f64 = @add(a, 1.0:f64);
                c:f64 = @sum(b);
                return c;
            }
        }
        """
        program = compile_module(parse_module(source), "opt")
        assert program.kernel_sources
        kernel = program.kernel_sources[0]
        assert "def _kernel" in kernel
        assert "np.sum" in kernel


class TestNaiveVsOptProperty:
    """Naive and opt backends must agree on arbitrary pipelines."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_elementwise_pipelines_agree(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 3000))
        x = rng.normal(0, 1, n)
        y = rng.uniform(0.1, 2.0, n)
        source = """
        module P {
            def main(x:f64, y:f64): f64 {
                a:f64 = @mul(x, y);
                b:f64 = @abs(a);
                c:f64 = @sqrt(b);
                m:bool = @gt(c, 0.5:f64);
                d:f64 = @compress(m, c);
                e:f64 = @sum(d);
                return e;
            }
        }
        """
        args = [from_numpy(x), from_numpy(y)]
        naive = compile_module(parse_module(source), "naive").run(
            args=args)
        opt = compile_module(parse_module(source), "opt").run(
            args=args, chunk_size=256)
        assert naive.item() == pytest.approx(opt.item())

"""Tests for the native (emitted C + OpenMP) backend."""

import numpy as np
import pytest

from repro.core import from_numpy, types as ht
from repro.core.codegen.cgen import CKernel, c_backend_available
from repro.core.compiler import compile_module
from repro.core.optimizer.fusion import FusedItem, segment_method
from repro.core.parser import parse_method, parse_module

pytestmark = pytest.mark.skipif(not c_backend_available(),
                                reason="gcc not available")


def _compile(source: str, backend="c"):
    return compile_module(parse_module(source), "opt", backend=backend)


def _both(source: str, args, **kwargs):
    py = compile_module(parse_module(source), "opt",
                        backend="python").run(args=args, **kwargs)
    c = compile_module(parse_module(source), "opt",
                       backend="c").run(args=args, **kwargs)
    return py, c


BLACKSCHOLES_LIKE = """
module M {
    def main(x:f64, y:f64): f64 {
        a:f64 = @mul(x, y);
        b:f64 = @add(a, 1.0:f64);
        c:f64 = @sqrt(b);
        d:f64 = @exp(c);
        e:f64 = @div(d, b);
        return e;
    }
}
"""


class TestCorrectness:
    def test_elementwise_chain_matches_python(self):
        rng = np.random.default_rng(0)
        args = [from_numpy(rng.uniform(0.1, 2, 10_000)),
                from_numpy(rng.uniform(0.1, 2, 10_000))]
        py, c = _both(BLACKSCHOLES_LIKE, args)
        np.testing.assert_allclose(c.data, py.data, rtol=1e-12)

    def test_guarded_reduction_matches_figure3(self):
        source = """
        module M {
            def main(p:f64, d:f64, q:f64): f64 {
                m1:bool = @geq(d, 0.05:f64);
                m2:bool = @lt(q, 24.0:f64);
                m:bool = @and(m1, m2);
                kp:f64 = @compress(m, p);
                kd:f64 = @compress(m, d);
                prod:f64 = @mul(kp, kd);
                extra:f64 = @abs(prod);
                s:f64 = @sum(extra);
                return s;
            }
        }
        """
        rng = np.random.default_rng(1)
        args = [from_numpy(rng.uniform(100, 1000, 50_000)),
                from_numpy(rng.uniform(0, 0.1, 50_000)),
                from_numpy(rng.uniform(1, 50, 50_000))]
        py, c = _both(source, args)
        assert c.item() == pytest.approx(py.item(), rel=1e-12)

    @pytest.mark.parametrize("reducer", ["sum", "prod", "min", "max",
                                         "count", "any", "all"])
    def test_every_reduction(self, reducer):
        ret = {"count": "i64", "any": "bool", "all": "bool"}.get(
            reducer, "f64")
        source = f"""
        module M {{
            def main(x:f64): {ret} {{
                a:f64 = @mul(x, 0.5:f64);
                b:bool = @gt(a, 0.25:f64);
                v:{'bool' if reducer in ('any', 'all') else 'f64'} =
                    {'@gt(a, 0.25:f64)' if reducer in ('any', 'all')
                     else '@add(a, 0.1:f64)'};
                r:{ret} = @{reducer}(v);
                return r;
            }}
        }}
        """.replace("\n                    ", " ")
        rng = np.random.default_rng(2)
        args = [from_numpy(rng.uniform(0.1, 1.0, 5000))]
        py, c = _both(source, args)
        assert c.item() == pytest.approx(py.item(), rel=1e-9)

    def test_vector_outputs(self):
        source = """
        module M {
            def main(x:f64): f64 {
                a:f64 = @mul(x, 2.0:f64);
                b:f64 = @add(a, 1.0:f64);
                return b;
            }
        }
        """
        data = np.arange(10_000, dtype=np.float64)
        py, c = _both(source, [from_numpy(data)])
        np.testing.assert_allclose(c.data, data * 2 + 1)

    def test_scalar_broadcast_inputs(self):
        source = """
        module M {
            def main(x:f64, k:f64): f64 {
                y:f64 = @mul(x, k);
                z:f64 = @add(y, k);
                s:f64 = @sum(z);
                return s;
            }
        }
        """
        data = np.ones(1000)
        args = [from_numpy(data), from_numpy(np.array([3.0]))]
        py, c = _both(source, args)
        assert c.item() == pytest.approx(py.item())

    def test_date_comparisons_cross_as_int64(self):
        source = """
        module M {
            def main(d:date, v:f64): f64 {
                m:bool = @geq(d, 1994-01-01:date);
                kept:f64 = @compress(m, v);
                extra:f64 = @mul(kept, 2.0:f64);
                s:f64 = @sum(extra);
                return s;
            }
        }
        """
        dates = from_numpy(np.array(
            ["1993-06-01", "1994-06-01", "1995-01-01"],
            dtype="datetime64[D]"))
        values = from_numpy(np.array([1.0, 10.0, 100.0]))
        py, c = _both(source, [dates, values])
        assert c.item() == pytest.approx(220.0)
        assert py.item() == pytest.approx(220.0)

    def test_nan_in_deselected_lane_stays_out(self):
        source = """
        module M {
            def main(x:f64, y:f64): f64 {
                bad:f64 = @sqrt(x);
                m:bool = @geq(x, 0.0:f64);
                kept:f64 = @compress(m, bad);
                doubled:f64 = @mul(kept, 2.0:f64);
                s:f64 = @sum(doubled);
                return s;
            }
        }
        """
        x = from_numpy(np.array([-1.0, 4.0]))
        y = from_numpy(np.array([0.0, 0.0]))
        py, c = _both(source, [x, y])
        assert c.item() == pytest.approx(4.0)
        assert py.item() == pytest.approx(4.0)

    def test_threads_agree(self):
        rng = np.random.default_rng(3)
        args = [from_numpy(rng.uniform(0.1, 2, 100_000)),
                from_numpy(rng.uniform(0.1, 2, 100_000))]
        program = _compile(BLACKSCHOLES_LIKE)
        t1 = program.run(args=args, n_threads=1)
        t4 = program.run(args=args, n_threads=4)
        np.testing.assert_allclose(t1.data, t4.data)


class TestFallbacks:
    def test_string_segments_fall_back_to_python(self):
        source = """
        module M {
            def main(s:str, v:f64): f64 {
                m:bool = @eq(s, "keep":str);
                kept:f64 = @compress(m, v);
                doubled:f64 = @mul(kept, 2.0:f64);
                total:f64 = @sum(doubled);
                return total;
            }
        }
        """
        strings = np.empty(3, dtype=object)
        for i, value in enumerate(["keep", "drop", "keep"]):
            strings[i] = value
        program = _compile(source)
        result = program.run(args=[from_numpy(strings),
                                   from_numpy(np.array([1.0, 10.0,
                                                        100.0]))])
        assert result.item() == pytest.approx(202.0)

    def test_compressed_vector_output_falls_back(self):
        method = parse_method("""
        def main(x:f64): f64 {
            m:bool = @gt(x, 0.5:f64);
            y:f64 = @compress(m, x);
            z:f64 = @mul(y, 2.0:f64);
            return z;
        }
        """)
        plan = segment_method(method)
        for item in plan:
            if isinstance(item, FusedItem):
                kernel = CKernel(item.segment)
                assert not kernel.eligible  # compressed vector output

    def test_empty_input_falls_back(self):
        source = """
        module M {
            def main(x:f64): f64 {
                a:f64 = @mul(x, 2.0:f64);
                s:f64 = @sum(a);
                return s;
            }
        }
        """
        program = _compile(source)
        result = program.run(args=[from_numpy(np.empty(0))])
        assert result.item() == 0


class TestMatlabAndSQLThroughC:
    def test_blackscholes_matlab(self):
        from repro.data.blackscholes import (calc_option_price,
                                             generate_blackscholes)
        from repro.matlang import compile_matlab
        from repro.workloads.matlab_sources import BLACKSCHOLES_MATLAB

        data = generate_blackscholes(20_000)
        args = [data[c] for c in ("spotPrice", "strike", "rate",
                                  "volatility", "otime", "optionType")]
        program = compile_matlab(BLACKSCHOLES_MATLAB, backend="c")
        assert program.report.c_eligible_segments >= 1
        result = np.asarray(program(*args))
        np.testing.assert_allclose(result, calc_option_price(*args),
                                   rtol=1e-10)

    def test_sql_udf_query_through_c(self):
        from repro.engine.storage import Database
        from repro.horsepower import HorsePowerSystem

        rng = np.random.default_rng(4)
        db = Database()
        db.create_table("lineitem", {
            "l_extendedprice": rng.uniform(100, 1000, 20_000),
            "l_discount": np.round(rng.uniform(0, 0.1, 20_000), 2),
        })
        hp = HorsePowerSystem(db)
        hp.register_scalar_udf(
            "revUDF", "function r = f(p, d)\n    r = p .* d;\nend",
            [ht.F64, ht.F64], ht.F64)
        sql = ("SELECT SUM(revUDF(l_extendedprice, l_discount)) AS r "
               "FROM lineitem WHERE l_discount >= 0.05")
        python_result = hp.run_sql(sql, backend="python")
        c_result = hp.run_sql(sql, backend="c")
        assert c_result.column("r").data[0] == pytest.approx(
            python_result.column("r").data[0])

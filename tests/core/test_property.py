"""Property-based tests (hypothesis) on the core invariants.

The central property is the compiler's soundness: for arbitrary inputs,
the reference interpreter, the naive backend and the optimized/fused
backend must agree.  The rest pin algebraic invariants of the builtins
the optimizer's rewrites rely on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import F64, builtins as hb
from repro.core import types as ht
from repro.core.compiler import compile_module
from repro.core.interp import run_module
from repro.core.parser import parse_module
from repro.core.values import ListValue, Vector, from_numpy, scalar

CTX = hb.EvalContext()


def run(name, *args):
    return hb.get(name).run(list(args), CTX)


finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False,
                          width=64)
float_arrays = st.lists(finite_floats, min_size=0, max_size=200).map(
    lambda xs: np.asarray(xs, dtype=np.float64))
nonempty_float_arrays = st.lists(finite_floats, min_size=1,
                                 max_size=200).map(
    lambda xs: np.asarray(xs, dtype=np.float64))


@st.composite
def array_pairs(draw):
    n = draw(st.integers(min_value=0, max_value=150))
    elements = st.lists(finite_floats, min_size=n, max_size=n)
    a = np.asarray(draw(elements), dtype=np.float64)
    b = np.asarray(draw(elements), dtype=np.float64)
    return a, b


@st.composite
def masked_pairs(draw):
    n = draw(st.integers(min_value=0, max_value=150))
    values = np.asarray(draw(st.lists(finite_floats, min_size=n,
                                      max_size=n)), dtype=np.float64)
    mask = np.asarray(draw(st.lists(st.booleans(), min_size=n,
                                    max_size=n)), dtype=np.bool_)
    return mask, values


class TestBuiltinInvariants:
    @given(masked_pairs())
    def test_compress_keeps_exactly_masked_elements(self, pair):
        mask, values = pair
        result = run("compress", from_numpy(mask), from_numpy(values))
        assert len(result) == int(mask.sum())
        assert np.array_equal(result.data, values[mask])

    @given(masked_pairs())
    def test_sum_masked_is_sum_of_compress(self, pair):
        mask, values = pair
        direct = run("sum_masked", from_numpy(mask), from_numpy(values))
        composed = run("sum", run("compress", from_numpy(mask),
                                  from_numpy(values)))
        assert np.isclose(direct.item(), composed.item())

    @given(array_pairs(), st.lists(st.booleans(), max_size=150))
    def test_dot_masked_is_composition(self, pair, bools):
        x, y = pair
        mask = np.zeros(len(x), dtype=np.bool_)
        mask[:len(bools)] = bools[:len(x)]
        direct = run("dot_masked", from_numpy(mask), from_numpy(x),
                     from_numpy(y))
        compressed = run("mul",
                         run("compress", from_numpy(mask), from_numpy(x)),
                         run("compress", from_numpy(mask), from_numpy(y)))
        composed = run("sum", compressed)
        assert np.isclose(direct.item(), composed.item())

    @given(nonempty_float_arrays)
    def test_avg_split_identity(self, values):
        """The pattern rewrite avg == sum / count."""
        avg = run("avg", from_numpy(values)).item()
        total = run("sum", from_numpy(values)).item()
        count = run("count", from_numpy(values)).item()
        assert np.isclose(avg, total / count)

    @given(float_arrays)
    def test_cumsum_last_equals_sum(self, values):
        if len(values) == 0:
            return
        cumulative = run("cumsum", from_numpy(values))
        total = run("sum", from_numpy(values))
        assert np.isclose(cumulative.data[-1], total.item())

    @given(st.lists(st.integers(min_value=-50, max_value=50),
                    min_size=0, max_size=120))
    def test_group_is_a_partition(self, keys):
        data = np.asarray(keys, dtype=np.int64)
        grouped = run("group", from_numpy(data))
        first, codes = grouped[0].data, grouped[1].data
        assert len(codes) == len(data)
        if len(data) == 0:
            return
        ngroups = len(first)
        # Codes are dense in [0, ngroups).
        assert set(codes.tolist()) == set(range(ngroups))
        # The representative row of each group carries the group's key.
        for gid in range(ngroups):
            members = data[codes == gid]
            assert np.all(members == data[first[gid]])
        # First-appearance numbering: first indices strictly increase.
        assert np.all(np.diff(first) > 0)

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=80),
           st.lists(st.integers(min_value=0, max_value=20), max_size=80))
    def test_join_index_matches_bruteforce(self, left, right):
        lv = np.asarray(left, dtype=np.int64)
        rv = np.asarray(right, dtype=np.int64)
        pair = run("join_index", from_numpy(lv), from_numpy(rv),
                   scalar("inner", ht.SYM))
        got = sorted(zip(pair[0].data.tolist(), pair[1].data.tolist()))
        expected = sorted((i, j)
                          for i in range(len(lv))
                          for j in range(len(rv))
                          if lv[i] == rv[j])
        assert got == expected

    @given(nonempty_float_arrays)
    def test_order_produces_sorted_permutation(self, values):
        order = run("order", from_numpy(values),
                    Vector(ht.BOOL, np.array([True]))).data
        assert sorted(order.tolist()) == list(range(len(values)))
        assert np.all(np.diff(values[order]) >= 0)

    @given(st.lists(st.sampled_from(["a", "b", "c", "dd"]), min_size=0,
                    max_size=100))
    def test_unique_first_appearance(self, values):
        array = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            array[i] = v
        result = run("unique", Vector(ht.STR, array)).data.tolist()
        expected = list(dict.fromkeys(values))
        assert result == expected

    @given(masked_pairs())
    def test_group_sum_totals_to_global_sum(self, pair):
        _, values = pair
        if len(values) == 0:
            return
        codes = from_numpy((np.arange(len(values)) % 3).astype(np.int64))
        partial = run("group_sum", from_numpy(values), codes,
                      scalar(3, ht.I64))
        assert np.isclose(partial.data.sum(), values.sum())


PIPELINE = """
module P {
    def main(x:f64, y:f64): f64 {
        a:f64 = @mul(x, y);
        b:f64 = @add(a, 1.0:f64);
        c:f64 = @abs(b);
        d:f64 = @sqrt(c);
        m:bool = @geq(d, 1.0:f64);
        e:f64 = @compress(m, d);
        f:f64 = @compress(m, x);
        g:f64 = @mul(e, f);
        s:f64 = @sum(g);
        return s;
    }
}
"""


class TestBackendEquivalence:
    """Interpreter == naive backend == optimized backend."""

    @settings(max_examples=30, deadline=None)
    @given(array_pairs(), st.integers(min_value=7, max_value=64))
    def test_three_executions_agree(self, pair, chunk):
        x, y = pair
        args = [from_numpy(x), from_numpy(y)]
        interpreted = run_module(parse_module(PIPELINE), args=args)
        naive = compile_module(parse_module(PIPELINE), "naive").run(
            args=args)
        opt = compile_module(parse_module(PIPELINE), "opt").run(
            args=args, chunk_size=chunk)
        assert np.isclose(interpreted.item(), naive.item())
        assert np.isclose(interpreted.item(), opt.item())

    @settings(max_examples=20, deadline=None)
    @given(nonempty_float_arrays, st.integers(min_value=2, max_value=4))
    def test_threading_is_deterministic(self, values, threads):
        source = """
        module T {
            def main(x:f64): f64 {
                a:f64 = @mul(x, x);
                b:f64 = @add(a, 0.5:f64);
                s:f64 = @sum(b);
                return s;
            }
        }
        """
        program = compile_module(parse_module(source), "opt")
        single = program.run(args=[from_numpy(values)], n_threads=1,
                             chunk_size=16)
        multi = program.run(args=[from_numpy(values)], n_threads=threads,
                            chunk_size=16)
        assert np.isclose(single.item(), multi.item())


class TestMatlangEquivalence:
    """MATLAB interpreter == compiled HorseIR, property-style."""

    @settings(max_examples=25, deadline=None)
    @given(nonempty_float_arrays)
    def test_filter_sum_kernel(self, values):
        from repro.matlang import compile_matlab
        from repro.matlang.interp import run_matlab
        source = """
        function y = f(x)
            m = x(x > 0);
            y = sum(m .* m) + sum(x);
        end
        """
        expected = run_matlab(source, values)
        program = compile_matlab(source)
        assert np.isclose(float(program(values)),
                          float(np.asarray(expected).reshape(-1)[0]))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=10),
           st.lists(finite_floats, min_size=10, max_size=60))
    def test_msum_window(self, window, values):
        from repro.matlang import compile_matlab
        data = np.asarray(values, dtype=np.float64)
        source = """
        function s = msum(x, n)
            c = cumsum(x);
            s = c(n:end) - [0, c(1:end-n)];
        end
        """
        program = compile_matlab(
            source, param_specs=[("f64", "vector"), ("f64", "scalar")])
        result = np.atleast_1d(np.asarray(
            program(data, float(window)), dtype=np.float64))
        expected = np.convolve(data, np.ones(window), mode="valid")
        assert np.allclose(result, expected, atol=1e-6)

"""The lint rule registry and drivers: one intentionally-broken
fixture per rule ID (exact diagnostics + JSON schema), registry
invariants, and the golden clean-tree gate over every built-in
workload (TPC-H plain/extended/UDF, Black-Scholes scalar/table, and
the MATLAB sources)."""

import json

from repro.cli import main
from repro.core import ir
from repro.core import types as ht
from repro.core.analysis import (LINT_JSON_VERSION, RULES,
                                 default_rule_ids, findings_to_json,
                                 lint_matlab, lint_module, lint_plan)
from repro.core.analysis.lint import SEVERITIES
from repro.core.parser import parse_module
from repro.matlang.parser import parse_program
from repro.sql import plan as p


class TestRegistry:
    def test_ids_are_stable(self):
        assert tuple(RULES) == ("H001", "H002", "H003", "H004",
                                "P001", "P002", "P003",
                                "M001", "M002")

    def test_every_rule_is_consistent(self):
        for rule_id, rule in RULES.items():
            assert rule.id == rule_id
            assert rule.severity in SEVERITIES
            assert rule.layer in ("hir", "plan", "matlab")
            assert rule.name and rule.summary

    def test_default_set_excludes_advisories(self):
        defaults = default_rule_ids()
        assert "H004" not in defaults  # fusion report, not a defect
        assert "P003" not in defaults  # perf advisory
        assert set(defaults) == {"H001", "H002", "H003",
                                 "P001", "P002", "M001", "M002"}


class TestBrokenHorseIRFixtures:
    def test_h001_unused_parameter(self):
        module = parse_module("""
        module M {
            def main(a:f64, b:f64): f64 {
                x:f64 = @mul(a, 2.0:f64);
                return x;
            }
        }
        """)
        findings = lint_module(module)
        assert [f.rule for f in findings] == ["H001"]
        finding = findings[0]
        assert finding.location == "method 'main'"
        assert finding.message == "parameter 'b' is never read"
        assert finding.severity == "warning"

    def test_h002_dead_method(self):
        module = parse_module("""
        module M {
            def orphan(x:f64): f64 {
                y:f64 = @mul(x, 2.0:f64);
                return y;
            }
            def main(a:f64): f64 {
                x:f64 = @add(a, 1.0:f64);
                return x;
            }
        }
        """)
        findings = lint_module(module)
        assert [f.rule for f in findings] == ["H002"]
        assert findings[0].location == "method 'orphan'"
        assert findings[0].message \
            == "never called from entry method 'main'"

    def test_h003_redundant_cast(self):
        module = parse_module("""
        module M {
            def main(v:f64): f64 {
                a:f64 = @mul(v, 2.0:f64);
                c:f64 = check_cast(a, f64);
                return c;
            }
        }
        """)
        findings = lint_module(module)
        assert [f.rule for f in findings] == ["H003"]
        assert "check_cast(a, f64) is redundant" in findings[0].message
        assert "already has type f64" in findings[0].message

    def test_h003_silent_on_enforcing_cast(self):
        # The cast *changes* the type: that is the cast doing its job.
        module = parse_module("""
        module M {
            def main(v:i64): f64 {
                c:f64 = check_cast(v, f64);
                return c;
            }
        }
        """)
        assert lint_module(module) == []

    def test_h004_fusion_blocker_is_opt_in(self):
        module = ir.Module("M")
        helper = ir.Method("helper", [ir.Param("x", ht.F64)], ht.F64, [
            ir.Return(ir.Var("x")),
        ])
        entry = ir.Method("main", [ir.Param("v", ht.F64)], ht.F64, [
            ir.Assign("b", ht.F64, ir.MethodCall("helper",
                                                 [ir.Var("v")])),
            ir.Return(ir.Var("b")),
        ])
        module.add(helper)
        module.add(entry)
        assert [f for f in lint_module(module)
                if f.rule == "H004"] == []
        findings = lint_module(module, rules=("H004",))
        assert [f.rule for f in findings] == ["H004"]
        assert "uninlined method call" in findings[0].message
        assert findings[0].severity == "info"


class TestBrokenPlanFixtures:
    def test_p001_constant_predicate(self, tmp_path, capsys):
        # Through the real CLI path: plan a query whose filter
        # references no columns.
        import numpy as np

        from repro.engine.storage import Database

        db = Database()
        db.create_table("t", {"x": np.arange(4, dtype=np.float64)})
        path = tmp_path / "t.tbl"
        db.save_csv("t", str(path))
        code = main(["lint", "--table", f"t={path}@x:f64",
                     "--sql", "SELECT x FROM t WHERE 1 < 2"])
        assert code == 1
        out = capsys.readouterr().out
        assert "P001" in out
        assert "constant predicate" in out

    def test_p002_cross_join_without_filter(self):
        # The SQL frontend refuses keyless joins, so the degenerate
        # plan is built directly — the shape a buggy rewrite would
        # leave behind.
        join = p.Join(left=p.Scan(table="a", columns=["x"]),
                      right=p.Scan(table="b", columns=["y"]))
        findings = lint_plan(join)
        assert [f.rule for f in findings] == ["P002"]
        assert "Cartesian product" in findings[0].message

    def test_p002_silent_when_filtered_above(self):
        from repro.sql import ast as sast

        join = p.Join(left=p.Scan(table="a", columns=["x"]),
                      right=p.Scan(table="b", columns=["y"]))
        filtered = p.Filter(child=join,
                            predicate=sast.Col(name="x"))
        assert [f for f in lint_plan(filtered)
                if f.rule == "P002"] == []

    def test_p003_sort_without_limit_is_opt_in(self, tmp_path,
                                               capsys):
        import numpy as np

        from repro.engine.storage import Database

        db = Database()
        db.create_table("t", {"x": np.arange(4, dtype=np.float64)})
        path = tmp_path / "t.tbl"
        db.save_csv("t", str(path))
        sql = "SELECT x FROM t ORDER BY x"
        assert main(["lint", "--table", f"t={path}@x:f64",
                     "--sql", sql]) == 0
        capsys.readouterr()
        code = main(["lint", "--table", f"t={path}@x:f64",
                     "--select", "P003", "--sql", sql])
        assert code == 1
        out = capsys.readouterr().out
        assert "P003" in out
        assert "full sort with no LIMIT" in out


class TestBrokenMatlabFixtures:
    def test_m001_shadowed_builtin(self):
        program = parse_program("""
        function y = f(x)
            sum = x + 1;
            y = sum;
        end
        """)
        findings = lint_matlab(program)
        assert [f.rule for f in findings] == ["M001"]
        assert findings[0].location == "function 'f'"
        assert "shadows the builtin 'sum'" in findings[0].message
        assert "become indexing" in findings[0].message

    def test_m002_unreachable_code(self):
        program = parse_program("""
        function y = g(x)
            y = x;
            return;
            y = x + 1;
        end
        """)
        findings = lint_matlab(program)
        assert [f.rule for f in findings] == ["M002"]
        assert findings[0].location == "function 'g'"
        assert findings[0].message \
            == "1 statement(s) after return can never execute"


class TestJsonSchema:
    def test_documented_shape(self):
        program = parse_program("""
        function y = f(x)
            sum = x + 1;
            y = sum;
        end
        """)
        doc = findings_to_json(lint_matlab(program))
        assert doc["version"] == LINT_JSON_VERSION
        assert doc["counts"] == {"warning": 1}
        (finding,) = doc["findings"]
        assert set(finding) == {"rule", "name", "layer", "severity",
                                "location", "message"}
        assert finding["rule"] == "M001"
        assert finding["name"] == "shadowed-builtin"
        assert finding["layer"] == "matlab"
        json.dumps(doc)  # must be serializable as-is

    def test_empty_findings(self):
        assert findings_to_json([]) == {
            "version": LINT_JSON_VERSION, "findings": [], "counts": {}}

    def test_cli_json_output_validates(self, tmp_path, capsys):
        source = tmp_path / "f.m"
        source.write_text(
            "function y = f(x)\n"
            "    sum = x + 1;\n"
            "    y = sum;\n"
            "    return;\n"
            "    y = 0;\n"
            "end\n")
        code = main(["lint", "--matlab", str(source),
                     "--format", "json"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == LINT_JSON_VERSION
        assert sorted(f["rule"] for f in doc["findings"]) \
            == ["M001", "M002"]
        assert doc["counts"] == {"warning": 2}


class TestGoldenWorkloadsLintClean:
    """The CI clean-tree gate: every built-in workload — all TPC-H
    plain/extended/UDF queries, every Black-Scholes scalar and table
    variant, and all four MATLAB sources — lints clean under the
    default rule set."""

    def test_all_workloads_clean(self, capsys):
        code = main(["lint", "--workloads", "--tpch", "0.002",
                     "--format", "json"])
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["findings"] == [], doc["findings"]
        assert doc["counts"] == {}
        assert code == 0

    def test_matlab_sources_clean(self):
        from repro.workloads import matlab_sources

        for name in matlab_sources.__all__:
            program = parse_program(getattr(matlab_sources, name))
            assert lint_matlab(program) == [], name

"""Unit tests for the type system and runtime values."""

import numpy as np
import pytest

from repro.core import types as ht
from repro.core.values import (ListValue, TableValue, Vector, from_numpy,
                               scalar, vector)
from repro.errors import HorseRuntimeError, HorseTypeError


class TestTypes:
    def test_interning(self):
        assert ht.make_type("f64") is ht.F64
        assert ht.list_of(ht.F64) is ht.list_of(ht.F64)

    def test_parse_type(self):
        assert ht.parse_type("i32") is ht.I32
        assert ht.parse_type("list<f64>") is ht.list_of(ht.F64)
        assert ht.parse_type("list<list<bool>>") \
            is ht.list_of(ht.list_of(ht.BOOL))

    def test_unknown_type_rejected(self):
        with pytest.raises(HorseTypeError, match="unknown"):
            ht.make_type("quaternion")

    def test_promotion_ladder(self):
        assert ht.promote(ht.BOOL, ht.I32) is ht.I32
        assert ht.promote(ht.I64, ht.F32) is ht.F32
        assert ht.promote(ht.I64, ht.F64) is ht.F64
        assert ht.promote(ht.F32, ht.F64) is ht.F64

    def test_promotion_rejects_non_numeric(self):
        with pytest.raises(HorseTypeError):
            ht.promote(ht.STR, ht.F64)

    def test_unify_with_wildcard(self):
        assert ht.unify(ht.WILDCARD, ht.F64) is ht.F64
        assert ht.unify(ht.F64, ht.WILDCARD) is ht.F64
        assert ht.unify(ht.list_of(ht.WILDCARD),
                        ht.list_of(ht.I64)) is ht.list_of(ht.I64)

    def test_unify_incompatible(self):
        with pytest.raises(HorseTypeError):
            ht.unify(ht.STR, ht.DATE)

    def test_numpy_dtype_round_trip(self):
        for type_ in (ht.BOOL, ht.I8, ht.I16, ht.I32, ht.I64, ht.F32,
                      ht.F64, ht.DATE):
            assert ht.type_of_dtype(ht.numpy_dtype(type_)) is type_

    def test_wildcard_prints_parsable_spelling(self):
        assert str(ht.WILDCARD) == "unknown"

    def test_comparability(self):
        assert ht.is_comparable(ht.DATE)
        assert ht.is_comparable(ht.STR)
        assert ht.is_comparable(ht.F64)
        assert not ht.is_comparable(ht.TABLE)


class TestVector:
    def test_construction_coerces_dtype(self):
        v = Vector(ht.F64, np.array([1, 2], dtype=np.int64))
        assert v.data.dtype == np.float64

    def test_rejects_multidimensional(self):
        with pytest.raises(HorseTypeError, match="one-dimensional"):
            Vector(ht.F64, np.zeros((2, 2)))

    def test_item_requires_scalar(self):
        with pytest.raises(HorseRuntimeError, match="scalar"):
            vector([1.0, 2.0], ht.F64).item()

    def test_item_unwraps_numpy_scalars(self):
        value = scalar(3, ht.I64).item()
        assert value == 3 and isinstance(value, int)

    def test_astype_identity_is_no_copy(self):
        v = vector([1.0], ht.F64)
        assert v.astype(ht.F64) is v

    def test_equality(self):
        assert vector([1.0, 2.0], ht.F64) == vector([1.0, 2.0], ht.F64)
        assert vector([1.0], ht.F64) != vector([2.0], ht.F64)

    def test_scalar_inference(self):
        assert scalar(True).type is ht.BOOL
        assert scalar(3).type is ht.I64
        assert scalar(2.5).type is ht.F64
        assert scalar("x").type is ht.STR
        assert scalar(np.datetime64("2020-01-01")).type is ht.DATE

    def test_from_numpy_unicode_becomes_str_objects(self):
        v = from_numpy(np.array(["ab", "cd"]))
        assert v.type is ht.STR
        assert v.data.dtype == object


class TestTableValue:
    def test_schema_checks(self):
        with pytest.raises(HorseTypeError, match="length"):
            TableValue([("a", vector([1.0], ht.F64)),
                        ("b", vector([1.0, 2.0], ht.F64))])
        with pytest.raises(HorseTypeError, match="duplicate"):
            TableValue([("a", vector([1.0], ht.F64)),
                        ("a", vector([2.0], ht.F64))])

    def test_missing_column_message_lists_available(self):
        table = TableValue([("x", vector([1.0], ht.F64))])
        with pytest.raises(HorseRuntimeError, match="x"):
            table.column("y")

    def test_head_and_to_pylist(self):
        table = TableValue([("x", vector([1.0, 2.0, 3.0], ht.F64))])
        assert table.head(2).num_rows == 2
        assert table.to_pylist() == [{"x": 1.0}, {"x": 2.0}, {"x": 3.0}]

    def test_empty_table(self):
        table = TableValue([])
        assert table.num_rows == 0
        assert table.num_columns == 0


class TestListValue:
    def test_homogeneous_list_types(self):
        lst = ListValue([vector([1.0], ht.F64), vector([2.0], ht.F64)])
        assert lst.type is ht.list_of(ht.F64)

    def test_mixed_list_is_wildcard(self):
        lst = ListValue([vector([1.0], ht.F64), vector([1], ht.I64)])
        assert lst.type is ht.list_of(ht.WILDCARD)

    def test_indexing_and_iteration(self):
        items = [vector([1.0], ht.F64), vector([2.0], ht.F64)]
        lst = ListValue(items)
        assert lst[1] == items[1]
        assert list(lst) == items

"""Verifier and printer behaviours not covered elsewhere."""

import pytest

from repro.core import ir
from repro.core import types as ht
from repro.core.parser import parse_method, parse_module
from repro.core.printer import print_method, print_module, print_stmt
from repro.core.verify import verify_method, verify_module
from repro.errors import HorseSyntaxError, HorseVerifyError


class TestVerifier:
    def test_empty_module_rejected(self):
        with pytest.raises(HorseVerifyError, match="no methods"):
            verify_module(ir.Module("Empty"))

    def test_missing_return_rejected(self):
        method = ir.Method("m", [], ht.F64, [
            ir.Assign("a", ht.F64, ir.Literal(1.0, ht.F64)),
        ])
        with pytest.raises(HorseVerifyError, match="return"):
            verify_method(method)

    def test_both_branches_returning_is_terminal(self):
        method = parse_method("""
        def m(c:bool): i64 {
            if (c) {
                return 1:i64;
            } else {
                return 0:i64;
            }
        }
        """)
        verify_method(method)

    def test_one_armed_if_is_not_terminal(self):
        source = """
        module M {
            def m(c:bool): i64 {
                if (c) {
                    return 1:i64;
                }
            }
        }
        """
        with pytest.raises(HorseVerifyError, match="return"):
            verify_module(parse_module(source))

    def test_branch_local_definition_not_visible_after(self):
        source = """
        module M {
            def m(c:bool): i64 {
                if (c) {
                    x:i64 = 1:i64;
                } else {
                    y:i64 = 2:i64;
                }
                return x;
            }
        }
        """
        with pytest.raises(HorseVerifyError, match="before assignment"):
            verify_module(parse_module(source))

    def test_definition_on_both_branches_is_visible(self):
        source = """
        module M {
            def m(c:bool): i64 {
                if (c) {
                    x:i64 = 1:i64;
                } else {
                    x:i64 = 2:i64;
                }
                return x;
            }
        }
        """
        verify_module(parse_module(source))

    def test_loop_body_definitions_do_not_escape(self):
        source = """
        module M {
            def m(c:bool): i64 {
                while (c) {
                    x:i64 = 1:i64;
                }
                return x;
            }
        }
        """
        with pytest.raises(HorseVerifyError, match="before assignment"):
            verify_module(parse_module(source))

    def test_builtin_arity_checked(self):
        method = ir.Method("m", [ir.Param("x", ht.F64)], ht.F64, [
            ir.Return(ir.BuiltinCall("add", [ir.Var("x")])),
        ])
        with pytest.raises(HorseVerifyError, match="expects 2"):
            verify_method(method)

    def test_call_to_unknown_method_rejected(self):
        source_module = ir.Module("M")
        source_module.add(ir.Method("main", [], ht.F64, [
            ir.Return(ir.MethodCall("ghost", [])),
        ]))
        with pytest.raises(HorseVerifyError, match="unknown method"):
            verify_module(source_module)

    def test_method_call_arity_checked(self):
        source = """
        module M {
            def helper(x:f64): f64 {
                return x;
            }
            def main(a:f64): f64 {
                b:f64 = @helper(a, a);
                return b;
            }
        }
        """
        with pytest.raises(HorseVerifyError, match="expects 1"):
            verify_module(parse_module(source))

    def test_duplicate_parameter_names_rejected(self):
        method = ir.Method("m", [ir.Param("x", ht.F64),
                                 ir.Param("x", ht.F64)], ht.F64, [
            ir.Return(ir.Var("x")),
        ])
        with pytest.raises(HorseVerifyError, match="duplicate"):
            verify_method(method)


ROUND_TRIP_SOURCES = [
    """
    module A {
        def main(x:f64, y:i64): table {
            a:f64 = @add(x, 1.5:f64);
            b:bool = @geq(a, 0:i64);
            c:f64 = @compress(b, a);
            s:sym = `col:sym;
            l:list<f64> = @list(c);
            t:table = @table(s, l);
            return t;
        }
    }
    """,
    """
    module B {
        def f(s:str, d:date): bool {
            m1:bool = @eq(s, "it's":str);
            m2:bool = @lt(d, 1998-09-02:date);
            m:bool = @and(m1, m2);
            r:bool = @any(m);
            return r;
        }
        def main(s:str, d:date): bool {
            r:bool = @f(s, d);
            return r;
        }
    }
    """,
    """
    module C {
        def main(n:i64): i64 {
            total:i64 = 0:i64;
            i:i64 = 0:i64;
            c:bool = @lt(i, n);
            while (c) {
                p:bool = @gt(i, 3:i64);
                if (p) {
                    total:i64 = @add(total, i);
                } else {
                    total:i64 = @sub(total, i);
                }
                i:i64 = @add(i, 1:i64);
                c:bool = @lt(i, n);
            }
            return total;
        }
    }
    """,
]


class TestPrinterRoundTrip:
    @pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
    def test_print_parse_print_fixpoint(self, source):
        module = parse_module(source)
        printed = print_module(module)
        reparsed = parse_module(printed)
        assert print_module(reparsed) == printed

    def test_print_stmt_variants(self):
        method = parse_method("""
        def m(c:bool): i64 {
            if (c) {
                x:i64 = 1:i64;
            } else {
                x:i64 = 2:i64;
            }
            return x;
        }
        """)
        text = print_stmt(method.body[0])
        assert text.startswith("if (c)")
        assert "} else {" in text

    def test_wildcard_type_round_trips(self):
        method = ir.Method("m", [ir.Param("x", ht.F64)], ht.F64, [
            ir.Assign("a", ht.WILDCARD,
                      ir.BuiltinCall("mul", [ir.Var("x"), ir.Var("x")])),
            ir.Return(ir.Var("a")),
        ])
        text = print_method(method)
        assert "a:unknown" in text
        reparsed = parse_method(text)
        assert reparsed.body[0].type is ht.WILDCARD


class TestParserErrors:
    def test_unknown_character(self):
        with pytest.raises(HorseSyntaxError, match="unexpected"):
            parse_module("module M { def main(): i64 { § } }")

    def test_symbol_without_sym_suffix(self):
        with pytest.raises(HorseSyntaxError, match="sym"):
            parse_module("""
            module M {
                def main(): table {
                    t:table = @load_table(`x:f64);
                    return t;
                }
            }
            """)

    def test_date_literal_wrong_annotation(self):
        with pytest.raises(HorseSyntaxError, match="date"):
            parse_module("""
            module M {
                def main(): f64 {
                    a:f64 = 1998-09-02:f64;
                    return a;
                }
            }
            """)

    def test_duplicate_method_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_module("""
            module M {
                def f(): i64 { return 1:i64; }
                def f(): i64 { return 2:i64; }
            }
            """)

"""Prepared-query cache: hits, misses, invalidation, LRU eviction."""

import numpy as np
import pytest

from repro.core import types as ht
from repro.engine.storage import Database
from repro.horsepower import HorsePowerSystem
from repro.horsepower.cache import PlanCache, normalize_sql


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", {
        "x": np.arange(100, dtype=np.float64),
        "y": np.arange(100, dtype=np.float64) * 2.0,
    })
    return database


@pytest.fixture
def hp(db):
    return HorsePowerSystem(db)


class TestHitMiss:
    def test_first_run_misses_second_hits(self, hp):
        sql = "SELECT SUM(x) AS s FROM t"
        r1 = hp.run_sql(sql)
        assert hp.cache_stats.misses == 1 and hp.cache_stats.hits == 0
        r2 = hp.run_sql(sql)
        assert hp.cache_stats.hits == 1
        assert len(hp.plan_cache) == 1
        np.testing.assert_array_equal(r1.column("s").data,
                                      r2.column("s").data)

    def test_prepare_reports_cache_provenance(self, hp):
        sql = "SELECT SUM(y) AS s FROM t"
        cold = hp.prepare(sql)
        warm = hp.prepare(sql)
        assert not cold.cached and warm.cached
        assert warm.query is cold.query  # the same compiled plan object
        assert warm.compile_seconds == cold.compile_seconds

    def test_warm_call_does_zero_compile_work(self, hp, monkeypatch):
        sql = "SELECT SUM(x * y) AS s FROM t WHERE x > 3"
        hp.run_sql(sql)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("warm call re-compiled")

        import repro.engine.backends as backends_mod
        import repro.engine.session as session_mod
        monkeypatch.setattr(backends_mod, "compile_module", boom)
        monkeypatch.setattr(session_mod, "parse_sql", boom)
        result = hp.run_sql(sql)
        assert result.num_rows == 1

    def test_whitespace_variants_share_an_entry(self, hp):
        hp.run_sql("SELECT SUM(x) AS s FROM t")
        hp.run_sql("  SELECT   SUM(x)  AS s\n FROM t ;")
        assert hp.cache_stats.hits == 1
        assert len(hp.plan_cache) == 1

    def test_distinct_opt_levels_are_distinct_entries(self, hp):
        sql = "SELECT SUM(x) AS s FROM t"
        hp.run_sql(sql, opt_level="opt")
        hp.run_sql(sql, opt_level="naive")
        assert hp.cache_stats.misses == 2
        assert len(hp.plan_cache) == 2

    def test_no_cache_bypasses_lookup_and_insert(self, hp):
        sql = "SELECT SUM(x) AS s FROM t"
        hp.run_sql(sql, use_cache=False)
        hp.run_sql(sql, use_cache=False)
        assert hp.cache_stats.lookups == 0
        assert len(hp.plan_cache) == 0


class TestEntryStats:
    def test_per_entry_hits_and_last_hit_sequence(self, hp):
        q1 = "SELECT SUM(x) AS s FROM t"
        q2 = "SELECT SUM(y) AS s FROM t"
        hp.run_sql(q1)
        hp.run_sql(q2)
        hp.run_sql(q1)
        hp.run_sql(q1)
        hp.run_sql(q2)
        stats = hp.cache_stats
        assert stats.hit_sequence == 3
        entries = list(stats.entries.values())
        assert len(entries) == 2
        by_hits = sorted(entries, key=lambda e: e.hits)
        assert [e.hits for e in by_hits] == [1, 2]
        # The q2 hit came last, so it owns the newest sequence number.
        assert by_hits[0].last_hit == 3
        assert by_hits[1].last_hit == 2
        # Sequence numbers are unique and monotonic across entries.
        assert len({e.last_hit for e in entries}) == 2

    def test_entry_stats_survive_in_metrics_dump(self, hp):
        sql = "SELECT SUM(x) AS s FROM t"
        hp.run_sql(sql)
        hp.run_sql(sql)
        dump = hp.cache_stats.to_dict()
        assert dump["hits"] == 1 and dump["hit_sequence"] == 1
        entry, = dump["entries"]
        assert "SELECT SUM(x) AS s FROM t" in entry["key"]
        assert entry["hits"] == 1 and entry["last_hit"] == 1

    def test_eviction_drops_entry_stats(self, db):
        hp = HorsePowerSystem(db, plan_cache_size=1)
        q1 = "SELECT SUM(x) AS s FROM t"
        q2 = "SELECT SUM(y) AS s FROM t"
        hp.run_sql(q1)
        hp.run_sql(q1)
        assert len(hp.cache_stats.entries) == 1
        hp.run_sql(q2)  # evicts q1
        keys = list(hp.cache_stats.entries)
        assert len(keys) <= 1
        assert all(key[0] != normalize_sql(q1) for key in keys)

    def test_invalidation_clears_entry_stats(self, hp):
        sql = "SELECT SUM(x) AS s FROM t"
        hp.run_sql(sql)
        hp.run_sql(sql)
        assert hp.cache_stats.entries
        hp.plan_cache.invalidate()
        assert hp.cache_stats.entries == {}
        # The cumulative hit sequence is not rewound by invalidation.
        assert hp.cache_stats.hit_sequence == 1


class TestInvalidation:
    def test_udf_registration_clears_the_cache(self, hp):
        sql = "SELECT SUM(x) AS s FROM t"
        hp.run_sql(sql)
        assert len(hp.plan_cache) == 1
        hp.register_scalar_udf(
            "double_it", "function y = double_it(x)\n  y = x .* 2;\nend",
            [ht.F64])
        assert len(hp.plan_cache) == 0
        assert hp.cache_stats.invalidations == 1
        # And the re-run misses (fresh compile under the new registry).
        hp.run_sql(sql)
        assert hp.cache_stats.misses == 2

    def test_udf_fingerprint_rotates_the_key(self, hp):
        # Even without the eager clear, a registration changes the key:
        # the old entry would be unreachable.
        sql = "SELECT SUM(x) AS s FROM t"
        key_before = hp.plan_cache.key(
            sql, "opt", "python", hp.db.schema_fingerprint(),
            hp.udfs.fingerprint())
        hp.register_scalar_udf(
            "triple_it", "function y = triple_it(x)\n  y = x .* 3;\nend",
            [ht.F64])
        key_after = hp.plan_cache.key(
            sql, "opt", "python", hp.db.schema_fingerprint(),
            hp.udfs.fingerprint())
        assert key_before != key_after

    def test_schema_change_rotates_the_key(self, hp, db):
        sql = "SELECT SUM(x) AS s FROM t"
        hp.run_sql(sql)
        db.create_table("u", {"z": np.arange(5, dtype=np.float64)})
        hp.run_sql(sql)
        # Same SQL, but the catalog fingerprint changed: a miss, not a
        # stale hit.
        assert hp.cache_stats.misses == 2
        db.drop_table("u")
        hp.run_sql(sql)
        assert hp.cache_stats.hits == 1  # fingerprint restored


class TestLRUEviction:
    def test_capacity_evicts_least_recently_used(self, db):
        hp = HorsePowerSystem(db, plan_cache_size=2)
        q1 = "SELECT SUM(x) AS s FROM t"
        q2 = "SELECT SUM(y) AS s FROM t"
        q3 = "SELECT COUNT(*) AS n FROM t"
        hp.run_sql(q1)
        hp.run_sql(q2)
        hp.run_sql(q1)          # refresh q1: q2 becomes LRU
        hp.run_sql(q3)          # evicts q2
        assert hp.cache_stats.evictions == 1
        assert len(hp.plan_cache) == 2
        hp.run_sql(q1)
        assert hp.cache_stats.hits == 2   # q1 still cached
        hp.run_sql(q2)
        assert hp.cache_stats.misses == 4  # q2 was evicted

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(0)


class TestNormalizeSql:
    def test_collapses_whitespace_and_trailing_semicolon(self):
        assert normalize_sql("  SELECT  1\n\t; ") == "SELECT 1"

    def test_preserves_case_and_literals(self):
        assert normalize_sql("SELECT 'a  b' FROM T") \
            == "SELECT 'a  b' FROM T"
        # Conservative by design: case differences do NOT share a key.
        assert normalize_sql("select 1") != normalize_sql("SELECT 1")


class TestPipelineFingerprint:
    """The cache key carries the pass-pipeline fingerprint: custom
    pipelines must never collide with the presets (a stale hit would
    silently execute differently-optimized code)."""

    CAT = (("t", ("x", "y")),)
    UDF = ()

    def test_legacy_key_equals_explicit_default(self):
        legacy = PlanCache.key("SELECT 1", "opt", "python",
                               self.CAT, self.UDF)
        explicit = PlanCache.key("SELECT 1", "opt", "python",
                                 self.CAT, self.UDF, "O2")
        assert legacy == explicit
        assert PlanCache.key("SELECT 1", "naive", "python",
                             self.CAT, self.UDF) \
            == PlanCache.key("SELECT 1", "naive", "python",
                             self.CAT, self.UDF, "O0")

    def test_distinct_pipelines_are_distinct_keys(self):
        base = PlanCache.key("SELECT 1", "opt", "python",
                             self.CAT, self.UDF)
        o1 = PlanCache.key("SELECT 1", "opt", "python",
                           self.CAT, self.UDF, "O1")
        custom = PlanCache.key("SELECT 1", "opt", "python",
                               self.CAT, self.UDF,
                               "custom(inline,dce)")
        assert len({base, o1, custom}) == 3

    def test_pipeline_variants_do_not_share_cache_entries(self, hp):
        sql = "SELECT SUM(x) AS s FROM t"
        hp.run_sql(sql)
        hp.run_sql(sql, pipeline="O1")
        hp.run_sql(sql, pipeline="inline,dce")
        assert hp.cache_stats.misses == 3
        assert len(hp.plan_cache) == 3
        # Each variant hits its own entry on re-run.
        hp.run_sql(sql)
        hp.run_sql(sql, pipeline="O1")
        hp.run_sql(sql, pipeline="inline,dce")
        assert hp.cache_stats.hits == 3

    def test_explicit_o2_hits_the_default_entry(self, hp):
        sql = "SELECT SUM(x) AS s FROM t"
        hp.run_sql(sql)
        hp.run_sql(sql, pipeline="O2")
        assert hp.cache_stats.hits == 1
        assert len(hp.plan_cache) == 1

    def test_verify_ir_bypasses_the_cache(self, hp):
        sql = "SELECT SUM(x) AS s FROM t"
        hp.run_sql(sql, verify_ir=True)
        hp.run_sql(sql, verify_ir=True)
        assert hp.cache_stats.lookups == 0
        assert len(hp.plan_cache) == 0

    def test_dump_ir_bypasses_the_cache(self, hp, tmp_path):
        sql = "SELECT SUM(x) AS s FROM t"
        hp.run_sql(sql, dump_ir=str(tmp_path / "ir"))
        assert hp.cache_stats.lookups == 0
        assert len(hp.plan_cache) == 0

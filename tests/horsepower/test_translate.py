"""Unit tests for the SQL+UDF module merger (paper Section 3.3)."""

import numpy as np
import pytest

from repro.core import types as ht
from repro.core.printer import print_module
from repro.core.verify import verify_module
from repro.engine.storage import Database
from repro.errors import UDFError
from repro.horsepower import HorsePowerSystem
from repro.horsepower.translate import build_query_module, referenced_udfs
from repro.sql.udf import ScalarUDF, UDFRegistry


@pytest.fixture
def system():
    db = Database()
    rng = np.random.default_rng(9)
    db.create_table("t", {
        "x": rng.uniform(0, 1, 100),
        "y": rng.uniform(0, 1, 100),
    })
    return HorsePowerSystem(db)


MATLAB_WITH_HELPER = """
function r = outer(a, b)
    r = helper(a) .* b;
end
function h = helper(v)
    h = v + 1;
end
"""


class TestReferencedUDFs:
    def test_scalar_udf_found_in_select(self, system):
        system.register_scalar_udf("myUDF", "function r = f(a)\n"
                                            "    r = a;\nend",
                                   [ht.F64], ht.F64)
        plan = system.plan_sql("SELECT SUM(myUDF(x)) AS s FROM t")
        assert referenced_udfs(plan, system.udfs) == ["myUDF"]

    def test_udf_found_in_where(self, system):
        system.register_scalar_udf("predUDF", "function r = f(a)\n"
                                              "    r = a;\nend",
                                   [ht.F64], ht.F64)
        plan = system.plan_sql(
            "SELECT COUNT(*) AS n FROM t WHERE predUDF(x) > 0.5")
        assert referenced_udfs(plan, system.udfs) == ["predUDF"]

    def test_no_udfs(self, system):
        plan = system.plan_sql("SELECT SUM(x) AS s FROM t")
        assert referenced_udfs(plan, system.udfs) == []


class TestMerging:
    def test_helper_functions_carried_over(self, system):
        system.register_scalar_udf("outerUDF", MATLAB_WITH_HELPER,
                                   [ht.F64, ht.F64], ht.F64)
        plan = system.plan_sql("SELECT SUM(outerUDF(x, y)) AS s FROM t")
        module = build_query_module(plan, system.udfs)
        verify_module(module)
        names = list(module.methods)
        assert "main" in names
        assert "outerUDF" in names
        assert any(name.startswith("helper") for name in names)

    def test_entry_method_renamed_to_registered_name(self, system):
        # The MATLAB function is called `outer`; the UDF is `outerUDF`.
        system.register_scalar_udf("outerUDF", MATLAB_WITH_HELPER,
                                   [ht.F64, ht.F64], ht.F64)
        plan = system.plan_sql("SELECT SUM(outerUDF(x, y)) AS s FROM t")
        module = build_query_module(plan, system.udfs)
        text = print_module(module)
        assert "@outerUDF(" in text

    def test_missing_matlab_source_is_an_error(self, system):
        registry = UDFRegistry()
        registry.register(ScalarUDF("noSrc", [ht.F64], ht.F64,
                                    python_impl=lambda x: x))
        hp = HorsePowerSystem(system.db, registry)
        plan = hp.plan_sql("SELECT SUM(noSrc(x)) AS s FROM t")
        with pytest.raises(UDFError, match="no MATLAB source"):
            build_query_module(plan, registry)

    def test_same_udf_called_twice_merges_once(self, system):
        system.register_scalar_udf("twiceUDF", "function r = f(a)\n"
                                               "    r = a .* 2;\nend",
                                   [ht.F64], ht.F64)
        plan = system.plan_sql(
            "SELECT SUM(twiceUDF(x)) AS a, SUM(twiceUDF(y)) AS b FROM t")
        module = build_query_module(plan, system.udfs)
        assert list(module.methods).count("twiceUDF") == 1
        verify_module(module)

    def test_merged_module_optimizes_to_single_method(self, system):
        system.register_scalar_udf("outerUDF", MATLAB_WITH_HELPER,
                                   [ht.F64, ht.F64], ht.F64)
        compiled = system.compile_sql(
            "SELECT SUM(outerUDF(x, y)) AS s FROM t")
        assert list(compiled.program.module.methods) == ["main"]
        result = compiled.run()
        table = system.db.table("t")
        expected = np.sum((table.column("x") + 1) * table.column("y"))
        assert result.column("s").data[0] == pytest.approx(expected)

    def test_registry_rejects_duplicate_names(self, system):
        system.register_scalar_udf("dupUDF", "function r = f(a)\n"
                                             "    r = a;\nend",
                                   [ht.F64], ht.F64)
        with pytest.raises(UDFError, match="already registered"):
            system.register_scalar_udf("dupUDF", "function r = f(a)\n"
                                                 "    r = a;\nend",
                                       [ht.F64], ht.F64)

    def test_udf_lookup_is_case_insensitive(self, system):
        system.register_scalar_udf("MixedCase", "function r = f(a)\n"
                                                "    r = a;\nend",
                                   [ht.F64], ht.F64)
        assert system.udfs.is_scalar("mixedcase")
        assert system.udfs.get("MIXEDCASE").name == "MixedCase"

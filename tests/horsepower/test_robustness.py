"""Robustness and failure-injection tests across the full stack."""

import numpy as np
import pytest

from repro.core import types as ht
from repro.engine.storage import Database
from repro.errors import PlanError, ReproError, UDFError
from repro.horsepower import HorsePowerSystem, MonetDBLike
from repro.sql.udf import UDFRegistry


@pytest.fixture
def empty_db():
    db = Database()
    db.create_table("t", {
        "x": np.empty(0, dtype=np.float64),
        "label": np.empty(0, dtype=object),
    })
    return db


@pytest.fixture
def small_db():
    db = Database()
    db.create_table("t", {
        "x": np.array([1.0, -1.0, 2.0]),
        "label": np.array(["a", "b", "a"], dtype=object),
    })
    return db


class TestEmptyInputs:
    def test_filter_aggregate_on_empty_table(self, empty_db):
        udfs = UDFRegistry()
        hp = HorsePowerSystem(empty_db, udfs)
        mdb = MonetDBLike(empty_db, udfs)
        sql = "SELECT SUM(x * x) AS s FROM t WHERE x > 0"
        assert hp.run_sql(sql).column("s").data[0] == 0
        assert mdb.run_sql(sql).column("s")[0] == 0

    def test_projection_on_empty_table(self, empty_db):
        hp = HorsePowerSystem(empty_db)
        result = hp.run_sql("SELECT x * 2 AS y FROM t")
        assert result.num_rows == 0

    def test_group_by_on_empty_table(self, empty_db):
        hp = HorsePowerSystem(empty_db)
        result = hp.run_sql(
            "SELECT label, COUNT(*) AS n FROM t GROUP BY label")
        assert result.num_rows == 0

    def test_filter_selecting_nothing(self, small_db):
        udfs = UDFRegistry()
        hp = HorsePowerSystem(small_db, udfs)
        mdb = MonetDBLike(small_db, udfs)
        sql = "SELECT SUM(x) AS s FROM t WHERE x > 1000"
        assert hp.run_sql(sql).column("s").data[0] == 0
        assert mdb.run_sql(sql).column("s")[0] == 0


class TestUDFFailures:
    def test_python_udf_exception_propagates(self, small_db):
        udfs = UDFRegistry()
        hp = HorsePowerSystem(small_db, udfs)
        mdb = MonetDBLike(small_db, udfs)

        def exploding(x):
            raise RuntimeError("boom inside the UDF")

        hp.register_scalar_udf(
            "explodeUDF", "function r = f(x)\n    r = x;\nend",
            [ht.F64], ht.F64, python_impl=exploding)
        with pytest.raises(RuntimeError, match="boom"):
            mdb.run_sql("SELECT SUM(explodeUDF(x)) AS s FROM t")

    def test_unregistered_udf_in_sql_is_a_plan_error(self, small_db):
        hp = HorsePowerSystem(small_db)
        with pytest.raises((PlanError, ReproError)):
            hp.run_sql("SELECT SUM(ghostUDF(x)) AS s FROM t")

    def test_scalar_udf_in_from_rejected(self, small_db):
        hp = HorsePowerSystem(small_db)
        hp.register_scalar_udf(
            "scalarUDF", "function r = f(x)\n    r = x;\nend",
            [ht.F64], ht.F64)
        with pytest.raises(PlanError, match="scalar UDF"):
            hp.run_sql(
                "SELECT x FROM scalarUDF((SELECT x FROM t))")

    def test_table_udf_returning_wrong_arity(self, small_db):
        udfs = UDFRegistry()
        mdb = MonetDBLike(small_db, udfs)
        hp = HorsePowerSystem(small_db, udfs)
        hp.register_table_udf(
            "badTblUDF",
            "function t = f(x)\n    t = table(x);\nend",
            [ht.F64], [("a", ht.F64), ("b", ht.F64)],
            python_impl=lambda x: [x])  # declares 2, returns 1
        with pytest.raises(UDFError, match="declared 2"):
            mdb.run_sql("SELECT a FROM badTblUDF((SELECT x FROM t))")


class TestNumericEdgeCases:
    def test_nan_propagates_identically(self, small_db):
        """log of a negative produces NaN in both systems, not a crash."""
        udfs = UDFRegistry()
        hp = HorsePowerSystem(small_db, udfs)
        mdb = MonetDBLike(small_db, udfs)
        hp.register_scalar_udf(
            "logUDF", "function r = f(x)\n    r = log(x);\nend",
            [ht.F64], ht.F64, python_impl=np.log)
        sql = "SELECT SUM(logUDF(x)) AS s FROM t"
        with np.errstate(invalid="ignore"):
            hp_value = hp.run_sql(sql).column("s").data[0]
            mdb_value = mdb.run_sql(sql).column("s")[0]
        assert np.isnan(hp_value) and np.isnan(mdb_value)

    def test_division_by_zero_yields_inf(self, small_db):
        hp = HorsePowerSystem(small_db)
        with np.errstate(divide="ignore"):
            result = hp.run_sql("SELECT MAX(1.0 / (x - 1.0)) AS m FROM t")
        assert np.isinf(result.column("m").data[0])

    def test_single_row_table(self):
        db = Database()
        db.create_table("one", {"v": np.array([42.0])})
        hp = HorsePowerSystem(db)
        result = hp.run_sql("SELECT SUM(v * 2) AS s FROM one")
        assert result.column("s").data[0] == pytest.approx(84.0)


class TestThreadSafetyOfCompiledQueries:
    def test_compiled_query_reusable_across_runs(self, small_db):
        hp = HorsePowerSystem(small_db)
        compiled = hp.compile_sql("SELECT SUM(x) AS s FROM t")
        first = compiled.run().column("s").data[0]
        # Mutate the database between runs: new table contents flow in
        # (plans bind to names, not snapshots).
        small_db.drop_table("t")
        small_db.create_table("t", {
            "x": np.array([10.0, 20.0]),
            "label": np.array(["a", "b"], dtype=object),
        })
        second = compiled.run().column("s").data[0]
        assert first == pytest.approx(2.0)
        assert second == pytest.approx(30.0)

    def test_many_threads_on_tiny_input(self, small_db):
        hp = HorsePowerSystem(small_db)
        compiled = hp.compile_sql("SELECT SUM(x) AS s FROM t")
        result = compiled.run(n_threads=16, chunk_size=1)
        assert result.column("s").data[0] == pytest.approx(2.0)

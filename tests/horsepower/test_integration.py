"""Integration tests: both systems must agree on every supported query
shape — plain SQL, scalar-UDF SQL and table-UDF SQL."""

import numpy as np
import pytest

from repro.core import types as ht
from repro.engine.storage import Database
from repro.horsepower import HorsePowerSystem, MonetDBLike
from repro.sql.udf import UDFRegistry


@pytest.fixture
def db():
    rng = np.random.default_rng(42)
    n = 2000
    database = Database()
    status = np.empty(n, dtype=object)
    for i, value in enumerate(rng.choice(["A", "F", "N", "R"], n)):
        status[i] = str(value)
    dates = (np.datetime64("1995-01-01", "D")
             + rng.integers(0, 1200, n).astype("timedelta64[D]"))
    database.create_table("lineitem", {
        "l_orderkey": rng.integers(1, 500, n).astype(np.int64),
        "l_quantity": rng.uniform(1, 50, n),
        "l_extendedprice": rng.uniform(100, 10_000, n),
        "l_discount": np.round(rng.uniform(0.0, 0.1, n), 2),
        "l_tax": np.round(rng.uniform(0.0, 0.08, n), 2),
        "l_returnflag": status,
        "l_shipdate": dates,
    })
    okeys = np.arange(1, 501, dtype=np.int64)
    prio = np.empty(500, dtype=object)
    for i, value in enumerate(rng.choice(
            ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-LOW"], 500)):
        prio[i] = str(value)
    database.create_table("orders", {
        "o_orderkey": okeys,
        "o_totalprice": rng.uniform(1000, 100_000, 500),
        "o_orderpriority": prio,
    })
    return database


@pytest.fixture
def systems(db):
    udfs = UDFRegistry()
    hp = HorsePowerSystem(db, udfs)
    mdb = MonetDBLike(db, udfs)
    return hp, mdb


def assert_tables_match(hp_result, mdb_result, sort_by=None):
    """Compare a HorseIR TableValue with an engine ColumnTable."""
    hp_cols = {name: vec.data for name, vec in hp_result.columns()}
    mdb_cols = {name: mdb_result.column(name)
                for name in mdb_result.column_names}
    assert sorted(hp_cols) == sorted(mdb_cols)
    if sort_by is not None:
        hp_order = np.argsort(hp_cols[sort_by], kind="stable")
        mdb_order = np.argsort(mdb_cols[sort_by], kind="stable")
    else:
        hp_order = mdb_order = slice(None)
    for name in hp_cols:
        left = hp_cols[name][hp_order]
        right = mdb_cols[name][mdb_order]
        assert len(left) == len(right), f"column {name}"
        if left.dtype.kind == "f" or right.dtype.kind == "f":
            np.testing.assert_allclose(
                left.astype(np.float64), right.astype(np.float64),
                rtol=1e-9, err_msg=f"column {name}")
        else:
            assert (left == right).all(), f"column {name}"


class TestPlainSQL:
    def test_q6_style_filter_aggregate(self, systems):
        hp, mdb = systems
        sql = """
        SELECT SUM(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_discount >= 0.05 AND l_quantity < 24
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql))

    def test_group_by_with_multiple_aggregates(self, systems):
        hp, mdb = systems
        sql = """
        SELECT l_returnflag,
               SUM(l_quantity) AS sum_qty,
               AVG(l_extendedprice) AS avg_price,
               COUNT(*) AS count_order
        FROM lineitem
        GROUP BY l_returnflag
        ORDER BY l_returnflag
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql))

    def test_join(self, systems):
        hp, mdb = systems
        sql = """
        SELECT SUM(l_extendedprice) AS total
        FROM lineitem, orders
        WHERE l_orderkey = o_orderkey AND o_totalprice > 50000
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql))

    def test_explicit_join_syntax(self, systems):
        hp, mdb = systems
        sql = """
        SELECT SUM(l_quantity) AS q
        FROM lineitem INNER JOIN orders ON l_orderkey = o_orderkey
        WHERE o_orderpriority = '1-URGENT'
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql))

    def test_case_when(self, systems):
        hp, mdb = systems
        sql = """
        SELECT SUM(CASE WHEN l_discount > 0.05
                        THEN l_extendedprice ELSE 0.0 END) AS high_disc
        FROM lineitem
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql))

    def test_date_predicate_with_interval(self, systems):
        hp, mdb = systems
        sql = """
        SELECT COUNT(*) AS n
        FROM lineitem
        WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql))

    def test_in_list_and_between(self, systems):
        hp, mdb = systems
        sql = """
        SELECT COUNT(*) AS n
        FROM lineitem
        WHERE l_returnflag IN ('A', 'R')
          AND l_quantity BETWEEN 10 AND 30
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql))

    def test_order_by_desc_with_limit(self, systems):
        hp, mdb = systems
        sql = """
        SELECT l_returnflag, SUM(l_quantity) AS q
        FROM lineitem
        GROUP BY l_returnflag
        ORDER BY q DESC
        LIMIT 2
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql))

    def test_projection_without_aggregates(self, systems):
        hp, mdb = systems
        sql = """
        SELECT l_orderkey, l_extendedprice * (1 - l_discount) AS disc_price
        FROM lineitem
        WHERE l_quantity > 45
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql),
                            sort_by="disc_price")


MATLAB_REVENUE_UDF = """
function r = revenue(price, discount)
    r = price .* discount;
end
"""


def python_revenue(price, discount):
    return price * discount


class TestScalarUDF:
    @pytest.fixture
    def with_udf(self, systems):
        hp, mdb = systems
        hp.register_scalar_udf(
            "revenueUDF", MATLAB_REVENUE_UDF,
            [ht.F64, ht.F64], ht.F64, python_impl=python_revenue)
        return hp, mdb

    def test_udf_in_select(self, with_udf):
        hp, mdb = with_udf
        sql = """
        SELECT SUM(revenueUDF(l_extendedprice, l_discount)) AS rev
        FROM lineitem
        WHERE l_discount >= 0.05
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql))

    def test_udf_in_where(self, with_udf):
        hp, mdb = with_udf
        sql = """
        SELECT COUNT(*) AS n
        FROM lineitem
        WHERE revenueUDF(l_extendedprice, l_discount) > 100
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql))

    def test_udf_is_inlined_by_horsepower(self, with_udf):
        hp, _ = with_udf
        sql = """
        SELECT SUM(revenueUDF(l_extendedprice, l_discount)) AS rev
        FROM lineitem
        """
        compiled = hp.compile_sql(sql)
        assert list(compiled.program.module.methods) == ["main"]

    def test_baseline_conversion_counters(self, with_udf):
        _, mdb = with_udf
        sql = """
        SELECT SUM(revenueUDF(l_extendedprice, l_discount)) AS rev
        FROM lineitem
        """
        mdb.run_sql(sql)
        # Two decimal (float) input columns convert; that is the only
        # boundary cost for this numeric UDF.
        assert mdb.bridge.calls == 1
        n = 2000  # rows in the fixture's lineitem table
        assert mdb.bridge.values_converted_in == 2 * n


MATLAB_TABLE_UDF = """
function t = pricing(price, discount)
    net = price .* (1 - discount);
    t = table(price, net);
end
"""


def python_pricing(price, discount):
    net = price * (1 - discount)
    return [price, net]


class TestTableUDF:
    @pytest.fixture
    def with_udf(self, systems):
        hp, mdb = systems
        hp.register_table_udf(
            "pricingUDF", MATLAB_TABLE_UDF, [ht.F64, ht.F64],
            [("price", ht.F64), ("net", ht.F64)],
            python_impl=python_pricing)
        return hp, mdb

    def test_table_udf_in_from(self, with_udf):
        hp, mdb = with_udf
        sql = """
        SELECT SUM(net) AS total
        FROM pricingUDF((SELECT l_extendedprice, l_discount
                         FROM lineitem
                         WHERE l_discount >= 0.05))
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql))

    def test_filter_above_table_udf(self, with_udf):
        hp, mdb = with_udf
        sql = """
        SELECT price, net
        FROM pricingUDF((SELECT l_extendedprice, l_discount
                         FROM lineitem))
        WHERE price > 9000
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql),
                            sort_by="price")

    def test_unused_udf_output_sliced_away_by_horsepower(self, with_udf):
        hp, _ = with_udf
        sql = """
        SELECT price
        FROM pricingUDF((SELECT l_extendedprice, l_discount
                         FROM lineitem))
        """
        compiled = hp.compile_sql(sql)
        # After inlining + backward slicing, the net computation is gone.
        from repro.core.printer import print_module
        text = print_module(compiled.program.module)
        assert "@mul" not in text


class TestDerivedTables:
    def test_subquery_in_from(self, systems):
        hp, mdb = systems
        sql = """
        SELECT SUM(dp) AS total
        FROM (SELECT l_extendedprice * (1 - l_discount) AS dp
              FROM lineitem
              WHERE l_quantity < 25) AS t
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql))

    def test_filter_pushes_through_projection(self, systems):
        hp, mdb = systems
        sql = """
        SELECT qty
        FROM (SELECT l_quantity AS qty, l_discount AS d
              FROM lineitem) AS t
        WHERE qty > 49
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql),
                            sort_by="qty")


class TestThreadedExecution:
    def test_hp_threads_agree(self, systems):
        hp, _ = systems
        sql = """
        SELECT SUM(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_discount >= 0.05
        """
        compiled = hp.compile_sql(sql)
        t1 = compiled.run(n_threads=1, chunk_size=256)
        t4 = compiled.run(n_threads=4, chunk_size=256)
        np.testing.assert_allclose(t1.column("revenue").data,
                                   t4.column("revenue").data)

    def test_mdb_threads_agree(self, systems):
        _, mdb = systems
        sql = """
        SELECT COUNT(*) AS n FROM lineitem WHERE l_discount >= 0.05
        """
        t1 = mdb.run_sql(sql, n_threads=1)
        t4 = mdb.run_sql(sql, n_threads=4)
        assert t1.column("n")[0] == t4.column("n")[0]

class TestMultiJoin:
    """Three-table comma joins resolve recursively (paper future-work
    item: multi-join support)."""

    @pytest.fixture
    def three_tables(self):
        rng = np.random.default_rng(0)
        db = Database()
        db.create_table("ta", {
            "ak": np.arange(50, dtype=np.int64),
            "av": rng.uniform(0, 1, 50),
        })
        db.create_table("tb", {
            "bk": rng.integers(0, 50, 200).astype(np.int64),
            "ck_ref": rng.integers(0, 30, 200).astype(np.int64),
            "bv": rng.uniform(0, 1, 200),
        })
        db.create_table("tc", {
            "ck": np.arange(30, dtype=np.int64),
            "cv": rng.uniform(0, 1, 30),
        })
        udfs = UDFRegistry()
        return HorsePowerSystem(db, udfs), MonetDBLike(db, udfs), db

    def test_three_way_join_agrees_with_bruteforce(self, three_tables):
        hp, mdb, db = three_tables
        sql = """
        SELECT SUM(av * bv * cv) AS s
        FROM ta, tb, tc
        WHERE ak = bk AND ck_ref = ck AND cv > 0.2
        """
        got_hp = hp.run_sql(sql).column("s").data[0]
        got_mdb = mdb.run_sql(sql).column("s")[0]
        a_map = dict(zip(db.table("ta").column("ak"),
                         db.table("ta").column("av")))
        c_map = dict(zip(db.table("tc").column("ck"),
                         db.table("tc").column("cv")))
        expected = sum(
            a_map[bk] * bv * c_map[cr]
            for bk, cr, bv in zip(db.table("tb").column("bk"),
                                  db.table("tb").column("ck_ref"),
                                  db.table("tb").column("bv"))
            if c_map[cr] > 0.2)
        assert got_hp == pytest.approx(expected)
        assert got_mdb == pytest.approx(expected)

    def test_three_way_join_with_group_by(self, three_tables):
        hp, mdb, _ = three_tables
        sql = """
        SELECT ak, SUM(bv * cv) AS s
        FROM ta, tb, tc
        WHERE ak = bk AND ck_ref = ck
        GROUP BY ak
        ORDER BY ak
        """
        assert_tables_match(hp.run_sql(sql), mdb.run_sql(sql))

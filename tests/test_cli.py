"""CLI smoke tests (python -m repro)."""

import numpy as np
import pytest

from repro.cli import main
from repro.engine.storage import Database


@pytest.fixture
def csv_table(tmp_path):
    db = Database()
    db.create_table("t", {
        "x": np.array([1.0, 2.0, 3.0]),
        "label": np.array(["a", "b", "a"], dtype=object),
    })
    path = tmp_path / "t.tbl"
    db.save_csv("t", str(path))
    return str(path)


def test_run_sql_on_csv(csv_table, capsys):
    code = main(["run-sql",
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x) AS s FROM t"])
    assert code == 0
    out = capsys.readouterr().out
    assert "6.0" in out


def test_run_sql_monetdb_system(csv_table, capsys):
    code = main(["run-sql", "--system", "monetdb",
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT COUNT(*) AS n FROM t WHERE label = 'a'"])
    assert code == 0
    assert "2" in capsys.readouterr().out


def test_run_sql_with_generated_tpch(capsys):
    code = main(["run-sql", "--tpch", "0.001",
                 "SELECT COUNT(*) AS n FROM lineitem"])
    assert code == 0
    assert "n" in capsys.readouterr().out


def test_compile_sql_shows_provenance(csv_table, capsys):
    code = main(["compile-sql",
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x * x) AS s FROM t WHERE x > 1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "logical plan" in out
    assert "@load_table" in out
    assert "compile time" in out


def test_compile_matlab(tmp_path, capsys):
    source = tmp_path / "f.m"
    source.write_text(
        "function y = f(x)\n    y = sum(x .* x);\nend\n")
    code = main(["compile-matlab", str(source)])
    assert code == 0
    out = capsys.readouterr().out
    assert "@mul" in out and "@sum" in out


def test_gen_tpch(tmp_path, capsys):
    out_dir = tmp_path / "tpch"
    code = main(["gen-tpch", "--scale-factor", "0.001",
                 "--out", str(out_dir)])
    assert code == 0
    assert (out_dir / "lineitem.tbl").exists()
    assert (out_dir / "region.tbl").exists()


def test_run_sql_repeat_hits_plan_cache(csv_table, capsys):
    code = main(["run-sql", "--repeat", "3", "--cache-stats",
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x) AS s FROM t"])
    assert code == 0
    out = capsys.readouterr().out
    assert "6.0" in out
    assert "plan cache: hits=2 misses=1" in out


def test_run_sql_no_cache_bypasses_plan_cache(csv_table, capsys):
    code = main(["run-sql", "--repeat", "2", "--no-cache",
                 "--cache-stats",
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x) AS s FROM t"])
    assert code == 0
    out = capsys.readouterr().out
    assert "plan cache: hits=0 misses=0" in out


def test_bad_schema_type_message(csv_table):
    with pytest.raises(SystemExit, match="unknown column type"):
        main(["run-sql", "--table", f"t={csv_table}@x:quaternion",
              "SELECT x FROM t"])


@pytest.mark.parametrize("backend", ["interp", "pygen", "python",
                                     "baseline"])
def test_run_sql_backend_selection(csv_table, capsys, backend):
    code = main(["run-sql", "--backend", backend,
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x) AS s FROM t"])
    assert code == 0
    assert "6.0" in capsys.readouterr().out


def test_run_sql_unknown_backend_is_rejected(csv_table):
    with pytest.raises(SystemExit, match="unknown backend 'turbo'"):
        main(["run-sql", "--backend", "turbo",
              "--table", f"t={csv_table}@x:f64,label:str",
              "SELECT SUM(x) AS s FROM t"])


def test_run_sql_backend_conflicts_with_monetdb_system(csv_table):
    with pytest.raises(SystemExit, match="--backend picks"):
        main(["run-sql", "--system", "monetdb", "--backend", "pygen",
              "--table", f"t={csv_table}@x:f64,label:str",
              "SELECT SUM(x) AS s FROM t"])


def test_list_backends(capsys):
    code = main(["list-backends"])
    assert code == 0
    out = capsys.readouterr().out
    for name in ("interp", "pygen", "cgen", "baseline"):
        assert name in out
    assert "capabilities:" in out
    assert "aliases: python" in out
    assert "fallback: pygen" in out


def test_run_sql_query_log_writes_jsonl(csv_table, tmp_path, capsys):
    import json

    log_path = tmp_path / "queries.jsonl"
    code = main(["run-sql", "--repeat", "2",
                 "--query-log", str(log_path),
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x) AS s FROM t"])
    assert code == 0
    records = [json.loads(line)
               for line in log_path.read_text().splitlines()]
    assert len(records) == 2
    assert [r["query_id"] for r in records] == [1, 2]
    assert [r["cache_hit"] for r in records] == [False, True]
    assert all(r["outcome"] == "ok" for r in records)
    out = capsys.readouterr().out
    assert "query log: 2 records appended" in out


def test_run_sql_timeout_writes_diagnostics_bundle(
        csv_table, tmp_path, capsys):
    import json

    log_path = tmp_path / "queries.jsonl"
    diag_dir = tmp_path / "diag"
    code = main(["run-sql", "--backend", "interp",
                 "--timeout", "1e-9",
                 "--query-log", str(log_path),
                 "--diagnostics-dir", str(diag_dir),
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x) AS s FROM t"])
    assert code == 2
    record = json.loads(log_path.read_text().splitlines()[0])
    assert record["outcome"] == "timeout"
    bundles = list(diag_dir.iterdir())
    assert len(bundles) == 1
    assert (bundles[0] / "record.json").stat().st_size > 0
    err = capsys.readouterr().err
    assert "diagnostics bundle written" in err


def test_run_sql_telemetry_conflicts_with_monetdb_system(csv_table):
    with pytest.raises(SystemExit, match="telemetry"):
        main(["run-sql", "--system", "monetdb", "--query-log",
              "--table", f"t={csv_table}@x:f64,label:str",
              "SELECT SUM(x) AS s FROM t"])


def test_run_sql_with_custom_passes(csv_table, capsys):
    code = main(["run-sql",
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x) AS s FROM t",
                 "--passes", "inline,dce"])
    assert code == 0
    assert "6.0" in capsys.readouterr().out


def test_run_sql_verify_ir(csv_table, capsys):
    code = main(["run-sql",
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x * x) AS s FROM t WHERE x > 1",
                 "--verify-ir"])
    assert code == 0
    assert "13.0" in capsys.readouterr().out


def test_run_sql_unknown_pass_is_rejected(csv_table):
    with pytest.raises(SystemExit, match="unknown pass"):
        main(["run-sql",
              "--table", f"t={csv_table}@x:f64,label:str",
              "SELECT SUM(x) AS s FROM t",
              "--passes", "turbofuse"])


def test_run_sql_passes_conflict_with_monetdb_system(csv_table):
    with pytest.raises(SystemExit, match="pipeline"):
        main(["run-sql", "--system", "monetdb", "--verify-ir",
              "--table", f"t={csv_table}@x:f64,label:str",
              "SELECT SUM(x) AS s FROM t"])


def test_run_sql_dump_ir_writes_snapshots(csv_table, tmp_path, capsys):
    dump = tmp_path / "ir"
    code = main(["run-sql",
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x) AS s FROM t",
                 "--dump-ir", str(dump)])
    assert code == 0
    out = capsys.readouterr().out
    assert "per-pass IR snapshots" in out
    names = sorted(p.name for p in dump.iterdir())
    assert names[0] == "000-input.hir"
    assert all(name.endswith(".hir") for name in names)


def test_compile_sql_prints_pass_statistics(csv_table, capsys):
    code = main(["compile-sql",
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x * x) AS s FROM t WHERE x > 1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "pass statistics" in out
    assert "pipeline=O2" in out


def test_compile_sql_o0_preset_skips_ir_passes(csv_table, capsys):
    code = main(["compile-sql",
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x) AS s FROM t",
                 "--passes", "O0"])
    assert code == 0
    out = capsys.readouterr().out
    assert "@load_table" in out
    assert "pass statistics" not in out


def test_analyze_command_prints_column_stats(csv_table, capsys):
    code = main(["analyze",
                 "--table", f"t={csv_table}@x:f64,label:str"])
    assert code == 0
    out = capsys.readouterr().out
    assert "table t: 3 rows" in out
    assert "ndv=3" in out          # x: 1.0, 2.0, 3.0
    assert "min=1.0 max=3.0" in out


def test_analyze_command_single_table(capsys):
    code = main(["analyze", "--tpch", "0.001", "region"])
    assert code == 0
    out = capsys.readouterr().out
    assert "table region" in out
    assert "lineitem" not in out


def test_run_sql_explain_prints_plan_without_executing(csv_table,
                                                       capsys):
    code = main(["run-sql", "--explain",
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x) AS s FROM t WHERE x > 1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "EXPLAIN" in out
    assert "scan t[" in out
    assert "est_rows=" not in out  # no stats collected
    assert "no statistics collected" in out
    assert "5.0" not in out        # the result (2+3) never printed


def test_run_sql_analyze_explain_shows_estimates(csv_table, capsys):
    code = main(["run-sql", "--analyze", "--explain",
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x) AS s FROM t WHERE x > 1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "est_rows=3" in out     # the scan sees all three rows
    assert "no statistics collected" not in out


def test_run_sql_analyze_enriches_explain_analyze(csv_table, capsys):
    code = main(["run-sql", "--analyze", "--explain-analyze",
                 "--table", f"t={csv_table}@x:f64,label:str",
                 "SELECT SUM(x) AS s FROM t WHERE x > 1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "EXPLAIN ANALYZE" in out
    assert "rows est=" in out and "actual=" in out

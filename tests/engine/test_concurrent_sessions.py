"""Concurrent-session stress: sessions running on threads must behave
exactly as when run serially — bit-identical results, per-session
metrics, per-session traces, no bleed through any shared state.

This is the acceptance test for the session refactor: every piece of
runtime state a query touches (plan cache, executor pool, metrics
registry, tracer, UDF registry) is owned by its ``EngineSession``, so
K sessions over distinct catalogs can interleave freely on threads.
"""

import threading

import numpy as np
import pytest

from repro.engine import EngineSession
from repro.engine.storage import Database
from repro.obs import AllocationProfile, Tracer

N_SESSIONS = 4
N_QUERIES = 8


def make_catalog(seed: int) -> Database:
    """A per-session catalog: same schema, session-specific contents."""
    rng = np.random.default_rng(seed)
    db = Database()
    db.create_table("t", {
        "x": rng.integers(0, 1000, size=500).astype(np.float64),
        "y": rng.integers(1, 100, size=500).astype(np.float64),
        "k": rng.integers(0, 5, size=500),
    })
    return db


def queries(seed: int) -> list[str]:
    """M distinct queries; thresholds depend on the session seed so no
    two sessions compile an identical (sql, catalog) pair."""
    base = [
        "SELECT SUM(x) AS v FROM t",
        "SELECT SUM(x * y) AS v FROM t",
        f"SELECT SUM(x + y) AS v FROM t WHERE x > {seed * 10}",
        f"SELECT COUNT(*) AS v FROM t WHERE y < {50 + seed}",
        "SELECT MIN(x) AS v FROM t",
        "SELECT MAX(x * x) AS v FROM t",
        f"SELECT SUM(y) AS v FROM t WHERE k = {seed % 5}",
        "SELECT AVG(x) AS v FROM t",
    ]
    assert len(base) == N_QUERIES
    return base


def run_plan(session: EngineSession, seed: int) -> list[float]:
    """One session's workload: every query twice (second run is a cache
    hit), multi-threaded kernels, results collected in order."""
    out = []
    for sql in queries(seed):
        for _ in range(2):
            result = session.run_sql(sql, n_threads=2)
            out.append(float(result.column("v").data[0]))
    return out


class TestConcurrentSessions:
    def test_threaded_sessions_match_serial_bit_for_bit(self):
        # Serial reference: fresh sessions, one after another.
        serial = {}
        for seed in range(N_SESSIONS):
            with EngineSession(make_catalog(seed)) as session:
                serial[seed] = run_plan(session, seed)

        # Threaded run: one session per thread, started together.
        sessions = {seed: EngineSession(make_catalog(seed),
                                        tracer=Tracer())
                    for seed in range(N_SESSIONS)}
        threaded = {}
        errors = []
        barrier = threading.Barrier(N_SESSIONS)

        def work(seed):
            try:
                barrier.wait()
                threaded[seed] = run_plan(sessions[seed], seed)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append((seed, exc))

        threads = [threading.Thread(target=work, args=(seed,))
                   for seed in sessions]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

        # Bit-identical to the serial reference, session by session.
        for seed in range(N_SESSIONS):
            assert threaded[seed] == serial[seed], seed

        # Per-session metrics did not bleed: each session saw exactly
        # its own queries, cache hits, and compiles.
        for seed, session in sessions.items():
            counts = session.metrics.snapshot()
            assert counts["query.count"] == N_QUERIES * 2
            assert counts["plan_cache.hits"] == N_QUERIES
            assert counts["plan_cache.misses"] == N_QUERIES
            assert counts["compile.count"] == N_QUERIES
            assert session.cache_stats.hits == N_QUERIES
            assert len(session.plan_cache) == N_QUERIES

        # Per-session traces did not bleed: each tracer holds exactly
        # this session's query roots, all of them complete.
        for seed, session in sessions.items():
            roots = session.tracer.roots
            assert len(roots) == N_QUERIES * 2
            assert all(root.name == "query" for root in roots)
            assert all(root.end >= root.start > 0 for root in roots)

        for session in sessions.values():
            session.close()

    def test_allocation_profiles_stay_isolated_across_sessions(self):
        """Each session's AllocationProfile charges exactly that
        session's queries: the threaded byte totals match a serial
        reference bit for bit, and the ambient NULL_PROFILE stays
        untouched."""
        from repro.obs import get_profile

        def profile_of(seed: int, serial: bool) -> AllocationProfile:
            profile = AllocationProfile()
            with EngineSession(make_catalog(seed),
                               profile=profile) as session:
                run_plan(session, seed)
            return profile

        serial = {seed: profile_of(seed, True)
                  for seed in range(N_SESSIONS)}

        profiles = {seed: AllocationProfile()
                    for seed in range(N_SESSIONS)}
        sessions = {seed: EngineSession(make_catalog(seed),
                                        profile=profiles[seed])
                    for seed in range(N_SESSIONS)}
        errors = []
        barrier = threading.Barrier(N_SESSIONS)

        def work(seed):
            try:
                barrier.wait()
                run_plan(sessions[seed], seed)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append((seed, exc))

        threads = [threading.Thread(target=work, args=(seed,))
                   for seed in sessions]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

        for seed in range(N_SESSIONS):
            threaded, reference = profiles[seed], serial[seed]
            assert threaded.bytes_allocated > 0
            assert threaded.bytes_allocated == reference.bytes_allocated
            assert (threaded.intermediates_materialized
                    == reference.intermediates_materialized)
            assert threaded.peak_bytes == reference.peak_bytes
            assert threaded.sites == reference.sites
            # prof.* metrics landed in the owning session's registry.
            counts = sessions[seed].metrics.snapshot()
            assert (counts["prof.bytes_allocated"]
                    == threaded.bytes_allocated)

        # The ambient slot never saw any of it.
        assert get_profile().bytes_allocated == 0
        assert not get_profile().enabled

        for session in sessions.values():
            session.close()

    def test_one_session_shared_by_worker_threads_is_rejected_nowhere(
            self):
        """Distinct sessions are the isolation unit; this sanity check
        just confirms sequential reuse of one session from several
        threads (non-overlapping) stays correct."""
        with EngineSession(make_catalog(0)) as session:
            lock = threading.Lock()
            values = []

            def work():
                with lock:  # serialized: sessions are not thread-safe
                    result = session.run_sql(
                        "SELECT SUM(x) AS v FROM t")
                    values.append(float(result.column("v").data[0]))

            threads = [threading.Thread(target=work) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(set(values)) == 1
        assert session.metrics.counter("query.count").value == 4

"""EngineSession: isolation, backends, capability fallback, lifecycle."""

import numpy as np
import pytest

from repro.core.codegen.cgen import c_backend_available
from repro.engine import EngineSession, QueryContext, default_registry
from repro.engine.backends import (
    Backend, BackendError, BackendRegistry, CompilationUnit,
)
from repro.engine.storage import Database
from repro.obs import Tracer


def make_db(rows=100):
    db = Database()
    db.create_table("t", {
        "x": np.arange(rows, dtype=np.float64),
        "y": np.arange(rows, dtype=np.float64) * 2.0,
    })
    return db


SQL = "SELECT SUM(x) AS s FROM t"


class TestSessionBasics:
    def test_run_sql_on_default_backend(self):
        with EngineSession(make_db()) as session:
            result = session.run_sql(SQL)
        assert result.column("s").data[0] == pytest.approx(4950.0)

    def test_all_backends_agree(self):
        with EngineSession(make_db()) as session:
            results = {
                name: session.run_sql(
                    "SELECT SUM(x * y) AS s FROM t WHERE x > 3",
                    backend=name).column("s").data[0]
                for name in session.backends.names()
            }
        expected = results.pop("interp")
        for name, value in results.items():
            assert value == pytest.approx(expected), name

    def test_sessions_do_not_share_metrics_or_cache(self):
        a = EngineSession(make_db())
        b = EngineSession(make_db())
        with a, b:
            a.run_sql(SQL)
            a.run_sql(SQL)
            b.run_sql(SQL)
        assert a.metrics.counter("query.count").value == 2
        assert b.metrics.counter("query.count").value == 1
        assert a.cache_stats.hits == 1 and b.cache_stats.hits == 0
        assert len(a.plan_cache) == 1 and len(b.plan_cache) == 1

    def test_session_tracer_is_isolated(self):
        tracer = Tracer()
        with EngineSession(make_db(), tracer=tracer) as traced, \
                EngineSession(make_db()) as silent:
            traced.run_sql(SQL)
            silent.run_sql(SQL)
        roots = tracer.roots
        assert len(roots) == 1
        assert roots[0].name == "query"
        names = set()

        def walk(span):
            names.add(span.name)
            for child in span.children:
                walk(child)

        walk(roots[0])
        assert {"query", "prepare", "parse", "plan", "translate",
                "compile", "execute"} <= names

    def test_context_carries_session_parts(self):
        with EngineSession(make_db()) as session:
            ctx = session.context()
            assert isinstance(ctx, QueryContext)
            assert ctx.metrics is session.metrics
            assert ctx.pool is session.pool
            assert ctx.session is session

    def test_close_is_idempotent_and_contextmanager_safe(self):
        session = EngineSession(make_db())
        session.run_sql(SQL, n_threads=2)
        session.close()
        session.close()
        with session:
            pass
        assert session.closed
        assert session.pool.closed

    def test_compile_matlab_through_session(self):
        with EngineSession(make_db()) as session:
            program = session.compile_matlab(
                "function y = f(x)\n  y = sum(x .* x);\nend")
            assert program(np.array([1.0, 2.0, 3.0])) \
                == pytest.approx(14.0)
        assert session.metrics.counter("compile.count").value == 1


class TestBackendRegistry:
    def test_default_registry_contents_and_aliases(self):
        registry = default_registry()
        assert registry.names() == ["interp", "pygen", "cgen",
                                    "baseline"]
        assert registry.get("python") is registry.get("pygen")
        assert registry.get("c") is registry.get("cgen")
        assert registry.get("monetdb") is registry.get("baseline")
        assert "python" in registry and "pygen" in registry
        assert registry.aliases("pygen") == ["python"]

    def test_unknown_backend_raises_with_known_names(self):
        registry = default_registry()
        with pytest.raises(BackendError, match="unknown backend"):
            registry.get("turbo")
        with pytest.raises(BackendError, match="pygen"):
            registry.get("turbo")

    def test_duplicate_registration_rejected(self):
        registry = default_registry()
        with pytest.raises(BackendError, match="already registered"):
            registry.register(registry.get("pygen"))

    def test_capability_fallback_on_unavailable_backend(self):
        registry = default_registry()

        class BrokenCgen(type(registry.get("cgen"))):
            def available(self):
                return False

        broken = BackendRegistry()
        broken.register(registry.get("interp"))
        broken.register(registry.get("pygen"))
        broken.register(BrokenCgen())
        assert broken.resolve("cgen").name == "pygen"

    def test_capability_requirement_walks_fallback(self):
        registry = default_registry()
        # cgen does not advertise full string support; the requirement
        # degrades it to pygen, which does.
        assert registry.resolve("cgen",
                                require=("strings",)).name == "pygen"

    def test_exhausted_fallback_chain_raises(self):
        registry = default_registry()
        with pytest.raises(BackendError, match="missing capabilities"):
            registry.resolve("baseline", require=("horseir",))

    def test_custom_backend_registers_per_session(self):
        calls = []

        class Recorder(Backend):
            name = "recorder"
            capabilities = frozenset({"sql"})
            fallback = "pygen"

            def compile(self, unit, ctx):
                calls.append(unit.sql)
                raise BackendError("recorder cannot compile")

        with EngineSession(make_db()) as session:
            session.backends.register(Recorder())
            with pytest.raises(BackendError):
                session.run_sql(SQL, backend="recorder")
        assert calls == [SQL]
        # Other sessions (fresh registries) never see it.
        with EngineSession(make_db()) as other:
            with pytest.raises(BackendError, match="unknown backend"):
                other.run_sql(SQL, backend="recorder")


class TestBackendBehavior:
    def test_baseline_backend_skips_plan_cache(self):
        with EngineSession(make_db()) as session:
            session.run_sql(SQL, backend="baseline")
            session.run_sql(SQL, backend="baseline")
            assert len(session.plan_cache) == 0
            assert session.cache_stats.lookups == 0

    def test_prepared_backends_share_no_cache_entries(self):
        with EngineSession(make_db()) as session:
            session.run_sql(SQL, backend="pygen")
            session.run_sql(SQL, backend="interp")
            assert len(session.plan_cache) == 2
            session.run_sql(SQL, backend="pygen")
            assert session.cache_stats.hits == 1

    def test_alias_and_canonical_name_share_one_entry(self):
        with EngineSession(make_db()) as session:
            session.run_sql(SQL, backend="python")
            session.run_sql(SQL, backend="pygen")
            assert len(session.plan_cache) == 1
            assert session.cache_stats.hits == 1

    def test_interp_backend_reports_compile_provenance(self):
        with EngineSession(make_db()) as session:
            compiled = session.compile_sql(SQL, backend="interp")
        assert compiled.backend == "interp"
        assert compiled.kernel_sources == []
        assert compiled.compile_seconds > 0
        assert compiled.compile_seconds == pytest.approx(
            compiled.optimize_seconds + compiled.codegen_seconds)

    def test_baseline_compiled_query_runs_and_has_no_report(self):
        with EngineSession(make_db()) as session:
            compiled = session.compile_sql(SQL, backend="baseline")
            result = compiled.run()
        assert compiled.report is None
        assert compiled.compile_seconds == 0.0
        assert result.column("s")[0] == pytest.approx(4950.0)

    @pytest.mark.skipif(not c_backend_available(),
                        reason="gcc not on PATH")
    def test_cgen_backend_runs_natively(self):
        with EngineSession(make_db()) as session:
            result = session.run_sql(SQL, backend="cgen", n_threads=2)
        assert result.column("s").data[0] == pytest.approx(4950.0)

    def test_compilation_unit_requirements(self):
        registry = default_registry()
        ctx = QueryContext()
        with pytest.raises(BackendError, match="HorseIR module"):
            registry.get("pygen").compile(CompilationUnit(), ctx)
        with pytest.raises(BackendError, match="logical plan"):
            registry.get("baseline").compile(CompilationUnit(), ctx)

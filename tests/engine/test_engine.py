"""Unit tests for the column-store engine: tables, storage/CSV, the UDF
bridge's conversion boundary, and the plan executor."""

import numpy as np
import pytest

from repro.core import types as ht
from repro.engine.storage import Database
from repro.engine.table import ColumnTable
from repro.engine.udf_bridge import UDFBridge
from repro.errors import StorageError, UDFError
from repro.sql.udf import ScalarUDF, TableUDFDef


class TestColumnTable:
    def test_schema_and_access(self):
        table = ColumnTable("t", {
            "x": np.array([1.0, 2.0]),
            "n": np.array([1, 2], dtype=np.int64),
        })
        assert table.num_rows == 2
        assert table.column_names == ["x", "n"]
        assert table.column_type("x") == ht.F64
        assert table.column_type("n") == ht.I64

    def test_length_mismatch_rejected(self):
        table = ColumnTable("t", {"x": np.array([1.0, 2.0])})
        with pytest.raises(StorageError, match="rows"):
            table.add_column("y", np.array([1.0]))

    def test_duplicate_column_rejected(self):
        table = ColumnTable("t", {"x": np.array([1.0])})
        with pytest.raises(StorageError, match="duplicate"):
            table.add_column("x", np.array([2.0]))

    def test_unicode_arrays_become_object(self):
        table = ColumnTable("t", {"s": np.array(["a", "b"])})
        assert table.column("s").dtype == object
        assert table.column_type("s") == ht.STR

    def test_round_trip_through_table_value(self):
        table = ColumnTable("t", {"x": np.array([1.0, 2.0])})
        value = table.to_table_value()
        # Zero-copy view.
        assert value.column("x").data is table.column("x")
        back = ColumnTable.from_table_value("t2", value)
        assert np.allclose(back.column("x"), table.column("x"))


class TestDatabase:
    def test_create_and_drop(self):
        db = Database()
        db.create_table("t", {"x": np.array([1.0])})
        assert db.table_names() == ["t"]
        db.drop_table("t")
        assert db.table_names() == []

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("t", {"x": np.array([1.0])})
        with pytest.raises(StorageError, match="already exists"):
            db.create_table("t", {"x": np.array([1.0])})

    def test_catalog_derivation(self):
        db = Database()
        db.create_table("t", {"x": np.array([1.0])})
        catalog = db.catalog()
        assert catalog.table("t").column_type("x") == ht.F64

    def test_csv_round_trip(self, tmp_path):
        db = Database()
        db.create_table("t", {
            "i": np.array([1, 2, 3], dtype=np.int64),
            "f": np.array([1.5, 2.5, -3.0]),
            "s": np.array(["a", "b|c".replace("|", ";"), "d"],
                          dtype=object),
            "d": np.array(["2020-01-01", "1998-09-02", "1970-01-01"],
                          dtype="datetime64[D]"),
        })
        path = str(tmp_path / "t.tbl")
        db.save_csv("t", path)

        db2 = Database()
        loaded = db2.load_csv("t", path, [
            ("i", ht.I64), ("f", ht.F64), ("s", ht.STR), ("d", ht.DATE),
        ])
        assert loaded.num_rows == 3
        assert np.array_equal(loaded.column("i"), db.table("t").column("i"))
        assert np.allclose(loaded.column("f"), db.table("t").column("f"))
        assert loaded.column("s").tolist() == \
            db.table("t").column("s").tolist()
        assert np.array_equal(loaded.column("d"),
                              db.table("t").column("d"))

    def test_csv_short_row_rejected(self, tmp_path):
        path = tmp_path / "bad.tbl"
        path.write_text("1|2\n3\n")
        db = Database()
        with pytest.raises(StorageError, match="fields"):
            db.load_csv("bad", str(path), [("a", ht.I64), ("b", ht.I64)])


class TestUDFBridge:
    def test_integers_are_zero_copy(self):
        bridge = UDFBridge()
        udf = ScalarUDF("f", [ht.I64], ht.I64,
                        python_impl=lambda x: x)
        data = np.array([1, 2, 3], dtype=np.int64)
        result = bridge.call_scalar(udf, [data])
        assert result is data
        assert bridge.values_converted_in == 0

    def test_floats_pay_a_conversion_pass(self):
        bridge = UDFBridge()
        udf = ScalarUDF("f", [ht.F64], ht.F64,
                        python_impl=lambda x: x)
        data = np.array([1.0, 2.0])
        bridge.call_scalar(udf, [data])
        assert bridge.values_converted_in == 2
        # ... and the result converts back.
        assert bridge.values_converted_out == 2

    def test_strings_rematerialize_per_element(self):
        bridge = UDFBridge()
        seen = {}

        def capture(values):
            seen["values"] = values
            return np.ones(len(values))

        udf = ScalarUDF("f", [ht.STR], ht.F64, python_impl=capture)
        original = np.empty(2, dtype=object)
        original[0] = "hello"
        original[1] = "world"
        bridge.call_scalar(udf, [original])
        converted = seen["values"]
        assert converted[0] == "hello"
        assert converted[0] is not original[0]  # fresh object
        assert bridge.values_converted_in == 2

    def test_dates_cross_as_day_counts(self):
        bridge = UDFBridge()
        seen = {}

        def capture(days):
            seen["days"] = days
            return np.zeros(len(days))

        udf = ScalarUDF("f", [ht.DATE], ht.F64, python_impl=capture)
        dates = np.array(["1970-01-03", "1970-01-01"],
                         dtype="datetime64[D]")
        bridge.call_scalar(udf, [dates])
        assert seen["days"].tolist() == [2, 0]

    def test_table_udf_output_count_checked(self):
        bridge = UDFBridge()
        udf = TableUDFDef("tf", [ht.F64],
                          [("a", ht.F64), ("b", ht.F64)],
                          python_impl=lambda x: [x])
        with pytest.raises(UDFError, match="declared 2"):
            bridge.call_table(udf, [np.array([1.0])])

    def test_missing_python_impl(self):
        bridge = UDFBridge()
        udf = ScalarUDF("f", [ht.F64], ht.F64)
        with pytest.raises(UDFError, match="no Python implementation"):
            bridge.call_scalar(udf, [np.array([1.0])])

"""QueryGovernor: deadlines, memory budgets, admission control, and
graceful backend degradation (PR 6)."""

import threading
import time

import numpy as np
import pytest

from repro.core import types as ht
from repro.core.codegen.executor import run_kernel
from repro.core.codegen.pygen import CompiledKernel
from repro.core.execpool import ExecutorPool
from repro.core.limits import NULL_LIMITS, QueryLimits
from repro.core.values import Vector
from repro.data.blackscholes import load_blackscholes_table
from repro.engine import EngineSession, QueryGovernor, default_registry
from repro.engine.governor import BudgetedAllocationProfile
from repro.engine.storage import Database
from repro.errors import (AdmissionRejected, GovernorError,
                          HorseRuntimeError, MemoryBudgetExceeded,
                          QueryCancelled, QueryTimeout)
from repro.obs import AllocationProfile, MetricsRegistry
from repro.workloads.bs_queries import SCALAR_QUERIES, register_bs_udfs


def make_db(rows=100, seed=0):
    rng = np.random.default_rng(seed)
    db = Database()
    db.create_table("t", {
        "x": rng.random(rows),
        "y": rng.random(rows),
    })
    return db


SQL = "SELECT SUM(x * y) AS s FROM t WHERE x > 0.1"


class TestQueryLimits:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueryLimits(timeout=0)
        with pytest.raises(ValueError):
            QueryLimits(timeout=-1.0)
        with pytest.raises(ValueError):
            QueryLimits(memory_budget=0)

    def test_check_counts_and_passes_inside_deadline(self):
        limits = QueryLimits(timeout=3600.0)
        for _ in range(5):
            limits.check("test")
        assert limits.checks == 5
        assert limits.remaining_seconds() > 3000.0

    def test_check_raises_past_deadline(self):
        limits = QueryLimits(timeout=0.001)
        time.sleep(0.005)
        with pytest.raises(QueryTimeout, match="deadline"):
            limits.check("chunk")

    def test_cancel_raises_at_next_check(self):
        limits = QueryLimits(timeout=3600.0)
        limits.check()
        limits.cancel("test asked")
        with pytest.raises(QueryCancelled, match="test asked"):
            limits.check("statement")

    def test_null_limits_is_disabled_and_inert(self):
        assert NULL_LIMITS.enabled is False
        NULL_LIMITS.check("anywhere")  # no-op, raises nothing
        assert NULL_LIMITS.checks == 0
        assert NULL_LIMITS.remaining_seconds() is None


class TestGovernorGrant:
    def test_unconfigured_governor_grants_nothing(self):
        governor = QueryGovernor(metrics=MetricsRegistry())
        assert governor.grant() is None

    def test_defaults_apply_when_call_passes_none(self):
        governor = QueryGovernor(metrics=MetricsRegistry(),
                                 default_timeout=5.0,
                                 default_memory_budget=1 << 20)
        limits = governor.grant()
        assert limits.timeout == 5.0
        assert limits.memory_budget == 1 << 20
        # explicit per-query values win over defaults
        limits = governor.grant(timeout=1.0, memory_budget=64)
        assert limits.timeout == 1.0
        assert limits.memory_budget == 64

    def test_configure_rejects_bad_values(self):
        governor = QueryGovernor(metrics=MetricsRegistry())
        with pytest.raises(ValueError):
            governor.configure(max_concurrent=0)
        with pytest.raises(ValueError):
            governor.configure(admission_timeout=-1.0)


class TestDeadline:
    def test_deadline_cancels_within_one_chunk_boundary(self):
        """The acceptance scenario: a 50 ms deadline on a multi-chunk
        kernel stops at the next chunk checkpoint — overshoot bounded
        by one chunk's work, nowhere near the ungoverned runtime."""
        chunk_sleep = 0.02
        n_chunks = 40  # ungoverned runtime ~0.8 s
        chunk = 64
        executed = []

        def slow_fn(x):
            executed.append(len(x))
            time.sleep(chunk_sleep)
            return [x]

        kernel = CompiledKernel(
            segment=None, source="", fn=slow_fn, inputs=["x"],
            streamed=[True], outputs=[("y", "vector")],
            output_types=[ht.F64])
        data = Vector(ht.F64, np.ones(chunk * n_chunks))

        with EngineSession(make_db()) as session:
            limits = QueryLimits(timeout=0.05)
            ctx = session.context()
            ctx.limits = limits
            start = time.perf_counter()
            with pytest.raises(QueryTimeout):
                run_kernel(kernel, [data], chunk_size=chunk, ctx=ctx)
            elapsed = time.perf_counter() - start

        # Cancelled long before the ~0.8 s ungoverned runtime, with
        # overshoot past the deadline bounded by roughly one chunk
        # (generous CI slack, still an order of magnitude under 0.8 s).
        assert elapsed < 0.05 + chunk_sleep + 0.15
        assert len(executed) < n_chunks
        assert limits.checks == len(executed) + 1  # failing check runs no chunk

    def test_run_sql_timeout_raises_and_counts(self):
        with EngineSession(make_db(rows=50_000)) as session:
            with pytest.raises(QueryTimeout):
                session.run_sql(SQL, timeout=1e-6, backend="interp",
                                opt_level="naive", use_cache=False)
            assert session.metrics.counter(
                "governor.timed_out").value == 1

    def test_optimizer_pass_checkpoint(self):
        """A deadline expiring during compilation cancels at an
        optimizer-pass boundary (no execution ever starts)."""
        with EngineSession(make_db()) as session:
            limits = QueryLimits(timeout=0.001)
            time.sleep(0.005)
            ctx = session.context()
            ctx.limits = limits
            with pytest.raises(QueryTimeout, match="pass:"):
                session.compile_sql(SQL, opt_level="opt", ctx=ctx)

    def test_memory_budget_cancel_counts_as_cancelled(self):
        with EngineSession(make_db(rows=50_000)) as session:
            with pytest.raises(MemoryBudgetExceeded):
                session.run_sql(SQL, memory_budget=64, use_cache=False)
            assert session.metrics.counter(
                "governor.cancelled").value == 1


class TestMemoryBudget:
    @pytest.fixture(scope="class")
    def bs_db(self):
        db = Database()
        load_blackscholes_table(db, 50_000)
        return db

    def _alloc_of(self, session, sql, backend, opt_level):
        profile = AllocationProfile()
        ctx = session.context()
        ctx.profile = profile
        session.run_sql(sql, backend=backend, opt_level=opt_level,
                        ctx=ctx)
        return profile.bytes_allocated

    def test_naive_trips_budget_that_fused_fits(self, bs_db):
        """The fusion story as an enforcement boundary: naive
        Black-Scholes materializes every intermediate and blows a
        budget the fused pipeline runs comfortably inside."""
        sql = SCALAR_QUERIES["bs0_base"]
        with EngineSession(bs_db) as session:
            register_bs_udfs(session)
            naive = self._alloc_of(session, sql, "interp", "naive")
            fused = self._alloc_of(session, sql, "pygen", "opt")
            assert fused < naive
            budget = (naive + fused) // 2

            # Fused: runs to completion under the budget.
            session.run_sql(sql, backend="pygen", opt_level="opt",
                            memory_budget=budget)
            # Naive: the same budget trips at a charge point.
            with pytest.raises(MemoryBudgetExceeded, match="budget"):
                session.run_sql(sql, backend="interp",
                                opt_level="naive",
                                memory_budget=budget,
                                use_cache=False)

    def test_budgeted_profile_forwards_to_base(self):
        base = AllocationProfile()
        budgeted = BudgetedAllocationProfile(1 << 20, base=base)
        budgeted.record(1024, site="test")
        budgeted.update_peak(1024)
        assert base.bytes_allocated == 1024
        assert base.peak_bytes == 1024
        with pytest.raises(MemoryBudgetExceeded):
            budgeted.record(1 << 21, site="big")
        # the failing charge was still metered before it raised
        assert base.bytes_allocated == 1024 + (1 << 21)


class TestAdmission:
    def test_rejects_query_past_the_limit(self):
        with EngineSession(make_db()) as session:
            session.governor.configure(max_concurrent=1)
            with session.governor.admit():
                with pytest.raises(AdmissionRejected):
                    session.run_sql(SQL)
            # slot released: same query admitted now
            session.run_sql(SQL)
            metrics = session.metrics
            assert metrics.counter("governor.rejected").value == 1
            assert metrics.counter("governor.admitted").value >= 1
            snapshot = metrics.snapshot()
            assert "governor.queue_wait_seconds" in snapshot

    def test_concurrent_queries_beyond_limit_reject(self):
        """N+1 genuinely concurrent queries: N admitted, one
        rejected."""
        with EngineSession(make_db(rows=50_000)) as session:
            session.governor.configure(max_concurrent=2)
            barrier = threading.Barrier(3)
            outcomes = []

            def worker():
                try:
                    with session.governor.admit():
                        barrier.wait(timeout=5)
                        time.sleep(0.05)
                    outcomes.append("ok")
                except AdmissionRejected:
                    barrier.wait(timeout=5)
                    outcomes.append("rejected")

            threads = [threading.Thread(target=worker)
                       for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert sorted(outcomes) == ["ok", "ok", "rejected"]

    def test_admission_queue_wait_admits_when_slot_frees(self):
        governor = QueryGovernor(metrics=MetricsRegistry(),
                                 max_concurrent=1,
                                 admission_timeout=5.0)
        release = threading.Event()

        def holder():
            with governor.admit():
                release.set()
                time.sleep(0.05)

        thread = threading.Thread(target=holder)
        thread.start()
        release.wait(timeout=5)
        with governor.admit() as admitted:  # queues ~50 ms, then enters
            assert admitted
        thread.join(timeout=5)
        waits = governor.metrics.histogram(
            "governor.queue_wait_seconds")
        assert waits.count == 2  # holder (zero wait) + queued entry

    def test_governor_errors_are_never_retried(self):
        """Admission rejection must not walk the fallback chain."""
        with EngineSession(make_db()) as session:
            session.governor.configure(max_concurrent=1)
            with session.governor.admit():
                with pytest.raises(GovernorError):
                    session.run_sql(SQL, backend="cgen")
            assert session.metrics.counter("query.retries").value == 0


class _FailingOnce:
    """Mutable flag shared with the flaky backend below."""

    def __init__(self):
        self.failures = 0


def _flaky_registry(fail_state):
    """A registry whose ``flaky`` backend compiles like pygen but blows
    up at runtime, declaring pygen as its fallback — the cgen-style
    runtime-failure scenario without needing gcc."""
    registry = default_registry()
    pygen = registry.get("pygen")

    class FlakyBackend(type(pygen)):
        name = "flaky"
        description = "fails at runtime; falls back to pygen"
        fallback = "pygen"

        def execute(self, program, ctx, **kwargs):
            fail_state.failures += 1
            raise HorseRuntimeError("kernel blew up at runtime")

    registry.register(FlakyBackend())
    return registry


class TestGracefulDegradation:
    def test_runtime_failure_degrades_bit_identical(self):
        fail_state = _FailingOnce()
        db = make_db(rows=10_000, seed=7)
        with EngineSession(db, backends=_flaky_registry(fail_state)) \
                as session:
            degraded = session.run_sql(SQL, backend="flaky")
            expected = session.run_sql(SQL, backend="pygen")
            assert fail_state.failures == 1
            assert degraded.column("s").data[0] == \
                expected.column("s").data[0]
            assert session.metrics.counter("query.retries").value == 1

    def test_retry_disabled_propagates(self):
        fail_state = _FailingOnce()
        with EngineSession(make_db(),
                           backends=_flaky_registry(fail_state)) \
                as session:
            session.governor.configure(retry_fallback=False)
            with pytest.raises(HorseRuntimeError, match="blew up"):
                session.run_sql(SQL, backend="flaky")
            assert session.metrics.counter("query.retries").value == 0

    def test_no_fallback_propagates(self):
        """A backend with no declared fallback surfaces its runtime
        errors as-is — nothing left to degrade to."""
        registry = default_registry()
        pygen = registry.get("pygen")

        class DeadEndBackend(type(pygen)):
            name = "deadend"
            description = "fails at runtime with no fallback"
            fallback = None

            def execute(self, program, ctx, **kwargs):
                raise HorseRuntimeError("no safety net")

        registry.register(DeadEndBackend())
        with EngineSession(make_db(), backends=registry) as session:
            with pytest.raises(HorseRuntimeError, match="no safety"):
                session.run_sql(SQL, backend="deadend")
            assert session.metrics.counter("query.retries").value == 0


class TestUngovernedPathUnchanged:
    def test_no_limits_means_null_limits_and_no_governor_metrics(self):
        with EngineSession(make_db()) as session:
            result = session.run_sql(SQL)
            assert result.num_rows == 1
            snapshot = session.metrics.snapshot()
            assert not any(key.startswith("governor.")
                           for key in snapshot)
            assert "query.retries" not in snapshot
            assert session.context().limits is NULL_LIMITS

    def test_governed_and_ungoverned_results_identical(self):
        db = make_db(rows=10_000, seed=3)
        with EngineSession(db) as session:
            plain = session.run_sql(SQL)
            governed = session.run_sql(SQL, timeout=3600.0,
                                       memory_budget=1 << 30)
            assert plain.column("s").data[0] == \
                governed.column("s").data[0]


class TestPoolCap:
    def test_cap_clamps_oversized_requests(self):
        """Regression: ``get(n_threads > max_workers)`` used to grow
        the pool past its cap."""
        metrics = MetricsRegistry()
        with ExecutorPool(max_workers=2, metrics=metrics) as pool:
            pool.get(8)
            assert pool.workers == 2
            assert metrics.counter("pool.oversubscribed").value == 1
            # within-cap requests are not oversubscription
            pool.get(2)
            assert metrics.counter("pool.oversubscribed").value == 1
            assert pool.stats.max_workers_seen == 2

    def test_oversubscribed_requests_do_not_rebuild_the_pool(self):
        metrics = MetricsRegistry()
        with ExecutorPool(max_workers=2, metrics=metrics) as pool:
            pool.get(8)
            pool.get(8)
            pool.get(16)
            assert pool.stats.pools_created == 1
            assert metrics.counter("pool.oversubscribed").value == 3

    def test_uncapped_pool_still_grows(self):
        with ExecutorPool(metrics=MetricsRegistry()) as pool:
            executor = pool.get(4)
            assert pool.workers >= 4
            assert executor is not None


#: A query whose compiled form contains a fused kernel (a single
#: predicate compiles to plain column ops with no segment to fuse).
FUSED_SQL = ("SELECT SUM(x * (1.0 - y)) AS s FROM t "
             "WHERE x > 0.1 AND y < 0.9")


class TestChunkCounting:
    def test_single_chunk_fast_path_counts_one_chunk(self):
        """Regression: the single-chunk fast path returned before
        ``kernel.chunks`` was incremented, undercounting every query
        whose base length fits one chunk."""
        with EngineSession(make_db(rows=64)) as session:
            assert len(session.compile_sql(
                FUSED_SQL, backend="pygen").kernel_sources) == 1
            session.run_sql(FUSED_SQL, backend="pygen")
            assert session.metrics.counter("kernel.chunks").value == 1

    def test_multi_chunk_counts_match_bounds(self):
        with EngineSession(make_db(rows=2000)) as session:
            session.run_sql(FUSED_SQL, backend="pygen",
                            chunk_size=100)
            # ~81% of 2000 rows survive the filter → the fused kernel
            # streams well over 1000 rows → at least 10 chunks.
            assert session.metrics.counter(
                "kernel.chunks").value >= 10

"""Guard: the session refactor removed process-global mutable state
from the engine; this test fails if any module re-grows it.

The refactor moved every piece of per-query runtime state (metric
instruments, pool telemetry, cache counters, tracer lookups) into
instances owned by an ``EngineSession``.  A module-level counter or
flag silently reintroduces cross-session bleed, so the allowlist below
is the *complete* set of deliberate ambient state — anything else at
module scope that is mutable fails the build.
"""

import __future__
import importlib
import logging
import pkgutil
import re
import types

from repro.core.limits import NullQueryLimits
from repro.obs.prof import NullAllocationProfile
from repro.obs.tracer import NullTracer

#: Modules whose globals are audited: the facade package, the
#: observability package, the statistics and static-analysis packages,
#: and the executor-pool module — the places process-global state
#: used to live or where caches could quietly become ambient.
AUDITED_ROOTS = ["repro.horsepower", "repro.obs", "repro.stats",
                 "repro.core.analysis"]
AUDITED_MODULES = ["repro.core.execpool", "repro.core.context",
                   "repro.core.limits", "repro.engine.session",
                   "repro.engine.backends", "repro.engine.governor"]

#: Deliberate ambient state, documented at each definition site.  New
#: entries need the same justification: state that *defines* the
#: process-wide default, never state a query writes to.
ALLOWLIST = {
    # The process-global metrics registry (the ambient default
    # sessions opt into via EngineSession.ambient).
    ("repro.obs.metrics", "_global"),
    # The ambient tracer slot and the contextvar threading spans
    # through nested calls.
    ("repro.obs.tracer", "_tracer"),
    ("repro.obs.tracer", "_current_span"),
    ("repro.obs.tracer", "_NULL_SPAN"),
    ("repro.obs.tracer", "NULL_TRACER"),
    # The process-shared executor pool for code outside any session.
    ("repro.core.execpool", "_shared"),
    ("repro.core.execpool", "_shared_lock"),
    # The ambient allocation-profile slot (mirrors the tracer slot):
    # NULL_PROFILE until the CLI's --profile or use_profile installs a
    # real profile process-wide; isolated sessions never read it.
    ("repro.obs.prof", "_profile"),
    # The constant-propagation lattice's "not a constant" sentinel: a
    # stateless singleton (attribute-less instance) compared by
    # identity, never written to.
    ("repro.core.analysis.dataflow", "NONCONST"),
}

#: Types that cannot hold cross-query mutable state.  ``NullTracer``,
#: ``NullAllocationProfile``, and ``NullQueryLimits`` are stateless
#: no-op singletons (``__slots__ = ()``, class-level constants only);
#: ``__future__._Feature`` is the ``from __future__ import
#: annotations`` artifact.
IMMUTABLE_TYPES = (str, bytes, int, float, bool, complex, tuple,
                   frozenset, type(None), types.ModuleType,
                   types.FunctionType, types.BuiltinFunctionType,
                   type, re.Pattern, logging.Logger, NullTracer,
                   NullAllocationProfile, NullQueryLimits,
                   __future__._Feature)


def audited_modules():
    names = list(AUDITED_MODULES)
    for root in AUDITED_ROOTS:
        package = importlib.import_module(root)
        names.append(root)
        for info in pkgutil.iter_modules(package.__path__,
                                         prefix=root + "."):
            names.append(info.name)
    return sorted(set(names))


def is_benign(value) -> bool:
    if isinstance(value, IMMUTABLE_TYPES):
        return True
    if type(value) is object:  # attribute-less sentinel
        return True
    # Constant lookup tables of immutable values (e.g. name → factory
    # maps) are fine; anything nested-mutable is not.
    if isinstance(value, dict):
        return all(isinstance(k, (str, int)) and is_benign(v)
                   for k, v in value.items())
    if isinstance(value, (list, set)):
        return all(is_benign(item) for item in value)
    return False


def test_no_module_level_mutable_state():
    offenders = []
    for module_name in audited_modules():
        module = importlib.import_module(module_name)
        for name, value in vars(module).items():
            if name.startswith("__"):
                continue
            if (module_name, name) in ALLOWLIST:
                continue
            if is_benign(value):
                continue
            offenders.append(
                f"{module_name}.{name} = {type(value).__name__}")
    assert not offenders, (
        "module-level mutable state found (move it into EngineSession "
        "or allowlist it with a written justification):\n  "
        + "\n  ".join(offenders))


def test_telemetry_module_is_audited():
    """The telemetry module (ring buffer, query-id sequence, HTTP
    server) rides under the ``repro.obs`` package root, so the audit
    above covers it automatically — this guard fails if it is ever
    moved out from under an audited root."""
    assert "repro.obs.telemetry" in audited_modules()


def test_telemetry_state_is_session_owned():
    """Two sessions never share a flight recorder, a query-id
    sequence, or a metrics server."""
    import io

    from repro.engine import EngineSession

    with EngineSession() as one, EngineSession() as two:
        one.configure_telemetry(query_log=io.StringIO())
        two.configure_telemetry(query_log=io.StringIO())
        assert one.telemetry is not two.telemetry
        assert one.telemetry.recorder is not two.telemetry.recorder
        first = one.telemetry.begin_query(
            "SELECT 1", backend="pygen", opt_level="opt", n_threads=1)
        second = two.telemetry.begin_query(
            "SELECT 1", backend="pygen", opt_level="opt", n_threads=1)
        # Independent sequences: both sessions hand out id 1.
        assert first["query_id"] == second["query_id"] == 1


def test_allowlist_matches_reality():
    """Every allowlisted name still exists — a stale allowlist entry
    means the global was removed and the entry must go too."""
    for module_name, attr in ALLOWLIST:
        module = importlib.import_module(module_name)
        assert hasattr(module, attr), (module_name, attr)

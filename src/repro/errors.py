"""Exception hierarchy for the HorsePower reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class HorseIRError(ReproError):
    """Base class for errors in the HorseIR core (types, IR, compiler)."""


class HorseTypeError(HorseIRError):
    """A HorseIR value or expression has an unexpected type."""


class HorseSyntaxError(HorseIRError):
    """Textual HorseIR failed to parse."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class HorseVerifyError(HorseIRError):
    """A HorseIR module violates a structural invariant."""


class HorseRuntimeError(HorseIRError):
    """A HorseIR program failed while executing."""


class BuiltinError(HorseIRError):
    """A built-in function was called with invalid arguments."""


class OptimizerError(HorseIRError):
    """An optimization pass produced or encountered invalid IR."""


class PassVerificationError(OptimizerError):
    """Inter-pass IR verification failed (``--verify-ir`` mode).

    Raised by the :class:`~repro.core.passes.PassManager` when the
    structural verifier (:mod:`repro.core.verify_ir`) rejects the module
    a pass just produced.  ``pass_name`` is the offending pass
    (``"input"`` when the module was malformed before the first pass
    ran), ``method`` the method it broke (None for module-level
    failures), and ``detail`` the verifier's own message, which names
    the offending statement."""

    def __init__(self, pass_name: str, detail: str,
                 method: str | None = None):
        where = f" in method {method!r}" if method else ""
        super().__init__(
            f"IR verification failed after pass {pass_name!r}{where}: "
            f"{detail}")
        self.pass_name = pass_name
        self.method = method
        self.detail = detail


class CodegenError(HorseIRError):
    """Kernel code generation failed."""


class SQLError(ReproError):
    """Base class for SQL frontend errors."""


class SQLSyntaxError(SQLError):
    """SQL text failed to parse."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PlanError(SQLError):
    """Logical planning or plan translation failed."""


class CatalogError(SQLError):
    """Unknown table or column, or inconsistent schema."""


class MatlangError(ReproError):
    """Base class for MATLAB-subset frontend errors."""


class MatlangSyntaxError(MatlangError):
    """MATLAB-subset source failed to parse."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class MatlangTypeError(MatlangError):
    """Tamer type/shape inference failed or found an inconsistency."""


class MatlangRuntimeError(MatlangError):
    """The MATLAB-subset interpreter failed while executing."""


class GovernorError(ReproError):
    """Base class for query-governor enforcement errors.

    Raised when the :class:`~repro.engine.governor.QueryGovernor`
    refuses or cancels a query.  Deliberately *not* under
    :class:`HorseIRError`: governor errors describe resource policy,
    not program failure, and the session's graceful-degradation retry
    must never retry them on a fallback backend.

    ``refusal`` is the machine-readable refusal class each subclass
    declares — the ``outcome`` field of a telemetry query-log record
    (``"timeout"``, ``"memory_budget"``, ...), stable across message
    wording changes.
    """

    refusal = "refused"


class QueryTimeout(GovernorError):
    """A query ran past its deadline and was cancelled cooperatively
    at the next checkpoint (chunk boundary, interpreter statement, or
    optimizer pass)."""

    refusal = "timeout"


class QueryCancelled(GovernorError):
    """A query was cancelled explicitly via
    :meth:`~repro.core.limits.QueryLimits.cancel`."""

    refusal = "cancelled"


class MemoryBudgetExceeded(GovernorError):
    """A query materialized more bytes than its memory budget allows
    (enforced at the allocation-profiler charge points)."""

    refusal = "memory_budget"


class AdmissionRejected(GovernorError):
    """The governor's concurrent-query limit is saturated and the
    admission queue wait (if any) expired before a slot freed up."""

    refusal = "admission_rejected"


class EngineError(ReproError):
    """Base class for column-store engine errors."""


class StorageError(EngineError):
    """Table storage or CSV I/O failed."""


class ExecutorError(EngineError):
    """The baseline plan executor failed."""


class UDFError(EngineError):
    """A user-defined function failed or was mis-declared."""

"""Table/column statistics: the ``ANALYZE`` side of ``repro.stats``.

An ``ANALYZE`` run walks a :class:`~repro.engine.table.ColumnTable`
column by column and records, per column:

* ``count`` / ``null_count`` — total rows and how many are null
  (``NaN`` for floats, ``NaT`` for dates; integer, boolean and string
  columns cannot hold nulls in this engine);
* ``min`` / ``max`` — the extreme non-null values;
* ``n_distinct`` — exact distinct count over the non-null values
  (the tables the reproduction handles fit in memory, so there is no
  need for a sketch);
* an **equi-depth histogram** over the non-null values of orderable
  numeric/date columns: ``bounds`` holds ``len(depths) + 1`` bucket
  boundaries (``bounds[0] == min``, ``bounds[-1] == max``) chosen at
  equally spaced quantiles, ``depths[i]`` counts the values that fell
  between ``bounds[i]`` and ``bounds[i + 1]``.  String columns skip the
  histogram (range predicates on strings fall back to a default
  selectivity; equality uses ``n_distinct``).

Everything lives in a per-session :class:`StatsStore`.  The store is
*off until the first analyze*: ``enabled`` is a plain ``False``
attribute (the telemetry pattern), so the per-query cost with no
statistics collected is one attribute read, and
:meth:`StatsStore.fingerprint` returns ``None`` so plan-cache keys are
unchanged from the stats-free era.  Every analyze bumps an internal
version that feeds the fingerprint — re-ANALYZE therefore invalidates
previously cached plans.
"""

from __future__ import annotations

import numpy as np

from repro.core import types as ht

__all__ = ["ColumnStats", "TableStats", "StatsStore", "q_error",
           "MISESTIMATE_THRESHOLD", "DEFAULT_HISTOGRAM_BUCKETS"]

#: Default number of equi-depth histogram buckets per column.
DEFAULT_HISTOGRAM_BUCKETS = 32

#: A query whose q-error exceeds this trips ``stats.misestimates`` —
#: twice the 2.0 acceptance bar, so the counter flags *stale* stats,
#: not ordinary histogram granularity error.
MISESTIMATE_THRESHOLD = 4.0


def q_error(est: float, actual: float) -> float:
    """The symmetric ratio error ``max(est/actual, actual/est)``.

    Both sides are clamped to at least one row, so an estimate of 0 for
    an empty result is a perfect 1.0 rather than a division by zero."""
    est = max(float(est), 1.0)
    actual = max(float(actual), 1.0)
    return max(est / actual, actual / est)


def _numeric_view(values: np.ndarray) -> np.ndarray | None:
    """``values`` as float64 for histogram purposes, or ``None`` for
    types without a usable numeric order (strings/symbols)."""
    if values.dtype.kind in ("i", "u", "f", "b"):
        return values.astype(np.float64)
    if values.dtype.kind == "M":  # datetime64 -> days since epoch
        return values.astype("datetime64[D]").astype(np.int64) \
            .astype(np.float64)
    return None


def _null_mask(values: np.ndarray) -> np.ndarray | None:
    if values.dtype.kind == "f":
        return np.isnan(values)
    if values.dtype.kind == "M":
        return np.isnat(values)
    if values.dtype.kind == "O":
        return np.array([v is None for v in values], dtype=bool)
    return None


class ColumnStats:
    """Statistics for one column (see the module docstring)."""

    __slots__ = ("name", "type", "count", "null_count", "n_distinct",
                 "min", "max", "bounds", "depths")

    def __init__(self, name: str, type_: ht.HorseType, count: int,
                 null_count: int, n_distinct: int, min_, max_,
                 bounds: np.ndarray | None,
                 depths: np.ndarray | None) -> None:
        self.name = name
        self.type = type_
        self.count = count
        self.null_count = null_count
        self.n_distinct = n_distinct
        self.min = min_
        self.max = max_
        self.bounds = bounds
        self.depths = depths

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.count if self.count else 0.0

    def fraction_le(self, value: float) -> float | None:
        """Fraction of *non-null* values ``<= value`` (numeric domain:
        dates are days since epoch).  ``None`` when the column has no
        histogram (strings, or analyzed empty)."""
        if self.bounds is None or self.depths is None:
            return None
        total = int(self.depths.sum())
        if total == 0:
            return None
        bounds, depths = self.bounds, self.depths
        if value < bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        # Bucket i spans (bounds[i], bounds[i+1]]; linear interpolation
        # inside the bucket (the classic uniform-within-bucket model).
        i = int(np.searchsorted(bounds, value, side="left")) - 1
        i = max(i, 0)
        below = float(depths[:i].sum())
        width = float(bounds[i + 1] - bounds[i])
        if width <= 0:
            inside = float(depths[i])
        else:
            inside = float(depths[i]) * (value - float(bounds[i])) / width
        return min(max((below + inside) / total, 0.0), 1.0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": str(self.type),
            "count": self.count,
            "null_count": self.null_count,
            "n_distinct": self.n_distinct,
            "min": None if self.min is None else str(self.min),
            "max": None if self.max is None else str(self.max),
            "histogram_buckets": 0 if self.depths is None
            else len(self.depths),
        }


def analyze_column(name: str, values: np.ndarray, type_: ht.HorseType,
                   buckets: int = DEFAULT_HISTOGRAM_BUCKETS
                   ) -> ColumnStats:
    """Compute :class:`ColumnStats` for one numpy column."""
    count = len(values)
    mask = _null_mask(values)
    if mask is not None and mask.any():
        null_count = int(mask.sum())
        nonnull = values[~mask]
    else:
        null_count = 0
        nonnull = values
    if len(nonnull) == 0:
        return ColumnStats(name, type_, count, null_count, 0, None,
                           None, None, None)
    if nonnull.dtype.kind == "O":
        distinct = len(set(nonnull.tolist()))
        min_, max_ = min(nonnull.tolist()), max(nonnull.tolist())
        return ColumnStats(name, type_, count, null_count, distinct,
                           min_, max_, None, None)
    sorted_vals = np.sort(nonnull)
    distinct = int(1 + np.count_nonzero(sorted_vals[1:]
                                        != sorted_vals[:-1])) \
        if len(sorted_vals) > 1 else 1
    min_, max_ = sorted_vals[0], sorted_vals[-1]
    numeric = _numeric_view(sorted_vals)
    bounds, depths = _equi_depth(numeric, buckets)
    return ColumnStats(name, type_, count, null_count, distinct, min_,
                       max_, bounds, depths)


def _equi_depth(sorted_vals: np.ndarray, buckets: int
                ) -> tuple[np.ndarray, np.ndarray]:
    """Equi-depth boundaries/counts over an ascending float array."""
    n = len(sorted_vals)
    buckets = max(1, min(buckets, n))
    positions = np.linspace(0, n - 1, buckets + 1).round().astype(int)
    bounds = sorted_vals[positions]
    # Merge buckets whose boundaries collapsed (heavy duplicates).
    keep = np.ones(len(bounds), dtype=bool)
    keep[1:-1] = bounds[1:-1] > bounds[:-2]
    bounds = bounds[keep]
    if len(bounds) < 2:
        bounds = np.array([bounds[0], bounds[0]])
    # depths[i] = values in (bounds[i], bounds[i+1]], first bucket also
    # takes the values equal to bounds[0].
    upper_idx = np.searchsorted(sorted_vals, bounds[1:], side="right")
    lower_idx = np.concatenate(([0], upper_idx[:-1]))
    depths = (upper_idx - lower_idx).astype(np.int64)
    return bounds.astype(np.float64), depths


class TableStats:
    """Row count plus per-column stats for one analyzed table."""

    __slots__ = ("name", "row_count", "columns")

    def __init__(self, name: str, row_count: int,
                 columns: dict[str, ColumnStats]) -> None:
        self.name = name
        self.row_count = row_count
        self.columns = columns

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)

    def to_dict(self) -> dict:
        return {
            "table": self.name,
            "row_count": self.row_count,
            "columns": [self.columns[c].to_dict() for c in self.columns],
        }


class StatsStore:
    """Per-session container of :class:`TableStats`.

    ``enabled`` flips to ``True`` on the first analyze and the version
    counter bumps on every one, so :meth:`fingerprint` distinguishes
    every statistics generation (re-ANALYZE ⇒ new plan-cache keys)."""

    def __init__(self) -> None:
        self._tables: dict[str, TableStats] = {}
        self._version = 0
        self.enabled = False

    def analyze(self, name: str, table,
                buckets: int = DEFAULT_HISTOGRAM_BUCKETS) -> TableStats:
        """Collect statistics for ``table`` (a ``ColumnTable``)."""
        columns = {
            column: analyze_column(column, table.column(column),
                                   table.column_type(column), buckets)
            for column in table.column_names
        }
        stats = TableStats(name, table.num_rows, columns)
        self._tables[name] = stats
        self._version += 1
        self.enabled = True
        return stats

    def table(self, name: str) -> TableStats | None:
        return self._tables.get(name)

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def clear(self) -> None:
        self._tables.clear()
        self._version += 1
        self.enabled = False

    def fingerprint(self) -> int | None:
        """``None`` while empty (legacy cache keys), else the analyze
        generation."""
        return self._version if self._tables else None

    def __bool__(self) -> bool:
        return bool(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

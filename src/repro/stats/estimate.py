"""Cardinality estimation: the planner side of ``repro.stats``.

:func:`annotate_plan` walks a logical plan bottom-up and sets
``est_rows`` on every node whose inputs are covered by analyzed tables
(subtrees over unanalyzed tables stay unannotated rather than guessing
from nothing).  The model is the textbook one:

* **Scan** — the analyzed row count;
* **Filter** — child rows × predicate selectivity.  Comparisons of a
  column against a literal read the column's equi-depth histogram
  (range operators) or ``1 / n_distinct`` (equality); ``BETWEEN`` is
  the histogram-fraction difference, ``IN`` is ``k / n_distinct``,
  ``AND`` multiplies, ``OR`` adds minus the overlap, ``NOT``
  complements.  Anything opaque — UDF calls, column-vs-column
  comparisons, ``LIKE`` — falls back to :data:`DEFAULT_SELECTIVITY`;
* **Join** (inner, equi-key) — ``|L| × |R| / max(ndv_L, ndv_R)`` per
  key pair, capped at the cross product;
* **GroupAggregate** — the product of the key columns' distinct
  counts, capped at the child's rows (1 for global aggregates);
* **Project / Sort / TableUDF** pass the child estimate through,
  **Limit** caps it.

Column references resolve *through* the plan: a filter above a
projection or join chases ``Col`` pass-throughs down to the scan that
produced the column, so statistics keyed by base table apply at any
plan depth.  Selectivities are scaled by the column's non-null
fraction — comparisons never match nulls.
"""

from __future__ import annotations

import numpy as np

from repro.sql import ast
from repro.sql import plan as p
from repro.stats.store import ColumnStats, StatsStore

__all__ = ["annotate_plan", "estimate_rows", "predicate_selectivity",
           "DEFAULT_SELECTIVITY"]

#: Selectivity assumed for predicates the model cannot see through
#: (UDF calls, column-vs-column comparisons, LIKE, ...).
DEFAULT_SELECTIVITY = 1.0 / 3.0


def annotate_plan(node: p.PlanNode, store: StatsStore) -> float | None:
    """Set ``est_rows`` on ``node`` and every descendant; returns the
    root estimate (``None`` when the inputs are unanalyzed)."""
    est = estimate_rows(node, store)
    if est is not None:
        node.est_rows = int(round(est))
    for child in node.children():
        annotate_plan(child, store)
    return est


def estimate_rows(node: p.PlanNode, store: StatsStore) -> float | None:
    if isinstance(node, p.Scan):
        stats = store.table(node.table)
        return float(stats.row_count) if stats is not None else None
    if isinstance(node, p.Filter):
        child = estimate_rows(node.child, store)
        if child is None:
            return None
        return child * predicate_selectivity(node.predicate, node.child,
                                             store)
    if isinstance(node, p.Join):
        return _estimate_join(node, store)
    if isinstance(node, p.GroupAggregate):
        return _estimate_group(node, store)
    if isinstance(node, p.Limit):
        child = estimate_rows(node.child, store)
        if child is None:
            return None
        return min(child, float(node.count))
    if isinstance(node, (p.Project, p.Sort, p.TableUDF)):
        return estimate_rows(node.child, store)
    return None


def _estimate_join(node: p.Join, store: StatsStore) -> float | None:
    left = estimate_rows(node.left, store)
    right = estimate_rows(node.right, store)
    if left is None or right is None:
        return None
    est = left * right
    for lkey, rkey in zip(node.left_keys, node.right_keys):
        lstats = _column_stats(node.left, lkey, store)
        rstats = _column_stats(node.right, rkey, store)
        ndv = max(
            lstats.n_distinct if lstats is not None else 0,
            rstats.n_distinct if rstats is not None else 0,
        )
        if ndv > 0:
            est /= ndv
        else:
            # No distinct counts on either key: assume a foreign-key
            # join (the larger side survives).
            est = max(left, right)
            break
    return min(est, left * right)


def _estimate_group(node: p.GroupAggregate,
                    store: StatsStore) -> float | None:
    child = estimate_rows(node.child, store)
    if child is None:
        return None
    if not node.keys:
        return 1.0
    groups = 1.0
    for key in node.keys:
        stats = _column_stats(node.child, key, store)
        if stats is not None and stats.n_distinct > 0:
            groups *= stats.n_distinct
        else:
            groups = child  # unknown key: assume no reduction
            break
    return min(groups, child)


# ---------------------------------------------------------------------------
# predicate selectivity
# ---------------------------------------------------------------------------

def predicate_selectivity(expr: ast.Expr, node: p.PlanNode,
                          store: StatsStore) -> float:
    """Estimated fraction of ``node``'s rows satisfying ``expr``."""
    sel = _selectivity(expr, node, store)
    return min(max(sel, 0.0), 1.0)


def _selectivity(expr: ast.Expr, node: p.PlanNode,
                 store: StatsStore) -> float:
    if isinstance(expr, ast.BinOp):
        if expr.op == "and":
            return (_selectivity(expr.left, node, store)
                    * _selectivity(expr.right, node, store))
        if expr.op == "or":
            left = _selectivity(expr.left, node, store)
            right = _selectivity(expr.right, node, store)
            return left + right - left * right
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            return _comparison_selectivity(expr, node, store)
        return DEFAULT_SELECTIVITY
    if isinstance(expr, ast.UnOp) and expr.op == "not":
        return 1.0 - _selectivity(expr.operand, node, store)
    if isinstance(expr, ast.Between):
        sel = _between_selectivity(expr, node, store)
        return 1.0 - sel if expr.negated else sel
    if isinstance(expr, ast.InList):
        sel = _in_selectivity(expr, node, store)
        return 1.0 - sel if expr.negated else sel
    return DEFAULT_SELECTIVITY


def _comparison_selectivity(expr: ast.BinOp, node: p.PlanNode,
                            store: StatsStore) -> float:
    column, literal, op = _column_vs_literal(expr)
    if column is None:
        return DEFAULT_SELECTIVITY
    stats = _column_stats(node, column, store)
    if stats is None or stats.count == 0:
        return DEFAULT_SELECTIVITY
    nonnull = 1.0 - stats.null_fraction
    if op == "=":
        return nonnull * _eq_fraction(stats, literal)
    if op == "<>":
        return nonnull * (1.0 - _eq_fraction(stats, literal))
    value = _numeric_literal(literal)
    if value is None:
        return DEFAULT_SELECTIVITY
    le = stats.fraction_le(value)
    if le is None:
        return DEFAULT_SELECTIVITY
    # The continuous model does not split < from <= (a single point
    # carries ~1/n_distinct mass, already below histogram resolution).
    if op in ("<", "<="):
        return nonnull * le
    return nonnull * (1.0 - le)


def _between_selectivity(expr: ast.Between, node: p.PlanNode,
                         store: StatsStore) -> float:
    if not isinstance(expr.expr, ast.Col):
        return DEFAULT_SELECTIVITY
    stats = _column_stats(node, expr.expr.name, store)
    low = _numeric_literal(expr.low)
    high = _numeric_literal(expr.high)
    if stats is None or low is None or high is None:
        return DEFAULT_SELECTIVITY
    lo_le = stats.fraction_le(low)
    hi_le = stats.fraction_le(high)
    if lo_le is None or hi_le is None:
        return DEFAULT_SELECTIVITY
    return (1.0 - stats.null_fraction) * max(hi_le - lo_le, 0.0)


def _in_selectivity(expr: ast.InList, node: p.PlanNode,
                    store: StatsStore) -> float:
    if not isinstance(expr.expr, ast.Col):
        return DEFAULT_SELECTIVITY
    stats = _column_stats(node, expr.expr.name, store)
    if stats is None or stats.n_distinct == 0:
        return DEFAULT_SELECTIVITY
    sel = sum(_eq_fraction(stats, item) for item in expr.items)
    return (1.0 - stats.null_fraction) * min(sel, 1.0)


def _eq_fraction(stats: ColumnStats, literal: ast.Expr | None) -> float:
    """Fraction of non-null values equal to ``literal`` under the
    uniform-distinct model; 0 when the literal is provably outside the
    column's range."""
    if stats.n_distinct == 0:
        return 0.0
    value = _numeric_literal(literal)
    if value is not None and stats.bounds is not None \
            and (value < stats.bounds[0] or value > stats.bounds[-1]):
        return 0.0
    return 1.0 / stats.n_distinct


def _column_vs_literal(expr: ast.BinOp
                       ) -> tuple[str | None, ast.Expr | None, str]:
    """Normalize ``col <op> literal`` / ``literal <op> col`` to the
    column-on-the-left form; ``(None, None, op)`` when neither side
    fits."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
               "=": "=", "<>": "<>"}
    if isinstance(expr.left, ast.Col) and _is_literal(expr.right):
        return expr.left.name, expr.right, expr.op
    if isinstance(expr.right, ast.Col) and _is_literal(expr.left):
        return expr.right.name, expr.left, flipped[expr.op]
    return None, None, expr.op


def _is_literal(expr: ast.Expr) -> bool:
    return isinstance(expr, (ast.IntLit, ast.FloatLit, ast.StrLit,
                             ast.DateLit))


def _numeric_literal(expr: ast.Expr | None) -> float | None:
    """The literal in the histogram's float domain (dates become days
    since epoch, matching :func:`repro.stats.store._numeric_view`)."""
    if isinstance(expr, ast.IntLit):
        return float(expr.value)
    if isinstance(expr, ast.FloatLit):
        return float(expr.value)
    if isinstance(expr, ast.DateLit):
        return float(np.datetime64(expr.value, "D").astype(np.int64))
    return None


# ---------------------------------------------------------------------------
# column resolution
# ---------------------------------------------------------------------------

def _column_stats(node: p.PlanNode, name: str,
                  store: StatsStore) -> ColumnStats | None:
    """Chase ``name`` down the plan to the base-table column that
    produces it (through filters, sorts, joins, and ``Col``
    pass-through projections)."""
    if isinstance(node, p.Scan):
        stats = store.table(node.table)
        return stats.column(name) if stats is not None else None
    if isinstance(node, (p.Filter, p.Sort, p.Limit)):
        return _column_stats(node.child, name, store)
    if isinstance(node, p.Project):
        for out_name, expr in node.items:
            if out_name == name:
                if isinstance(expr, ast.Col):
                    return _column_stats(node.child, expr.name, store)
                return None
        return None
    if isinstance(node, p.Join):
        if name in node.left.output_names():
            return _column_stats(node.left, name, store)
        if name in node.right.output_names():
            return _column_stats(node.right, name, store)
        return None
    if isinstance(node, p.GroupAggregate):
        if name in node.keys:
            return _column_stats(node.child, name, store)
        return None
    return None

"""``repro.stats`` — table statistics and cardinality estimation.

Two halves (see ``docs/statistics.md``):

* :mod:`repro.stats.store` — the ``ANALYZE`` side: per-column row
  counts, min/max, null fractions, exact distinct counts and
  equi-depth histograms collected into a per-session
  :class:`StatsStore` whose fingerprint feeds the plan-cache key;
* :mod:`repro.stats.estimate` — the estimator: annotates every plan
  node with ``est_rows`` from histogram selectivities and distinct
  counts, and exposes :func:`predicate_selectivity` to the
  ``selectivity-reorder`` plan pass.

The package deliberately does not import :mod:`repro.obs` (the
renderer imports :func:`q_error` from here) or the engine; it sees
tables only as duck-typed column containers.
"""

from repro.stats.estimate import (DEFAULT_SELECTIVITY, annotate_plan,
                                  estimate_rows, predicate_selectivity)
from repro.stats.store import (DEFAULT_HISTOGRAM_BUCKETS,
                               MISESTIMATE_THRESHOLD, ColumnStats,
                               StatsStore, TableStats, q_error)

__all__ = [
    "ColumnStats", "TableStats", "StatsStore", "q_error",
    "MISESTIMATE_THRESHOLD", "DEFAULT_HISTOGRAM_BUCKETS",
    "annotate_plan", "estimate_rows", "predicate_selectivity",
    "DEFAULT_SELECTIVITY",
]

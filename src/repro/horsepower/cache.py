"""Prepared-query support: the plan/compilation cache.

The paper's headline economics are "pay COMP once, run the optimized
kernels many times" — but ``HorsePowerSystem.run_sql`` used to re-parse,
re-plan, re-optimize and re-generate kernels on every call.  This module
amortizes that cost across calls, the way HADAD-style systems reuse
previously computed work across hybrid analytics pipelines:

* :class:`PlanCache` — a thread-safe LRU of compiled queries keyed on
  ``(normalized SQL, opt level, backend, catalog fingerprint,
  UDF-registry fingerprint, pipeline fingerprint)``.  Because the
  fingerprints are part of the key, registering a UDF, changing the
  schema, or compiling with a different pass pipeline (``O0``/``O1``/
  ``O2`` preset or a custom ``--passes`` list) makes stale entries
  unreachable; registration additionally clears the cache eagerly.
* :class:`PreparedQuery` — one prepare's outcome: the compiled query plus
  whether this prepare was served from cache (warm) or compiled (cold).
* :class:`CacheStats` — hit/miss/eviction/invalidation counters, surfaced
  by the CLI (``run-sql --cache-stats``) and the benchmark harness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs import MetricsRegistry, global_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.session import CompiledQuery

__all__ = ["CacheStats", "EntryStats", "PlanCache", "PreparedQuery",
           "normalize_sql", "DEFAULT_PLAN_CACHE_SIZE"]

#: Default number of prepared queries retained per session.
DEFAULT_PLAN_CACHE_SIZE = 64

def normalize_sql(sql: str) -> str:
    """Whitespace-insensitive form of a query used as the cache key.

    Deliberately conservative: runs of whitespace *outside string
    literals* collapse to one space and trailing semicolons drop, but
    case and literal contents are preserved — two texts only share a key
    when the parser provably sees the same token stream.  Whitespace
    inside ``'...'`` literals is significant and kept verbatim
    (collapsing it would alias genuinely different queries onto one
    cache entry).
    """
    out: list[str] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            j = i + 1
            while j < n:
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # escaped ''
                        j += 2
                        continue
                    break
                j += 1
            out.append(sql[i:min(j + 1, n)])
            i = j + 1
        elif ch.isspace():
            while i < n and sql[i].isspace():
                i += 1
            out.append(" ")
        else:
            out.append(ch)
            i += 1
    text = "".join(out).strip()
    while text.endswith(";"):
        text = text[:-1].rstrip()
    return text


@dataclass
class EntryStats:
    """Per-entry provenance: how often — and how recently — an entry
    served a hit.  ``last_hit`` is a position in the cache-wide
    monotonic hit sequence (``CacheStats.hit_sequence``), so entries can
    be ordered by recency without wall clocks."""

    hits: int = 0
    last_hit: int = 0


@dataclass
class CacheStats:
    """Observability counters (the cache analog of ``CompileReport``).

    Beyond the aggregate totals, ``entries`` carries per-entry hit
    counts and last-hit sequence numbers for every *live* entry
    (evicted and invalidated entries drop out); ``hit_sequence`` is the
    monotonic counter those ``last_hit`` values index into."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    hit_sequence: int = 0
    entries: dict[tuple, EntryStats] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def record_hit(self, key: tuple) -> None:
        self.hits += 1
        self.hit_sequence += 1
        entry = self.entries.setdefault(key, EntryStats())
        entry.hits += 1
        entry.last_hit = self.hit_sequence

    def summary(self) -> str:
        return (f"hits={self.hits} misses={self.misses} "
                f"evictions={self.evictions} "
                f"invalidations={self.invalidations} "
                f"hit_rate={self.hit_rate:.1%}")

    def to_dict(self) -> dict:
        """JSON-ready form, included in the CLI's ``--metrics-json``
        dump.  Entry keys render as ``sql | opt_level | backend``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_sequence": self.hit_sequence,
            "hit_rate": self.hit_rate,
            "entries": [
                {
                    "key": " | ".join(str(part) for part in key[:3]),
                    "hits": entry.hits,
                    "last_hit": entry.last_hit,
                }
                for key, entry in self.entries.items()
            ],
        }


class PlanCache:
    """Thread-safe LRU cache of compiled queries.

    ``metrics`` names the registry the cache's counters report into —
    the owning session's registry, or the process-global one for caches
    created outside a session."""

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE,
                 metrics: MetricsRegistry | None = None):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got "
                             f"{capacity}")
        if metrics is None:
            metrics = global_metrics()
        self.capacity = capacity
        self._entries: OrderedDict[tuple, "CompiledQuery"] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()
        self._metric_hits = metrics.counter("plan_cache.hits")
        self._metric_misses = metrics.counter("plan_cache.misses")
        self._metric_evictions = metrics.counter("plan_cache.evictions")
        self._metric_invalidations = metrics.counter(
            "plan_cache.invalidations")
        self._metric_insertions = metrics.counter(
            "plan_cache.insertions")

    @staticmethod
    def key(sql: str, opt_level: str, backend: str,
            catalog_fingerprint: tuple,
            udf_fingerprint: tuple,
            pipeline_fingerprint: str | None = None,
            stats_fingerprint: int | None = None) -> tuple:
        """The cache key for one compilation request.

        ``pipeline_fingerprint`` identifies the pass pipeline the
        compilation runs (``"O0"``/``"O1"``/``"O2"`` for presets,
        ``"custom(...)"`` for an explicit pass list); ``None`` derives
        the preset ``opt_level`` implies, so legacy five-argument
        callers keep producing the same key as an explicit default
        compile.

        ``stats_fingerprint`` is the session's statistics generation
        (:meth:`repro.stats.StatsStore.fingerprint`): ``None`` while no
        statistics exist — the legacy key — and a fresh integer after
        every ``ANALYZE``, so plans estimated (or reordered) under old
        statistics never serve a post-ANALYZE session."""
        if pipeline_fingerprint is None:
            pipeline_fingerprint = "O2" if opt_level == "opt" else "O0"
        return (normalize_sql(sql), opt_level, backend,
                catalog_fingerprint, udf_fingerprint,
                pipeline_fingerprint, stats_fingerprint)

    def lookup(self, key: tuple) -> "CompiledQuery | None":
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                self._metric_misses.inc()
                return None
            self._entries.move_to_end(key)
            self.stats.record_hit(key)
            self._metric_hits.inc()
            return entry

    def insert(self, key: tuple, compiled: "CompiledQuery") -> None:
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            self._metric_insertions.inc()
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self.stats.entries.pop(evicted, None)
                self.stats.evictions += 1
                self._metric_evictions.inc()

    def invalidate(self) -> None:
        """Drop every entry (UDF registration, explicit reset)."""
        with self._lock:
            if self._entries:
                self._entries.clear()
                self.stats.entries.clear()
                self.stats.invalidations += 1
                self._metric_invalidations.inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries


@dataclass
class PreparedQuery:
    """The result of ``HorsePowerSystem.prepare``: a compiled query plus
    cache provenance.  ``cached`` is True when this prepare skipped
    parse→plan→optimize→codegen entirely (a warm hit)."""

    query: "CompiledQuery"
    cached: bool
    key: tuple = field(repr=False, default=())

    def run(self, n_threads: int = 1, **kwargs):
        return self.query.run(n_threads=n_threads, **kwargs)

    @property
    def sql(self) -> str:
        return self.query.sql

    @property
    def compile_seconds(self) -> float:
        """Cold compile cost (paid once; zero marginal cost when
        ``cached``)."""
        return self.query.compile_seconds

    @property
    def program(self):
        return self.query.program

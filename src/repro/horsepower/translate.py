"""Merging SQL-derived and MATLAB-derived HorseIR (paper Section 3.3).

The two code paths meet here: the plan translator produces a ``main``
method whose UDF invocations are placeholder method calls, and the MATLAB
frontend produces one HorseIR method per (specialized) MATLAB function.
``build_query_module`` integrates both into a single module — which the
optimizer then inlines and fuses holistically (Section 3.4.2).
"""

from __future__ import annotations

from repro.core import ir
from repro.core import types as ht
from repro.errors import UDFError
from repro.matlang.frontend import matlab_to_module
from repro.sql.plan_to_ir import json_plan_to_method
from repro.sql.udf import UDFRegistry

__all__ = ["build_query_module", "referenced_udfs"]


def build_query_module(plan_json: dict, udfs: UDFRegistry,
                       module_name: str = "Query") -> ir.Module:
    """Translate plan + UDF sources into one merged HorseIR module."""
    module = ir.Module(module_name)
    module.add(json_plan_to_method(plan_json, udfs))
    for udf_name in referenced_udfs(plan_json, udfs):
        udf = udfs.get(udf_name)
        if udf.matlab_source is None:
            raise UDFError(
                f"UDF {udf.name!r} has no MATLAB source; HorsePower "
                f"cannot translate it")
        specs = [_param_spec(t) for t in udf.param_types]
        udf_module = matlab_to_module(udf.matlab_source, specs,
                                      module_name=f"udf_{udf.name}")
        _merge_udf_methods(module, udf_module, udf.name)
    return module


def referenced_udfs(plan_json: dict, udfs: UDFRegistry) -> list[str]:
    """UDF names invoked anywhere in the plan, in first-use order."""
    found: list[str] = []

    def visit_expr(node) -> None:
        if not isinstance(node, dict):
            return
        if node.get("kind") == "call" and udfs.is_udf(node["name"]):
            name = udfs.get(node["name"]).name
            if name not in found:
                found.append(name)
        for value in node.values():
            if isinstance(value, dict):
                visit_expr(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, dict):
                        visit_expr(item)
                    elif isinstance(item, list):
                        for sub in item:
                            visit_expr(sub)

    def visit_node(node: dict) -> None:
        if node["op"] == "table_udf":
            name = udfs.get(node["udf"]).name
            if name not in found:
                found.append(name)
        if "predicate" in node:
            visit_expr(node["predicate"])
        for _, expr in node.get("items", []):
            visit_expr(expr)
        for key in ("child", "left", "right"):
            if key in node:
                visit_node(node[key])

    visit_node(plan_json)
    return found


def _param_spec(type_: ht.HorseType) -> tuple[str, str]:
    # Dates cross the UDF boundary as int64 day counts (see plan_to_ir).
    if type_ == ht.DATE:
        return ("i64", "vector")
    return (type_.kind, "vector")


def _merge_udf_methods(target: ir.Module, source: ir.Module,
                       entry_name: str) -> None:
    """Copy the UDF module's methods into the query module.

    The MATLAB entry function may not share the UDF's registered name;
    it is renamed (the Tamer already names specializations uniquely, so
    helpers copy over as-is)."""
    entry = source.entry
    rename = {entry.name: entry_name}
    for method in source.methods.values():
        new_name = rename.get(method.name, method.name)
        if new_name in target.methods:
            raise UDFError(
                f"method name collision while merging UDF "
                f"{entry_name!r}: {new_name!r}")
        target.add(ir.Method(new_name, method.params, method.ret_type,
                             _rename_calls(method.body, rename)))


def _rename_calls(body: list[ir.Stmt], rename: dict[str, str]) \
        -> list[ir.Stmt]:
    out: list[ir.Stmt] = []
    for stmt in body:
        if isinstance(stmt, ir.Assign):
            out.append(ir.Assign(stmt.target, stmt.type,
                                 _rename_expr_calls(stmt.expr, rename)))
        elif isinstance(stmt, ir.Return):
            out.append(ir.Return(_rename_expr_calls(stmt.expr, rename)))
        elif isinstance(stmt, ir.If):
            out.append(ir.If(_rename_expr_calls(stmt.cond, rename),
                             _rename_calls(stmt.then_body, rename),
                             _rename_calls(stmt.else_body, rename)))
        elif isinstance(stmt, ir.While):
            out.append(ir.While(_rename_expr_calls(stmt.cond, rename),
                                _rename_calls(stmt.body, rename)))
        else:
            out.append(stmt)
    return out


def _rename_expr_calls(expr: ir.Expr, rename: dict[str, str]) -> ir.Expr:
    def visit(node: ir.Expr) -> ir.Expr:
        if isinstance(node, ir.MethodCall) and node.name in rename:
            return ir.MethodCall(rename[node.name], node.args)
        return node
    return ir.map_expr(expr, visit)

"""The HorsePower system facade.

Glues the pipelines of Figure 1 together over one database:

* ``compile_sql`` / ``run_sql`` — SQL (optionally with registered MATLAB
  UDFs) → plan → JSON → HorseIR (+ merged UDF methods) → optimized,
  compiled, executed;
* ``compile_matlab_function`` — standalone MATLAB analytics → HorseIR →
  compiled executable;
* UDF registration carries both the MATLAB source (used here) and an
  optional Python implementation (used by the MonetDB-like baseline), so
  a benchmark registers each UDF once for both systems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import types as ht
from repro.core.compiler import CompiledProgram, compile_module
from repro.core.values import TableValue
from repro.engine.storage import Database
from repro.matlang.frontend import MatlabProgram, compile_matlab
from repro.sql.parser import parse_sql
from repro.sql.plan import plan_to_json
from repro.sql.planner import plan_query
from repro.sql.udf import ScalarUDF, TableUDFDef, UDFRegistry
from repro.horsepower.translate import build_query_module

__all__ = ["HorsePowerSystem", "CompiledQuery"]


@dataclass
class CompiledQuery:
    """A compiled SQL query with its full provenance chain."""

    sql: str
    plan_json: dict
    module_before_opt: object  # ir.Module as built (pre-optimization)
    program: CompiledProgram
    system: "HorsePowerSystem"

    def run(self, n_threads: int = 1, **kwargs) -> TableValue:
        tables = self.system.db.to_table_values()
        return self.program.run(tables, n_threads=n_threads, **kwargs)

    @property
    def compile_seconds(self) -> float:
        """The paper's COMP column: optimize + codegen time."""
        return self.program.report.compile_seconds

    @property
    def kernel_sources(self) -> list[str]:
        return self.program.kernel_sources


class HorsePowerSystem:
    """SQL + MATLAB + SQL-with-MATLAB-UDF execution over HorseIR."""

    def __init__(self, db: Database, udfs: UDFRegistry | None = None):
        self.db = db
        self.udfs = udfs or UDFRegistry()

    # -- UDF registration -------------------------------------------------------

    def register_scalar_udf(self, name: str, matlab_source: str,
                            param_types: list[ht.HorseType],
                            ret_type: ht.HorseType = ht.F64,
                            python_impl=None) -> ScalarUDF:
        udf = ScalarUDF(name, list(param_types), ret_type,
                        matlab_source=matlab_source,
                        python_impl=python_impl)
        self.udfs.register(udf)
        return udf

    def register_table_udf(self, name: str, matlab_source: str,
                           param_types: list[ht.HorseType],
                           output_columns: list[tuple[str, ht.HorseType]],
                           python_impl=None) -> TableUDFDef:
        udf = TableUDFDef(name, list(param_types),
                          list(output_columns),
                          matlab_source=matlab_source,
                          python_impl=python_impl)
        self.udfs.register(udf)
        return udf

    # -- SQL -----------------------------------------------------------------

    def plan_sql(self, sql: str) -> dict:
        """Parse + plan + serialize; the JSON handed to the translator."""
        select = parse_sql(sql)
        plan = plan_query(select, self.db.catalog(), self.udfs)
        return plan_to_json(plan)

    def compile_sql(self, sql: str, opt_level: str = "opt",
                    backend: str = "python") -> CompiledQuery:
        plan_json = self.plan_sql(sql)
        module = build_query_module(plan_json, self.udfs)
        program = compile_module(module, opt_level, backend=backend)
        return CompiledQuery(sql, plan_json, module, program, self)

    def run_sql(self, sql: str, n_threads: int = 1,
                opt_level: str = "opt", backend: str = "python",
                **kwargs) -> TableValue:
        compiled = self.compile_sql(sql, opt_level, backend=backend)
        return compiled.run(n_threads=n_threads, **kwargs)

    # -- standalone MATLAB -------------------------------------------------------

    def compile_matlab_function(self, source: str, param_specs=None,
                                opt_level: str = "opt",
                                backend: str = "python") -> MatlabProgram:
        return compile_matlab(source, param_specs, opt_level=opt_level,
                              backend=backend)

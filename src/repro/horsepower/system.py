"""The HorsePower system facade.

A thin compatibility layer over
:class:`~repro.engine.session.EngineSession`: the facade owns an
*ambient* session (process-global metrics, shared executor pool, the
dynamically resolved ambient tracer), so every historical entry point —
``compile_sql`` / ``run_sql`` for SQL (optionally with registered MATLAB
UDFs), ``compile_matlab_function`` for standalone analytics,
``prepare`` and the plan cache for prepared-query economics — keeps its
exact observable behavior while the actual pipeline (parse → plan →
translate → compile → execute) runs in the session with an explicit
:class:`~repro.core.context.QueryContext`.

Isolated multi-session work (own caches, own pools, own counters)
should construct :class:`~repro.engine.session.EngineSession` directly;
this class remains the one-database, one-process convenience the
benchmarks and the CLI drive.
"""

from __future__ import annotations

from repro.core import types as ht
from repro.engine.session import CompiledQuery, EngineSession
from repro.engine.storage import Database
from repro.horsepower.cache import (
    DEFAULT_PLAN_CACHE_SIZE, CacheStats, PlanCache, PreparedQuery,
)
from repro.matlang.frontend import MatlabProgram
from repro.sql.udf import ScalarUDF, TableUDFDef, UDFRegistry

__all__ = ["HorsePowerSystem", "CompiledQuery", "PreparedQuery"]


class HorsePowerSystem:
    """SQL + MATLAB + SQL-with-MATLAB-UDF execution over HorseIR."""

    def __init__(self, db: Database, udfs: UDFRegistry | None = None,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE):
        self.session = EngineSession.ambient(
            db, udfs=udfs, plan_cache_size=plan_cache_size,
            default_backend="pygen")

    @property
    def db(self) -> Database:
        return self.session.db

    @property
    def udfs(self) -> UDFRegistry:
        return self.session.udfs

    @property
    def plan_cache(self) -> PlanCache:
        return self.session.plan_cache

    @property
    def governor(self):
        """The session's :class:`~repro.engine.governor.QueryGovernor`
        (configure concurrency limits and default timeouts/budgets
        here; per-query limits pass through ``run_sql``)."""
        return self.session.governor

    @property
    def telemetry(self):
        """The session's :class:`~repro.obs.SessionTelemetry` (query
        log, flight recorder, Prometheus endpoint); unconfigured — and
        free — by default."""
        return self.session.telemetry

    def configure_telemetry(self, **kwargs):
        """See :meth:`EngineSession.configure_telemetry` — the CLI's
        ``--query-log`` / ``--slow-query-ms`` / ``--serve-metrics``
        land here."""
        return self.session.configure_telemetry(**kwargs)

    def dump_diagnostics(self, directory) -> str:
        """Write a postmortem diagnostics bundle; see
        :meth:`EngineSession.dump_diagnostics`."""
        return self.session.dump_diagnostics(directory)

    # -- statistics -------------------------------------------------------------

    @property
    def stats(self):
        """The session's :class:`~repro.stats.StatsStore` — empty (and
        free) until :meth:`analyze` runs."""
        return self.session.stats

    def analyze(self, table: str | None = None):
        """Collect table/column statistics (``ANALYZE``); see
        :meth:`EngineSession.analyze`."""
        return self.session.analyze(table)

    # -- UDF registration -------------------------------------------------------

    def register_scalar_udf(self, name: str, matlab_source: str,
                            param_types: list[ht.HorseType],
                            ret_type: ht.HorseType = ht.F64,
                            python_impl=None) -> ScalarUDF:
        return self.session.register_scalar_udf(
            name, matlab_source, param_types, ret_type,
            python_impl=python_impl)

    def register_table_udf(self, name: str, matlab_source: str,
                           param_types: list[ht.HorseType],
                           output_columns: list[tuple[str, ht.HorseType]],
                           python_impl=None) -> TableUDFDef:
        return self.session.register_table_udf(
            name, matlab_source, param_types, output_columns,
            python_impl=python_impl)

    # -- SQL -----------------------------------------------------------------

    def plan_sql(self, sql: str) -> dict:
        """Parse + plan + serialize; the JSON handed to the translator."""
        _, plan_json = self.session.plan_sql(sql)
        return plan_json

    def compile_sql(self, sql: str, opt_level: str = "opt",
                    backend: str = "python", *,
                    pipeline=None, verify_ir: bool = False,
                    dump_ir: str | None = None) -> CompiledQuery:
        return self.session.compile_sql(sql, opt_level, backend=backend,
                                        pipeline=pipeline,
                                        verify_ir=verify_ir,
                                        dump_ir=dump_ir)

    def prepare(self, sql: str, opt_level: str = "opt",
                backend: str = "python",
                use_cache: bool = True, *,
                pipeline=None, verify_ir: bool = False,
                dump_ir: str | None = None) -> PreparedQuery:
        """Fetch (or compile and cache) the prepared form of ``sql``;
        see :meth:`EngineSession.prepare`."""
        return self.session.prepare(sql, opt_level, backend=backend,
                                    use_cache=use_cache,
                                    pipeline=pipeline,
                                    verify_ir=verify_ir,
                                    dump_ir=dump_ir)

    def run_sql(self, sql: str, n_threads: int = 1,
                opt_level: str = "opt", backend: str = "python",
                use_cache: bool = True, **kwargs):
        return self.session.run_sql(sql, n_threads=n_threads,
                                    opt_level=opt_level, backend=backend,
                                    use_cache=use_cache, **kwargs)

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction/invalidation counters for the plan cache."""
        return self.session.cache_stats

    # -- standalone MATLAB -------------------------------------------------------

    def compile_matlab_function(self, source: str, param_specs=None,
                                opt_level: str = "opt",
                                backend: str = "python", *,
                                pipeline=None, verify_ir: bool = False,
                                dump_ir: str | None = None) \
            -> MatlabProgram:
        return self.session.compile_matlab(source, param_specs,
                                           opt_level=opt_level,
                                           backend=backend,
                                           pipeline=pipeline,
                                           verify_ir=verify_ir,
                                           dump_ir=dump_ir)

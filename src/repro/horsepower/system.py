"""The HorsePower system facade.

Glues the pipelines of Figure 1 together over one database:

* ``compile_sql`` / ``run_sql`` — SQL (optionally with registered MATLAB
  UDFs) → plan → JSON → HorseIR (+ merged UDF methods) → optimized,
  compiled, executed;
* ``compile_matlab_function`` — standalone MATLAB analytics → HorseIR →
  compiled executable;
* UDF registration carries both the MATLAB source (used here) and an
  optional Python implementation (used by the MonetDB-like baseline), so
  a benchmark registers each UDF once for both systems;
* ``prepare`` / ``run_sql`` — prepared-query execution through the
  :class:`~repro.horsepower.cache.PlanCache`: repeat queries skip
  parse→plan→optimize→codegen entirely and pay only kernel execution,
  amortizing the paper's COMP cost across calls.  UDF registration
  invalidates the cache; schema changes rotate the cache key.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core import types as ht
from repro.core.compiler import CompiledProgram, compile_module
from repro.core.values import TableValue
from repro.engine.storage import Database
from repro.matlang.frontend import MatlabProgram, compile_matlab
from repro.sql.parser import parse_sql
from repro.sql.plan import plan_to_json
from repro.sql.planner import plan_query
from repro.sql.udf import ScalarUDF, TableUDFDef, UDFRegistry
from repro.horsepower.cache import (
    DEFAULT_PLAN_CACHE_SIZE, CacheStats, PlanCache, PreparedQuery,
)
from repro.horsepower.translate import build_query_module
from repro.obs import get_tracer, global_metrics

__all__ = ["HorsePowerSystem", "CompiledQuery", "PreparedQuery"]

_METRIC_QUERIES = global_metrics().counter("query.count")
_METRIC_QUERY_SECONDS = global_metrics().histogram("query.seconds")


@dataclass
class CompiledQuery:
    """A compiled SQL query with its full provenance chain."""

    sql: str
    plan_json: dict
    module_before_opt: object  # ir.Module as built (pre-optimization)
    program: CompiledProgram
    system: "HorsePowerSystem"

    def run(self, n_threads: int = 1, **kwargs) -> TableValue:
        with get_tracer().span("bind-tables"):
            tables = self.system.db.to_table_values()
        return self.program.run(tables, n_threads=n_threads, **kwargs)

    @property
    def compile_seconds(self) -> float:
        """The paper's COMP column: optimize + codegen time."""
        return self.program.report.compile_seconds

    @property
    def optimize_seconds(self) -> float:
        """The optimizer's share of COMP."""
        return self.program.report.optimize_seconds

    @property
    def codegen_seconds(self) -> float:
        """The code-generation (plus verify/segmentation) share of
        COMP."""
        return self.program.report.codegen_seconds

    @property
    def kernel_sources(self) -> list[str]:
        return self.program.kernel_sources


class HorsePowerSystem:
    """SQL + MATLAB + SQL-with-MATLAB-UDF execution over HorseIR."""

    def __init__(self, db: Database, udfs: UDFRegistry | None = None,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE):
        self.db = db
        self.udfs = udfs or UDFRegistry()
        self.plan_cache = PlanCache(plan_cache_size)

    # -- UDF registration -------------------------------------------------------

    def register_scalar_udf(self, name: str, matlab_source: str,
                            param_types: list[ht.HorseType],
                            ret_type: ht.HorseType = ht.F64,
                            python_impl=None) -> ScalarUDF:
        udf = ScalarUDF(name, list(param_types), ret_type,
                        matlab_source=matlab_source,
                        python_impl=python_impl)
        self.udfs.register(udf)
        self.plan_cache.invalidate()
        return udf

    def register_table_udf(self, name: str, matlab_source: str,
                           param_types: list[ht.HorseType],
                           output_columns: list[tuple[str, ht.HorseType]],
                           python_impl=None) -> TableUDFDef:
        udf = TableUDFDef(name, list(param_types),
                          list(output_columns),
                          matlab_source=matlab_source,
                          python_impl=python_impl)
        self.udfs.register(udf)
        self.plan_cache.invalidate()
        return udf

    # -- SQL -----------------------------------------------------------------

    def plan_sql(self, sql: str) -> dict:
        """Parse + plan + serialize; the JSON handed to the translator."""
        tracer = get_tracer()
        with tracer.span("parse"):
            select = parse_sql(sql)
        with tracer.span("plan"):
            plan = plan_query(select, self.db.catalog(), self.udfs)
            return plan_to_json(plan)

    def compile_sql(self, sql: str, opt_level: str = "opt",
                    backend: str = "python") -> CompiledQuery:
        plan_json = self.plan_sql(sql)
        with get_tracer().span("translate"):
            module = build_query_module(plan_json, self.udfs)
        program = compile_module(module, opt_level, backend=backend)
        return CompiledQuery(sql, plan_json, module, program, self)

    def prepare(self, sql: str, opt_level: str = "opt",
                backend: str = "python",
                use_cache: bool = True) -> PreparedQuery:
        """Fetch (or compile and cache) the prepared form of ``sql``.

        The cache key carries the catalog and UDF-registry fingerprints,
        so a schema change or UDF registration can never serve a stale
        plan.  ``use_cache=False`` bypasses the cache entirely (no
        lookup, no insert, no stats)."""
        tracer = get_tracer()
        with tracer.span("prepare") as span:
            key = self.plan_cache.key(sql, opt_level, backend,
                                      self.db.schema_fingerprint(),
                                      self.udfs.fingerprint())
            if use_cache:
                cached = self.plan_cache.lookup(key)
                if cached is not None:
                    span.set(cached=True)
                    return PreparedQuery(cached, cached=True, key=key)
            compiled = self.compile_sql(sql, opt_level, backend=backend)
            if use_cache:
                self.plan_cache.insert(key, compiled)
            span.set(cached=False)
            return PreparedQuery(compiled, cached=False, key=key)

    def run_sql(self, sql: str, n_threads: int = 1,
                opt_level: str = "opt", backend: str = "python",
                use_cache: bool = True, **kwargs) -> TableValue:
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span("query", system="horsepower", sql=sql,
                         opt_level=opt_level, backend=backend,
                         n_threads=n_threads):
            prepared = self.prepare(sql, opt_level, backend=backend,
                                    use_cache=use_cache)
            result = prepared.run(n_threads=n_threads, **kwargs)
        _METRIC_QUERIES.inc()
        _METRIC_QUERY_SECONDS.observe(time.perf_counter() - start)
        return result

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction/invalidation counters for the plan cache."""
        return self.plan_cache.stats

    # -- standalone MATLAB -------------------------------------------------------

    def compile_matlab_function(self, source: str, param_specs=None,
                                opt_level: str = "opt",
                                backend: str = "python") -> MatlabProgram:
        return compile_matlab(source, param_specs, opt_level=opt_level,
                              backend=backend)

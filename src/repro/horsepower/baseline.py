"""The MonetDB-like comparison system.

Identical SQL surface to :class:`HorsePowerSystem` — same parser, same
planner, same plans — but executed by the interpreting column-store
engine with black-box Python UDFs (Section 2.3's architecture).  The pair
of facades is what the Table 2 / Table 4 benchmarks drive.
"""

from __future__ import annotations

import time

from repro.engine.executor import PlanExecutor
from repro.engine.storage import Database
from repro.engine.table import ColumnTable
from repro.obs import get_tracer, global_metrics
from repro.sql.parser import parse_sql
from repro.sql.planner import plan_query
from repro.sql.udf import UDFRegistry

__all__ = ["MonetDBLike"]

_METRIC_QUERIES = global_metrics().counter("baseline.query.count")
_METRIC_QUERY_SECONDS = global_metrics().histogram(
    "baseline.query.seconds")


class MonetDBLike:
    """Column-store DBS with embedded Python UDFs (the baseline)."""

    def __init__(self, db: Database, udfs: UDFRegistry | None = None):
        self.db = db
        self.udfs = udfs or UDFRegistry()
        self.executor = PlanExecutor(db, self.udfs)

    @property
    def bridge(self):
        """The UDF conversion boundary (exposes conversion counters)."""
        return self.executor.bridge

    def plan_sql(self, sql: str):
        tracer = get_tracer()
        with tracer.span("parse"):
            select = parse_sql(sql)
        with tracer.span("plan"):
            return plan_query(select, self.db.catalog(), self.udfs)

    def run_sql(self, sql: str, n_threads: int = 1) -> ColumnTable:
        """Plan and execute, traced the same way as
        :meth:`HorsePowerSystem.run_sql` (one ``query`` root with
        ``parse``/``plan``/``execute`` children) so naive-vs-opt traces
        line up side by side in Perfetto."""
        start = time.perf_counter()
        with get_tracer().span("query", system="monetdb", sql=sql,
                               n_threads=n_threads):
            plan = self.plan_sql(sql)
            result = self.executor.execute(plan, n_threads=n_threads)
        _METRIC_QUERIES.inc()
        _METRIC_QUERY_SECONDS.observe(time.perf_counter() - start)
        return result

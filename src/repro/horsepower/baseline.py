"""The MonetDB-like comparison system.

Identical SQL surface to :class:`HorsePowerSystem` — same parser, same
planner, same plans — but executed by the interpreting column-store
engine with black-box Python UDFs (Section 2.3's architecture).  The pair
of facades is what the Table 2 / Table 4 benchmarks drive.

Like :class:`HorsePowerSystem`, this is a compatibility facade over an
ambient :class:`~repro.engine.session.EngineSession`; the plan executor
is the session's ``baseline_executor()`` (also reachable through the
session's backend registry as the ``baseline`` backend), so its
UDF-bridge conversion counters accumulate across queries exactly as
before.
"""

from __future__ import annotations

import time

from repro.engine.executor import PlanExecutor
from repro.engine.session import EngineSession
from repro.engine.storage import Database
from repro.engine.table import ColumnTable
from repro.sql.parser import parse_sql
from repro.sql.planner import plan_query
from repro.sql.udf import UDFRegistry

__all__ = ["MonetDBLike"]


class MonetDBLike:
    """Column-store DBS with embedded Python UDFs (the baseline)."""

    def __init__(self, db: Database, udfs: UDFRegistry | None = None):
        self.session = EngineSession.ambient(
            db, udfs=udfs, default_backend="baseline")
        self.executor: PlanExecutor = self.session.baseline_executor()
        self._metric_queries = self.session.metrics.counter(
            "baseline.query.count")
        self._metric_query_seconds = self.session.metrics.histogram(
            "baseline.query.seconds")

    @property
    def db(self) -> Database:
        return self.session.db

    @property
    def udfs(self) -> UDFRegistry:
        return self.session.udfs

    @property
    def bridge(self):
        """The UDF conversion boundary (exposes conversion counters)."""
        return self.executor.bridge

    @property
    def stats(self):
        """The session's :class:`~repro.stats.StatsStore`."""
        return self.session.stats

    def analyze(self, table: str | None = None):
        """Collect table/column statistics (``ANALYZE``); see
        :meth:`EngineSession.analyze`.  Planned operators get
        ``est_rows`` annotations the executor reports est-vs-actual
        against."""
        return self.session.analyze(table)

    def plan_sql(self, sql: str):
        tracer = self.session.tracer
        stats = self.session.stats
        with tracer.span("parse"):
            select = parse_sql(sql)
        with tracer.span("plan"):
            return plan_query(select, self.db.catalog(), self.udfs,
                              table_stats=stats
                              if stats.enabled else None)

    def run_sql(self, sql: str, n_threads: int = 1) -> ColumnTable:
        """Plan and execute, traced the same way as
        :meth:`HorsePowerSystem.run_sql` (one ``query`` root with
        ``parse``/``plan``/``execute`` children) so naive-vs-opt traces
        line up side by side in Perfetto."""
        ctx = self.session.context()
        start = time.perf_counter()
        with ctx.tracer.span("query", system="monetdb", sql=sql,
                             n_threads=n_threads):
            plan = self.plan_sql(sql)
            result = self.executor.execute(plan, n_threads=n_threads,
                                           ctx=ctx)
        self._metric_queries.inc()
        self._metric_query_seconds.observe(time.perf_counter() - start)
        return result

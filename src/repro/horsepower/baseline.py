"""The MonetDB-like comparison system.

Identical SQL surface to :class:`HorsePowerSystem` — same parser, same
planner, same plans — but executed by the interpreting column-store
engine with black-box Python UDFs (Section 2.3's architecture).  The pair
of facades is what the Table 2 / Table 4 benchmarks drive.
"""

from __future__ import annotations

from repro.engine.executor import PlanExecutor
from repro.engine.storage import Database
from repro.engine.table import ColumnTable
from repro.sql.parser import parse_sql
from repro.sql.planner import plan_query
from repro.sql.udf import UDFRegistry

__all__ = ["MonetDBLike"]


class MonetDBLike:
    """Column-store DBS with embedded Python UDFs (the baseline)."""

    def __init__(self, db: Database, udfs: UDFRegistry | None = None):
        self.db = db
        self.udfs = udfs or UDFRegistry()
        self.executor = PlanExecutor(db, self.udfs)

    @property
    def bridge(self):
        """The UDF conversion boundary (exposes conversion counters)."""
        return self.executor.bridge

    def plan_sql(self, sql: str):
        select = parse_sql(sql)
        return plan_query(select, self.db.catalog(), self.udfs)

    def run_sql(self, sql: str, n_threads: int = 1) -> ColumnTable:
        plan = self.plan_sql(sql)
        return self.executor.execute(plan, n_threads=n_threads)

"""HorsePower: the top-level system facades.

* :class:`~repro.horsepower.system.HorsePowerSystem` — the paper's system:
  SQL, MATLAB, and SQL+MATLAB-UDF inputs, one HorseIR module, holistic
  optimization, compiled execution;
* :class:`~repro.horsepower.baseline.MonetDBLike` — the comparison system:
  the same SQL planner, interpreted plan execution, black-box Python UDFs.
"""

from repro.horsepower.baseline import MonetDBLike  # noqa: F401
from repro.horsepower.cache import (  # noqa: F401
    CacheStats, PlanCache, PreparedQuery,
)
from repro.horsepower.system import CompiledQuery, HorsePowerSystem  # noqa: F401

__all__ = ["HorsePowerSystem", "MonetDBLike", "CompiledQuery",
           "PreparedQuery", "PlanCache", "CacheStats"]

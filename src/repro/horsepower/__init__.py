"""HorsePower: the top-level system facades.

* :class:`~repro.horsepower.system.HorsePowerSystem` — the paper's system:
  SQL, MATLAB, and SQL+MATLAB-UDF inputs, one HorseIR module, holistic
  optimization, compiled execution;
* :class:`~repro.horsepower.baseline.MonetDBLike` — the comparison system:
  the same SQL planner, interpreted plan execution, black-box Python UDFs.

Both are thin compatibility facades over
:class:`~repro.engine.session.EngineSession`.  Exports resolve lazily
(PEP 562): :mod:`repro.engine.session` imports the cache submodule here,
and the facades import the session back — eager facade imports in this
``__init__`` would turn that into a circular-import failure.
"""

import importlib

__all__ = ["HorsePowerSystem", "MonetDBLike", "CompiledQuery",
           "PreparedQuery", "PlanCache", "CacheStats"]

_EXPORTS = {
    "HorsePowerSystem": "system",
    "CompiledQuery": "system",
    "MonetDBLike": "baseline",
    "PreparedQuery": "cache",
    "PlanCache": "cache",
    "CacheStats": "cache",
}


def __getattr__(name):
    try:
        submodule = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    module = importlib.import_module(f"{__name__}.{submodule}")
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))

"""HorsePower reproduction — a unified array-IR execution environment for
SQL, MATLAB-style analytics, and SQL queries with MATLAB UDFs.

Reproduces Chen, D'silva, Hendren & Kemme, *Accelerating Database Queries
for Advanced Data Analytics: A New Approach* (HorsePower), EDBT 2021.

Quick tour of the public API::

    from repro import Database, HorsePowerSystem, MonetDBLike

    db = Database()
    db.create_table("t", {"x": some_numpy_array})

    hp = HorsePowerSystem(db)            # the paper's system
    result = hp.run_sql("SELECT SUM(x) AS s FROM t")

    mdb = MonetDBLike(db, hp.udfs)       # the baseline it is compared to
    baseline = mdb.run_sql("SELECT SUM(x) AS s FROM t")

    program = hp.compile_matlab_function(matlab_source)   # MATLAB path
    answer = program(numpy_inputs)

Subpackages: :mod:`repro.core` (HorseIR + compiler), :mod:`repro.sql`
(frontend/planner), :mod:`repro.matlang` (MATLAB-subset frontend),
:mod:`repro.engine` (column-store baseline), :mod:`repro.horsepower`
(system facades), :mod:`repro.data` / :mod:`repro.workloads` (benchmark
inputs).
"""

from repro.engine.storage import Database  # noqa: F401
from repro.engine.table import ColumnTable  # noqa: F401
from repro.horsepower import (  # noqa: F401
    CompiledQuery, HorsePowerSystem, MonetDBLike,
)
from repro.matlang import compile_matlab, matlab_to_module  # noqa: F401
from repro.sql.udf import ScalarUDF, TableUDFDef, UDFRegistry  # noqa: F401

__version__ = "1.0.0"

__all__ = [
    "Database", "ColumnTable", "HorsePowerSystem", "MonetDBLike",
    "CompiledQuery", "compile_matlab", "matlab_to_module",
    "ScalarUDF", "TableUDFDef", "UDFRegistry", "__version__",
]

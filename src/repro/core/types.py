"""The HorseIR type system.

HorseIR is an array-based IR: every value is a vector (a typed, ordered,
homogeneous collection), a list of values, a table (named columns), or a
dictionary-like pairing produced by grouping.  Scalars are represented as
vectors of length one, exactly as in the paper's examples (``0.05:f64``).

The concrete types supported here are the subset the paper exercises:

* ``bool`` — boolean vectors (predicates, compress masks)
* ``i8``/``i16``/``i32``/``i64`` — signed integers
* ``f32``/``f64`` — IEEE floats
* ``sym`` — interned symbols (```lineitem:sym``), used for names
* ``str`` — character strings (database VARCHAR/CHAR columns)
* ``date`` — calendar dates with day resolution
* ``list<T>`` — a list whose items are values of type ``T`` (or mixed when
  ``T`` is the wildcard)
* ``table`` — a collection of named, equal-length columns
* ``?`` — the wildcard/unknown type, used before inference completes

Types are interned: :func:`make_type` returns the same object for the same
spelling, so identity comparison is safe and cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HorseTypeError

__all__ = [
    "HorseType",
    "BOOL", "I8", "I16", "I32", "I64", "F32", "F64",
    "SYM", "STR", "DATE", "TABLE", "WILDCARD",
    "list_of", "make_type", "parse_type",
    "is_numeric", "is_integer", "is_float", "is_comparable",
    "unify", "promote", "numpy_dtype", "type_of_dtype",
]


@dataclass(frozen=True)
class HorseType:
    """An interned HorseIR type.

    ``kind`` is the base spelling (``"f64"``, ``"list"``, ...).  For list
    types, ``element`` holds the element type; it is ``None`` otherwise.
    """

    kind: str
    element: "HorseType | None" = None

    def __str__(self) -> str:
        if self.kind == "list":
            return f"list<{self.element}>"
        if self.kind == "?":
            return "unknown"  # printable/parsable spelling of the wildcard
        return self.kind

    def __repr__(self) -> str:
        return f"HorseType({self})"

    @property
    def is_list(self) -> bool:
        return self.kind == "list"

    @property
    def is_table(self) -> bool:
        return self.kind == "table"

    @property
    def is_wildcard(self) -> bool:
        return self.kind == "?"


BOOL = HorseType("bool")
I8 = HorseType("i8")
I16 = HorseType("i16")
I32 = HorseType("i32")
I64 = HorseType("i64")
F32 = HorseType("f32")
F64 = HorseType("f64")
SYM = HorseType("sym")
STR = HorseType("str")
DATE = HorseType("date")
TABLE = HorseType("table")
WILDCARD = HorseType("?")

_SCALAR_TYPES = {
    t.kind: t
    for t in (BOOL, I8, I16, I32, I64, F32, F64, SYM, STR, DATE, TABLE,
              WILDCARD)
}

_LIST_CACHE: dict[HorseType, HorseType] = {}

_INTEGER_KINDS = ("i8", "i16", "i32", "i64")
_FLOAT_KINDS = ("f32", "f64")
_NUMERIC_ORDER = ("bool", "i8", "i16", "i32", "i64", "f32", "f64")


def list_of(element: HorseType) -> HorseType:
    """Return the interned ``list<element>`` type."""
    cached = _LIST_CACHE.get(element)
    if cached is None:
        cached = HorseType("list", element)
        _LIST_CACHE[element] = cached
    return cached


def make_type(kind: str, element: HorseType | None = None) -> HorseType:
    """Return the interned type for ``kind`` (and ``element`` for lists)."""
    if kind == "list":
        return list_of(element if element is not None else WILDCARD)
    try:
        return _SCALAR_TYPES[kind]
    except KeyError:
        raise HorseTypeError(f"unknown HorseIR type {kind!r}") from None


def parse_type(text: str) -> HorseType:
    """Parse a type spelling such as ``"f64"`` or ``"list<f64>"``."""
    text = text.strip()
    if text.startswith("list<") and text.endswith(">"):
        return list_of(parse_type(text[len("list<"):-1]))
    return make_type(text)


def is_integer(t: HorseType) -> bool:
    return t.kind in _INTEGER_KINDS


def is_float(t: HorseType) -> bool:
    return t.kind in _FLOAT_KINDS


def is_numeric(t: HorseType) -> bool:
    """True for types arithmetic operates on (bool promotes like 0/1)."""
    return t.kind in _NUMERIC_ORDER


def is_comparable(t: HorseType) -> bool:
    """True for types that support ordering comparisons."""
    return is_numeric(t) or t.kind in ("date", "str", "sym")


def promote(a: HorseType, b: HorseType) -> HorseType:
    """Numeric promotion: the wider of the two numeric types.

    Mirrors the paper's implicit widening (``i64 * f64 -> f64``).  Raises
    :class:`HorseTypeError` for non-numeric operands.
    """
    if not (is_numeric(a) and is_numeric(b)):
        raise HorseTypeError(f"cannot promote {a} and {b}")
    index = max(_NUMERIC_ORDER.index(a.kind), _NUMERIC_ORDER.index(b.kind))
    return _SCALAR_TYPES[_NUMERIC_ORDER[index]]


def unify(a: HorseType, b: HorseType) -> HorseType:
    """Unify two types, treating the wildcard as compatible with anything."""
    if a.is_wildcard:
        return b
    if b.is_wildcard:
        return a
    if a == b:
        return a
    if a.is_list and b.is_list:
        return list_of(unify(a.element, b.element))
    if is_numeric(a) and is_numeric(b):
        return promote(a, b)
    raise HorseTypeError(f"cannot unify {a} and {b}")


_NUMPY_DTYPES = {
    "bool": np.dtype(np.bool_),
    "i8": np.dtype(np.int8),
    "i16": np.dtype(np.int16),
    "i32": np.dtype(np.int32),
    "i64": np.dtype(np.int64),
    "f32": np.dtype(np.float32),
    "f64": np.dtype(np.float64),
    "date": np.dtype("datetime64[D]"),
    # Symbols and strings are stored as object arrays: TPC-H strings are
    # variable length and an object array matches what a DBS hands to a
    # Python UDF (and what the conversion-cost model in the engine assumes).
    "sym": np.dtype(object),
    "str": np.dtype(object),
}


def numpy_dtype(t: HorseType) -> np.dtype:
    """The NumPy dtype backing vectors of HorseIR type ``t``."""
    try:
        return _NUMPY_DTYPES[t.kind]
    except KeyError:
        raise HorseTypeError(f"type {t} has no vector representation") from None


def type_of_dtype(dtype: np.dtype, *, symbolic: bool = False) -> HorseType:
    """Infer the HorseIR type of a NumPy dtype.

    ``symbolic`` selects ``sym`` over ``str`` for object arrays.
    """
    if dtype == np.bool_:
        return BOOL
    if dtype.kind == "i":
        return {1: I8, 2: I16, 4: I32, 8: I64}[dtype.itemsize]
    if dtype.kind == "f":
        return {4: F32, 8: F64}[dtype.itemsize]
    if dtype.kind == "M":
        return DATE
    if dtype.kind in ("O", "U", "S"):
        return SYM if symbolic else STR
    raise HorseTypeError(f"no HorseIR type for dtype {dtype}")

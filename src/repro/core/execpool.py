"""Process-level shared thread pool for chunked kernel execution.

Before this module existed every ``CompiledProgram.run`` built a fresh
``ThreadPoolExecutor`` and tore it down with ``shutdown(wait=False)`` —
repeated executions paid pool construction on the hot path and leaked
in-flight worker threads whenever a kernel raised mid-run.  The
:class:`ExecutorPool` owns one long-lived executor per process, lazily
created at first parallel run, grown on demand, and shut down with
``wait=True`` at interpreter exit (or an explicit ``close()``).

All users of chunked parallelism share it: the compiled-program runtime
(:mod:`repro.core.compiler`), the fused-kernel executor
(:mod:`repro.core.codegen.executor`), the baseline plan executor
(:mod:`repro.engine.executor`) and the benchmark harness.  Work is always
submitted synchronously (``pool.map`` from the caller's thread; chunk
functions never re-submit), so sharing cannot deadlock.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

__all__ = ["ExecutorPool", "PoolStats", "shared_pool", "get_pool",
           "close_shared_pool"]


@dataclass
class PoolStats:
    """Observability counters for a pool's lifecycle."""

    acquisitions: int = 0
    pools_created: int = 0
    max_workers_seen: int = 0


class ExecutorPool:
    """A lazily-created, growable, cleanly-closed thread pool.

    ``get(n_threads)`` returns a ``ThreadPoolExecutor`` with at least
    ``n_threads`` workers, creating or growing the underlying executor as
    needed.  The first creation sizes the pool to
    ``max(n_threads, os.cpu_count())`` so later, larger requests rarely
    force a re-build.  ``close(wait=True)`` joins every worker — the
    context-manager form does the same on exit.
    """

    def __init__(self, max_workers: int | None = None):
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._workers = 0
        self._cap = max_workers
        self._closed = False
        self.stats = PoolStats()

    def get(self, n_threads: int) -> ThreadPoolExecutor:
        """An executor with at least ``n_threads`` workers."""
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        with self._lock:
            if self._closed:
                raise RuntimeError("ExecutorPool is closed")
            self.stats.acquisitions += 1
            if self._pool is None or self._workers < n_threads:
                want = max(n_threads, os.cpu_count() or 1)
                if self._cap is not None:
                    want = min(max(want, 1), max(self._cap, n_threads))
                old = self._pool
                self._pool = ThreadPoolExecutor(
                    max_workers=want,
                    thread_name_prefix="repro-exec")
                self._workers = want
                self.stats.pools_created += 1
                self.stats.max_workers_seen = max(
                    self.stats.max_workers_seen, want)
                if old is not None:
                    # All submission is synchronous map() from caller
                    # threads, so nothing is in flight here; joining is
                    # instant and leaks no threads.
                    old.shutdown(wait=True)
            return self._pool

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, wait: bool = True) -> None:
        """Shut the pool down, joining workers by default."""
        with self._lock:
            self._closed = True
            pool, self._pool, self._workers = self._pool, None, 0
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close(wait=True)


_shared: ExecutorPool | None = None
_shared_lock = threading.Lock()


def shared_pool() -> ExecutorPool:
    """The process-wide pool, created on first use."""
    global _shared
    with _shared_lock:
        if _shared is None or _shared.closed:
            _shared = ExecutorPool()
            atexit.register(_shared.close)
        return _shared


def get_pool(n_threads: int) -> ThreadPoolExecutor | None:
    """Convenience: a shared executor for parallel runs, or ``None``
    when ``n_threads`` does not ask for parallelism."""
    if n_threads <= 1:
        return None
    return shared_pool().get(n_threads)


def close_shared_pool(wait: bool = True) -> None:
    """Tear down the process-wide pool (mainly for tests)."""
    global _shared
    with _shared_lock:
        pool, _shared = _shared, None
    if pool is not None:
        pool.close(wait=wait)

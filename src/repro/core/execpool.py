"""Reusable thread pools for chunked kernel execution.

Before this module existed every ``CompiledProgram.run`` built a fresh
``ThreadPoolExecutor`` and tore it down with ``shutdown(wait=False)`` —
repeated executions paid pool construction on the hot path and leaked
in-flight worker threads whenever a kernel raised mid-run.  An
:class:`ExecutorPool` owns one long-lived executor, lazily created at
first parallel run, grown on demand, and shut down with ``wait=True``
(``close()`` is idempotent, so a pool with several owners — a session,
a test fixture, the interpreter-exit hook — can be closed by each of
them safely).

Pools are **instances**, not process state: every
:class:`~repro.engine.EngineSession` owns one, sized and closed with the
session, reporting into the session's own metrics registry.  The
module-level :func:`shared_pool` / :func:`get_pool` pair remains as the
ambient fallback for code that runs outside any session (it reports into
the process-global registry and is joined at interpreter exit).

All users of chunked parallelism submit work synchronously (``pool.map``
from the caller's thread; chunk functions never re-submit), so sharing a
pool between the compiled-program runtime, the fused-kernel executor and
the baseline plan executor cannot deadlock.
"""

from __future__ import annotations

import atexit
import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.obs import MetricsRegistry, global_metrics

__all__ = ["ExecutorPool", "PoolStats", "InstrumentedExecutor",
           "shared_pool", "get_pool", "close_shared_pool"]

_log = logging.getLogger("repro.obs.execpool")

#: A task waiting longer than this for a worker indicates pool
#: starvation; logged (once per pool) as a warning.
_WAIT_WARN_SECONDS = 0.1


@dataclass
class PoolStats:
    """Observability counters for a pool's lifecycle."""

    acquisitions: int = 0
    pools_created: int = 0
    max_workers_seen: int = 0


class _PoolTelemetry:
    """Per-pool instrumentation state: the metric instruments plus the
    live concurrency counter and the once-per-pool starvation flag.
    Owned by an :class:`ExecutorPool`; shared by the
    :class:`InstrumentedExecutor` proxies it hands out."""

    __slots__ = ("size", "peak_tasks", "submitted", "completed",
                 "task_seconds", "wait_warnings", "oversubscribed",
                 "lock", "concurrent_tasks", "wait_warned")

    def __init__(self, metrics: MetricsRegistry):
        self.size = metrics.gauge("pool.size")
        self.peak_tasks = metrics.gauge("pool.peak_concurrent_tasks")
        self.submitted = metrics.counter("pool.tasks_submitted")
        self.completed = metrics.counter("pool.tasks_completed")
        self.task_seconds = metrics.counter("pool.task_seconds_total")
        self.wait_warnings = metrics.counter("pool.wait_warnings")
        self.oversubscribed = metrics.counter("pool.oversubscribed")
        self.lock = threading.Lock()
        self.concurrent_tasks = 0
        self.wait_warned = False


class InstrumentedExecutor:
    """A thin ``ThreadPoolExecutor`` wrapper reporting per-task metrics.

    Tracks tasks submitted/completed, total task wall time, and the peak
    number of concurrently executing tasks in the owning pool's metrics
    registry, and warns (once per pool) when a task waited more than
    100 ms for a free worker — the signal that the pool is undersized
    for the load.  Everything else (``shutdown``, ``_shutdown``
    introspection, ...) delegates to the wrapped executor.
    """

    __slots__ = ("_inner", "_telemetry")

    def __init__(self, inner: ThreadPoolExecutor,
                 telemetry: _PoolTelemetry):
        self._inner = inner
        self._telemetry = telemetry

    def _wrap(self, fn, submitted_at: float):
        telemetry = self._telemetry

        def task(*args, **kwargs):
            start = time.perf_counter()
            wait = start - submitted_at
            if wait > _WAIT_WARN_SECONDS:
                telemetry.wait_warnings.inc()
                if not telemetry.wait_warned:
                    telemetry.wait_warned = True
                    _log.warning(
                        "executor-pool task waited %.0f ms for a worker "
                        "(pool size %d); the pool is saturated "
                        "(warning logged once per pool)",
                        wait * 1000.0, telemetry.size.value)
            with telemetry.lock:
                telemetry.concurrent_tasks += 1
                telemetry.peak_tasks.set_max(telemetry.concurrent_tasks)
            try:
                return fn(*args, **kwargs)
            finally:
                with telemetry.lock:
                    telemetry.concurrent_tasks -= 1
                telemetry.completed.inc()
                telemetry.task_seconds.inc(time.perf_counter() - start)
        return task

    def map(self, fn, *iterables, **kwargs):
        iterables = [list(iterable) for iterable in iterables]
        self._telemetry.submitted.inc(min((len(it) for it in iterables),
                                          default=0))
        return self._inner.map(self._wrap(fn, time.perf_counter()),
                               *iterables, **kwargs)

    def submit(self, fn, *args, **kwargs):
        self._telemetry.submitted.inc()
        return self._inner.submit(self._wrap(fn, time.perf_counter()),
                                  *args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class ExecutorPool:
    """A lazily-created, growable, cleanly-closed thread pool.

    ``get(n_threads)`` returns a ``ThreadPoolExecutor`` with at least
    ``n_threads`` workers, creating or growing the underlying executor as
    needed.  The first creation sizes the pool to
    ``max(n_threads, os.cpu_count())`` so later, larger requests rarely
    force a re-build.  ``close(wait=True)`` joins every worker and is
    idempotent — a second close (from another owner, a context-manager
    exit, or the interpreter-exit hook) is a no-op rather than an error.
    The context-manager form closes on exit.

    ``metrics`` names the registry task telemetry reports into; it
    defaults to the process-global registry, while session-owned pools
    pass the session's registry so per-session pool metrics never bleed
    across sessions.
    """

    def __init__(self, max_workers: int | None = None,
                 metrics: MetricsRegistry | None = None):
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._proxy: InstrumentedExecutor | None = None
        self._workers = 0
        self._cap = max_workers
        self._closed = False
        self._telemetry = _PoolTelemetry(
            metrics if metrics is not None else global_metrics())
        self.stats = PoolStats()

    def get(self, n_threads: int) -> InstrumentedExecutor:
        """An executor with at least ``min(n_threads, max_workers)``
        workers.  ``max_workers`` is a hard cap: a request beyond it is
        clamped (the caller's chunks share the capped workers) and
        counted in ``pool.oversubscribed`` — the old behavior of quietly
        growing past the cap defeated the point of sizing a session's
        pool."""
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        with self._lock:
            if self._closed:
                raise RuntimeError("ExecutorPool is closed")
            self.stats.acquisitions += 1
            want = max(n_threads, os.cpu_count() or 1)
            if self._cap is not None:
                cap = max(self._cap, 1)
                if n_threads > cap:
                    self._telemetry.oversubscribed.inc()
                want = min(want, cap)
            if self._pool is None or self._workers < want:
                old = self._pool
                self._pool = ThreadPoolExecutor(
                    max_workers=want,
                    thread_name_prefix="repro-exec")
                self._proxy = InstrumentedExecutor(self._pool,
                                                   self._telemetry)
                self._workers = want
                self.stats.pools_created += 1
                self.stats.max_workers_seen = max(
                    self.stats.max_workers_seen, want)
                self._telemetry.size.set(want)
                if old is not None:
                    # All submission is synchronous map() from caller
                    # threads, so nothing is in flight here; joining is
                    # instant and leaks no threads.
                    old.shutdown(wait=True)
            return self._proxy

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, wait: bool = True) -> None:
        """Shut the pool down, joining workers by default.  Safe to call
        any number of times, from any owner."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool, self._workers = self._pool, None, 0
            self._proxy = None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close(wait=True)


#: The ambient (process-shared) pool for code running outside a session.
#: Deliberate module state, allowlisted by the no-globals guard test; new
#: module-level mutable state must not be added here.
_shared: ExecutorPool | None = None
_shared_lock = threading.Lock()


def shared_pool() -> ExecutorPool:
    """The process-wide pool, created on first use."""
    global _shared
    with _shared_lock:
        if _shared is None or _shared.closed:
            _shared = ExecutorPool()
        return _shared


def get_pool(n_threads: int) -> InstrumentedExecutor | None:
    """Convenience: a shared executor for parallel runs, or ``None``
    when ``n_threads`` does not ask for parallelism."""
    if n_threads <= 1:
        return None
    return shared_pool().get(n_threads)


def close_shared_pool(wait: bool = True) -> None:
    """Tear down the process-wide pool (mainly for tests)."""
    global _shared
    with _shared_lock:
        pool, _shared = _shared, None
    if pool is not None:
        pool.close(wait=wait)


#: One interpreter-exit hook for the lifetime of the process.  The old
#: code registered ``_shared.close`` on every re-creation, stacking a
#: stale callback per shared-pool cycle; closing here is idempotent and
#: always targets the current pool.
atexit.register(close_shared_pool)

"""Process-level shared thread pool for chunked kernel execution.

Before this module existed every ``CompiledProgram.run`` built a fresh
``ThreadPoolExecutor`` and tore it down with ``shutdown(wait=False)`` —
repeated executions paid pool construction on the hot path and leaked
in-flight worker threads whenever a kernel raised mid-run.  The
:class:`ExecutorPool` owns one long-lived executor per process, lazily
created at first parallel run, grown on demand, and shut down with
``wait=True`` at interpreter exit (or an explicit ``close()``).

All users of chunked parallelism share it: the compiled-program runtime
(:mod:`repro.core.compiler`), the fused-kernel executor
(:mod:`repro.core.codegen.executor`), the baseline plan executor
(:mod:`repro.engine.executor`) and the benchmark harness.  Work is always
submitted synchronously (``pool.map`` from the caller's thread; chunk
functions never re-submit), so sharing cannot deadlock.
"""

from __future__ import annotations

import atexit
import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.obs import global_metrics

__all__ = ["ExecutorPool", "PoolStats", "InstrumentedExecutor",
           "shared_pool", "get_pool", "close_shared_pool"]

_log = logging.getLogger("repro.obs.execpool")

_METRIC_POOL_SIZE = global_metrics().gauge("pool.size")
_METRIC_PEAK_TASKS = global_metrics().gauge("pool.peak_concurrent_tasks")
_METRIC_SUBMITTED = global_metrics().counter("pool.tasks_submitted")
_METRIC_COMPLETED = global_metrics().counter("pool.tasks_completed")
_METRIC_TASK_SECONDS = global_metrics().counter(
    "pool.task_seconds_total")
_METRIC_WAIT_WARNINGS = global_metrics().counter("pool.wait_warnings")

#: A task waiting longer than this for a worker indicates pool
#: starvation; logged (once per process) as a warning.
_WAIT_WARN_SECONDS = 0.1

_wait_warned = False
_concurrency_lock = threading.Lock()
_concurrent_tasks = 0


@dataclass
class PoolStats:
    """Observability counters for a pool's lifecycle."""

    acquisitions: int = 0
    pools_created: int = 0
    max_workers_seen: int = 0


class InstrumentedExecutor:
    """A thin ``ThreadPoolExecutor`` wrapper reporting per-task metrics.

    Tracks tasks submitted/completed, total task wall time, and the peak
    number of concurrently executing tasks in the process-global
    :class:`~repro.obs.MetricsRegistry`, and warns (once per process)
    when a task waited more than 100 ms for a free worker — the signal
    that the shared pool is undersized for the load.  Everything else
    (``shutdown``, ``_shutdown`` introspection, ...) delegates to the
    wrapped executor.
    """

    __slots__ = ("_inner",)

    def __init__(self, inner: ThreadPoolExecutor):
        self._inner = inner

    def _wrap(self, fn, submitted_at: float):
        def task(*args, **kwargs):
            global _concurrent_tasks, _wait_warned
            start = time.perf_counter()
            wait = start - submitted_at
            if wait > _WAIT_WARN_SECONDS:
                _METRIC_WAIT_WARNINGS.inc()
                if not _wait_warned:
                    _wait_warned = True
                    _log.warning(
                        "executor-pool task waited %.0f ms for a worker "
                        "(pool size %d); the shared pool is saturated "
                        "(warning logged once per process)",
                        wait * 1000.0, _METRIC_POOL_SIZE.value)
            with _concurrency_lock:
                _concurrent_tasks += 1
                _METRIC_PEAK_TASKS.set_max(_concurrent_tasks)
            try:
                return fn(*args, **kwargs)
            finally:
                with _concurrency_lock:
                    _concurrent_tasks -= 1
                _METRIC_COMPLETED.inc()
                _METRIC_TASK_SECONDS.inc(time.perf_counter() - start)
        return task

    def map(self, fn, *iterables, **kwargs):
        iterables = [list(iterable) for iterable in iterables]
        _METRIC_SUBMITTED.inc(min((len(it) for it in iterables),
                                  default=0))
        return self._inner.map(self._wrap(fn, time.perf_counter()),
                               *iterables, **kwargs)

    def submit(self, fn, *args, **kwargs):
        _METRIC_SUBMITTED.inc()
        return self._inner.submit(self._wrap(fn, time.perf_counter()),
                                  *args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class ExecutorPool:
    """A lazily-created, growable, cleanly-closed thread pool.

    ``get(n_threads)`` returns a ``ThreadPoolExecutor`` with at least
    ``n_threads`` workers, creating or growing the underlying executor as
    needed.  The first creation sizes the pool to
    ``max(n_threads, os.cpu_count())`` so later, larger requests rarely
    force a re-build.  ``close(wait=True)`` joins every worker — the
    context-manager form does the same on exit.
    """

    def __init__(self, max_workers: int | None = None):
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._proxy: InstrumentedExecutor | None = None
        self._workers = 0
        self._cap = max_workers
        self._closed = False
        self.stats = PoolStats()

    def get(self, n_threads: int) -> InstrumentedExecutor:
        """An executor with at least ``n_threads`` workers."""
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        with self._lock:
            if self._closed:
                raise RuntimeError("ExecutorPool is closed")
            self.stats.acquisitions += 1
            if self._pool is None or self._workers < n_threads:
                want = max(n_threads, os.cpu_count() or 1)
                if self._cap is not None:
                    want = min(max(want, 1), max(self._cap, n_threads))
                old = self._pool
                self._pool = ThreadPoolExecutor(
                    max_workers=want,
                    thread_name_prefix="repro-exec")
                self._proxy = InstrumentedExecutor(self._pool)
                self._workers = want
                self.stats.pools_created += 1
                self.stats.max_workers_seen = max(
                    self.stats.max_workers_seen, want)
                _METRIC_POOL_SIZE.set(want)
                if old is not None:
                    # All submission is synchronous map() from caller
                    # threads, so nothing is in flight here; joining is
                    # instant and leaks no threads.
                    old.shutdown(wait=True)
            return self._proxy

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, wait: bool = True) -> None:
        """Shut the pool down, joining workers by default."""
        with self._lock:
            self._closed = True
            pool, self._pool, self._workers = self._pool, None, 0
            self._proxy = None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close(wait=True)


_shared: ExecutorPool | None = None
_shared_lock = threading.Lock()


def shared_pool() -> ExecutorPool:
    """The process-wide pool, created on first use."""
    global _shared
    with _shared_lock:
        if _shared is None or _shared.closed:
            _shared = ExecutorPool()
            atexit.register(_shared.close)
        return _shared


def get_pool(n_threads: int) -> InstrumentedExecutor | None:
    """Convenience: a shared executor for parallel runs, or ``None``
    when ``n_threads`` does not ask for parallelism."""
    if n_threads <= 1:
        return None
    return shared_pool().get(n_threads)


def close_shared_pool(wait: bool = True) -> None:
    """Tear down the process-wide pool (mainly for tests)."""
    global _shared
    with _shared_lock:
        pool, _shared = _shared, None
    if pool is not None:
        pool.close(wait=wait)

"""The HorsePower compiler: HorseIR module → executable program.

Two optimization levels, matching the paper's configurations:

* ``"naive"`` (HorsePower-Naive): no optimization; every statement executes
  as an individual vectorized call with full materialization — the same
  execution profile as a MAL-style interpreter.
* ``"opt"`` (HorsePower-Opt): the full pipeline — inlining, constant/copy
  propagation, CSE, backward slicing, pattern-based fusion — followed by
  automatic loop fusion and kernel code generation.

The compiled program's ``run`` takes ``n_threads``, the reproduction's
OpenMP analog, and an optional :class:`~repro.core.context.QueryContext`
naming the tracer/metrics/pool the run reports into; without one the
ambient (process-global) context applies.

Which kernel engine a fused segment compiles to is decided by a *kernel
factory* — the hook the backend registry
(:mod:`repro.engine.backends`) plugs its engines into.  The ``backend``
string parameter remains as a convenience that picks one of the two
built-in factories (``"python"`` → generated NumPy kernels, ``"c"`` →
emitted C + OpenMP with per-segment Python fallback).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core import builtins as hb
from repro.core import ir
from repro.core import types as ht
from repro.core.codegen.cgen import CKernel, c_backend_available
from repro.core.codegen.executor import DEFAULT_CHUNK_SIZE, run_kernel
from repro.core.codegen.pygen import CompiledKernel, generate_kernel
from repro.core.context import QueryContext, ensure_context
from repro.core.optimizer import OptimizeStats, optimize
from repro.core.passes import resolve_pipeline
from repro.core.optimizer.fusion import (
    FusedItem, IfItem, OpaqueItem, ReturnItem, WhileItem, segment_method,
)
from repro.core.values import (TableValue, Value, Vector, coerce, scalar,
                               value_nbytes)
from repro.core.verify import verify_module
from repro.errors import HorseRuntimeError

__all__ = ["compile_module", "CompiledProgram", "CompileReport",
           "KernelFactory", "python_kernel_factory", "c_kernel_factory"]

_MAX_LOOP_ITERATIONS = 100_000_000


@dataclass
class CompileReport:
    """Provenance of a compilation (surfaced in benchmarks as COMP time).

    ``compile_seconds`` is the paper's COMP column and always equals
    ``optimize_seconds + codegen_seconds`` exactly — the split lets
    reports decompose COMP into its optimizer and code-generation
    shares (``codegen_seconds`` includes verification and plan
    segmentation, the non-optimizer remainder)."""

    opt_level: str
    compile_seconds: float
    optimize_stats: OptimizeStats | None
    backend: str = "python"
    fused_segments: int = 0
    fused_statements: int = 0
    c_eligible_segments: int = 0
    kernel_sources: list[str] = field(default_factory=list)
    optimize_seconds: float = 0.0
    codegen_seconds: float = 0.0


class _KernelItem:
    """Plan item: a fused segment with its compiled kernel(s).

    ``c_kernel`` is the native (emitted C + OpenMP) variant; when
    present it is tried first and ``run`` falls back to the Python
    kernel for segments or runtime dtype signatures the native engine
    cannot handle (strings, compressed selections) — the capability
    fallback the backend registry documents as cgen → pygen.
    """

    __slots__ = ("kernel", "c_kernel")

    def __init__(self, kernel: CompiledKernel,
                 c_kernel: "CKernel | None" = None):
        self.kernel = kernel
        self.c_kernel = c_kernel

    def run(self, inputs: list[Vector], state: "_RunState",
            span=None) -> list[Vector]:
        outputs = None
        if self.c_kernel is not None:
            outputs = self.c_kernel.try_run(inputs, state.n_threads)
            if outputs is not None:
                if span is not None:
                    span.set(backend="c")
                if state.profile.enabled:
                    # The native path allocates only its output arrays
                    # on the Python heap (its temporaries live inside
                    # the emitted C); run_kernel charges the Python
                    # path itself.
                    total = sum(v.nbytes() for v in outputs)
                    state.profile.record(
                        total, site="kernel:" + self.kernel.fn.__name__,
                        count=len(outputs))
                    if span is not None:
                        span.add("alloc_bytes", total)
        if outputs is None:
            if span is not None:
                span.set(backend="python")
            outputs = run_kernel(self.kernel, inputs,
                                 n_threads=state.n_threads,
                                 chunk_size=state.chunk_size,
                                 pool=state.pool, ctx=state.ctx)
        return outputs


#: A kernel factory turns one fused segment into an executable plan
#: item.  ``(segment, name, report) -> _KernelItem``.
KernelFactory = Callable[[object, str, CompileReport], _KernelItem]


def python_kernel_factory(segment, name: str,
                          report: CompileReport) -> _KernelItem:
    """Generated NumPy kernels — always available, handles every dtype."""
    kernel = generate_kernel(segment, name=name)
    report.kernel_sources.append(kernel.source)
    return _KernelItem(kernel)


def c_kernel_factory(segment, name: str,
                     report: CompileReport) -> _KernelItem:
    """Emitted C + OpenMP per segment, with the Python kernel kept as
    the per-segment (and per-dtype-signature) fallback."""
    item = python_kernel_factory(segment, name, report)
    c_kernel = CKernel(segment)
    if c_kernel.eligible:
        report.c_eligible_segments += 1
    item.c_kernel = c_kernel
    return item


#: The built-in engines the string ``backend`` parameter selects.
_BUILTIN_FACTORIES: dict[str, KernelFactory] = {
    "python": python_kernel_factory,
    "c": c_kernel_factory,
}


class _ReturnSignal(Exception):
    def __init__(self, value: Value):
        self.value = value


class CompiledProgram:
    """An executable HorseIR program."""

    def __init__(self, module: ir.Module, plans: dict[str, list],
                 report: CompileReport):
        self.module = module
        self._plans = plans
        self.report = report

    def run(self, tables: dict[str, TableValue] | None = None,
            args: list[Value] | None = None,
            method: str | None = None,
            n_threads: int = 1,
            chunk_size: int = DEFAULT_CHUNK_SIZE,
            ctx: QueryContext | None = None) -> Value:
        """Execute the entry method (or ``method``) and return its result.

        Parallel runs borrow the context's :class:`ExecutorPool` (the
        process-shared pool in the ambient context) rather than building
        a private pool per call — repeated executions of a prepared
        query pay zero pool-construction cost.
        """
        ctx = ensure_context(ctx)
        eval_ctx = hb.EvalContext(tables)
        entry = method if method is not None else self.module.entry.name
        pool = ctx.executor(n_threads)
        state = _RunState(self, eval_ctx, n_threads, chunk_size, pool,
                          ctx)
        tracer = ctx.tracer
        if not tracer.enabled:
            return state.call(entry, list(args or []))
        with tracer.span("execute", method=entry,
                         n_threads=n_threads,
                         opt_level=self.report.opt_level) as span:
            result = state.call(entry, list(args or []))
            rows = getattr(result, "num_rows", None)
            if rows is not None:
                span.set(rows_out=rows)
            return result

    @property
    def kernel_sources(self) -> list[str]:
        """Generated kernel code, for inspection (Figure 3 analog)."""
        return list(self.report.kernel_sources)


class _RunState:
    """Per-run execution state: context, threading, method dispatch."""

    def __init__(self, program: CompiledProgram, eval_ctx: hb.EvalContext,
                 n_threads: int, chunk_size: int, pool,
                 ctx: QueryContext):
        self.program = program
        self.eval_ctx = eval_ctx
        self.n_threads = n_threads
        self.chunk_size = chunk_size
        self.pool = pool
        self.ctx = ctx
        #: Allocation accounting for this run (NULL_PROFILE when the
        #: query is not profiled; sites check ``.enabled`` first).
        self.profile = ctx.profile
        #: Cooperative cancellation surface (NULL_LIMITS when
        #: ungoverned), checked once per plan item; chunked kernels add
        #: a finer per-chunk checkpoint in the kernel executor.
        self.limits = ctx.limits

    def call(self, method_name: str, args: list[Value]) -> Value:
        try:
            method = self.program.module.methods[method_name]
        except KeyError:
            raise HorseRuntimeError(
                f"no method {method_name!r} in compiled module") from None
        if len(args) != len(method.params):
            raise HorseRuntimeError(
                f"method {method_name!r} expects {len(method.params)} "
                f"argument(s), got {len(args)}")
        env: dict[str, Value] = {
            param.name: value
            for param, value in zip(method.params, args)
        }
        plan = self.program._plans[method_name]
        try:
            self._exec_plan(plan, env)
        except _ReturnSignal as signal:
            return signal.value
        raise HorseRuntimeError(
            f"method {method_name!r} finished without returning")

    # -- plan execution ------------------------------------------------------

    def _exec_plan(self, plan: list, env: dict[str, Value]) -> None:
        profile = self.profile
        limits = self.limits
        for item in plan:
            if limits.enabled:
                limits.check("plan-item")
            if isinstance(item, _KernelItem):
                self._exec_kernel_item(item, env)
                if profile.enabled:
                    profile.update_peak(
                        sum(value_nbytes(v) for v in env.values()))
            elif isinstance(item, OpaqueItem):
                stmt = item.stmt
                env[stmt.target] = _coerce(self._eval(stmt.expr, env),
                                           stmt.type)
                if profile.enabled:
                    # Opaque statements materialize like the reference
                    # interpreter; reference hand-outs
                    # (@load_table/@column_value) charge nothing, same
                    # as the naive path.
                    if not isinstance(stmt.expr, ir.BuiltinCall) \
                            or hb.materializes_output(stmt.expr.name):
                        profile.record(value_nbytes(env[stmt.target]),
                                       site=f"stmt:{stmt.target}")
                    profile.update_peak(
                        sum(value_nbytes(v) for v in env.values()))
            elif isinstance(item, ReturnItem):
                raise _ReturnSignal(self._eval(item.expr, env))
            elif isinstance(item, IfItem):
                if self._truth(item.cond, env):
                    self._exec_plan(item.then_plan, env)
                else:
                    self._exec_plan(item.else_plan, env)
            elif isinstance(item, WhileItem):
                iterations = 0
                while self._truth(item.cond, env):
                    self._exec_plan(item.body_plan, env)
                    iterations += 1
                    if iterations > _MAX_LOOP_ITERATIONS:
                        raise HorseRuntimeError(
                            "while loop exceeded the iteration limit")
            else:
                raise HorseRuntimeError(
                    f"unknown plan item {type(item).__name__}")

    def _exec_kernel_item(self, item: _KernelItem,
                          env: dict[str, Value]) -> None:
        kernel = item.kernel
        inputs = self._gather_inputs(kernel, env)
        tracer = self.ctx.tracer
        if not tracer.enabled:
            outputs = item.run(inputs, self)
        else:
            with tracer.span("kernel:" + kernel.fn.__name__,
                             statements=len(kernel.segment.stmts)) as sp:
                outputs = item.run(inputs, self, span=sp)
                sp.set(rows_in=max((len(v) for v in inputs), default=0),
                       rows_out=max((len(v) for v in outputs),
                                    default=0))
        for (name, _), value in zip(kernel.outputs, outputs):
            env[name] = value

    def _gather_inputs(self, kernel: CompiledKernel,
                       env: dict[str, Value]) -> list:
        inputs = []
        for name in kernel.inputs:
            value = env.get(name)
            if value is None:
                raise HorseRuntimeError(
                    f"fused segment input {name!r} is undefined")
            if not isinstance(value, Vector):
                raise HorseRuntimeError(
                    f"fused segment input {name!r} must be a vector, "
                    f"got {type(value).__name__}")
            inputs.append(value)
        return inputs

    def _truth(self, cond: ir.Expr, env: dict[str, Value]) -> bool:
        value = self._eval(cond, env)
        if not isinstance(value, Vector) or len(value) != 1:
            raise HorseRuntimeError(
                "control-flow conditions must be scalar booleans")
        return bool(value.item())

    def _eval(self, expr: ir.Expr, env: dict[str, Value]) -> Value:
        if isinstance(expr, ir.Var):
            try:
                return env[expr.name]
            except KeyError:
                raise HorseRuntimeError(
                    f"undefined variable {expr.name!r}") from None
        if isinstance(expr, ir.Literal):
            return scalar(expr.value, expr.type)
        if isinstance(expr, ir.SymbolLit):
            return scalar(expr.name, ht.SYM)
        if isinstance(expr, ir.Cast):
            return _coerce(self._eval(expr.expr, env), expr.type)
        if isinstance(expr, ir.BuiltinCall):
            builtin = hb.get(expr.name)
            args = [self._eval(a, env) for a in expr.args]
            if self.profile.enabled:
                return hb.run_profiled(builtin, args, self.eval_ctx,
                                       self.profile)
            return builtin.run(args, self.eval_ctx)
        if isinstance(expr, ir.MethodCall):
            args = [self._eval(a, env) for a in expr.args]
            return self.call(expr.name, args)
        raise HorseRuntimeError(
            f"unknown expression {type(expr).__name__}")


#: The cast rule is shared with the reference interpreter (the compiled
#: path used to silently pass Table/List values through mismatched casts
#: that naive mode rejects; both now fail identically).
_coerce = coerce


def compile_module(module: ir.Module, opt_level: str = "opt",
                   entry: str | None = None,
                   backend: str = "python",
                   ctx: QueryContext | None = None,
                   kernel_factory: KernelFactory | None = None, *,
                   pipeline=None, verify_ir: bool = False,
                   dump_ir: str | None = None) -> CompiledProgram:
    """Compile a HorseIR module at ``opt_level`` (``"naive"`` or
    ``"opt"``).

    ``kernel_factory`` decides the fused-kernel engine per segment; when
    omitted, ``backend`` selects a built-in one: ``"python"`` (generated
    NumPy kernels, always available) or ``"c"`` (emitted C + OpenMP via
    gcc, per-segment with Python fallback).  Spans and compile metrics
    go to ``ctx`` (the ambient process context when not given).

    ``pipeline`` overrides the optimization preset the level implies
    (``"opt"`` → ``O2``, ``"naive"`` → ``O0``, which has no IR passes);
    ``verify_ir=True`` re-verifies the IR after every pass and
    ``dump_ir`` names a directory for per-pass IR snapshots."""
    ctx = ensure_context(ctx)
    if opt_level not in ("naive", "opt"):
        raise ValueError(f"unknown opt level {opt_level!r}")
    if kernel_factory is None:
        if backend not in _BUILTIN_FACTORIES:
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "c" and not c_backend_available():
            raise ValueError("the C backend needs gcc on PATH")
        kernel_factory = _BUILTIN_FACTORIES[backend]
    pipeline = resolve_pipeline(pipeline, opt_level=opt_level)
    tracer = ctx.tracer
    with tracer.span("compile", opt_level=opt_level,
                     backend=backend) as compile_span:
        start = time.perf_counter()
        verify_module(module)

        stats: OptimizeStats | None = None
        optimize_seconds = 0.0
        if pipeline.ir_passes or verify_ir or dump_ir is not None:
            opt_start = time.perf_counter()
            with tracer.span("optimize") as opt_span:
                module, stats = optimize(module, entry=entry,
                                         tracer=tracer,
                                         limits=ctx.limits,
                                         pipeline=pipeline,
                                         metrics=ctx.metrics,
                                         span=opt_span,
                                         verify_ir=verify_ir,
                                         dump_ir=dump_ir)
                verify_module(module)
            optimize_seconds = time.perf_counter() - opt_start

        plans: dict[str, list] = {}
        report = CompileReport(opt_level, 0.0, stats, backend=backend)
        with tracer.span("codegen") as codegen_span:
            for name, method in module.methods.items():
                plan = segment_method(method,
                                      enabled=(opt_level == "opt"))
                plans[name] = _compile_plan(plan, report, kernel_factory)
            codegen_span.set(fused_segments=report.fused_segments,
                             fused_statements=report.fused_statements)

        total = time.perf_counter() - start
        report.optimize_seconds = optimize_seconds
        report.codegen_seconds = total - optimize_seconds
        # Sum the parts so optimize + codegen == compile holds exactly
        # (a float re-add, not the raw total, which could differ by an
        # ulp).
        report.compile_seconds = (report.optimize_seconds
                                  + report.codegen_seconds)
        compile_span.set(fused_segments=report.fused_segments)
    metrics = ctx.metrics
    metrics.counter("compile.count").inc()
    metrics.counter("compile.optimize_seconds_total").inc(
        report.optimize_seconds)
    metrics.counter("compile.codegen_seconds_total").inc(
        report.codegen_seconds)
    return CompiledProgram(module, plans, report)


def _compile_plan(plan: list, report: CompileReport,
                  kernel_factory: KernelFactory) -> list:
    compiled: list = []
    for item in plan:
        if isinstance(item, FusedItem):
            name = f"_kernel_{report.fused_segments}"
            report.fused_segments += 1
            report.fused_statements += len(item.segment.stmts)
            compiled.append(kernel_factory(item.segment, name, report))
        elif isinstance(item, IfItem):
            compiled.append(IfItem(
                item.cond,
                _compile_plan(item.then_plan, report, kernel_factory),
                _compile_plan(item.else_plan, report, kernel_factory)))
        elif isinstance(item, WhileItem):
            compiled.append(WhileItem(
                item.cond,
                _compile_plan(item.body_plan, report, kernel_factory)))
        else:
            compiled.append(item)
    return compiled

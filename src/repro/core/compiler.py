"""The HorsePower compiler: HorseIR module → executable program.

Two optimization levels, matching the paper's configurations:

* ``"naive"`` (HorsePower-Naive): no optimization; every statement executes
  as an individual vectorized call with full materialization — the same
  execution profile as a MAL-style interpreter.
* ``"opt"`` (HorsePower-Opt): the full pipeline — inlining, constant/copy
  propagation, CSE, backward slicing, pattern-based fusion — followed by
  automatic loop fusion and kernel code generation.

The compiled program's ``run`` takes ``n_threads``, the reproduction's
OpenMP analog, and reports compile time (the paper's COMP column).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core import builtins as hb
from repro.core import ir
from repro.core import types as ht
from repro.core.codegen.cgen import CKernel, c_backend_available
from repro.core.codegen.executor import DEFAULT_CHUNK_SIZE, run_kernel
from repro.core.codegen.pygen import CompiledKernel, generate_kernel
from repro.core.execpool import get_pool
from repro.core.optimizer import OptimizeStats, optimize
from repro.core.optimizer.fusion import (
    FusedItem, IfItem, OpaqueItem, ReturnItem, WhileItem, segment_method,
)
from repro.core.values import TableValue, Value, Vector, coerce, scalar
from repro.core.verify import verify_module
from repro.errors import HorseRuntimeError
from repro.obs import get_tracer, global_metrics

__all__ = ["compile_module", "CompiledProgram", "CompileReport"]

_MAX_LOOP_ITERATIONS = 100_000_000

_METRIC_COMPILES = global_metrics().counter("compile.count")
_METRIC_OPTIMIZE_SECONDS = global_metrics().counter(
    "compile.optimize_seconds_total")
_METRIC_CODEGEN_SECONDS = global_metrics().counter(
    "compile.codegen_seconds_total")


@dataclass
class CompileReport:
    """Provenance of a compilation (surfaced in benchmarks as COMP time).

    ``compile_seconds`` is the paper's COMP column and always equals
    ``optimize_seconds + codegen_seconds`` exactly — the split lets
    reports decompose COMP into its optimizer and code-generation
    shares (``codegen_seconds`` includes verification and plan
    segmentation, the non-optimizer remainder)."""

    opt_level: str
    compile_seconds: float
    optimize_stats: OptimizeStats | None
    backend: str = "python"
    fused_segments: int = 0
    fused_statements: int = 0
    c_eligible_segments: int = 0
    kernel_sources: list[str] = field(default_factory=list)
    optimize_seconds: float = 0.0
    codegen_seconds: float = 0.0


class _KernelItem:
    """Plan item: a fused segment with its compiled kernel(s).

    ``c_kernel`` is the native (emitted C + OpenMP) variant; it is tried
    first under the "c" backend and falls back to the Python kernel when
    a segment or a runtime dtype signature is ineligible.
    """

    __slots__ = ("kernel", "c_kernel")

    def __init__(self, kernel: CompiledKernel,
                 c_kernel: "CKernel | None" = None):
        self.kernel = kernel
        self.c_kernel = c_kernel


class _ReturnSignal(Exception):
    def __init__(self, value: Value):
        self.value = value


class CompiledProgram:
    """An executable HorseIR program."""

    def __init__(self, module: ir.Module, plans: dict[str, list],
                 report: CompileReport):
        self.module = module
        self._plans = plans
        self.report = report

    def run(self, tables: dict[str, TableValue] | None = None,
            args: list[Value] | None = None,
            method: str | None = None,
            n_threads: int = 1,
            chunk_size: int = DEFAULT_CHUNK_SIZE) -> Value:
        """Execute the entry method (or ``method``) and return its result.

        Parallel runs borrow the process-wide :class:`ExecutorPool`
        rather than building (and leak-prone ``shutdown(wait=False)``-ing)
        a private pool per call — repeated executions of a prepared query
        pay zero pool-construction cost.
        """
        ctx = hb.EvalContext(tables)
        entry = method if method is not None else self.module.entry.name
        pool = get_pool(n_threads)
        state = _RunState(self, ctx, n_threads, chunk_size, pool)
        tracer = get_tracer()
        if not tracer.enabled:
            return state.call(entry, list(args or []))
        with tracer.span("execute", method=entry,
                         n_threads=n_threads,
                         opt_level=self.report.opt_level):
            return state.call(entry, list(args or []))

    @property
    def kernel_sources(self) -> list[str]:
        """Generated kernel code, for inspection (Figure 3 analog)."""
        return list(self.report.kernel_sources)


class _RunState:
    """Per-run execution state: context, threading, method dispatch."""

    def __init__(self, program: CompiledProgram, ctx: hb.EvalContext,
                 n_threads: int, chunk_size: int, pool):
        self.program = program
        self.ctx = ctx
        self.n_threads = n_threads
        self.chunk_size = chunk_size
        self.pool = pool

    def call(self, method_name: str, args: list[Value]) -> Value:
        try:
            method = self.program.module.methods[method_name]
        except KeyError:
            raise HorseRuntimeError(
                f"no method {method_name!r} in compiled module") from None
        if len(args) != len(method.params):
            raise HorseRuntimeError(
                f"method {method_name!r} expects {len(method.params)} "
                f"argument(s), got {len(args)}")
        env: dict[str, Value] = {
            param.name: value
            for param, value in zip(method.params, args)
        }
        plan = self.program._plans[method_name]
        try:
            self._exec_plan(plan, env)
        except _ReturnSignal as signal:
            return signal.value
        raise HorseRuntimeError(
            f"method {method_name!r} finished without returning")

    # -- plan execution ------------------------------------------------------

    def _exec_plan(self, plan: list, env: dict[str, Value]) -> None:
        for item in plan:
            if isinstance(item, _KernelItem):
                self._exec_kernel_item(item, env)
            elif isinstance(item, OpaqueItem):
                stmt = item.stmt
                env[stmt.target] = _coerce(self._eval(stmt.expr, env),
                                           stmt.type)
            elif isinstance(item, ReturnItem):
                raise _ReturnSignal(self._eval(item.expr, env))
            elif isinstance(item, IfItem):
                if self._truth(item.cond, env):
                    self._exec_plan(item.then_plan, env)
                else:
                    self._exec_plan(item.else_plan, env)
            elif isinstance(item, WhileItem):
                iterations = 0
                while self._truth(item.cond, env):
                    self._exec_plan(item.body_plan, env)
                    iterations += 1
                    if iterations > _MAX_LOOP_ITERATIONS:
                        raise HorseRuntimeError(
                            "while loop exceeded the iteration limit")
            else:
                raise HorseRuntimeError(
                    f"unknown plan item {type(item).__name__}")

    def _exec_kernel_item(self, item: _KernelItem,
                          env: dict[str, Value]) -> None:
        kernel = item.kernel
        inputs = self._gather_inputs(kernel, env)
        tracer = get_tracer()
        if not tracer.enabled:
            outputs = self._run_kernel_item(item, inputs)
        else:
            with tracer.span("kernel:" + kernel.fn.__name__,
                             statements=len(kernel.segment.stmts)) as sp:
                outputs = self._run_kernel_item(item, inputs, span=sp)
                sp.set(rows_in=max((len(v) for v in inputs), default=0),
                       rows_out=max((len(v) for v in outputs),
                                    default=0))
        for (name, _), value in zip(kernel.outputs, outputs):
            env[name] = value

    def _run_kernel_item(self, item: _KernelItem, inputs: list,
                         span=None) -> list:
        outputs = None
        if item.c_kernel is not None:
            outputs = item.c_kernel.try_run(inputs, self.n_threads)
            if outputs is not None and span is not None:
                span.set(backend="c")
        if outputs is None:
            if span is not None:
                span.set(backend="python")
            outputs = run_kernel(item.kernel, inputs,
                                 n_threads=self.n_threads,
                                 chunk_size=self.chunk_size,
                                 pool=self.pool)
        return outputs

    def _gather_inputs(self, kernel: CompiledKernel,
                       env: dict[str, Value]) -> list:
        inputs = []
        for name in kernel.inputs:
            value = env.get(name)
            if value is None:
                raise HorseRuntimeError(
                    f"fused segment input {name!r} is undefined")
            if not isinstance(value, Vector):
                raise HorseRuntimeError(
                    f"fused segment input {name!r} must be a vector, "
                    f"got {type(value).__name__}")
            inputs.append(value)
        return inputs

    def _truth(self, cond: ir.Expr, env: dict[str, Value]) -> bool:
        value = self._eval(cond, env)
        if not isinstance(value, Vector) or len(value) != 1:
            raise HorseRuntimeError(
                "control-flow conditions must be scalar booleans")
        return bool(value.item())

    def _eval(self, expr: ir.Expr, env: dict[str, Value]) -> Value:
        if isinstance(expr, ir.Var):
            try:
                return env[expr.name]
            except KeyError:
                raise HorseRuntimeError(
                    f"undefined variable {expr.name!r}") from None
        if isinstance(expr, ir.Literal):
            return scalar(expr.value, expr.type)
        if isinstance(expr, ir.SymbolLit):
            return scalar(expr.name, ht.SYM)
        if isinstance(expr, ir.Cast):
            return _coerce(self._eval(expr.expr, env), expr.type)
        if isinstance(expr, ir.BuiltinCall):
            builtin = hb.get(expr.name)
            args = [self._eval(a, env) for a in expr.args]
            return builtin.run(args, self.ctx)
        if isinstance(expr, ir.MethodCall):
            args = [self._eval(a, env) for a in expr.args]
            return self.call(expr.name, args)
        raise HorseRuntimeError(
            f"unknown expression {type(expr).__name__}")


#: The cast rule is shared with the reference interpreter (the compiled
#: path used to silently pass Table/List values through mismatched casts
#: that naive mode rejects; both now fail identically).
_coerce = coerce


def compile_module(module: ir.Module, opt_level: str = "opt",
                   entry: str | None = None,
                   backend: str = "python") -> CompiledProgram:
    """Compile a HorseIR module at ``opt_level`` (``"naive"`` or
    ``"opt"``).

    ``backend`` selects the fused-kernel execution engine: ``"python"``
    (generated NumPy kernels, always available) or ``"c"`` (emitted C +
    OpenMP via gcc, per-segment with Python fallback)."""
    if opt_level not in ("naive", "opt"):
        raise ValueError(f"unknown opt level {opt_level!r}")
    if backend not in ("python", "c"):
        raise ValueError(f"unknown backend {backend!r}")
    if backend == "c" and not c_backend_available():
        raise ValueError("the C backend needs gcc on PATH")
    tracer = get_tracer()
    with tracer.span("compile", opt_level=opt_level,
                     backend=backend) as compile_span:
        start = time.perf_counter()
        verify_module(module)

        stats: OptimizeStats | None = None
        optimize_seconds = 0.0
        if opt_level == "opt":
            opt_start = time.perf_counter()
            with tracer.span("optimize"):
                module, stats = optimize(module, entry=entry)
                verify_module(module)
            optimize_seconds = time.perf_counter() - opt_start

        plans: dict[str, list] = {}
        report = CompileReport(opt_level, 0.0, stats, backend=backend)
        with tracer.span("codegen") as codegen_span:
            for name, method in module.methods.items():
                plan = segment_method(method,
                                      enabled=(opt_level == "opt"))
                plans[name] = _compile_plan(plan, report)
            codegen_span.set(fused_segments=report.fused_segments,
                             fused_statements=report.fused_statements)

        total = time.perf_counter() - start
        report.optimize_seconds = optimize_seconds
        report.codegen_seconds = total - optimize_seconds
        # Sum the parts so optimize + codegen == compile holds exactly
        # (a float re-add, not the raw total, which could differ by an
        # ulp).
        report.compile_seconds = (report.optimize_seconds
                                  + report.codegen_seconds)
        compile_span.set(fused_segments=report.fused_segments)
    _METRIC_COMPILES.inc()
    _METRIC_OPTIMIZE_SECONDS.inc(report.optimize_seconds)
    _METRIC_CODEGEN_SECONDS.inc(report.codegen_seconds)
    return CompiledProgram(module, plans, report)


def _compile_plan(plan: list, report: CompileReport) -> list:
    compiled: list = []
    for item in plan:
        if isinstance(item, FusedItem):
            kernel = generate_kernel(
                item.segment, name=f"_kernel_{report.fused_segments}")
            report.fused_segments += 1
            report.fused_statements += len(item.segment.stmts)
            report.kernel_sources.append(kernel.source)
            c_kernel = None
            if report.backend == "c":
                c_kernel = CKernel(item.segment)
                if c_kernel.eligible:
                    report.c_eligible_segments += 1
            compiled.append(_KernelItem(kernel, c_kernel))
        elif isinstance(item, IfItem):
            compiled.append(IfItem(item.cond,
                                   _compile_plan(item.then_plan, report),
                                   _compile_plan(item.else_plan, report)))
        elif isinstance(item, WhileItem):
            compiled.append(WhileItem(
                item.cond, _compile_plan(item.body_plan, report)))
        else:
            compiled.append(item)
    return compiled

"""HorseIR abstract syntax: modules, methods, statements, expressions.

The IR is a flat, three-address style language, following the paper's
examples (Figures 2b and 6):

* a :class:`Module` holds named :class:`Method` definitions;
* a method body is a list of statements — assignments of a single
  expression to a typed local, structured ``if``/``while`` blocks, and a
  ``return``;
* expressions are at most one call deep: a builtin call ``@geq(t2, 0.05:f64)``,
  a user-method call ``@calcRevenue(t4, t5)``, a ``check_cast``, a variable
  reference, or a literal.

Keeping statements flat makes the dependence graph (``depgraph``) and the
fusion optimizer straightforward, exactly as in the HorseIR compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core import types as ht

__all__ = [
    "Expr", "Var", "Literal", "SymbolLit", "BuiltinCall", "MethodCall",
    "Cast", "Stmt", "Assign", "Return", "If", "While", "Param",
    "Method", "Module",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for HorseIR expressions."""

    def children(self) -> "list[Expr]":
        return []


@dataclass
class Var(Expr):
    """Reference to a local variable or parameter."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class Literal(Expr):
    """A typed literal, e.g. ``0.05:f64`` or ``1:i64``.

    ``value`` is a plain Python object (bool/int/float/str or a
    ``numpy.datetime64`` for dates).
    """

    value: object
    type: ht.HorseType

    def __str__(self) -> str:
        if self.type == ht.STR:
            return f"\"{self.value}\":str"
        if self.type == ht.BOOL:
            return f"{1 if self.value else 0}:bool"
        return f"{self.value}:{self.type}"


@dataclass
class SymbolLit(Expr):
    """A symbol literal, e.g. ```lineitem:sym``."""

    name: str

    def __str__(self) -> str:
        return f"`{self.name}:sym"


@dataclass
class BuiltinCall(Expr):
    """A call to a built-in function, e.g. ``@compress(t3, t1)``."""

    name: str
    args: list[Expr]

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"@{self.name}({args})"

    def children(self) -> list[Expr]:
        return list(self.args)


@dataclass
class MethodCall(Expr):
    """A call to a user-defined method in the same module.

    This is how UDF invocations appear after the SQL plan translation
    (Section 3.3); the inlining pass removes them.
    """

    name: str
    args: list[Expr]

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"@{self.name}({args})"

    def children(self) -> list[Expr]:
        return list(self.args)


@dataclass
class Cast(Expr):
    """``check_cast(expr, type)`` — runtime checked conversion."""

    expr: Expr
    type: ht.HorseType

    def __str__(self) -> str:
        return f"check_cast({self.expr}, {self.type})"

    def children(self) -> list[Expr]:
        return [self.expr]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class for HorseIR statements."""


@dataclass
class Assign(Stmt):
    """``target:type = expr;``"""

    target: str
    type: ht.HorseType
    expr: Expr

    def __str__(self) -> str:
        return f"{self.target}:{self.type} = {self.expr};"


@dataclass
class Return(Stmt):
    """``return expr;``"""

    expr: Expr

    def __str__(self) -> str:
        return f"return {self.expr};"


@dataclass
class If(Stmt):
    """Structured conditional; the condition must be a scalar bool.

    HorseIR proper lowers control flow to basic blocks; the structured form
    is sufficient for the MATLAB subset the paper supports and keeps fusion
    segments (which never span control flow) easy to delimit.
    """

    cond: Expr
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    """Structured loop; the condition must be a scalar bool."""

    cond: Expr
    body: list[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Methods and modules
# ---------------------------------------------------------------------------

@dataclass
class Param:
    """A typed method parameter."""

    name: str
    type: ht.HorseType

    def __str__(self) -> str:
        return f"{self.name}:{self.type}"


@dataclass
class Method:
    """A HorseIR method: parameters, return type and a statement body."""

    name: str
    params: list[Param]
    ret_type: ht.HorseType
    body: list[Stmt]

    def param_names(self) -> list[str]:
        return [p.name for p in self.params]

    def walk_stmts(self) -> Iterator[Stmt]:
        """All statements, recursing into if/while bodies (pre-order)."""
        yield from _walk(self.body)


def _walk(body: list[Stmt]) -> Iterator[Stmt]:
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from _walk(stmt.then_body)
            yield from _walk(stmt.else_body)
        elif isinstance(stmt, While):
            yield from _walk(stmt.body)


@dataclass
class Module:
    """A HorseIR module: an ordered set of uniquely-named methods."""

    name: str
    methods: dict[str, Method] = field(default_factory=dict)

    def add(self, method: Method) -> None:
        if method.name in self.methods:
            raise ValueError(f"duplicate method {method.name!r} "
                             f"in module {self.name!r}")
        self.methods[method.name] = method

    def method(self, name: str) -> Method:
        return self.methods[name]

    @property
    def entry(self) -> Method:
        """The entry method: ``main`` if present, else the first method."""
        if "main" in self.methods:
            return self.methods["main"]
        return next(iter(self.methods.values()))


# ---------------------------------------------------------------------------
# Traversal / rewriting helpers used by the optimizer passes
# ---------------------------------------------------------------------------

def expr_vars(expr: Expr) -> list[str]:
    """Names of all variables referenced by ``expr`` (with duplicates)."""
    names: list[str] = []
    _collect_vars(expr, names)
    return names


def _collect_vars(expr: Expr, out: list[str]) -> None:
    if isinstance(expr, Var):
        out.append(expr.name)
        return
    for child in expr.children():
        _collect_vars(child, out)


def map_expr(expr: Expr, fn) -> Expr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives a node whose children have already been rewritten and
    returns the (possibly new) node.
    """
    if isinstance(expr, (BuiltinCall, MethodCall)):
        new_args = [map_expr(a, fn) for a in expr.args]
        expr = type(expr)(expr.name, new_args)
    elif isinstance(expr, Cast):
        expr = Cast(map_expr(expr.expr, fn), expr.type)
    return fn(expr)


def rename_expr(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rewrite variable references through ``mapping`` (missing = keep)."""
    def rename(node: Expr) -> Expr:
        if isinstance(node, Var) and node.name in mapping:
            return Var(mapping[node.name])
        return node
    return map_expr(expr, rename)


def substitute_expr(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Replace variable references with whole expressions."""
    def substitute(node: Expr) -> Expr:
        if isinstance(node, Var) and node.name in mapping:
            return mapping[node.name]
        return node
    return map_expr(expr, substitute)

"""Runtime values for HorseIR programs.

Values mirror the data model of a column store: a :class:`Vector` is one
typed column (NumPy-backed), a :class:`TableValue` is an ordered collection
of named equal-length vectors, and a :class:`ListValue` groups values (the
result of ``@list`` and the shape group/join builtins return).  Scalars are
length-one vectors.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core import types as ht
from repro.errors import HorseRuntimeError, HorseTypeError

__all__ = ["Value", "Vector", "ListValue", "TableValue", "scalar",
           "vector", "from_numpy", "coerce", "value_nbytes"]


class Value:
    """Base class for all HorseIR runtime values."""

    #: HorseIR type of this value; set by subclasses.
    type: ht.HorseType


class Vector(Value):
    """A typed, immutable-by-convention column of values.

    ``data`` is always a 1-D NumPy array whose dtype matches
    :func:`repro.core.types.numpy_dtype` for ``type``.  Mutating ``data`` in
    place is not supported by the library (copy-on-write is handled at the
    compiler level, per the paper's pass-by-value semantics).
    """

    __slots__ = ("type", "data")

    def __init__(self, type_: ht.HorseType, data: np.ndarray):
        if data.ndim != 1:
            raise HorseTypeError(
                f"vectors are one-dimensional, got shape {data.shape}")
        expected = ht.numpy_dtype(type_)
        if data.dtype != expected:
            data = data.astype(expected)
        self.type = type_
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator:
        return iter(self.data)

    def __repr__(self) -> str:
        preview = ", ".join(repr(x) for x in self.data[:6])
        if len(self.data) > 6:
            preview += ", ..."
        return f"Vector<{self.type}>[{len(self.data)}]({preview})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vector):
            return NotImplemented
        return (self.type == other.type
                and len(self.data) == len(other.data)
                and bool(np.all(self.data == other.data)))

    __hash__ = None  # mutable payload; not hashable

    @property
    def is_scalar(self) -> bool:
        return len(self.data) == 1

    def item(self):
        """The single element of a length-one vector, as a Python object."""
        if len(self.data) != 1:
            raise HorseRuntimeError(
                f"expected a scalar vector, got length {len(self.data)}")
        value = self.data[0]
        if isinstance(value, np.generic):
            return value.item()
        return value

    def astype(self, type_: ht.HorseType) -> "Vector":
        """A copy of this vector converted to HorseIR type ``type_``."""
        if type_ == self.type:
            return self
        return Vector(type_, self.data.astype(ht.numpy_dtype(type_)))

    def nbytes(self) -> int:
        """Payload size of the backing array, in bytes.

        Object-dtype columns (strings, symbols) count only the pointer
        array — a stable lower bound that is identical between the
        naive and optimized paths, which is what the allocation
        profiler's parity invariant needs.
        """
        return int(self.data.nbytes)


class ListValue(Value):
    """An ordered list of HorseIR values (result of ``@list``)."""

    __slots__ = ("type", "items")

    def __init__(self, items: Sequence[Value]):
        self.items = list(items)
        element = ht.WILDCARD
        kinds = {item.type for item in self.items}
        if len(kinds) == 1:
            element = next(iter(kinds))
        self.type = ht.list_of(element)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Value]:
        return iter(self.items)

    def __getitem__(self, index: int) -> Value:
        return self.items[index]

    def __repr__(self) -> str:
        return f"ListValue[{len(self.items)}]"

    def nbytes(self) -> int:
        """Total payload bytes across the list's items."""
        return sum(value_nbytes(item) for item in self.items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ListValue):
            return NotImplemented
        return self.items == other.items

    __hash__ = None


class TableValue(Value):
    """An in-memory table: ordered named columns of equal length."""

    __slots__ = ("type", "_columns")

    def __init__(self, columns: "Iterable[tuple[str, Vector]] | dict[str, Vector]"):
        if isinstance(columns, dict):
            pairs = list(columns.items())
        else:
            pairs = list(columns)
        self._columns: dict[str, Vector] = {}
        length = None
        for name, column in pairs:
            if not isinstance(column, Vector):
                raise HorseTypeError(
                    f"table column {name!r} must be a Vector, "
                    f"got {type(column).__name__}")
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise HorseTypeError(
                    f"table column {name!r} has length {len(column)}, "
                    f"expected {length}")
            if name in self._columns:
                raise HorseTypeError(f"duplicate table column {name!r}")
            self._columns[name] = column
        self.type = ht.TABLE

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def column(self, name: str) -> Vector:
        try:
            return self._columns[name]
        except KeyError:
            raise HorseRuntimeError(
                f"table has no column {name!r}; "
                f"columns are {self.column_names}") from None

    def columns(self) -> Iterator[tuple[str, Vector]]:
        return iter(self._columns.items())

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __repr__(self) -> str:
        return (f"TableValue({self.num_rows} rows x "
                f"{self.num_columns} cols: {self.column_names})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableValue):
            return NotImplemented
        return (self.column_names == other.column_names
                and all(self._columns[n] == other._columns[n]
                        for n in self._columns))

    __hash__ = None

    def nbytes(self) -> int:
        """Total payload bytes across the table's columns."""
        return sum(col.nbytes() for col in self._columns.values())

    def head(self, n: int = 5) -> "TableValue":
        """The first ``n`` rows, as a new table."""
        return TableValue(
            [(name, Vector(col.type, col.data[:n]))
             for name, col in self._columns.items()])

    def to_pylist(self) -> list[dict]:
        """Rows as a list of dicts (for tests and examples)."""
        names = self.column_names
        arrays = [self._columns[n].data for n in names]
        return [
            {name: (arr[i].item() if isinstance(arr[i], np.generic)
                    else arr[i])
             for name, arr in zip(names, arrays)}
            for i in range(self.num_rows)
        ]


def scalar(value, type_: ht.HorseType | None = None) -> Vector:
    """Wrap a Python scalar as a length-one HorseIR vector."""
    if type_ is None:
        if isinstance(value, bool):
            type_ = ht.BOOL
        elif isinstance(value, int):
            type_ = ht.I64
        elif isinstance(value, float):
            type_ = ht.F64
        elif isinstance(value, str):
            type_ = ht.STR
        elif isinstance(value, np.datetime64):
            type_ = ht.DATE
        else:
            raise HorseTypeError(
                f"cannot infer HorseIR type for {type(value).__name__}")
    data = np.empty(1, dtype=ht.numpy_dtype(type_))
    data[0] = value
    return Vector(type_, data)


def vector(values: Sequence, type_: ht.HorseType) -> Vector:
    """Build a vector of HorseIR type ``type_`` from a Python sequence."""
    dtype = ht.numpy_dtype(type_)
    if dtype == np.dtype(object):
        data = np.empty(len(values), dtype=object)
        for i, value in enumerate(values):
            data[i] = value
    else:
        data = np.asarray(values, dtype=dtype)
    return Vector(type_, data)


def from_numpy(array: np.ndarray, *, symbolic: bool = False) -> Vector:
    """Wrap a NumPy array as a vector, inferring the HorseIR type."""
    array = np.asarray(array)
    if array.ndim == 0:
        array = array.reshape(1)
    type_ = ht.type_of_dtype(array.dtype, symbolic=symbolic)
    if array.dtype.kind in ("U", "S"):
        array = array.astype(object)
    return Vector(type_, array)


def value_nbytes(value) -> int:
    """Payload bytes of any runtime value; 0 for non-values.

    The allocation profiler's single sizing rule: vectors report their
    NumPy buffer, containers sum their children, and anything else
    (``None``, plan metadata, Python scalars in opaque slots) costs
    nothing.
    """
    nbytes = getattr(value, "nbytes", None)
    if callable(nbytes):
        return nbytes()
    if isinstance(nbytes, (int, np.integer)):  # raw ndarray
        return int(nbytes)
    return 0


def coerce(value: Value, type_: ht.HorseType) -> Value:
    """Apply the declared type of an assignment / ``check_cast``.

    The single cast rule shared by the reference interpreter and the
    compiled runtime, so HorsePower-Naive and HorsePower-Opt accept and
    reject exactly the same conversions: wildcards pass anything through,
    vectors re-type element-wise, and a Table/List value only satisfies a
    matching container type — anything else is a runtime cast error.
    """
    if type_.is_wildcard:
        return value
    if isinstance(value, Vector) and not type_.is_list \
            and not type_.is_table:
        return value.astype(type_)
    if isinstance(value, TableValue) and type_.is_table:
        return value
    if isinstance(value, ListValue) and type_.is_list:
        return value
    if isinstance(value, (TableValue, ListValue)):
        raise HorseRuntimeError(
            f"cannot cast {type(value).__name__} to {type_}")
    return value

"""HorseIR core: the paper's primary contribution.

Exports the pieces most users need; the submodules hold the full surface:

* :mod:`repro.core.types` / :mod:`repro.core.values` — type system and
  runtime values;
* :mod:`repro.core.ir` — IR nodes; :mod:`repro.core.parser` /
  :mod:`repro.core.printer` — textual form;
* :mod:`repro.core.builtins` — the vector built-in library;
* :mod:`repro.core.interp` — reference interpreter (HorsePower-Naive);
* :mod:`repro.core.optimizer` — inlining, slicing, fusion, patterns;
* :mod:`repro.core.codegen` / :mod:`repro.core.compiler` — fused-kernel
  code generation and the compiled executable (HorsePower-Opt).
"""

from repro.core.types import (  # noqa: F401
    BOOL, DATE, F32, F64, I8, I16, I32, I64, STR, SYM, TABLE, WILDCARD,
    HorseType, list_of, make_type, parse_type,
)
from repro.core.values import (  # noqa: F401
    ListValue, TableValue, Value, Vector, from_numpy, scalar, vector,
)

__all__ = [
    "BOOL", "DATE", "F32", "F64", "I8", "I16", "I32", "I64", "STR", "SYM",
    "TABLE", "WILDCARD", "HorseType", "list_of", "make_type", "parse_type",
    "ListValue", "TableValue", "Value", "Vector", "from_numpy", "scalar",
    "vector",
]

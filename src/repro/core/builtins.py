"""The HorseIR built-in function library.

Every database operator and every MATLAB array operation the frontends emit
maps to one of these built-ins.  Each built-in carries:

* ``kind`` — its *fusion trait*, which drives the loop-fusion optimizer:

  - ``elementwise``: output element ``i`` depends only on input elements
    ``i`` (broadcasting scalars).  Freely fusable.
  - ``reduction``: folds a vector to a scalar; fusable as the *tail* of a
    segment (the paper's ``@sum`` in Figure 3).
  - ``compress``: boolean selection; fusable (becomes a mask inside the
    generated loop).
  - ``scan``: prefix computation (``@cumsum``); vectorized but executed as a
    single call because chunks carry state.
  - ``opaque``: group/join/sort/table constructors — executed as one
    vectorized call, never fused.
  - ``source``: reads state from the execution context (``@load_table``).

* ``infer`` — result-type inference from argument types;
* ``run`` — vectorized NumPy evaluation (used by the reference interpreter,
  i.e. HorsePower-Naive, and by opaque statements in compiled code);
* ``template`` — for fusable built-ins, a Python/NumPy source template used
  by the code generator, e.g. ``"({0} >= {1})"`` for ``@geq``;
* ``combine`` — for reductions, how chunk partials merge under the
  multi-threaded executor (``sum``/``min``/``max``/``any``/``all``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, NamedTuple, Sequence

import numpy as np

from repro.core import types as ht
from repro.core.values import (ListValue, TableValue, Value, Vector, scalar,
                               value_nbytes)
from repro.errors import BuiltinError

__all__ = ["Builtin", "EvalContext", "BUILTINS", "get", "exists",
           "run_profiled", "materializes_output", "BuiltinSig",
           "SIGNATURES", "signature"]

#: Builtins whose result is a reference to existing storage (the base
#: table, one of its columns) rather than a newly materialized vector.
#: The allocation profiler skips statement-level charges for these in
#: *both* execution modes, so naive-vs-opt byte totals compare
#: materialization, not how often base data is referenced.
_REFERENCE_BUILTINS = frozenset({"load_table", "column_value"})


def materializes_output(name: str) -> bool:
    """Does ``@name`` allocate its result (vs hand out a reference)?"""
    return name not in _REFERENCE_BUILTINS


class EvalContext:
    """Runtime context for builtin evaluation.

    ``tables`` maps table names to :class:`TableValue`; ``@load_table``
    resolves against it.  The interpreter and the compiled executor both
    thread one of these through evaluation.
    """

    def __init__(self, tables: dict[str, TableValue] | None = None):
        self.tables = dict(tables or {})


@dataclass(frozen=True)
class Builtin:
    """Metadata + implementation for one HorseIR built-in function."""

    name: str
    kind: str
    arity: int | None
    infer: Callable[[list[ht.HorseType]], ht.HorseType]
    run: Callable[[list[Value], EvalContext], Value]
    template: str | None = None
    combine: str | None = None
    #: NumPy ufunc spelling ("np.add") when the op maps to a ufunc with
    #: ``out=`` support; the code generator uses it to write results into
    #: reused per-chunk buffers instead of allocating a fresh temporary
    #: per statement.
    ufunc: str | None = None
    #: C expression template for the native backend (the paper's emitted
    #: C); None means segments containing this op fall back to the
    #: Python-kernel backend.
    c_template: str | None = None
    #: argument positions that receive a *whole* value rather than one
    #: element per row (e.g. @member's candidate pool, @like's pattern);
    #: fused kernels must not slice these per chunk.
    broadcast_args: tuple = ()

    @property
    def is_pure(self) -> bool:
        """True when re-evaluating is safe (everything except sources)."""
        return self.kind != "source"

    @property
    def is_fusable(self) -> bool:
        return self.kind in ("elementwise", "compress", "reduction")


BUILTINS: dict[str, Builtin] = {}


def get(name: str) -> Builtin:
    try:
        return BUILTINS[name]
    except KeyError:
        raise BuiltinError(f"unknown builtin @{name}") from None


def exists(name: str) -> bool:
    return name in BUILTINS


def run_profiled(builtin: Builtin, args: list[Value], ctx: EvalContext,
                 profile) -> Value:
    """Run ``builtin`` and feed its output size to the profile's
    per-builtin breakdown.

    The breakdown only attributes bytes the *statement-level* charge
    (interpreter assignment / opaque plan item) already counted, so it
    never touches ``bytes_allocated`` — see
    :meth:`repro.obs.prof.AllocationProfile.record_builtin`.
    Reference-returning builtins (``@load_table``, ``@column_value``)
    are skipped: handing out a view of base data materializes nothing.
    """
    result = builtin.run(args, ctx)
    if builtin.name not in _REFERENCE_BUILTINS:
        profile.record_builtin(builtin.name, value_nbytes(result))
    return result


def _register(builtin: Builtin) -> None:
    if builtin.name in BUILTINS:
        raise BuiltinError(f"duplicate builtin @{builtin.name}")
    BUILTINS[builtin.name] = builtin


def _expect_arity(name: str, args: Sequence, arity: int) -> None:
    if len(args) != arity:
        raise BuiltinError(
            f"@{name} expects {arity} argument(s), got {len(args)}")


def _as_vector(name: str, value: Value) -> Vector:
    if not isinstance(value, Vector):
        raise BuiltinError(
            f"@{name} expects a vector argument, got {type(value).__name__}")
    return value


# ---------------------------------------------------------------------------
# Type-inference helpers
# ---------------------------------------------------------------------------

def _infer_promote(arg_types: list[ht.HorseType]) -> ht.HorseType:
    result = arg_types[0]
    for t in arg_types[1:]:
        if result.is_wildcard or t.is_wildcard:
            return ht.WILDCARD
        result = ht.promote(result, t)
    return result


def _infer_bool(_: list[ht.HorseType]) -> ht.HorseType:
    return ht.BOOL


def _infer_f64(_: list[ht.HorseType]) -> ht.HorseType:
    return ht.F64


def _infer_i64(_: list[ht.HorseType]) -> ht.HorseType:
    return ht.I64


def _infer_first(arg_types: list[ht.HorseType]) -> ht.HorseType:
    return arg_types[0]


def _infer_second(arg_types: list[ht.HorseType]) -> ht.HorseType:
    return arg_types[1]


def _infer_sum(arg_types: list[ht.HorseType]) -> ht.HorseType:
    t = arg_types[0]
    if t.is_wildcard:
        return ht.WILDCARD
    if ht.is_float(t):
        return t
    return ht.I64


def _infer_table(_: list[ht.HorseType]) -> ht.HorseType:
    return ht.TABLE


def _infer_list(arg_types: list[ht.HorseType]) -> ht.HorseType:
    kinds = set(arg_types)
    if len(kinds) == 1:
        return ht.list_of(arg_types[0])
    return ht.list_of(ht.WILDCARD)


def _infer_wild(_: list[ht.HorseType]) -> ht.HorseType:
    return ht.WILDCARD


# ---------------------------------------------------------------------------
# Elementwise builtins
# ---------------------------------------------------------------------------

def _make_elementwise(name: str, arity: int, fn, infer, template: str,
                      broadcast_args: tuple = (),
                      ufunc: str | None = None,
                      c_template: str | None = None) -> None:
    def run(args: list[Value], _: EvalContext) -> Value:
        _expect_arity(name, args, arity)
        # Length-one vectors broadcast as true scalars: NumPy's scalar
        # fast paths make this measurably cheaper than 1-element arrays.
        arrays = [
            vec.data if len(vec.data) != 1 else vec.data[0]
            for vec in (_as_vector(name, a) for a in args)
        ]
        try:
            result = fn(*arrays)
        except (TypeError, ValueError) as exc:
            raise BuiltinError(f"@{name} failed: {exc}") from exc
        result = np.asarray(result)
        if result.ndim == 0:
            result = result.reshape(1)
        arg_types = [a.type for a in args]
        out_type = infer(arg_types)
        if out_type.is_wildcard:
            out_type = ht.type_of_dtype(result.dtype)
        return Vector(out_type, result.astype(ht.numpy_dtype(out_type),
                                              copy=False))

    _register(Builtin(name, "elementwise", arity, infer, run,
                      template=template, broadcast_args=broadcast_args,
                      ufunc=ufunc, c_template=c_template))


def _object_aware(op):
    """Wrap a NumPy ufunc so comparisons on object (string) arrays work."""
    def apply(a, b):
        return op(a, b)
    return apply


_make_elementwise("add", 2, np.add, _infer_promote, "({0} + {1})", ufunc="np.add",
                  c_template='({0} + {1})')
_make_elementwise("sub", 2, np.subtract, _infer_promote, "({0} - {1})", ufunc="np.subtract",
                  c_template='({0} - {1})')
_make_elementwise("mul", 2, np.multiply, _infer_promote, "({0} * {1})", ufunc="np.multiply",
                  c_template='({0} * {1})')
_make_elementwise("div", 2, np.true_divide, _infer_f64, "({0} / {1})", ufunc="np.true_divide",
                  c_template='((double){0} / (double){1})')
_make_elementwise("mod", 2, np.mod, _infer_promote, "np.mod({0}, {1})", ufunc="np.mod",
                  c_template='fmod((double){0}, (double){1})')
_make_elementwise("power", 2, np.power, _infer_f64, "np.power({0}, {1})", ufunc="np.power",
                  c_template='pow((double){0}, (double){1})')
_make_elementwise("neg", 1, np.negative, _infer_first, "(-{0})", ufunc="np.negative",
                  c_template='(-{0})')
_make_elementwise("abs", 1, np.abs, _infer_first, "np.abs({0})", ufunc="np.abs",
                  c_template='fabs((double){0})')
_make_elementwise("exp", 1, np.exp, _infer_f64, "np.exp({0})", ufunc="np.exp",
                  c_template='exp((double){0})')
_make_elementwise("log", 1, np.log, _infer_f64, "np.log({0})", ufunc="np.log",
                  c_template='log((double){0})')
_make_elementwise("sqrt", 1, np.sqrt, _infer_f64, "np.sqrt({0})", ufunc="np.sqrt",
                  c_template='sqrt((double){0})')
_make_elementwise("floor", 1, np.floor, _infer_first, "np.floor({0})", ufunc="np.floor",
                  c_template='floor((double){0})')
_make_elementwise("ceil", 1, np.ceil, _infer_first, "np.ceil({0})", ufunc="np.ceil",
                  c_template='ceil((double){0})')
_make_elementwise("round", 1, np.round, _infer_first, "np.round({0})")
_make_elementwise("sign", 1, np.sign, _infer_first, "np.sign({0})", ufunc="np.sign",
                  c_template='(({0} > 0) - ({0} < 0))')

_make_elementwise("lt", 2, _object_aware(np.less), _infer_bool,
                  "({0} < {1})", ufunc="np.less",
                  c_template='({0} < {1})')
_make_elementwise("gt", 2, _object_aware(np.greater), _infer_bool,
                  "({0} > {1})", ufunc="np.greater",
                  c_template='({0} > {1})')
_make_elementwise("leq", 2, _object_aware(np.less_equal), _infer_bool,
                  "({0} <= {1})", ufunc="np.less_equal",
                  c_template='({0} <= {1})')
_make_elementwise("geq", 2, _object_aware(np.greater_equal), _infer_bool,
                  "({0} >= {1})", ufunc="np.greater_equal",
                  c_template='({0} >= {1})')
_make_elementwise("eq", 2, _object_aware(np.equal), _infer_bool,
                  "({0} == {1})", ufunc="np.equal",
                  c_template='({0} == {1})')
_make_elementwise("neq", 2, _object_aware(np.not_equal), _infer_bool,
                  "({0} != {1})", ufunc="np.not_equal",
                  c_template='({0} != {1})')

_make_elementwise("and", 2, np.logical_and, _infer_bool,
                  "np.logical_and({0}, {1})", ufunc="np.logical_and",
                  c_template='({0} && {1})')
_make_elementwise("or", 2, np.logical_or, _infer_bool,
                  "np.logical_or({0}, {1})", ufunc="np.logical_or",
                  c_template='({0} || {1})')
_make_elementwise("not", 1, np.logical_not, _infer_bool,
                  "np.logical_not({0})", ufunc="np.logical_not",
                  c_template='(!{0})')
_make_elementwise("min2", 2, np.minimum, _infer_promote,
                  "np.minimum({0}, {1})", ufunc="np.minimum",
                  # NaN-propagating, like np.minimum (a plain ternary
                  # would return the non-NaN operand).
                  c_template='(({0} != {0}) ? {0} : (({1} != {1}) ? {1} '
                             ': (({0} < {1}) ? {0} : {1})))')
_make_elementwise("max2", 2, np.maximum, _infer_promote,
                  "np.maximum({0}, {1})", ufunc="np.maximum",
                  c_template='(({0} != {0}) ? {0} : (({1} != {1}) ? {1} '
                             ': (({0} > {1}) ? {0} : {1})))')
_make_elementwise("if_else", 3, lambda m, a, b: np.where(m, a, b),
                  _infer_second, "np.where({0}, {1}, {2})",
                  c_template='({0} ? {1} : {2})')


def _date_part(part: str):
    def extract(a):
        years = a.astype("datetime64[Y]")
        if part == "year":
            return years.astype(np.int64) + 1970
        months = a.astype("datetime64[M]")
        if part == "month":
            return (months.astype(np.int64) -
                    years.astype("datetime64[M]").astype(np.int64)) + 1
        return (a.astype("datetime64[D]").astype(np.int64) -
                months.astype("datetime64[D]").astype(np.int64)) + 1
    return extract


_make_elementwise("date_year", 1, _date_part("year"), _infer_i64,
                  "(({0}).astype('datetime64[Y]').astype(np.int64) + 1970)")
_make_elementwise("date_month", 1, _date_part("month"), _infer_i64, None)
_make_elementwise("date_day", 1, _date_part("day"), _infer_i64, None)


def _date_to_i64(a):
    return a.astype("datetime64[D]").astype(np.int64)


_make_elementwise("date_to_i64", 1, _date_to_i64, _infer_i64,
                  "({0}).astype('datetime64[D]').astype(np.int64)")


# String builtins.  These operate on object arrays; they are elementwise in
# the fusion sense, but their templates use helper functions bound into the
# kernel namespace by the code generator.

def _scalar_operand(value):
    """Unwrap a scalar operand that may arrive as a str or 1-array."""
    if isinstance(value, str):
        return value
    array = np.asarray(value).reshape(-1)
    if len(array) != 1:
        return None
    return array[0]


def _np_like(values: np.ndarray, patterns) -> np.ndarray:
    pattern = _scalar_operand(patterns)
    if pattern is None:
        raise BuiltinError("@like expects a scalar pattern")
    regex = _like_regex(pattern)
    return np.fromiter((bool(regex.match(v)) for v in values),
                       dtype=np.bool_, count=len(values))


def _like_regex(pattern: str) -> "re.Pattern[str]":
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out) + r"\Z", re.DOTALL)


_make_elementwise("like", 2, _np_like, _infer_bool,
                  "_like({0}, {1})", broadcast_args=(1,))


def _np_startswith(values: np.ndarray, prefixes) -> np.ndarray:
    prefix = _scalar_operand(prefixes)
    if prefix is None:
        raise BuiltinError("@startswith expects a scalar prefix")
    return np.fromiter((v.startswith(prefix) for v in values),
                       dtype=np.bool_, count=len(values))


_make_elementwise("startswith", 2, _np_startswith, _infer_bool,
                  "_startswith({0}, {1})", broadcast_args=(1,))


def _np_member(values: np.ndarray, candidates) -> np.ndarray:
    if isinstance(candidates, str):
        pool = {candidates}
        candidates = np.array([candidates], dtype=object)
    else:
        pool = set(np.asarray(candidates).tolist())
    if values.dtype == object:
        return np.fromiter((v in pool for v in values),
                           dtype=np.bool_, count=len(values))
    return np.isin(values, candidates)


_make_elementwise("member", 2, _np_member, _infer_bool,
                  "_member({0}, {1})", broadcast_args=(1,))


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------

def _make_reduction(name: str, fn, infer, template: str,
                    combine: str) -> None:
    def run(args: list[Value], _: EvalContext) -> Value:
        _expect_arity(name, args, 1)
        data = _as_vector(name, args[0]).data
        out_type = infer([args[0].type])
        if len(data) == 0:
            value = _reduction_identity(name, out_type)
        else:
            value = fn(data)
        result = np.empty(1, dtype=ht.numpy_dtype(out_type))
        result[0] = value
        return Vector(out_type, result)

    _register(Builtin(name, "reduction", 1, infer, run,
                      template=template, combine=combine))


def _reduction_identity(name: str, out_type: ht.HorseType):
    if name in ("sum", "count"):
        return 0
    if name == "prod":
        return 1
    if name == "avg":
        return float("nan")
    if name == "any":
        return False
    if name == "all":
        return True
    raise BuiltinError(f"@{name} of an empty vector")


_make_reduction("sum", np.sum, _infer_sum, "np.sum({0})", "sum")
_make_reduction("prod", np.prod, _infer_sum, "np.prod({0})", "prod")
_make_reduction("avg", np.mean, _infer_f64, "np.sum({0})", "avg")
# min/max chunk partials use a guarded helper: a chunk whose compressed
# selection is empty yields a None partial (dropped by the combiner)
# instead of np.min's raw ValueError on a zero-size array.
_make_reduction("min", np.min, _infer_first, "_chunk_min({0})", "min")
_make_reduction("max", np.max, _infer_first, "_chunk_max({0})", "max")
_make_reduction("count", len, _infer_i64, "np.int64(len({0}))", "sum")
_make_reduction("any", np.any, _infer_bool, "np.any({0})", "any")
_make_reduction("all", np.all, _infer_bool, "np.all({0})", "all")


# ---------------------------------------------------------------------------
# Compress / index / scan
# ---------------------------------------------------------------------------

def _run_compress(args: list[Value], _: EvalContext) -> Value:
    _expect_arity("compress", args, 2)
    mask = _as_vector("compress", args[0])
    data = _as_vector("compress", args[1])
    if mask.type != ht.BOOL:
        raise BuiltinError("@compress mask must be bool")
    if len(mask) != len(data):
        raise BuiltinError(
            f"@compress length mismatch: mask {len(mask)}, data {len(data)}")
    return Vector(data.type, data.data[mask.data])


_register(Builtin("compress", "compress", 2, _infer_second, _run_compress))


def _run_index(args: list[Value], _: EvalContext) -> Value:
    _expect_arity("index", args, 2)
    data = _as_vector("index", args[0])
    idx = _as_vector("index", args[1])
    if not ht.is_integer(idx.type):
        raise BuiltinError("@index indices must be integers")
    return Vector(data.type, data.data[idx.data])


_register(Builtin("index", "opaque", 2, _infer_first, _run_index))


def _run_where(args: list[Value], _: EvalContext) -> Value:
    _expect_arity("where", args, 1)
    mask = _as_vector("where", args[0])
    return Vector(ht.I64, np.nonzero(mask.data)[0].astype(np.int64))


_register(Builtin("where", "opaque", 1, _infer_i64, _run_where))


def _run_cumsum(args: list[Value], _: EvalContext) -> Value:
    _expect_arity("cumsum", args, 1)
    data = _as_vector("cumsum", args[0])
    out_type = _infer_sum([data.type])
    return Vector(out_type,
                  np.cumsum(data.data).astype(ht.numpy_dtype(out_type)))


_register(Builtin("cumsum", "scan", 1, _infer_sum, _run_cumsum))


# ---------------------------------------------------------------------------
# Vector constructors and reshaping
# ---------------------------------------------------------------------------

def _run_range(args: list[Value], _: EvalContext) -> Value:
    _expect_arity("range", args, 1)
    n = _as_vector("range", args[0]).item()
    return Vector(ht.I64, np.arange(int(n), dtype=np.int64))


_register(Builtin("range", "opaque", 1, _infer_i64, _run_range))


def _run_fill(args: list[Value], _: EvalContext) -> Value:
    _expect_arity("fill", args, 2)
    n = int(_as_vector("fill", args[0]).item())
    value = _as_vector("fill", args[1])
    return Vector(value.type,
                  np.full(n, value.data[0], dtype=value.data.dtype))


_register(Builtin("fill", "opaque", 2, _infer_second, _run_fill))


def _run_concat(args: list[Value], _: EvalContext) -> Value:
    if not args:
        raise BuiltinError("@concat expects at least one argument")
    vectors = [_as_vector("concat", a) for a in args]
    out_type = vectors[0].type
    for v in vectors[1:]:
        out_type = ht.unify(out_type, v.type)
    dtype = ht.numpy_dtype(out_type)
    return Vector(out_type, np.concatenate(
        [v.data.astype(dtype, copy=False) for v in vectors]))


_register(Builtin("concat", "opaque", None, _infer_first, _run_concat))


def _run_len(args: list[Value], _: EvalContext) -> Value:
    _expect_arity("len", args, 1)
    value = args[0]
    if isinstance(value, Vector):
        return scalar(len(value), ht.I64)
    if isinstance(value, ListValue):
        return scalar(len(value), ht.I64)
    if isinstance(value, TableValue):
        return scalar(value.num_rows, ht.I64)
    raise BuiltinError(f"@len of {type(value).__name__}")


_register(Builtin("len", "opaque", 1, _infer_i64, _run_len))


def _run_reverse(args: list[Value], _: EvalContext) -> Value:
    _expect_arity("reverse", args, 1)
    data = _as_vector("reverse", args[0])
    return Vector(data.type, data.data[::-1].copy())


_register(Builtin("reverse", "opaque", 1, _infer_first, _run_reverse))


def _run_unique(args: list[Value], _: EvalContext) -> Value:
    _expect_arity("unique", args, 1)
    data = _as_vector("unique", args[0])
    if data.data.dtype == object:
        seen: dict = {}
        for item in data.data:
            seen.setdefault(item, None)
        out = np.empty(len(seen), dtype=object)
        for i, item in enumerate(seen):
            out[i] = item
        return Vector(data.type, out)
    _, first = np.unique(data.data, return_index=True)
    return Vector(data.type, data.data[np.sort(first)])


_register(Builtin("unique", "opaque", 1, _infer_first, _run_unique))


# ---------------------------------------------------------------------------
# Database builtins: tables, grouping, joins, ordering
# ---------------------------------------------------------------------------

def _run_load_table(args: list[Value], ctx: EvalContext) -> Value:
    _expect_arity("load_table", args, 1)
    name = _as_vector("load_table", args[0]).item()
    try:
        return ctx.tables[name]
    except KeyError:
        raise BuiltinError(f"@load_table: unknown table {name!r}") from None


_register(Builtin("load_table", "source", 1, _infer_table, _run_load_table))


def _run_column_value(args: list[Value], _: EvalContext) -> Value:
    _expect_arity("column_value", args, 2)
    table = args[0]
    if not isinstance(table, TableValue):
        raise BuiltinError("@column_value expects a table")
    name = _as_vector("column_value", args[1]).item()
    return table.column(name)


_register(Builtin("column_value", "opaque", 2, _infer_wild,
                  _run_column_value))


def _run_table(args: list[Value], _: EvalContext) -> Value:
    _expect_arity("table", args, 2)
    names = _as_vector("table", args[0])
    columns = args[1]
    if not isinstance(columns, ListValue):
        raise BuiltinError("@table expects a list of columns")
    if len(names) != len(columns):
        raise BuiltinError(
            f"@table: {len(names)} names for {len(columns)} columns")
    return TableValue([(str(name), _as_vector("table", col))
                       for name, col in zip(names.data, columns)])


_register(Builtin("table", "opaque", 2, _infer_table, _run_table))


def _run_list(args: list[Value], _: EvalContext) -> Value:
    return ListValue(list(args))


_register(Builtin("list", "opaque", None, _infer_list, _run_list))


def _run_list_item(args: list[Value], _: EvalContext) -> Value:
    _expect_arity("list_item", args, 2)
    lst = args[0]
    if not isinstance(lst, ListValue):
        raise BuiltinError("@list_item expects a list")
    index = int(_as_vector("list_item", args[1]).item())
    try:
        return lst[index]
    except IndexError:
        raise BuiltinError(
            f"@list_item index {index} out of range "
            f"for list of {len(lst)}") from None


_register(Builtin("list_item", "opaque", 2, _infer_wild, _run_list_item))


def _factorize(data: np.ndarray) -> tuple[np.ndarray, int]:
    """Dense codes for one column.

    Object (string) columns use a hash-based pass — ``np.unique`` would
    sort with per-element Python comparisons, which dominates group-by on
    TPC-H's categorical strings.  Numeric columns use ``np.unique``.
    """
    if data.dtype == object:
        try:
            # Fixed-width unicode re-encoding lets np.unique run its
            # C-level sort instead of per-element Python comparisons —
            # the dictionary-encoded grouping a real column store gets
            # for free.
            fixed = np.asarray(data, dtype=np.str_)
        except (TypeError, ValueError):
            fixed = None
        if fixed is not None:
            _, inverse = np.unique(fixed, return_inverse=True)
            cardinality = int(inverse.max()) + 1 if len(inverse) else 0
            return inverse.astype(np.int64), cardinality
        seen: dict = {}
        codes = np.empty(len(data), dtype=np.int64)
        for index, value in enumerate(data):
            code = seen.get(value)
            if code is None:
                code = len(seen)
                seen[value] = code
            codes[index] = code
        return codes, len(seen)
    _, inverse = np.unique(data, return_inverse=True)
    cardinality = int(inverse.max()) + 1 if len(inverse) else 0
    return inverse.astype(np.int64), cardinality


def _group_codes(keys: list[Vector]) -> tuple[np.ndarray, np.ndarray]:
    """Factorize one or more key columns.

    Returns ``(codes, first_index)`` where ``codes[i]`` is the dense group
    id of row ``i`` (group ids ordered by first appearance) and
    ``first_index[g]`` is the row index where group ``g`` first appears.
    """
    n = len(keys[0])
    if n == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    if len(keys) == 1 and keys[0].data.dtype != object:
        combined = keys[0].data
    else:
        # Combine per-column dense codes into one composite integer key.
        combined = np.zeros(n, dtype=np.int64)
        for key in keys:
            codes, cardinality = _factorize(key.data)
            combined = combined * max(cardinality, 1) + codes
            if cardinality and len(combined) and \
                    combined.max() > (1 << 55):
                # Keep composite keys dense to avoid int64 overflow.
                combined, _ = _factorize(combined)
    _, first, inverse = np.unique(combined, return_index=True,
                                  return_inverse=True)
    # Re-number groups by first appearance (np.unique sorts by value).
    order = np.argsort(first, kind="stable")
    remap = np.empty(len(order), dtype=np.int64)
    remap[order] = np.arange(len(order))
    return (remap[inverse].astype(np.int64),
            first[order].astype(np.int64))


def _group_keys(args: list[Value]) -> list[Vector]:
    keys: list[Vector] = []
    for arg in args:
        if isinstance(arg, ListValue):
            keys.extend(_as_vector("group", item) for item in arg)
        else:
            keys.append(_as_vector("group", arg))
    if not keys:
        raise BuiltinError("@group expects at least one key column")
    return keys


def _run_group(args: list[Value], _: EvalContext) -> Value:
    """``@group(keys...) -> list(first_index, codes)``.

    ``first_index`` selects one representative row per distinct key (in
    first-appearance order); ``codes`` assigns each row its group id.
    """
    keys = _group_keys(args)
    codes, first = _group_codes(keys)
    return ListValue([Vector(ht.I64, first), Vector(ht.I64, codes)])


_register(Builtin("group", "opaque", None,
                  lambda _: ht.list_of(ht.I64), _run_group))


def _segmented(name: str, fn_dense, fn_sparse=None):
    def run(args: list[Value], _: EvalContext) -> Value:
        _expect_arity(name, args, 3)
        values = _as_vector(name, args[0])
        codes = _as_vector(name, args[1]).data
        ngroups = int(_as_vector(name, args[2]).item())
        return fn_dense(values, codes, ngroups)
    return run


def _group_sum_impl(values: Vector, codes: np.ndarray,
                    ngroups: int) -> Vector:
    out_type = _infer_sum([values.type])
    data = values.data
    if data.dtype == np.bool_ or data.dtype.kind in ("i", "u"):
        data = data.astype(np.int64)
    result = np.bincount(codes, weights=data.astype(np.float64),
                         minlength=ngroups)
    return Vector(out_type, result.astype(ht.numpy_dtype(out_type)))


def _group_count_impl(values: Vector, codes: np.ndarray,
                      ngroups: int) -> Vector:
    result = np.bincount(codes, minlength=ngroups)
    return Vector(ht.I64, result.astype(np.int64))


def _group_avg_impl(values: Vector, codes: np.ndarray,
                    ngroups: int) -> Vector:
    sums = np.bincount(codes, weights=values.data.astype(np.float64),
                       minlength=ngroups)
    counts = np.bincount(codes, minlength=ngroups)
    with np.errstate(invalid="ignore"):
        return Vector(ht.F64, sums / counts)


def _group_extreme(ufunc):
    def impl(values: Vector, codes: np.ndarray, ngroups: int) -> Vector:
        data = values.data
        if data.dtype == object:
            raise BuiltinError("group min/max of string columns unsupported")
        init = _dtype_extreme(data.dtype, high=(ufunc is np.minimum))
        out = np.full(ngroups, init, dtype=data.dtype)
        ufunc.at(out, codes, data)
        return Vector(values.type, out)
    return impl


def _dtype_extreme(dtype: np.dtype, *, high: bool):
    if dtype.kind == "f":
        return np.inf if high else -np.inf
    if dtype.kind == "M":
        return (np.datetime64("9999-12-31") if high
                else np.datetime64("0001-01-01"))
    info = np.iinfo(dtype)
    return info.max if high else info.min


_register(Builtin("group_sum", "opaque", 3, _infer_sum,
                  _segmented("group_sum", _group_sum_impl)))
_register(Builtin("group_count", "opaque", 3, _infer_i64,
                  _segmented("group_count", _group_count_impl)))
_register(Builtin("group_avg", "opaque", 3, _infer_f64,
                  _segmented("group_avg", _group_avg_impl)))
_register(Builtin("group_min", "opaque", 3, _infer_first,
                  _segmented("group_min", _group_extreme(np.minimum))))
_register(Builtin("group_max", "opaque", 3, _infer_first,
                  _segmented("group_max", _group_extreme(np.maximum))))


def _join_keys(value: Value) -> list[Vector]:
    if isinstance(value, ListValue):
        return [_as_vector("join_index", item) for item in value]
    return [_as_vector("join_index", value)]


def _run_join_index(args: list[Value], _: EvalContext) -> Value:
    """``@join_index(left_keys, right_keys, kind) -> list(lidx, ridx)``.

    ``kind`` is a symbol: ``inner`` or ``left``.  A hash join: build on the
    right input, probe with the left.  Left-outer probes that miss emit a
    right index of ``-1`` (callers pad with null surrogates).
    """
    _expect_arity("join_index", args, 3)
    left = _join_keys(args[0])
    right = _join_keys(args[1])
    kind = _as_vector("join_index", args[2]).item()
    if kind not in ("inner", "left"):
        raise BuiltinError(f"@join_index: unsupported kind {kind!r}")
    if len(left) != len(right):
        raise BuiltinError("@join_index: key column count mismatch")

    if len(left) == 1 and left[0].data.dtype != object:
        lidx, ridx = _join_single_numeric(left[0].data, right[0].data, kind)
    else:
        lidx, ridx = _join_generic(left, right, kind)
    return ListValue([Vector(ht.I64, lidx), Vector(ht.I64, ridx)])


def _join_single_numeric(left: np.ndarray, right: np.ndarray,
                         kind: str) -> tuple[np.ndarray, np.ndarray]:
    order = np.argsort(right, kind="stable")
    sorted_right = right[order]
    lo = np.searchsorted(sorted_right, left, side="left")
    hi = np.searchsorted(sorted_right, left, side="right")
    counts = hi - lo
    lidx = np.repeat(np.arange(len(left), dtype=np.int64), counts)
    offsets = np.repeat(hi - np.cumsum(counts), counts)
    ridx = order[np.arange(len(lidx), dtype=np.int64) + offsets]
    if kind == "left":
        misses = np.nonzero(counts == 0)[0].astype(np.int64)
        if len(misses):
            lidx = np.concatenate([lidx, misses])
            ridx = np.concatenate(
                [ridx, np.full(len(misses), -1, dtype=np.int64)])
            resort = np.argsort(lidx, kind="stable")
            lidx, ridx = lidx[resort], ridx[resort]
    return lidx.astype(np.int64), ridx.astype(np.int64)


def _join_generic(left: list[Vector], right: list[Vector],
                  kind: str) -> tuple[np.ndarray, np.ndarray]:
    build: dict = {}
    right_cols = [v.data for v in right]
    for i in range(len(right_cols[0])):
        key = tuple(col[i] for col in right_cols)
        build.setdefault(key, []).append(i)
    lidx: list[int] = []
    ridx: list[int] = []
    left_cols = [v.data for v in left]
    for i in range(len(left_cols[0])):
        key = tuple(col[i] for col in left_cols)
        matches = build.get(key)
        if matches:
            lidx.extend([i] * len(matches))
            ridx.extend(matches)
        elif kind == "left":
            lidx.append(i)
            ridx.append(-1)
    return (np.asarray(lidx, dtype=np.int64),
            np.asarray(ridx, dtype=np.int64))


_register(Builtin("join_index", "opaque", 3,
                  lambda _: ht.list_of(ht.I64), _run_join_index))


def _run_order(args: list[Value], _: EvalContext) -> Value:
    """``@order(keys, ascending) -> i64`` sort permutation (stable).

    ``keys`` is a vector or a list of vectors (major key first);
    ``ascending`` is a bool vector with one flag per key.
    """
    _expect_arity("order", args, 2)
    keys = _join_keys(args[0])
    ascending = _as_vector("order", args[1]).data
    if len(ascending) != len(keys):
        raise BuiltinError("@order: one ascending flag per key required")
    columns = []
    # np.lexsort sorts by the *last* key first, so feed minor-to-major.
    for key, asc in zip(reversed(keys), reversed(ascending.tolist())):
        data = key.data
        if data.dtype == object:
            ranks = _string_ranks(data)
            columns.append(ranks if asc else -ranks)
        elif data.dtype.kind == "M":
            as_int = data.astype(np.int64)
            columns.append(as_int if asc else -as_int)
        else:
            columns.append(data if asc else -data.astype(np.float64))
    return Vector(ht.I64, np.lexsort(columns).astype(np.int64))


def _string_ranks(data: np.ndarray) -> np.ndarray:
    unique_sorted = sorted(set(data.tolist()))
    rank = {value: i for i, value in enumerate(unique_sorted)}
    return np.fromiter((rank[v] for v in data), dtype=np.int64,
                       count=len(data))


_register(Builtin("order", "opaque", 2, _infer_i64, _run_order))


def _run_take(args: list[Value], _: EvalContext) -> Value:
    _expect_arity("take", args, 2)
    data = _as_vector("take", args[0])
    n = int(_as_vector("take", args[1]).item())
    return Vector(data.type, data.data[:n].copy())


_register(Builtin("take", "opaque", 2, _infer_first, _run_take))


# ---------------------------------------------------------------------------
# Pattern-fusion targets (installed by the optimizer's pattern pass)
# ---------------------------------------------------------------------------

def _run_sum_masked(args: list[Value], _: EvalContext) -> Value:
    """``@sum_masked(mask, x)`` == ``@sum(@compress(mask, x))``.

    Evaluated as one multiply-add pass (a dot product against the mask) for
    float data — the template the paper's pattern-based fusion would emit.
    """
    _expect_arity("sum_masked", args, 2)
    mask = _as_vector("sum_masked", args[0])
    data = _as_vector("sum_masked", args[1])
    if mask.type != ht.BOOL:
        raise BuiltinError("@sum_masked mask must be bool")
    if len(mask) != len(data):
        raise BuiltinError("@sum_masked length mismatch")
    out_type = _infer_sum([data.type])
    if data.data.dtype.kind == "f":
        # Zero masked-out lanes *before* the multiply-add: 0 * NaN would
        # otherwise leak NaN/inf from deselected rows into the total.
        value = np.dot(mask.data.astype(data.data.dtype),
                       np.where(mask.data, data.data, 0.0))
    else:
        value = data.data[mask.data].sum()
    result = np.empty(1, dtype=ht.numpy_dtype(out_type))
    result[0] = value
    return Vector(out_type, result)


_register(Builtin("sum_masked", "opaque", 2,
                  lambda ts: _infer_sum([ts[1]]), _run_sum_masked))


def _run_dot_masked(args: list[Value], _: EvalContext) -> Value:
    """``@dot_masked(mask, x, y)`` ==
    ``@sum(@mul(@compress(mask, x), @compress(mask, y)))``.

    One fused pass: no compressed operands are materialized (Figure 3).
    """
    _expect_arity("dot_masked", args, 3)
    mask = _as_vector("dot_masked", args[0])
    x = _as_vector("dot_masked", args[1])
    y = _as_vector("dot_masked", args[2])
    if mask.type != ht.BOOL:
        raise BuiltinError("@dot_masked mask must be bool")
    if not (len(mask) == len(x) == len(y)):
        raise BuiltinError("@dot_masked length mismatch")
    out_type = _infer_sum([ht.promote(x.type, y.type)])
    # Zero both operands in masked-out lanes: either side may hold
    # NaN/inf there, and 0 * NaN is NaN.
    value = np.dot(np.where(mask.data, x.data, 0),
                   np.where(mask.data, y.data, 0))
    result = np.empty(1, dtype=ht.numpy_dtype(out_type))
    result[0] = value
    return Vector(out_type, result)


_register(Builtin("dot_masked", "opaque", 3,
                  lambda ts: _infer_sum([_infer_promote(ts[1:])]),
                  _run_dot_masked))


def _run_subseq(args: list[Value], _: EvalContext) -> Value:
    """``@subseq(x, a, b)`` — the 1-based inclusive slice ``x(a:b)``.

    The pattern-lowered form of indexing with a unit-step range: returns a
    zero-copy view, the way compiled code would fold ``A(a:b)`` into
    pointer arithmetic instead of a gather.
    """
    _expect_arity("subseq", args, 3)
    data = _as_vector("subseq", args[0])
    start = int(round(float(_as_vector("subseq", args[1]).item())))
    stop = int(round(float(_as_vector("subseq", args[2]).item())))
    if start < 1 or stop > len(data):
        raise BuiltinError(
            f"@subseq bounds {start}:{stop} out of range for "
            f"length {len(data)}")
    return Vector(data.type, data.data[start - 1:stop])


_register(Builtin("subseq", "opaque", 3, _infer_first, _run_subseq))


# ---------------------------------------------------------------------------
# Static signatures (consumed by repro.core.analysis.typeshape)
# ---------------------------------------------------------------------------

class BuiltinSig(NamedTuple):
    """Static contract of one builtin, for the type/shape checker.

    ``args`` lists one *constraint kind* per argument position (see
    :data:`CONSTRAINT_KINDS`); with ``variadic=True`` the last entry
    repeats for every extra argument.  ``shape`` names the result-shape
    rule the inference engine applies (``"elementwise"`` broadcasts the
    argument lengths, ``"reduction"`` yields a scalar, ``"same:N"``
    copies argument *N*'s shape, and so on — the full rule inventory
    lives in :mod:`repro.core.analysis.typeshape`)."""

    args: tuple
    shape: str
    variadic: bool = False


#: Constraint vocabulary.  ``any`` admits every type; the rest restrict
#: the *element* type of a vector argument (wildcards always pass —
#: they re-check at runtime, exactly as before this table existed).
CONSTRAINT_KINDS = ("any", "numeric", "numeric_or_date", "bool",
                    "integer", "comparable", "strlike", "date",
                    "table", "list", "sym", "vector")

_EW2 = ("numeric", "numeric")
_CMP2 = ("comparable", "comparable")

SIGNATURES: dict[str, BuiltinSig] = {
    # arithmetic
    "add": BuiltinSig(("numeric_or_date", "numeric_or_date"),
                      "elementwise"),
    "sub": BuiltinSig(("numeric_or_date", "numeric_or_date"),
                      "elementwise"),
    "mul": BuiltinSig(_EW2, "elementwise"),
    "div": BuiltinSig(_EW2, "elementwise"),
    "mod": BuiltinSig(_EW2, "elementwise"),
    "power": BuiltinSig(_EW2, "elementwise"),
    "neg": BuiltinSig(("numeric",), "elementwise"),
    "abs": BuiltinSig(("numeric",), "elementwise"),
    "exp": BuiltinSig(("numeric",), "elementwise"),
    "log": BuiltinSig(("numeric",), "elementwise"),
    "sqrt": BuiltinSig(("numeric",), "elementwise"),
    "floor": BuiltinSig(("numeric",), "elementwise"),
    "ceil": BuiltinSig(("numeric",), "elementwise"),
    "round": BuiltinSig(("numeric",), "elementwise"),
    "sign": BuiltinSig(("numeric",), "elementwise"),
    # comparisons (same comparability group on both sides)
    "lt": BuiltinSig(_CMP2, "elementwise"),
    "gt": BuiltinSig(_CMP2, "elementwise"),
    "leq": BuiltinSig(_CMP2, "elementwise"),
    "geq": BuiltinSig(_CMP2, "elementwise"),
    "eq": BuiltinSig(("any", "any"), "elementwise"),
    "neq": BuiltinSig(("any", "any"), "elementwise"),
    # logical
    "and": BuiltinSig(("numeric", "numeric"), "elementwise"),
    "or": BuiltinSig(("numeric", "numeric"), "elementwise"),
    "not": BuiltinSig(("numeric",), "elementwise"),
    "min2": BuiltinSig(("numeric_or_date", "numeric_or_date"),
                       "elementwise"),
    "max2": BuiltinSig(("numeric_or_date", "numeric_or_date"),
                       "elementwise"),
    "if_else": BuiltinSig(("numeric", "any", "any"), "elementwise"),
    # dates
    "date_year": BuiltinSig(("date",), "elementwise"),
    "date_month": BuiltinSig(("date",), "elementwise"),
    "date_day": BuiltinSig(("date",), "elementwise"),
    "date_to_i64": BuiltinSig(("date",), "elementwise"),
    # strings
    "like": BuiltinSig(("strlike", "strlike"), "elementwise"),
    "startswith": BuiltinSig(("strlike", "strlike"), "elementwise"),
    "member": BuiltinSig(("vector", "vector"), "elementwise"),
    # reductions
    "sum": BuiltinSig(("numeric",), "reduction"),
    "prod": BuiltinSig(("numeric",), "reduction"),
    "avg": BuiltinSig(("numeric",), "reduction"),
    "min": BuiltinSig(("comparable",), "reduction"),
    "max": BuiltinSig(("comparable",), "reduction"),
    "count": BuiltinSig(("any",), "reduction"),
    "any": BuiltinSig(("numeric",), "reduction"),
    "all": BuiltinSig(("numeric",), "reduction"),
    # selection / scan
    "compress": BuiltinSig(("bool", "vector"), "compress"),
    "index": BuiltinSig(("vector", "integer"), "index"),
    "where": BuiltinSig(("numeric",), "where"),
    "cumsum": BuiltinSig(("numeric",), "same:0"),
    # constructors / reshaping
    "range": BuiltinSig(("numeric",), "range"),
    "fill": BuiltinSig(("numeric", "any"), "fill"),
    "concat": BuiltinSig(("vector",), "vector", variadic=True),
    "len": BuiltinSig(("any",), "scalar"),
    "reverse": BuiltinSig(("vector",), "same:0"),
    "unique": BuiltinSig(("vector",), "vector"),
    "take": BuiltinSig(("vector", "numeric"), "vector"),
    "subseq": BuiltinSig(("vector", "numeric", "numeric"), "vector"),
    # database
    "load_table": BuiltinSig(("sym",), "table"),
    "column_value": BuiltinSig(("table", "sym"), "column"),
    "table": BuiltinSig(("vector", "list"), "table"),
    "list": BuiltinSig(("any",), "list", variadic=True),
    "list_item": BuiltinSig(("list", "numeric"), "unknown"),
    "group": BuiltinSig(("any",), "list", variadic=True),
    "group_sum": BuiltinSig(("numeric", "integer", "integer"),
                            "group_agg"),
    "group_count": BuiltinSig(("vector", "integer", "integer"),
                              "group_agg"),
    "group_avg": BuiltinSig(("numeric", "integer", "integer"),
                            "group_agg"),
    "group_min": BuiltinSig(("vector", "integer", "integer"),
                            "group_agg"),
    "group_max": BuiltinSig(("vector", "integer", "integer"),
                            "group_agg"),
    "join_index": BuiltinSig(("any", "any", "sym"), "list"),
    "order": BuiltinSig(("any", "bool"), "vector"),
    # pattern-fusion targets
    "sum_masked": BuiltinSig(("bool", "numeric"), "masked_reduction"),
    "dot_masked": BuiltinSig(("bool", "numeric", "numeric"),
                             "masked_reduction"),
}


def signature(name: str) -> BuiltinSig | None:
    """Static signature for ``@name``; ``None`` for builtins the
    checker treats as fully dynamic."""
    return SIGNATURES.get(name)

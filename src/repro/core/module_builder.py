"""Fluent programmatic construction of HorseIR modules.

The textual parser is convenient for literals in tests and docs; tools
that *generate* IR (new frontends, query rewriters, fuzzers) want a
builder that handles temporaries, literal wrapping and verification:

    from repro.core.module_builder import ModuleBuilder

    b = ModuleBuilder("Revenue")
    with b.method("main", [], ht.F64) as m:
        t = m.call("load_table", m.sym("lineitem"), type=ht.TABLE)
        price = m.call("column_value", t, m.sym("l_extendedprice"),
                       type=ht.F64)
        disc = m.call("column_value", t, m.sym("l_discount"),
                      type=ht.F64)
        mask = m.call("geq", disc, 0.05, type=ht.BOOL)
        kept_p = m.call("compress", mask, price, type=ht.F64)
        kept_d = m.call("compress", mask, disc, type=ht.F64)
        m.ret(m.call("sum", m.call("mul", kept_p, kept_d, type=ht.F64),
                     type=ht.F64))
    module = b.build()   # verified

Python scalars auto-wrap as literals; every ``call`` yields a named
temporary usable as a later operand.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.core import builtins as hb
from repro.core import ir
from repro.core import types as ht
from repro.core.verify import verify_module
from repro.errors import HorseIRError

__all__ = ["ModuleBuilder", "MethodBuilder"]


class _Temp:
    """Handle to a value defined in the method under construction."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"Temp({self.name})"


def _to_expr(operand) -> ir.Expr:
    if isinstance(operand, _Temp):
        return ir.Var(operand.name)
    if isinstance(operand, ir.Expr):
        return operand
    if isinstance(operand, bool):
        return ir.Literal(operand, ht.BOOL)
    if isinstance(operand, int):
        return ir.Literal(operand, ht.I64)
    if isinstance(operand, float):
        return ir.Literal(operand, ht.F64)
    if isinstance(operand, str):
        return ir.Literal(operand, ht.STR)
    if isinstance(operand, np.datetime64):
        return ir.Literal(operand, ht.DATE)
    raise HorseIRError(
        f"cannot use {type(operand).__name__} as an operand")


class MethodBuilder:
    """Builds one method's body; obtained from
    :meth:`ModuleBuilder.method`."""

    def __init__(self, name: str, params: list[tuple[str, ht.HorseType]],
                 ret_type: ht.HorseType):
        self._name = name
        self._params = [ir.Param(n, t) for n, t in params]
        self._ret_type = ret_type
        self._body: list[ir.Stmt] = []
        self._body_stack: list[list[ir.Stmt]] = [self._body]
        self._counter = 0
        self._returned = False

    # -- operands ---------------------------------------------------------

    def param(self, name: str) -> _Temp:
        if not any(p.name == name for p in self._params):
            raise HorseIRError(f"method {self._name!r} has no parameter "
                               f"{name!r}")
        return _Temp(name)

    @staticmethod
    def sym(name: str) -> ir.Expr:
        return ir.SymbolLit(name)

    @staticmethod
    def lit(value, type_: ht.HorseType) -> ir.Expr:
        return ir.Literal(value, type_)

    # -- statements ---------------------------------------------------------

    def _fresh(self, hint: str) -> str:
        self._counter += 1
        return f"{hint}{self._counter}"

    def _emit(self, type_: ht.HorseType, expr: ir.Expr,
              name: str | None = None) -> _Temp:
        target = name if name is not None else self._fresh("t")
        self._body_stack[-1].append(ir.Assign(target, type_, expr))
        return _Temp(target)

    def call(self, builtin: str, *operands,
             type: ht.HorseType = ht.WILDCARD,
             name: str | None = None) -> _Temp:
        """Emit ``target:type = @builtin(operands...)``."""
        if not hb.exists(builtin):
            raise HorseIRError(f"unknown builtin @{builtin}")
        args = [_to_expr(op) for op in operands]
        return self._emit(type, ir.BuiltinCall(builtin, args), name)

    def invoke(self, method: str, *operands,
               type: ht.HorseType = ht.WILDCARD,
               name: str | None = None) -> _Temp:
        """Emit a user-method call (resolved at build time)."""
        args = [_to_expr(op) for op in operands]
        return self._emit(type, ir.MethodCall(method, args), name)

    def cast(self, operand, type: ht.HorseType,
             name: str | None = None) -> _Temp:
        return self._emit(type, ir.Cast(_to_expr(operand), type), name)

    def let(self, operand, type: ht.HorseType = ht.WILDCARD,
            name: str | None = None) -> _Temp:
        """Bind a literal or alias to a named local."""
        return self._emit(type, _to_expr(operand), name)

    @contextlib.contextmanager
    def if_(self, cond):
        """``with m.if_(cond) as orelse: ...`` — the yielded callable
        opens the else branch::

            with m.if_(cond) as orelse:
                m.let(1, ht.I64, name="r")
                with orelse():
                    m.let(0, ht.I64, name="r")
        """
        stmt = ir.If(_to_expr(cond), [], [])
        self._body_stack[-1].append(stmt)
        self._body_stack.append(stmt.then_body)

        @contextlib.contextmanager
        def orelse():
            if self._body_stack[-1] is not stmt.then_body:
                raise HorseIRError("else opened outside its if block")
            self._body_stack.pop()
            self._body_stack.append(stmt.else_body)
            yield

        try:
            yield orelse
        finally:
            self._body_stack.pop()

    @contextlib.contextmanager
    def while_(self, cond):
        stmt = ir.While(_to_expr(cond), [])
        self._body_stack[-1].append(stmt)
        self._body_stack.append(stmt.body)
        try:
            yield
        finally:
            self._body_stack.pop()

    def ret(self, operand) -> None:
        self._body_stack[-1].append(ir.Return(_to_expr(operand)))
        if len(self._body_stack) == 1:
            self._returned = True

    def _finish(self) -> ir.Method:
        if len(self._body_stack) != 1:
            raise HorseIRError(
                f"method {self._name!r} has an unclosed block")
        return ir.Method(self._name, self._params, self._ret_type,
                         self._body)


class ModuleBuilder:
    """Accumulates methods, verifies, and produces an
    :class:`ir.Module`."""

    def __init__(self, name: str):
        self._module = ir.Module(name)

    @contextlib.contextmanager
    def method(self, name: str,
               params: list[tuple[str, ht.HorseType]],
               ret_type: ht.HorseType):
        builder = MethodBuilder(name, params, ret_type)
        yield builder
        self._module.add(builder._finish())

    def build(self, verify: bool = True) -> ir.Module:
        if verify:
            verify_module(self._module)
        return self._module

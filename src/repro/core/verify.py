"""Structural verification of HorseIR modules.

The verifier enforces the invariants the optimizer and the backends rely on:

* every variable is assigned before use (parameters count as assigned);
* builtin names exist and arities match;
* method calls resolve to methods in the same module, with matching arity;
* every path through a method body ends in ``return`` (checked shallowly:
  the last top-level statement must be a return or an if whose branches
  both terminate);
* ``if``/``while`` conditions are expressions (scalarity is a runtime
  property, checked by the interpreter).
"""

from __future__ import annotations

from repro.core import builtins as hb
from repro.core import ir
from repro.errors import HorseVerifyError

__all__ = ["verify_module", "verify_method"]


def verify_module(module: ir.Module) -> None:
    if not module.methods:
        raise HorseVerifyError(f"module {module.name!r} has no methods")
    for method in module.methods.values():
        verify_method(method, module)


def verify_method(method: ir.Method, module: ir.Module | None = None) -> None:
    defined = set(method.param_names())
    if len(defined) != len(method.params):
        raise HorseVerifyError(
            f"method {method.name!r} has duplicate parameter names")
    _verify_body(method.body, defined, method, module)
    if not _terminates(method.body):
        raise HorseVerifyError(
            f"method {method.name!r} does not end in a return")


def _verify_body(body: list[ir.Stmt], defined: set[str],
                 method: ir.Method, module: ir.Module | None) -> None:
    for stmt in body:
        if isinstance(stmt, ir.Assign):
            _verify_expr(stmt.expr, defined, method, module)
            defined.add(stmt.target)
        elif isinstance(stmt, ir.Return):
            _verify_expr(stmt.expr, defined, method, module)
        elif isinstance(stmt, ir.If):
            _verify_expr(stmt.cond, defined, method, module)
            then_defined = set(defined)
            else_defined = set(defined)
            _verify_body(stmt.then_body, then_defined, method, module)
            _verify_body(stmt.else_body, else_defined, method, module)
            # Only names assigned on *both* branches are defined after.
            defined |= (then_defined & else_defined)
        elif isinstance(stmt, ir.While):
            _verify_expr(stmt.cond, defined, method, module)
            # Loop bodies may not execute; their definitions don't escape.
            _verify_body(stmt.body, set(defined), method, module)
        else:
            raise HorseVerifyError(
                f"unknown statement {type(stmt).__name__} "
                f"in method {method.name!r}")


def _verify_expr(expr: ir.Expr, defined: set[str],
                 method: ir.Method, module: ir.Module | None) -> None:
    if isinstance(expr, ir.Var):
        if expr.name not in defined:
            raise HorseVerifyError(
                f"variable {expr.name!r} used before assignment "
                f"in method {method.name!r}")
        return
    if isinstance(expr, ir.BuiltinCall):
        builtin = hb.get(expr.name)
        if builtin.arity is not None and len(expr.args) != builtin.arity:
            raise HorseVerifyError(
                f"@{expr.name} expects {builtin.arity} argument(s), "
                f"got {len(expr.args)} in method {method.name!r}")
    elif isinstance(expr, ir.MethodCall):
        if module is not None:
            callee = module.methods.get(expr.name)
            if callee is None:
                raise HorseVerifyError(
                    f"call to unknown method {expr.name!r} "
                    f"in method {method.name!r}")
            if len(callee.params) != len(expr.args):
                raise HorseVerifyError(
                    f"method {expr.name!r} expects {len(callee.params)} "
                    f"argument(s), got {len(expr.args)} "
                    f"in method {method.name!r}")
    for child in expr.children():
        _verify_expr(child, defined, method, module)


def _terminates(body: list[ir.Stmt]) -> bool:
    if not body:
        return False
    last = body[-1]
    if isinstance(last, ir.Return):
        return True
    if isinstance(last, ir.If) and last.else_body:
        return _terminates(last.then_body) and _terminates(last.else_body)
    return False

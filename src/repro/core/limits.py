"""Per-query resource limits and cooperative cancellation checkpoints.

The execution layers never poll a clock on their own and never kill a
thread: a :class:`QueryLimits` object rides on the
:class:`~repro.core.context.QueryContext` and every hot loop calls
``limits.check(...)`` at a natural boundary —

* the chunked kernel executor, once per chunk
  (:func:`repro.core.codegen.executor.run_kernel`);
* the reference interpreter, once per statement
  (:class:`repro.core.interp.Interpreter`);
* the compiled plan executor, once per plan item
  (:class:`repro.core.compiler._RunState`);
* the optimizer pipeline, once per pass
  (:func:`repro.core.optimizer.optimize`).

``check`` raises :class:`~repro.errors.QueryTimeout` past the deadline
and :class:`~repro.errors.QueryCancelled` after an explicit
:meth:`QueryLimits.cancel` — so a runaway query stops within one
checkpoint interval of the limit, with no non-cooperative thread
machinery.

The disabled form mirrors the tracer and the allocation profiler: the
stateless :data:`NULL_LIMITS` singleton is the context default, and
every checkpoint site guards with ``if limits.enabled:`` — one attribute
read per site when no limits are configured
(``benchmarks/bench_obs_overhead.py`` bounds the disabled cost at <2%
on warm TPC-H Q6, the same bar as the tracer and the profiler).

This module lives in :mod:`repro.core` (not the engine layer) because
the checkpoint surface is consumed by the core executors; the policy
side — who gets a :class:`QueryLimits`, with what deadline and budget —
lives in :mod:`repro.engine.governor`.
"""

from __future__ import annotations

import time

from repro.errors import QueryCancelled, QueryTimeout

__all__ = ["QueryLimits", "NullQueryLimits", "NULL_LIMITS"]


class QueryLimits:
    """The active limits of one admitted query.

    ``checks`` counts every checkpoint the query passed through — the
    number the overhead benchmark multiplies by the disabled-site cost,
    and a direct measure of cancellation granularity.  The counter is
    a plain attribute (not locked): chunk workers may race on it, so it
    is exact for serial runs and approximate under ``n_threads > 1`` —
    fine for both of its uses.
    """

    enabled = True

    __slots__ = ("timeout", "deadline", "memory_budget", "checks",
                 "cancelled", "cancel_reason")

    def __init__(self, timeout: float | None = None,
                 memory_budget: int | None = None):
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if memory_budget is not None and memory_budget <= 0:
            raise ValueError(
                f"memory_budget must be > 0, got {memory_budget}")
        self.timeout = timeout
        self.deadline = (None if timeout is None
                         else time.monotonic() + timeout)
        self.memory_budget = memory_budget
        self.checks = 0
        self.cancelled = False
        self.cancel_reason = ""

    def check(self, where: str = "checkpoint") -> None:
        """One cooperative cancellation point; raises when the query
        must stop."""
        self.checks += 1
        if self.cancelled:
            reason = self.cancel_reason or "no reason given"
            raise QueryCancelled(
                f"query cancelled ({reason}); stopped cooperatively "
                f"at {where}")
        deadline = self.deadline
        if deadline is not None and time.monotonic() > deadline:
            raise QueryTimeout(
                f"query exceeded its {self.timeout:g} s deadline; "
                f"cancelled cooperatively at {where}")

    def cancel(self, reason: str = "cancelled by caller") -> None:
        """Request cooperative cancellation: the next ``check`` (from
        any thread) raises :class:`~repro.errors.QueryCancelled`."""
        self.cancel_reason = reason
        self.cancelled = True

    def remaining_seconds(self) -> float | None:
        """Seconds until the deadline (``None`` when no deadline)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.timeout is not None:
            parts.append(f"timeout={self.timeout:g}s")
        if self.memory_budget is not None:
            parts.append(f"memory_budget={self.memory_budget}")
        if self.cancelled:
            parts.append("cancelled")
        return f"QueryLimits({', '.join(parts)})"


class NullQueryLimits:
    """The disabled limits: allocation-free, state-free, shared.

    Every checkpoint site reads ``enabled`` and skips the ``check``
    call entirely, so an ungoverned query pays one attribute read per
    site — the no-globals guard audits that this singleton carries no
    mutable state.
    """

    __slots__ = ()
    enabled = False
    timeout = None
    deadline = None
    memory_budget = None
    checks = 0
    cancelled = False
    cancel_reason = ""

    def check(self, where: str = "checkpoint") -> None:
        pass

    def remaining_seconds(self) -> None:
        return None


NULL_LIMITS = NullQueryLimits()

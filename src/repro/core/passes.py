"""The unified compilation pass pipeline (paper Section 3.4).

HorsePower's claim is that *one* optimizer working across the SQL/UDF
boundary beats two black-box stacks.  This module is that one
optimizer's skeleton: a :class:`Pass` protocol, a :class:`Pipeline`
(an ordered pass list with a cache-key fingerprint), and a
:class:`PassManager` that owns ordering, fixed-point rounds, per-pass
timing/rewrite statistics, per-pass tracer spans, optional inter-pass
verification (``--verify-ir``), and optional IR dumps
(``--dump-ir``).  Both of the historical pipelines run on it:

* the HorseIR rewrites — ``inline``, then the fixed-point group
  ``list-forwarding``/``constprop``/``copyprop``/``cse``/``dce``, then
  ``patterns`` (plus a silent post-pattern DCE sweep) — via
  :meth:`PassManager.run_module`, which
  :func:`repro.core.optimizer.pipeline.optimize` delegates to;
* the SQL plan rewrites — ``predicate-pushdown`` and
  ``column-pruning``, extracted from :mod:`repro.sql.planner` — via
  :meth:`PassManager.run_plan`, invoked by
  :func:`repro.sql.planner.plan_query`.

Three named presets map onto the historical opt levels:

========  ==========================================================
preset    passes
========  ==========================================================
``O0``    plan passes only (the ``"naive"`` profile: pushdown and
          pruning always ran, even for the baseline system)
``O1``    ``O0`` + inline + the fixed-point scalar group
          (``optimize(enable_patterns=False)``)
``O2``    ``O1`` + pattern fusion rewrites + cleanup DCE (the full
          ``"opt"`` profile — the default)
========  ==========================================================

A custom ``--passes a,b,c`` list runs each named pass **once, in the
given order** (no fixed point); its fingerprint ``custom(a,b,c)`` keys
plan-cache entries distinctly from every preset.

Automatic loop fusion is *not* a pass here: segmentation's output is an
execution plan, not IR, so it stays in the compiler.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.core import ir
from repro.core.limits import NULL_LIMITS
from repro.errors import HorseTypeError, HorseVerifyError, \
    OptimizerError, PassVerificationError
from repro.obs import get_tracer

__all__ = [
    "Pass", "MethodPass", "ModulePass", "PlanPass", "StatsPlanPass",
    "Pipeline", "AnalysisCache",
    "PassManager", "PassStat", "OptimizeStats", "resolve_pipeline",
    "preset", "custom_pipeline", "registered_pass_names",
    "PRESET_NAMES", "MAX_ROUNDS", "DEFAULT_DUMP_DIR",
]

#: Fixed-point round budget (unchanged from the historical pipeline).
MAX_ROUNDS = 16

PRESET_NAMES = ("O0", "O1", "O2")

#: Where ``--dump-ir`` writes when no directory is given.
DEFAULT_DUMP_DIR = "ir-dump"


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------

@dataclass
class PassStat:
    """One pass's aggregate activity inside a single pipeline run.

    ``runs`` counts invocations (one per method per round for
    method-level passes), ``rewrites`` the invocations that changed
    anything, ``seconds`` the summed wall time."""

    name: str
    level: str
    runs: int = 0
    rewrites: int = 0
    seconds: float = 0.0

    def to_dict(self) -> dict:
        return {"name": self.name, "level": self.level,
                "runs": self.runs, "rewrites": self.rewrites,
                "seconds": self.seconds}


@dataclass
class OptimizeStats:
    """What the pipeline did — surfaced by examples and benchmarks.

    The first four fields predate the pass manager and keep their exact
    historical semantics; ``pipeline`` (the fingerprint),
    ``fixed_point_exhausted`` and the per-pass ``pass_stats`` rows are
    the manager's additions."""

    rounds: int = 0
    inlined_methods_removed: int = 0
    passes_applied: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    pipeline: str = ""
    fixed_point_exhausted: bool = False
    pass_stats: list[PassStat] = field(default_factory=list)


# ---------------------------------------------------------------------------
# the Pass protocol
# ---------------------------------------------------------------------------

class Pass:
    """One rewrite rule as a first-class object.

    ``level`` names the unit ``run`` consumes: ``"plan"`` (a logical
    plan tree — returns the rewritten tree), ``"module"`` (a whole
    :class:`~repro.core.ir.Module` — returns the rewritten module) or
    ``"method"`` (one method, mutated in place — returns whether
    anything changed).  ``invalidates`` names the cached analyses a
    *changing* application of this pass makes stale: the manager drops
    exactly those entries from its :class:`AnalysisCache` for the
    rewritten method and keeps the rest.  Facts a pass preserves by
    construction (the scalar group is type-preserving, so it leaves
    ``"typecheck"`` alone) survive fixed-point rounds untouched.
    """

    level: str = "method"
    #: Member of the manager's fixed-point group (contiguous
    #: fixed-point passes iterate together until quiescent).
    fixed_point: bool = False
    #: Emit a ``pass:<name>`` tracer span per application.
    traced: bool = True
    #: Record activity in ``OptimizeStats`` (False for internal
    #: cleanup sweeps, which stay invisible, as they always were).
    records: bool = True
    #: Cooperative-cancellation checkpoint before each application.
    checkpoint: bool = True
    invalidates: tuple = ()

    def __init__(self, name: str):
        self.name = name

    def run(self, unit, ctx):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class MethodPass(Pass):
    """A per-method rewrite: ``fn(method) -> bool`` (mutating)."""

    level = "method"

    def __init__(self, name: str, fn, *, fixed_point: bool = False,
                 traced: bool = True, records: bool = True,
                 checkpoint: bool = True, invalidates: tuple = ()):
        super().__init__(name)
        self.fn = fn
        self.fixed_point = fixed_point
        self.traced = traced
        self.records = records
        self.checkpoint = checkpoint
        self.invalidates = tuple(invalidates)

    def run(self, method: ir.Method, ctx=None) -> bool:
        return self.fn(method)


class ModulePass(Pass):
    """A whole-module rewrite: ``fn(module, entry) -> module``."""

    level = "module"

    def __init__(self, name: str, fn, *, invalidates: tuple = ()):
        super().__init__(name)
        self.fn = fn
        self.invalidates = tuple(invalidates)

    def run(self, module: ir.Module, ctx=None) -> ir.Module:
        entry = getattr(ctx, "entry", None) if ctx is not None else None
        return self.fn(module, entry)


class PlanPass(Pass):
    """A logical-plan rewrite: ``fn(plan, udfs) -> plan``.

    Plan passes are untraced by default: the historical planner emitted
    no per-rule spans, and the EXPLAIN ANALYZE goldens pin the ``plan``
    span childless.  Their timing still lands in the manager's
    :class:`PassStat` rows."""

    level = "plan"
    traced = False
    checkpoint = False

    def __init__(self, name: str, fn, *, invalidates: tuple = ()):
        super().__init__(name)
        self.fn = fn
        self.invalidates = tuple(invalidates)

    def run(self, plan, ctx=None):
        udfs = getattr(ctx, "udfs", None) if ctx is not None else None
        return self.fn(plan, udfs)


class StatsPlanPass(PlanPass):
    """A statistics-driven plan rewrite: ``fn(plan, udfs, stats) ->
    plan``.

    The extra argument is the session's
    :class:`~repro.stats.StatsStore` (or ``None``); the pass contract
    requires returning the plan *unchanged* when no statistics exist,
    so presets that include a stats pass behave identically to the
    stats-free pipeline until the first ``ANALYZE``."""

    def run(self, plan, ctx=None):
        udfs = getattr(ctx, "udfs", None) if ctx is not None else None
        table_stats = getattr(ctx, "table_stats", None) \
            if ctx is not None else None
        return self.fn(plan, udfs, table_stats)


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

#: Every dataflow fact the analysis framework caches.  Any rewrite
#: that touches a method body makes all of them stale; only the
#: semantic ``"typecheck"`` verdict can survive a rewrite (the scalar
#: group substitutes same-typed values and deletes dead code, so a
#: well-typed method stays well-typed).
_DATAFLOW_FACTS = ("liveness", "reaching-defs", "use-chains",
                   "constants", "intervals", "copies")


def _typecheck_pass_fn(method: ir.Method) -> bool:
    # ``--passes typecheck``: an analysis run as a pass.  Method-level
    # passes see no module, so cross-method calls check as wildcards;
    # the manager's verify hook passes the module and checks them too.
    from repro.core.analysis.checker import check_method

    check_method(method, None)
    return False


def _make_ir_pass(name: str, *, fixed_point: bool) -> Pass:
    # Imported lazily: repro.core.optimizer.* → optimizer/__init__ →
    # pipeline.py, which imports this module at its top.
    from repro.core.optimizer.constprop import propagate_constants
    from repro.core.optimizer.copyprop import propagate_copies
    from repro.core.optimizer.cse import eliminate_common_subexpressions
    from repro.core.optimizer.dce import eliminate_dead_code
    from repro.core.optimizer.inline import inline_methods
    from repro.core.optimizer.patterns import (apply_patterns,
                                               forward_list_items)

    if name == "inline":
        return ModulePass(
            "inline", inline_methods,
            invalidates=_DATAFLOW_FACTS + ("typecheck", "callgraph"))
    if name == "typecheck":
        return MethodPass("typecheck", _typecheck_pass_fn,
                          fixed_point=fixed_point)
    fns = {
        "list-forwarding": forward_list_items,
        "constprop": propagate_constants,
        "copyprop": propagate_copies,
        "cse": eliminate_common_subexpressions,
        "dce": eliminate_dead_code,
    }
    if name == "patterns":
        return MethodPass(
            "patterns", apply_patterns, fixed_point=fixed_point,
            invalidates=_DATAFLOW_FACTS + ("typecheck",))
    return MethodPass(name, fns[name], fixed_point=fixed_point,
                      invalidates=_DATAFLOW_FACTS)


def _make_plan_pass(name: str) -> Pass:
    # Lazy for the same reason in the other direction: repro.sql
    # depends on repro.core, never vice versa at import time.
    from repro.sql.plan_passes import (prune_columns, push_predicates,
                                       reorder_by_selectivity)

    fns = {
        "predicate-pushdown": (push_predicates, ("cardinality",)),
        "column-pruning": (prune_columns, ("schema",)),
    }
    if name == "selectivity-reorder":
        return StatsPlanPass(name, reorder_by_selectivity,
                             invalidates=("cardinality",))
    fn, invalidates = fns[name]
    return PlanPass(name, fn, invalidates=invalidates)


#: Plan-level pass names, in the order every pipeline applies them.
#: ``selectivity-reorder`` is the odd one out: presets include it only
#: at O1/O2 (it is pointless without the optimizer) and it no-ops
#: until statistics exist.
_PLAN_PASS_NAMES = ("predicate-pushdown", "column-pruning",
                    "selectivity-reorder")

#: The fixed-point scalar group, in the paper's order.
_ROUND_PASS_NAMES = ("list-forwarding", "constprop", "copyprop", "cse",
                     "dce")

_IR_PASS_NAMES = ("inline",) + _ROUND_PASS_NAMES + ("patterns",
                                                    "typecheck")


def registered_pass_names() -> tuple[str, ...]:
    """Every name ``--passes`` accepts, in canonical order."""
    return _PLAN_PASS_NAMES + _IR_PASS_NAMES


def _make_pass(name: str, *, fixed_point: bool = False) -> Pass:
    if name in _PLAN_PASS_NAMES:
        return _make_plan_pass(name)
    if name in _IR_PASS_NAMES:
        return _make_ir_pass(name, fixed_point=fixed_point)
    known = ", ".join(registered_pass_names())
    raise OptimizerError(
        f"unknown pass {name!r}; registered passes: {known}")


def _cleanup_dce_pass() -> Pass:
    """The silent post-pattern sweep: pattern rewrites can orphan mask
    definitions.  Untraced, unrecorded, uncheckpointed — exactly as the
    historical pipeline ran it."""
    from repro.core.optimizer.dce import eliminate_dead_code

    return MethodPass("dce", eliminate_dead_code, traced=False,
                      records=False, checkpoint=False)


# ---------------------------------------------------------------------------
# pipelines
# ---------------------------------------------------------------------------

class Pipeline:
    """An ordered pass list with a stable cache-key fingerprint.

    Presets fingerprint as their name (``"O2"``); ad-hoc lists as
    ``custom(<names>)`` — so ``--passes`` variants can never collide
    with preset plan-cache entries."""

    def __init__(self, name: str, passes: list[Pass], *,
                 is_preset: bool = False):
        self.name = name
        self.passes = list(passes)
        self.is_preset = is_preset

    @property
    def plan_passes(self) -> list[Pass]:
        return [p for p in self.passes if p.level == "plan"]

    @property
    def ir_passes(self) -> list[Pass]:
        return [p for p in self.passes if p.level != "plan"]

    def fingerprint(self) -> str:
        if self.is_preset:
            return self.name
        return "custom(" + ",".join(p.name for p in self.passes) + ")"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Pipeline {self.fingerprint()} "
                f"[{', '.join(p.name for p in self.passes)}]>")


def preset(name: str) -> Pipeline:
    """A fresh instance of one of the named presets."""
    if name not in PRESET_NAMES:
        raise OptimizerError(
            f"unknown pipeline preset {name!r}; "
            f"known: {', '.join(PRESET_NAMES)}")
    passes = [_make_plan_pass(n) for n in _PLAN_PASS_NAMES
              if name in ("O1", "O2") or n != "selectivity-reorder"]
    if name in ("O1", "O2"):
        passes.append(_make_ir_pass("inline", fixed_point=False))
        passes.extend(_make_ir_pass(n, fixed_point=True)
                      for n in _ROUND_PASS_NAMES)
    if name == "O2":
        passes.append(_make_ir_pass("patterns", fixed_point=False))
        passes.append(_cleanup_dce_pass())
    return Pipeline(name, passes, is_preset=True)


def custom_pipeline(names) -> Pipeline:
    """An ad-hoc pipeline running each named pass once, in order."""
    names = [str(n).strip() for n in names if str(n).strip()]
    if not names:
        raise OptimizerError("empty pass list")
    passes = [_make_pass(n) for n in names]
    return Pipeline("custom", passes)


def resolve_pipeline(spec, opt_level: str = "opt") -> Pipeline:
    """Normalize a pipeline spec to a :class:`Pipeline`.

    ``None`` maps the historical opt levels onto presets (``"opt"`` →
    ``O2``, ``"naive"`` → ``O0``); a preset name returns that preset; a
    comma-separated string or a list of names builds a custom
    pipeline; a :class:`Pipeline` passes through."""
    if spec is None:
        return preset("O2" if opt_level == "opt" else "O0")
    if isinstance(spec, Pipeline):
        return spec
    if isinstance(spec, (list, tuple)):
        return custom_pipeline(spec)
    text = str(spec).strip()
    if text in PRESET_NAMES:
        return preset(text)
    return custom_pipeline(text.split(","))


# ---------------------------------------------------------------------------
# the manager
# ---------------------------------------------------------------------------

class _PassContext:
    """What a pass application sees (the manager's slice of the query
    context, kept tiny so passes stay functions)."""

    __slots__ = ("entry", "udfs", "table_stats")

    def __init__(self, entry=None, udfs=None, table_stats=None):
        self.entry = entry
        self.udfs = udfs
        self.table_stats = table_stats


class AnalysisCache:
    """Per-method analysis facts, memoized across pass applications.

    Keyed ``(method name, analysis name)``.  :meth:`get` computes on
    miss; passes that report a change drop the entries their
    ``invalidates`` tuple names, so a fixed-point round that rewrites
    nothing re-derives nothing.  ``hits``/``misses`` are observable
    counters (tests and ``EXPLAIN ANALYZE`` read them)."""

    def __init__(self):
        self._facts: dict[tuple[str, str], object] = {}
        self.hits = 0
        self.misses = 0

    def get(self, method: ir.Method, name: str, compute):
        """The cached ``name`` fact for ``method``, computing (and
        storing) ``compute(method)`` on first request."""
        key = (method.name, name)
        if key in self._facts:
            self.hits += 1
            return self._facts[key]
        self.misses += 1
        value = compute(method)
        self._facts[key] = value
        return value

    def invalidate(self, method_name: str, names) -> None:
        """Drop the named facts for one method."""
        for name in names:
            self._facts.pop((method_name, name), None)

    def invalidate_all(self) -> None:
        """Drop everything (module-level rewrites splice across
        methods, so per-method dropping is not enough)."""
        self._facts.clear()

    def __len__(self) -> int:
        return len(self._facts)


class PassManager:
    """Runs one :class:`Pipeline` over a plan and/or a module.

    One instance serves one compilation: ``run_plan`` during planning,
    ``run_module`` during optimization.  ``verify=True`` re-verifies
    the IR after every pass application — structurally
    (:mod:`repro.core.verify_ir`) *and* semantically
    (:mod:`repro.core.analysis.checker`, the type/shape checker) —
    with :exc:`~repro.errors.PassVerificationError` naming the
    offending pass and statement.  The semantic verdict is cached per
    method on :attr:`analyses` and survives passes whose
    ``invalidates`` declaration preserves it; ``dump_dir`` writes
    numbered IR snapshots before the first pass and after every pass
    (per round inside the fixed-point group) via the existing
    printer."""

    def __init__(self, pipeline: Pipeline, *, verify: bool = False,
                 dump_dir: str | None = None,
                 max_rounds: int = MAX_ROUNDS):
        self.pipeline = pipeline
        self.verify = verify
        self.dump_dir = dump_dir
        self.max_rounds = max_rounds
        self._dump_seq = 0
        #: Memoized per-method analysis facts for this compilation.
        self.analyses = AnalysisCache()
        #: Per-pass stats rows, keyed by pass name (insertion-ordered).
        self._stats_index: dict[str, PassStat] = {}

    # -- plan side -----------------------------------------------------------

    def run_plan(self, plan, *, udfs=None, table_stats=None,
                 stats: OptimizeStats | None = None):
        """Apply the pipeline's plan-level passes to ``plan``.

        ``table_stats`` is the session's
        :class:`~repro.stats.StatsStore` (or ``None``); only
        statistics-driven passes read it."""
        pctx = _PassContext(udfs=udfs, table_stats=table_stats)
        for ps in self.pipeline.plan_passes:
            start = time.perf_counter()
            plan = ps.run(plan, pctx)
            self._record(stats, ps, True, time.perf_counter() - start)
        return plan

    # -- IR side -------------------------------------------------------------

    def run_module(self, module: ir.Module, *, entry: str | None = None,
                   tracer=None, limits=None, metrics=None, span=None) \
            -> tuple[ir.Module, OptimizeStats]:
        """Apply the pipeline's IR passes; returns ``(module, stats)``.

        ``tracer``/``limits`` default to the ambient tracer and the
        ungoverned limits, matching the historical ``optimize``;
        ``metrics`` (optional) receives the
        ``optimizer.fixed_point_exhausted`` counter, and ``span``
        (the enclosing ``optimize`` span, optional) is annotated when
        the fixed point is exhausted."""
        if tracer is None:
            tracer = get_tracer()
        if limits is None:
            limits = NULL_LIMITS
        stats = OptimizeStats(pipeline=self.pipeline.fingerprint())
        stats.pass_stats = []
        self._stats_index = {}
        start = time.perf_counter()
        pctx = _PassContext(entry=entry)
        self._verify_module("input", module)
        self._dump_module(module, "input")
        passes = self.pipeline.ir_passes
        index = 0
        while index < len(passes):
            ps = passes[index]
            if ps.fixed_point:
                group = []
                while index < len(passes) and passes[index].fixed_point:
                    group.append(passes[index])
                    index += 1
                module = self._run_fixed_point(
                    module, group, stats, tracer, limits, metrics, span)
            elif ps.level == "module":
                module = self._run_module_pass(
                    module, ps, stats, pctx, tracer, limits)
                index += 1
            else:
                for method in module.methods.values():
                    self._apply_to_method(ps, method, module, stats,
                                          tracer, limits, None)
                self._dump_module(module, ps.name)
                index += 1
        stats.elapsed_seconds = time.perf_counter() - start
        return module, stats

    # -- internals -----------------------------------------------------------

    def _run_module_pass(self, module, ps, stats, pctx, tracer, limits):
        methods_before = len(module.methods)
        if ps.checkpoint and limits.enabled:
            limits.check(f"pass:{ps.name}")
        start = time.perf_counter()
        if ps.traced:
            with tracer.span(f"pass:{ps.name}",
                             methods_before=methods_before):
                module = ps.run(module, pctx)
        else:
            module = ps.run(module, pctx)
        elapsed = time.perf_counter() - start
        removed = methods_before - len(module.methods)
        if ps.name == "inline":
            stats.inlined_methods_removed = removed
        changed = removed > 0
        if changed:
            self.analyses.invalidate_all()
        if changed and ps.records:
            _note(stats, ps.name)
        if ps.records:
            self._record(stats, ps, changed, elapsed)
        self._verify_module(ps.name, module)
        self._dump_module(module, ps.name)
        return module

    def _run_fixed_point(self, module, group, stats, tracer, limits,
                         metrics, span):
        exhausted = False
        for round_index in range(self.max_rounds):
            changed = False
            for method in module.methods.values():
                for ps in group:
                    if self._apply_to_method(ps, method, module, stats,
                                             tracer, limits,
                                             round_index):
                        changed = True
            stats.rounds = round_index + 1
            self._dump_module(module, f"round{round_index}")
            if not changed:
                break
        else:
            # The budget ran out with the last round still rewriting:
            # the historical pipeline returned silently here.
            exhausted = True
        if exhausted:
            stats.fixed_point_exhausted = True
            if metrics is not None:
                metrics.counter(
                    "optimizer.fixed_point_exhausted").inc()
            if span is not None:
                span.set(fixed_point_exhausted=True,
                         rounds=stats.rounds)
        return module

    def _apply_to_method(self, ps, method, module, stats, tracer,
                         limits, round_index) -> bool:
        if ps.checkpoint and limits.enabled:
            limits.check(f"pass:{ps.name}")
        start = time.perf_counter()
        if not ps.traced or not tracer.enabled:
            changed = ps.run(method)
        else:
            attrs = {"method": method.name}
            if round_index is not None:
                attrs["round"] = round_index
            with tracer.span(f"pass:{ps.name}", **attrs) as span:
                before = _count_statements(method.body)
                changed = ps.run(method)
                span.set(stmts_before=before,
                         stmts_after=_count_statements(method.body),
                         changed=changed)
        elapsed = time.perf_counter() - start
        if changed:
            self.analyses.invalidate(method.name, ps.invalidates)
        if changed and ps.records:
            _note(stats, ps.name)
        if ps.records:
            self._record(stats, ps, changed, elapsed)
        self._verify_method(ps.name, method, module)
        return changed

    def _record(self, stats, ps, changed, elapsed) -> None:
        if stats is None:
            return
        stat = self._stats_index.get(ps.name)
        if stat is None:
            stat = PassStat(ps.name, ps.level)
            self._stats_index[ps.name] = stat
            stats.pass_stats.append(stat)
        stat.runs += 1
        if changed:
            stat.rewrites += 1
        stat.seconds += elapsed

    # -- verification --------------------------------------------------------

    def _verify_module(self, pass_name, module) -> None:
        if not self.verify:
            return
        from repro.core.verify_ir import verify_ir_module
        try:
            verify_ir_module(module)
        except HorseVerifyError as exc:
            raise PassVerificationError(pass_name, str(exc)) from exc
        for method in module.methods.values():
            self._typecheck(pass_name, method, module)

    def _verify_method(self, pass_name, method, module) -> None:
        if not self.verify:
            return
        from repro.core.verify_ir import verify_ir_method
        try:
            verify_ir_method(method, module)
        except HorseVerifyError as exc:
            raise PassVerificationError(pass_name, str(exc),
                                        method=method.name) from exc
        self._typecheck(pass_name, method, module)

    def _typecheck(self, pass_name, method, module) -> None:
        # The semantic half of --verify-ir.  The cached verdict (True)
        # survives type-preserving passes; a pass whose ``invalidates``
        # names "typecheck" forces a re-check after any change.
        from repro.core.analysis.checker import check_method
        try:
            self.analyses.get(
                method, "typecheck",
                lambda m: (check_method(m, module), True)[1])
        except HorseTypeError as exc:
            raise PassVerificationError(pass_name, str(exc),
                                        method=method.name) from exc

    # -- dumps ---------------------------------------------------------------

    def _dump_module(self, module, label: str) -> None:
        if not self.dump_dir:
            return
        from repro.core.printer import print_module
        os.makedirs(self.dump_dir, exist_ok=True)
        safe = label.replace("/", "_")
        path = os.path.join(self.dump_dir,
                            f"{self._dump_seq:03d}-{safe}.hir")
        with open(path, "w") as handle:
            handle.write(print_module(module))
            handle.write("\n")
        self._dump_seq += 1


def _count_statements(body: list[ir.Stmt]) -> int:
    """Statements in a method body, descending into control flow."""
    count = 0
    for stmt in body:
        count += 1
        if isinstance(stmt, ir.If):
            count += _count_statements(stmt.then_body)
            count += _count_statements(stmt.else_body)
        elif isinstance(stmt, ir.While):
            count += _count_statements(stmt.body)
    return count


def _note(stats: OptimizeStats, name: str) -> None:
    if name not in stats.passes_applied:
        stats.passes_applied.append(name)

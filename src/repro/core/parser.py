"""Parser for textual HorseIR.

Accepts the syntax used throughout the paper (Figures 2b and 6)::

    module ExampleQuery {
        def main(): table {
            t0:table = @load_table(`lineitem:sym);
            t1:f64 = check_cast(@column_value(t0, `l_extendedprice:sym), f64);
            t3:bool = @geq(t2, 0.05:f64);
            ...
            return t10;
        }
        def udf(price:f64, discount:f64): f64 {
            x0:f64 = @mul(price, discount);
            return x0;
        }
    }

plus structured ``if (cond) { ... } else { ... }`` and ``while (cond)
{ ... }`` statements, which the MATLAB frontend emits.  Literal forms:
``0.05:f64``, ``42:i64``, ``1:bool``, ``"text":str``, ```name:sym`` and
``1998-12-01:date``.
"""

from __future__ import annotations

import re

import numpy as np

from repro.core import ir
from repro.core import types as ht
from repro.errors import HorseSyntaxError

__all__ = ["parse_module", "parse_method"]

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>//[^\n]*)
  | (?P<DATE>\d{4}-\d{2}-\d{2})
  | (?P<NUMBER>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<SYMBOL>`[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<AT_ID>@[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ID>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<PUNCT>[{}()<>,;:=?])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"module", "def", "return", "if", "else", "while", "check_cast"}


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise HorseSyntaxError(
                f"unexpected character {source[pos]!r}",
                line, pos - line_start + 1)
        kind = match.lastgroup
        text = match.group()
        if kind not in ("WS", "COMMENT"):
            token_kind = kind
            if kind == "ID" and text in _KEYWORDS:
                token_kind = text.upper()
            tokens.append(_Token(token_kind, text, line,
                                 match.start() - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + text.rfind("\n") + 1
        pos = match.end()
    tokens.append(_Token("EOF", "", line, pos - line_start + 1))
    return tokens


class _Parser:
    def __init__(self, source: str):
        self._tokens = _tokenize(source)
        self._pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def _current(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._current
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _accept(self, kind: str, text: str | None = None) -> _Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._current
        if not self._check(kind, text):
            wanted = text if text is not None else kind
            raise HorseSyntaxError(
                f"expected {wanted!r}, found {token.text!r}",
                token.line, token.column)
        return self._advance()

    def _punct(self, text: str) -> _Token:
        return self._expect("PUNCT", text)

    # -- grammar ------------------------------------------------------------

    def parse_module(self) -> ir.Module:
        self._expect("MODULE")
        name = self._expect("ID").text
        self._punct("{")
        module = ir.Module(name)
        while not self._check("PUNCT", "}"):
            module.add(self.parse_method())
        self._punct("}")
        self._expect("EOF")
        return module

    def parse_method(self) -> ir.Method:
        self._expect("DEF")
        name = self._expect("ID").text
        self._punct("(")
        params: list[ir.Param] = []
        if not self._check("PUNCT", ")"):
            while True:
                pname = self._expect("ID").text
                self._punct(":")
                params.append(ir.Param(pname, self._parse_type()))
                if not self._accept("PUNCT", ","):
                    break
        self._punct(")")
        self._punct(":")
        ret_type = self._parse_type()
        body = self._parse_block()
        return ir.Method(name, params, ret_type, body)

    def _parse_block(self) -> list[ir.Stmt]:
        self._punct("{")
        body: list[ir.Stmt] = []
        while not self._check("PUNCT", "}"):
            body.append(self._parse_stmt())
        self._punct("}")
        return body

    def _parse_stmt(self) -> ir.Stmt:
        if self._accept("RETURN"):
            expr = self._parse_expr()
            self._punct(";")
            return ir.Return(expr)
        if self._accept("IF"):
            self._punct("(")
            cond = self._parse_expr()
            self._punct(")")
            then_body = self._parse_block()
            else_body: list[ir.Stmt] = []
            if self._accept("ELSE"):
                if self._check("IF"):
                    else_body = [self._parse_stmt()]
                else:
                    else_body = self._parse_block()
            return ir.If(cond, then_body, else_body)
        if self._accept("WHILE"):
            self._punct("(")
            cond = self._parse_expr()
            self._punct(")")
            return ir.While(cond, self._parse_block())
        target = self._expect("ID").text
        self._punct(":")
        type_ = self._parse_type()
        self._punct("=")
        expr = self._parse_expr()
        self._punct(";")
        return ir.Assign(target, type_, expr)

    def _parse_type(self) -> ht.HorseType:
        name = self._expect("ID").text
        if name == "list":
            self._punct("<")
            element = self._parse_type()
            self._punct(">")
            return ht.list_of(element)
        if name == "unknown":
            return ht.WILDCARD
        return ht.make_type(name)

    def _parse_expr(self) -> ir.Expr:
        token = self._current
        if token.kind == "AT_ID":
            self._advance()
            name = token.text[1:]
            args = self._parse_args()
            from repro.core import builtins as hb
            if hb.exists(name):
                return ir.BuiltinCall(name, args)
            return ir.MethodCall(name, args)
        if token.kind == "CHECK_CAST":
            self._advance()
            self._punct("(")
            inner = self._parse_expr()
            self._punct(",")
            type_ = self._parse_type()
            self._punct(")")
            return ir.Cast(inner, type_)
        if token.kind == "SYMBOL":
            self._advance()
            self._punct(":")
            suffix = self._expect("ID")
            if suffix.text != "sym":
                raise HorseSyntaxError("symbol literal must have type sym",
                                       suffix.line, suffix.column)
            return ir.SymbolLit(token.text[1:])
        if token.kind in ("NUMBER", "DATE"):
            self._advance()
            self._punct(":")
            type_ = self._parse_type()
            return ir.Literal(_literal_value(token, type_), type_)
        if token.kind == "STRING":
            self._advance()
            self._punct(":")
            type_ = self._parse_type()
            text = token.text[1:-1].replace('\\"', '"').replace("\\\\", "\\")
            return ir.Literal(text, type_)
        if token.kind == "ID":
            self._advance()
            return ir.Var(token.text)
        raise HorseSyntaxError(f"unexpected token {token.text!r}",
                               token.line, token.column)

    def _parse_args(self) -> list[ir.Expr]:
        self._punct("(")
        args: list[ir.Expr] = []
        if not self._check("PUNCT", ")"):
            while True:
                args.append(self._parse_expr())
                if not self._accept("PUNCT", ","):
                    break
        self._punct(")")
        return args


def _literal_value(token: _Token, type_: ht.HorseType):
    if token.kind == "DATE":
        if type_ != ht.DATE:
            raise HorseSyntaxError(
                f"date literal annotated as {type_}", token.line,
                token.column)
        return np.datetime64(token.text, "D")
    text = token.text
    if type_ == ht.BOOL:
        return text not in ("0", "0.0")
    if ht.is_integer(type_):
        return int(float(text))
    if ht.is_float(type_):
        return float(text)
    if type_ == ht.DATE:
        raise HorseSyntaxError("date literals use YYYY-MM-DD form",
                               token.line, token.column)
    raise HorseSyntaxError(f"numeric literal annotated as {type_}",
                           token.line, token.column)


def parse_module(source: str) -> ir.Module:
    """Parse a complete ``module { ... }`` definition."""
    return _Parser(source).parse_module()


def parse_method(source: str) -> ir.Method:
    """Parse a single ``def name(...): type { ... }`` definition."""
    parser = _Parser(source)
    method = parser.parse_method()
    parser._expect("EOF")
    return method

"""Inter-pass structural verification of HorseIR (``--verify-ir``).

The baseline verifier (:mod:`repro.core.verify`) runs once per compile,
before and after optimization.  This module is the *inter-pass* variant
the :class:`~repro.core.passes.PassManager` can run after every pass
application: the same structural invariants, hardened so that any
failure — including ones the baseline verifier reports as other error
types — surfaces as a :class:`~repro.errors.HorseVerifyError` naming
the offending statement:

* SSA-ish def-before-use: every variable is assigned before use on
  every path (parameters count; ``if`` branches contribute only names
  assigned on both arms, ``while`` bodies contribute nothing);
* builtin calls resolve to *known* builtins with matching arity
  (an unknown builtin is a verify error here, not a
  :class:`~repro.errors.BuiltinError`);
* method calls resolve inside the module with matching arity — no
  dangling method references (the inliner's obligation);
* declared/literal type consistency: an ``Assign`` whose right-hand
  side is a plain literal (or a cast) must declare the type the
  expression produces;
* return-type consistency: a ``return`` whose value has a statically
  known type (a literal, a cast, or a variable with one consistent
  declaration) must match the method's declared return type;
* no orphaned statements: code after a ``return`` (or after an ``if``
  whose branches both return) can never execute — the flat-IR analog
  of an orphaned label — and every path ends in a ``return``.

Pass authors get one entry point per granularity:
:func:`verify_ir_method` after a method-level rewrite,
:func:`verify_ir_module` after a module-level one.
"""

from __future__ import annotations

from repro.core import ir
from repro.core.printer import print_stmt
from repro.core.verify import verify_method
from repro.errors import BuiltinError, HorseVerifyError

__all__ = ["verify_ir_module", "verify_ir_method"]


def verify_ir_module(module: ir.Module) -> None:
    """Check every method of ``module``; raises
    :class:`HorseVerifyError` on the first violation."""
    if not module.methods:
        raise HorseVerifyError(f"module {module.name!r} has no methods")
    for method in module.methods.values():
        verify_ir_method(method, module)


def verify_ir_method(method: ir.Method,
                     module: ir.Module | None = None) -> None:
    """Check one method (``module`` enables method-call resolution)."""
    try:
        verify_method(method, module)
    except BuiltinError as exc:
        # verify_method resolves builtins through ``hb.get``, which
        # raises BuiltinError for unknown names; inter-pass
        # verification reports it structurally instead.
        raise HorseVerifyError(
            f"unknown builtin in method {method.name!r}: "
            f"{exc}") from exc
    _check_body(method.body, method)
    _check_return_types(method)


def _check_body(body: list[ir.Stmt], method: ir.Method) -> None:
    for index, stmt in enumerate(body):
        if _stmt_terminates(stmt) and index + 1 < len(body):
            raise HorseVerifyError(
                f"orphaned statement after a return in method "
                f"{method.name!r}: {print_stmt(body[index + 1])}")
        if isinstance(stmt, ir.Assign):
            _check_assign_types(stmt, method)
        elif isinstance(stmt, ir.If):
            _check_body(stmt.then_body, method)
            _check_body(stmt.else_body, method)
        elif isinstance(stmt, ir.While):
            _check_body(stmt.body, method)


def _stmt_terminates(stmt: ir.Stmt) -> bool:
    if isinstance(stmt, ir.Return):
        return True
    if isinstance(stmt, ir.If) and stmt.else_body:
        return (_body_terminates(stmt.then_body)
                and _body_terminates(stmt.else_body))
    return False


def _body_terminates(body: list[ir.Stmt]) -> bool:
    return bool(body) and _stmt_terminates(body[-1])


def _check_assign_types(stmt: ir.Assign, method: ir.Method) -> None:
    """Declared/produced type consistency for the expression forms
    whose result type is statically known (plain literals and casts);
    builtins and method calls are typed at runtime."""
    declared = stmt.type
    if declared is None:
        return
    expr = stmt.expr
    if isinstance(expr, ir.Literal) and expr.type is not None:
        produced = expr.type
    elif isinstance(expr, ir.Cast):
        produced = expr.type
    else:
        return
    if produced != declared:
        raise HorseVerifyError(
            f"type mismatch in method {method.name!r}: "
            f"{stmt.target!r} declares {declared} but its expression "
            f"produces {produced} ({print_stmt(stmt)})")


def _check_return_types(method: ir.Method) -> None:
    """Every ``return`` whose value has a statically known type must
    agree with the method's declared return type (wildcards on either
    side opt out)."""
    declared = method.ret_type
    if declared is None or declared.is_wildcard:
        return
    var_types = {p.name: p.type for p in method.params}
    for stmt in method.walk_stmts():
        if not isinstance(stmt, ir.Assign):
            continue
        if stmt.target in var_types \
                and var_types[stmt.target] != stmt.type:
            var_types[stmt.target] = None  # conflicting redeclaration
        else:
            var_types.setdefault(stmt.target, stmt.type)
    for stmt in method.walk_stmts():
        if not isinstance(stmt, ir.Return):
            continue
        expr = stmt.expr
        if isinstance(expr, ir.Literal) and expr.type is not None:
            produced = expr.type
        elif isinstance(expr, ir.Cast):
            produced = expr.type
        elif isinstance(expr, ir.Var):
            produced = var_types.get(expr.name)
        else:
            continue
        if produced is None or produced.is_wildcard:
            continue
        if produced != declared:
            raise HorseVerifyError(
                f"return type mismatch in method {method.name!r}: "
                f"declares {declared} but returns a value of type "
                f"{produced} ({print_stmt(stmt)})")

"""Data-dependence graphs over HorseIR method bodies.

The fusion optimizer (Section 3.4.1 of the paper) "first builds a data
dependence graph across all the statements within a method"; this module is
that graph.  Nodes are statement indices within one straight-line block;
edges run from the statement that defines a variable to each statement that
uses it.  The graph also powers the Figure-7 style visualizations in the
examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import ir

__all__ = ["DepGraph", "build_depgraph", "block_defs", "block_uses"]


@dataclass
class DepGraph:
    """Dependence graph for one straight-line block of statements."""

    stmts: list[ir.Stmt]
    #: edges[i] = indices of statements that consume a value defined by i.
    edges: dict[int, set[int]] = field(default_factory=dict)
    #: reverse edges: deps[i] = indices of statements i reads from.
    deps: dict[int, set[int]] = field(default_factory=dict)
    #: variables read by each statement that are defined outside the block.
    external_inputs: dict[int, set[str]] = field(default_factory=dict)

    def consumers(self, index: int) -> set[int]:
        return self.edges.get(index, set())

    def producers(self, index: int) -> set[int]:
        return self.deps.get(index, set())

    def single_consumer(self, index: int) -> bool:
        return len(self.consumers(index)) == 1

    def to_dot(self, labels: bool = True) -> str:
        """Graphviz rendering (used by the inlining demo example)."""
        lines = ["digraph depgraph {", "  node [shape=box];"]
        for i, stmt in enumerate(self.stmts):
            label = str(stmt).replace('"', '\\"') if labels else f"S{i}"
            lines.append(f'  s{i} [label="S{i}: {label}"];')
        for src, dsts in sorted(self.edges.items()):
            for dst in sorted(dsts):
                lines.append(f"  s{src} -> s{dst};")
        lines.append("}")
        return "\n".join(lines)


def stmt_uses(stmt: ir.Stmt) -> set[str]:
    """Variables read by a statement (shallow: not nested bodies)."""
    if isinstance(stmt, ir.Assign):
        return set(ir.expr_vars(stmt.expr))
    if isinstance(stmt, ir.Return):
        return set(ir.expr_vars(stmt.expr))
    if isinstance(stmt, (ir.If, ir.While)):
        return set(ir.expr_vars(stmt.cond))
    return set()


def stmt_def(stmt: ir.Stmt) -> str | None:
    """The variable a statement defines, if any (shallow)."""
    if isinstance(stmt, ir.Assign):
        return stmt.target
    return None


def block_defs(body: list[ir.Stmt]) -> set[str]:
    """All variables assigned anywhere in ``body`` (recursing into bodies)."""
    defs: set[str] = set()
    for stmt in body:
        if isinstance(stmt, ir.Assign):
            defs.add(stmt.target)
        elif isinstance(stmt, ir.If):
            defs |= block_defs(stmt.then_body)
            defs |= block_defs(stmt.else_body)
        elif isinstance(stmt, ir.While):
            defs |= block_defs(stmt.body)
    return defs


def block_uses(body: list[ir.Stmt]) -> set[str]:
    """All variables read anywhere in ``body`` (recursing into bodies)."""
    uses: set[str] = set()
    for stmt in body:
        uses |= stmt_uses(stmt)
        if isinstance(stmt, ir.If):
            uses |= block_uses(stmt.then_body)
            uses |= block_uses(stmt.else_body)
        elif isinstance(stmt, ir.While):
            uses |= block_uses(stmt.body)
    return uses


def build_depgraph(stmts: list[ir.Stmt]) -> DepGraph:
    """Build the def-use graph for one straight-line block.

    ``stmts`` must not contain ``if``/``while`` (fusion never crosses
    control flow); nested statements appear to the caller as opaque block
    boundaries.
    """
    graph = DepGraph(list(stmts))
    last_def: dict[str, int] = {}
    for i, stmt in enumerate(stmts):
        graph.edges.setdefault(i, set())
        graph.deps.setdefault(i, set())
        graph.external_inputs.setdefault(i, set())
        for name in stmt_uses(stmt):
            producer = last_def.get(name)
            if producer is None:
                graph.external_inputs[i].add(name)
            else:
                graph.edges.setdefault(producer, set()).add(i)
                graph.deps[i].add(producer)
        defined = stmt_def(stmt)
        if defined is not None:
            last_def[defined] = i
    return graph

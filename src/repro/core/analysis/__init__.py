"""Static analysis over HorseIR (dataflow, types, shapes, lint).

The package splits into layers, each built on the one below:

* :mod:`~repro.core.analysis.cfg` — a control-flow graph over the
  structured IR (``if``/``while`` lower to branch blocks);
* :mod:`~repro.core.analysis.dataflow` — a generic forward/backward
  worklist solver plus the standard analyses: liveness, reaching
  definitions, use-def/def-use chains, constants, and intervals;
* :mod:`~repro.core.analysis.typeshape` — type-and-shape inference
  assigning every statement a ``(HorseType, Shape)`` lattice value,
  driven by the per-builtin signature table in
  :mod:`repro.core.builtins`;
* :mod:`~repro.core.analysis.checker` — the compile-time semantic
  checker (``--verify-ir``'s semantic half): rejects ill-typed or
  shape-incompatible modules with a :class:`~repro.errors.HorseTypeError`
  naming the offending statement;
* :mod:`~repro.core.analysis.lint` — the rule registry and drivers
  behind the ``lint`` CLI subcommand, spanning HorseIR, SQL plans, and
  MATLAB sources.
"""

from repro.core.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.core.analysis.checker import check_method, check_module
from repro.core.analysis.dataflow import (constant_facts, def_use_chains,
                                          interval_facts, liveness,
                                          reaching_definitions, solve,
                                          use_def_chains)
from repro.core.analysis.lint import (LINT_JSON_VERSION, RULES, Finding,
                                      Rule, default_rule_ids,
                                      findings_to_json, lint_matlab,
                                      lint_module, lint_plan)
from repro.core.analysis.typeshape import (SCALAR, UNKNOWN, Shape,
                                           TypeShape, broadcast_shapes,
                                           infer_method)

__all__ = [
    "CFG", "BasicBlock", "build_cfg",
    "solve", "liveness", "reaching_definitions", "use_def_chains",
    "def_use_chains", "constant_facts", "interval_facts",
    "Shape", "TypeShape", "SCALAR", "UNKNOWN", "broadcast_shapes",
    "infer_method",
    "check_method", "check_module",
    "Rule", "Finding", "RULES", "LINT_JSON_VERSION", "default_rule_ids",
    "lint_module", "lint_plan", "lint_matlab", "findings_to_json",
]

"""The lint rule registry and drivers behind ``repro lint``.

Rules span the three layers one HorsePower compilation crosses:

========  =======================  ========  ==========================
rule id   name                     layer     on by default
========  =======================  ========  ==========================
H001      unused-parameter         hir       yes
H002      dead-method              hir       yes
H003      redundant-cast           hir       yes
H004      fusion-blocker           hir       no (report, not a defect)
P001      filter-no-columns        plan      yes
P002      cross-join-no-filter     plan      yes
P003      sort-without-limit       plan      no (perf advisory)
M001      shadowed-builtin         matlab    yes
M002      unreachable-code         matlab    yes
========  =======================  ========  ==========================

Rule IDs are stable — CI and editor integrations key on them.  Findings
serialize to JSON schema version :data:`LINT_JSON_VERSION`:

.. code-block:: json

    {"version": 1,
     "findings": [{"rule": "H001", "name": "unused-parameter",
                   "layer": "hir", "severity": "warning",
                   "location": "method 'scale'",
                   "message": "..."}],
     "counts": {"warning": 1}}

The off-by-default rules fire only under ``--select`` or ``--all``:
``H004`` explains *why* adjacent statements did not fuse (a report on
working code, not a defect), and ``P003`` flags LIMIT-less full sorts
(legitimate SQL — TPC-H q1 orders without limiting — but worth knowing
when chasing a regression).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.core import builtins as hb
from repro.core import ir

__all__ = ["Rule", "Finding", "RULES", "LINT_JSON_VERSION",
           "default_rule_ids", "lint_module", "lint_plan",
           "lint_matlab", "findings_to_json"]

LINT_JSON_VERSION = 1

SEVERITIES = ("warning", "perf", "info")


class Rule(NamedTuple):
    id: str
    name: str
    layer: str       # "hir" | "plan" | "matlab"
    severity: str
    default_on: bool
    summary: str


class Finding(NamedTuple):
    rule: str
    name: str
    layer: str
    severity: str
    location: str
    message: str

    def to_dict(self) -> dict:
        return {"rule": self.rule, "name": self.name,
                "layer": self.layer, "severity": self.severity,
                "location": self.location, "message": self.message}


RULES: dict[str, Rule] = {
    "H001": Rule("H001", "unused-parameter", "hir", "warning", True,
                 "a method parameter is never read"),
    "H002": Rule("H002", "dead-method", "hir", "warning", True,
                 "a method is unreachable from the entry method"),
    "H003": Rule("H003", "redundant-cast", "hir", "warning", True,
                 "check_cast to the type the operand already has"),
    "H004": Rule("H004", "fusion-blocker", "hir", "info", False,
                 "why adjacent statements did not fuse"),
    "P001": Rule("P001", "filter-no-columns", "plan", "warning", True,
                 "a filter references no column of its input"),
    "P002": Rule("P002", "cross-join-no-filter", "plan", "warning",
                 True, "a cross join with no follow-up predicate"),
    "P003": Rule("P003", "sort-without-limit", "plan", "perf", False,
                 "a full sort with no LIMIT above it"),
    "M001": Rule("M001", "shadowed-builtin", "matlab", "warning", True,
                 "a variable or parameter shadows a MATLAB builtin"),
    "M002": Rule("M002", "unreachable-code", "matlab", "warning", True,
                 "statements after return can never execute"),
}


def default_rule_ids() -> tuple[str, ...]:
    """Rule IDs enabled when no ``--select`` is given."""
    return tuple(rule_id for rule_id, rule in RULES.items()
                 if rule.default_on)


def _selected(rules, layer: str) -> list[Rule]:
    if rules is None:
        ids = default_rule_ids()
    else:
        ids = tuple(rules)
    out = []
    for rule_id in ids:
        rule = RULES.get(rule_id)
        if rule is not None and rule.layer == layer:
            out.append(rule)
    return out


def _finding(rule: Rule, location: str, message: str) -> Finding:
    return Finding(rule.id, rule.name, rule.layer, rule.severity,
                   location, message)


# ---------------------------------------------------------------------------
# HorseIR rules
# ---------------------------------------------------------------------------

def lint_module(module: ir.Module, rules=None) -> list[Finding]:
    """Run the selected HorseIR rules over every method."""
    selected = {rule.id: rule for rule in _selected(rules, "hir")}
    findings: list[Finding] = []
    if "H001" in selected:
        findings.extend(_unused_parameters(module, selected["H001"]))
    if "H002" in selected:
        findings.extend(_dead_methods(module, selected["H002"]))
    if "H003" in selected:
        findings.extend(_redundant_casts(module, selected["H003"]))
    if "H004" in selected:
        findings.extend(_fusion_blockers(module, selected["H004"]))
    return findings


def _method_uses(method: ir.Method) -> set[str]:
    used: set[str] = set()
    for stmt in method.walk_stmts():
        if isinstance(stmt, (ir.Assign, ir.Return)):
            used.update(ir.expr_vars(stmt.expr))
        elif isinstance(stmt, ir.If):
            used.update(ir.expr_vars(stmt.cond))
        elif isinstance(stmt, ir.While):
            used.update(ir.expr_vars(stmt.cond))
    return used


def _unused_parameters(module: ir.Module, rule: Rule):
    for method in module.methods.values():
        used = _method_uses(method)
        for param in method.params:
            if param.name not in used:
                yield _finding(
                    rule, f"method {method.name!r}",
                    f"parameter {param.name!r} is never read")


def _dead_methods(module: ir.Module, rule: Rule):
    if not module.methods:
        return
    entry = module.entry.name
    reachable = {entry}
    frontier = [entry]
    while frontier:
        method = module.methods.get(frontier.pop())
        if method is None:
            continue
        for stmt in method.walk_stmts():
            expr = getattr(stmt, "expr", None)
            for callee in _called_methods(expr):
                if callee in module.methods and callee not in reachable:
                    reachable.add(callee)
                    frontier.append(callee)
    for name in module.methods:
        if name not in reachable:
            yield _finding(
                rule, f"method {name!r}",
                f"never called from entry method {entry!r}")


def _called_methods(expr):
    if expr is None:
        return
    if isinstance(expr, ir.MethodCall):
        yield expr.name
    for child in expr.children():
        yield from _called_methods(child)


def _redundant_casts(module: ir.Module, rule: Rule):
    # A cast is redundant only when the operand's type is *proven* —
    # inferred by the type checker, not merely declared.  Declared
    # types on opaque results (``@column_value``, method calls) are
    # assumptions the cast exists to enforce, so those never fire.
    from repro.core.analysis.typeshape import infer_method

    for method in module.methods.values():
        facts = infer_method(method, module)
        proven = {p.name: p.type for p in method.params}
        for stmt in method.walk_stmts():
            if not isinstance(stmt, ir.Assign):
                continue
            fact = facts.stmt_facts.get(id(stmt))
            inferred = None
            if fact is not None and not fact.type.is_wildcard:
                inferred = fact.type
            if stmt.target in proven \
                    and proven[stmt.target] != inferred:
                proven[stmt.target] = None  # conflicting redefinition
            else:
                proven.setdefault(stmt.target, inferred)
        for stmt in method.walk_stmts():
            expr = getattr(stmt, "expr", None)
            if not isinstance(stmt, ir.Assign) \
                    or not isinstance(expr, ir.Cast):
                continue
            if not isinstance(expr.expr, ir.Var):
                continue
            source = proven.get(expr.expr.name)
            if source is not None and not source.is_wildcard \
                    and source == expr.type:
                yield _finding(
                    rule, f"method {method.name!r}",
                    f"check_cast({expr.expr.name}, {expr.type}) is "
                    f"redundant: the operand already has type "
                    f"{source} ({stmt.target} = ...)")


def _fusion_blockers(module: ir.Module, rule: Rule):
    from repro.core.optimizer import fusion

    for method in module.methods.values():
        plan = fusion.segment_method(method)
        for item in _walk_plan_items(plan):
            if not isinstance(item, fusion.OpaqueItem):
                continue
            stmt = item.stmt
            if not isinstance(stmt, ir.Assign):
                continue
            reason = _blocker_reason(stmt)
            if reason is None:
                continue
            yield _finding(
                rule, f"method {method.name!r}",
                f"{stmt.target} = {stmt.expr} did not fuse: {reason}")


def _walk_plan_items(plan):
    from repro.core.optimizer import fusion

    for item in plan:
        yield item
        if isinstance(item, fusion.IfItem):
            yield from _walk_plan_items(item.then_plan)
            yield from _walk_plan_items(item.else_plan)
        elif isinstance(item, fusion.WhileItem):
            yield from _walk_plan_items(item.body_plan)


def _blocker_reason(stmt: ir.Assign) -> str | None:
    from repro.core.optimizer.fusion import _classify

    expr = stmt.expr
    kind = _classify(stmt)
    if kind in ("const", "alias"):
        return None  # free either way; nothing to report
    if kind is None:
        if isinstance(expr, ir.BuiltinCall):
            builtin = hb.BUILTINS.get(expr.name)
            if builtin is None:
                return f"@{expr.name} is unknown"
            if builtin.kind in ("opaque", "source", "scan"):
                return (f"@{expr.name} is {builtin.kind} "
                        f"(never fuses)")
            if builtin.template is None:
                return (f"@{expr.name} has no kernel template")
            return (f"@{expr.name} arguments are not simple "
                    f"variables/literals")
        if isinstance(expr, ir.MethodCall):
            return f"@{expr.name} is an uninlined method call"
        if isinstance(expr, ir.Cast):
            return "cast form is not fusable (non-numeric or nested)"
        return "statement form is not fusable"
    return ("fusable but isolated: no adjacent statement shares its "
            "iteration domain (or its segment had fewer than two "
            "working statements)")


# ---------------------------------------------------------------------------
# SQL plan rules
# ---------------------------------------------------------------------------

def lint_plan(plan, rules=None) -> list[Finding]:
    """Run the selected plan rules over a planned query tree."""
    from repro.sql.plan_passes import (find_filters_without_columns,
                                       find_unfiltered_cross_joins,
                                       find_unlimited_sorts)

    selected = {rule.id: rule for rule in _selected(rules, "plan")}
    detectors = {
        "P001": find_filters_without_columns,
        "P002": find_unfiltered_cross_joins,
        "P003": find_unlimited_sorts,
    }
    findings: list[Finding] = []
    for rule_id, detect in detectors.items():
        rule = selected.get(rule_id)
        if rule is None:
            continue
        for location, message in detect(plan):
            findings.append(_finding(rule, location, message))
    return findings


# ---------------------------------------------------------------------------
# MATLAB frontend rules
# ---------------------------------------------------------------------------

def lint_matlab(program, rules=None) -> list[Finding]:
    """Run the selected MATLAB rules over a parsed
    :class:`~repro.matlang.ast.Program`."""
    from repro.matlang.tamer import (find_shadowed_builtins,
                                     find_unreachable_statements)

    selected = {rule.id: rule for rule in _selected(rules, "matlab")}
    detectors = {
        "M001": find_shadowed_builtins,
        "M002": find_unreachable_statements,
    }
    findings: list[Finding] = []
    for rule_id, detect in detectors.items():
        rule = selected.get(rule_id)
        if rule is None:
            continue
        for function, message in detect(program):
            findings.append(
                _finding(rule, f"function {function!r}", message))
    return findings


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------

def findings_to_json(findings: list[Finding]) -> dict:
    """The documented machine-readable form (schema version
    :data:`LINT_JSON_VERSION`)."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return {
        "version": LINT_JSON_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "counts": counts,
    }

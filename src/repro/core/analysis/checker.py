"""The compile-time semantic checker (``--verify-ir``'s semantic half).

Structural verification (:mod:`repro.core.verify_ir`) guarantees the
IR is *well-formed*; this module guarantees it is *well-typed*: every
builtin receives element types its contract admits, every broadcast
has compatible lengths, every cast can actually coerce at runtime, and
every assignment/return lands in a slot that can hold it.  Violations
raise :class:`~repro.errors.HorseTypeError` naming the method and the
offending statement — *before* execution, instead of a
:class:`~repro.errors.BuiltinError` deep inside the interpreter or a
fused kernel.

The :class:`~repro.core.passes.PassManager` runs this after every pass
application when ``verify=True``, caching the per-method verdict on
its :class:`~repro.core.passes.AnalysisCache` so fixed-point rounds
that change nothing re-check nothing.
"""

from __future__ import annotations

from repro.core import ir
from repro.core.analysis.typeshape import infer_method

__all__ = ["check_method", "check_module"]


def check_method(method: ir.Method,
                 module: ir.Module | None = None) -> None:
    """Type/shape-check one method; raises
    :class:`~repro.errors.HorseTypeError` on the first violation
    (``module`` enables method-call signature checking)."""
    infer_method(method, module, strict=True)


def check_module(module: ir.Module) -> None:
    """Check every method of ``module``."""
    for method in module.methods.values():
        check_method(method, module)

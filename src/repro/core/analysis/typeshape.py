"""Type-and-shape inference over HorseIR methods.

Every statement gets a :class:`TypeShape` — a ``(HorseType, Shape)``
lattice value.  Element types propagate through builtins via the
signature table in :mod:`repro.core.builtins` (constraint kinds per
argument) plus each builtin's existing ``infer`` callable; lengths
propagate through broadcast rules:

* ``scalar × n → n`` — length-one values broadcast into any length;
* ``n × n → n`` — equal concrete lengths (or equal symbolic tokens)
  pass through;
* ``n × m`` with ``n ≠ m`` concrete and neither 1 is a **shape
  error** — the only case the checker rejects;
* ``@compress``/``@index``/``@where`` derive new symbolic length
  classes keyed by their mask/index source, so two compressions under
  the same mask provably agree (the fact fusion relies on).

Symbolic tokens are deliberately coarse: columns of one table share the
table's row token, distinct tokens mean "unknown relation" (never an
error).  The checker therefore only reports *provable* conflicts and
stays silent on everything it cannot decide — all existing TPC-H and
Black-Scholes modules infer clean.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.core import builtins as hb
from repro.core import ir
from repro.core import types as ht
from repro.core.printer import print_stmt
from repro.errors import HorseTypeError

__all__ = ["Shape", "TypeShape", "SCALAR", "TABLE_SHAPE", "LIST_SHAPE",
           "UNKNOWN", "vector_shape", "broadcast_shapes",
           "infer_method", "MethodTypeShapes"]


class Shape(NamedTuple):
    """Value extent: ``kind`` is ``scalar``/``vector``/``table``/
    ``list``/``unknown``; vectors carry a concrete ``length`` *or* a
    symbolic ``token`` naming their length class (both ``None`` =
    unknown length)."""

    kind: str
    length: int | None = None
    token: object = None

    def describe(self) -> str:
        if self.kind == "vector":
            if self.length is not None:
                return f"vector[{self.length}]"
            if self.token is not None:
                return "vector[~]"
            return "vector[?]"
        return self.kind


SCALAR = Shape("scalar", 1)
TABLE_SHAPE = Shape("table")
LIST_SHAPE = Shape("list")
UNKNOWN = Shape("unknown")


def vector_shape(length: int | None = None,
                 token: object = None) -> Shape:
    if length is not None:
        return Shape("vector", int(length), None)
    return Shape("vector", None, token)


class TypeShape(NamedTuple):
    type: ht.HorseType
    shape: Shape


def _is_lengthy(shape: Shape) -> bool:
    return shape.kind in ("scalar", "vector")


def broadcast_shapes(shapes: list[Shape], *, context: str = "") -> Shape:
    """Combine elementwise-operand shapes; raises
    :class:`HorseTypeError` on a provable concrete length conflict."""
    lengths: list[int] = []
    tokens: list[object] = []
    sized = True
    for shape in shapes:
        if not _is_lengthy(shape):
            sized = False
            continue
        if shape.kind == "scalar" or shape.length == 1:
            continue
        if shape.length is not None:
            lengths.append(shape.length)
        elif shape.token is not None:
            tokens.append(shape.token)
        else:
            sized = False
    distinct = sorted(set(lengths))
    if len(distinct) > 1:
        where = f" in {context}" if context else ""
        raise HorseTypeError(
            "broadcast length mismatch"
            f"{where}: {' vs '.join(str(n) for n in distinct)}")
    if distinct:
        if tokens or not sized:
            return vector_shape(token=None)
        return vector_shape(length=distinct[0])
    if tokens:
        first = tokens[0]
        if sized and all(t == first for t in tokens[1:]):
            return vector_shape(token=first)
        return vector_shape()
    if sized and shapes and all(s.kind == "scalar" or s.length == 1
                                for s in shapes if _is_lengthy(s)) \
            and all(_is_lengthy(s) for s in shapes):
        return SCALAR
    return vector_shape()


def _check_equal_length(a: Shape, b: Shape, context: str) -> None:
    """Reject provably-unequal concrete lengths (no broadcast)."""
    if a.kind in ("scalar", "vector") and b.kind in ("scalar", "vector"):
        if a.length is not None and b.length is not None \
                and a.length != b.length:
            raise HorseTypeError(
                f"length mismatch in {context}: "
                f"{a.length} vs {b.length}")


class MethodTypeShapes(NamedTuple):
    """Inference result for one method."""

    #: ``id(stmt) -> TypeShape`` of each Assign's right-hand side.
    stmt_facts: dict
    #: final variable environment (``var -> TypeShape``).
    var_facts: dict
    #: inferred type/shape of each ``return`` expression.
    return_facts: tuple
    #: human-readable problems, in program order (empty = clean).
    diagnostics: tuple


def infer_method(method: ir.Method, module: ir.Module | None = None, *,
                 strict: bool = False) -> MethodTypeShapes:
    """Infer ``(type, shape)`` for every statement of ``method``.

    With ``strict=True`` the first problem raises
    :class:`HorseTypeError` naming the statement; otherwise problems
    accumulate as diagnostics and inference recovers with ⊤.
    """
    engine = _Inference(method, module, strict)
    engine.run()
    return MethodTypeShapes(engine.stmt_facts, engine.env,
                            tuple(engine.return_facts),
                            tuple(engine.diagnostics))


class _Inference:
    def __init__(self, method: ir.Method, module: ir.Module | None,
                 strict: bool):
        self.method = method
        self.module = module
        self.strict = strict
        self.stmt_facts: dict = {}
        self.return_facts: list = []
        self.diagnostics: list = []
        self.env: dict[str, TypeShape] = {}
        #: variables currently known to hold a concrete scalar int.
        self.consts: dict[str, int] = {}
        for param in method.params:
            self.env[param.name] = TypeShape(
                param.type, _shape_of_type(param.type,
                                           ("param", param.name)))

    # -- error plumbing ----------------------------------------------------

    def _problem(self, stmt: ir.Stmt, message: str) -> None:
        text = (f"{message} [method {self.method.name!r}: "
                f"{print_stmt(stmt)}]")
        if self.strict:
            raise HorseTypeError(text)
        self.diagnostics.append(text)

    # -- driver ------------------------------------------------------------

    def run(self) -> None:
        self._run_body(self.method.body)

    def _run_body(self, body: list[ir.Stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ir.Assign):
                self._run_assign(stmt)
            elif isinstance(stmt, ir.Return):
                fact = self._expr(stmt.expr, stmt)
                self.return_facts.append(fact)
                self._check_return(stmt, fact)
            elif isinstance(stmt, ir.If):
                self._check_cond(stmt, stmt.cond)
                snapshot = (dict(self.env), dict(self.consts))
                self._run_body(stmt.then_body)
                then_state = (self.env, self.consts)
                self.env, self.consts = (dict(snapshot[0]),
                                         dict(snapshot[1]))
                self._run_body(stmt.else_body)
                self._merge_state(then_state)
            elif isinstance(stmt, ir.While):
                self._check_cond(stmt, stmt.cond)
                snapshot = (dict(self.env), dict(self.consts))
                # Two rounds: the first discovers loop-carried facts,
                # the merge weakens anything the body changes, the
                # second re-checks the body under the weakened state.
                self._run_body(stmt.body)
                self._merge_state((snapshot[0], snapshot[1]))
                self._run_body(stmt.body)
                self._merge_state((snapshot[0], snapshot[1]))

    def _merge_state(self, other) -> None:
        other_env, other_consts = other
        merged: dict[str, TypeShape] = {}
        for name, fact in self.env.items():
            if name in other_env:
                merged[name] = _join_fact(fact, other_env[name])
            else:
                merged[name] = fact
        for name, fact in other_env.items():
            merged.setdefault(name, fact)
        self.env = merged
        self.consts = {name: value
                       for name, value in self.consts.items()
                       if other_consts.get(name) == value}

    # -- statements --------------------------------------------------------

    def _run_assign(self, stmt: ir.Assign) -> None:
        try:
            fact = self._expr(stmt.expr, stmt)
        except HorseTypeError:
            if self.strict:
                raise
            fact = TypeShape(ht.WILDCARD, UNKNOWN)
        self.stmt_facts[id(stmt)] = fact
        self._check_declared(stmt, fact)
        final_type = fact.type
        if final_type.is_wildcard and stmt.type is not None:
            final_type = stmt.type
        self.env[stmt.target] = TypeShape(final_type, fact.shape)
        value = _literal_int(stmt.expr)
        if value is not None:
            self.consts[stmt.target] = value
        else:
            self.consts.pop(stmt.target, None)

    def _check_declared(self, stmt: ir.Assign, fact: TypeShape) -> None:
        declared = stmt.type
        if declared is None:
            return
        if not _assignable(declared, fact.type):
            self._problem(
                stmt,
                f"declared type {declared} cannot hold a value of "
                f"inferred type {fact.type}")

    def _check_return(self, stmt: ir.Return, fact: TypeShape) -> None:
        if not _assignable(self.method.ret_type, fact.type):
            self._problem(
                stmt,
                f"return type {self.method.ret_type} cannot hold a "
                f"value of inferred type {fact.type}")

    def _check_cond(self, stmt: ir.Stmt, cond: ir.Expr) -> None:
        fact = self._expr(cond, stmt)
        if fact.type.kind in ("table",) or fact.type.kind == "list":
            self._problem(stmt,
                          f"condition has non-scalar type {fact.type}")

    # -- expressions -------------------------------------------------------

    def _expr(self, expr: ir.Expr, stmt: ir.Stmt) -> TypeShape:
        if isinstance(expr, ir.Var):
            fact = self.env.get(expr.name)
            if fact is None:
                return TypeShape(ht.WILDCARD, UNKNOWN)
            return fact
        if isinstance(expr, ir.Literal):
            lit_type = expr.type if expr.type is not None else ht.WILDCARD
            return TypeShape(lit_type, SCALAR)
        if isinstance(expr, ir.SymbolLit):
            return TypeShape(ht.SYM, SCALAR)
        if isinstance(expr, ir.Cast):
            return self._cast(expr, stmt)
        if isinstance(expr, ir.BuiltinCall):
            return self._builtin(expr, stmt)
        if isinstance(expr, ir.MethodCall):
            return self._method_call(expr, stmt)
        return TypeShape(ht.WILDCARD, UNKNOWN)

    def _cast(self, expr: ir.Cast, stmt: ir.Stmt) -> TypeShape:
        inner = self._expr(expr.expr, stmt)
        target = expr.type
        if not inner.type.is_wildcard and not target.is_wildcard:
            inner_container = _container_kind(inner.type)
            target_container = _container_kind(target)
            if inner_container != target_container:
                self._problem(
                    stmt,
                    f"cannot cast a {inner.type} value to {target} "
                    f"(runtime coercion would fail)")
        shape = inner.shape
        if target == ht.TABLE:
            shape = TABLE_SHAPE
        elif target.kind == "list":
            shape = LIST_SHAPE
        return TypeShape(target, shape)

    def _method_call(self, expr: ir.MethodCall,
                     stmt: ir.Stmt) -> TypeShape:
        facts = [self._expr(a, stmt) for a in expr.args]
        if self.module is None or expr.name not in self.module.methods:
            return TypeShape(ht.WILDCARD, UNKNOWN)
        callee = self.module.methods[expr.name]
        for position, (param, fact) in enumerate(
                zip(callee.params, facts)):
            if not _assignable(param.type, fact.type):
                self._problem(
                    stmt,
                    f"@{expr.name} parameter {param.name!r} has type "
                    f"{param.type} but argument {position + 1} has "
                    f"type {fact.type}")
        ret = callee.ret_type
        if ret == ht.TABLE:
            shape = TABLE_SHAPE
        elif ret.kind == "list":
            shape = LIST_SHAPE
        else:
            # Scalar UDFs map elementwise over their row arguments.
            shape = broadcast_shapes([f.shape for f in facts],
                                     context=f"@{expr.name}")
        return TypeShape(ret, shape)

    def _builtin(self, expr: ir.BuiltinCall,
                 stmt: ir.Stmt) -> TypeShape:
        facts = [self._expr(a, stmt) for a in expr.args]
        arg_types = [f.type for f in facts]
        sig = hb.signature(expr.name)
        if sig is not None:
            self._check_constraints(expr, sig, arg_types, stmt)
        builtin = hb.BUILTINS.get(expr.name)
        if builtin is None:
            return TypeShape(ht.WILDCARD, UNKNOWN)
        try:
            out_type = builtin.infer(arg_types)
        except HorseTypeError as exc:
            self._problem(stmt, f"@{expr.name}: {exc}")
            out_type = ht.WILDCARD
        shape = self._result_shape(expr, sig, facts, stmt)
        return TypeShape(out_type, shape)

    def _check_constraints(self, expr: ir.BuiltinCall, sig,
                           arg_types, stmt: ir.Stmt) -> None:
        for position, arg_type in enumerate(arg_types):
            constraint = _constraint_at(sig, position)
            if constraint is None:
                continue
            if not _satisfies(arg_type, constraint):
                self._problem(
                    stmt,
                    f"@{expr.name} argument {position + 1} has type "
                    f"{arg_type} where {_describe(constraint)} is "
                    f"required")
        if expr.name in ("lt", "gt", "leq", "geq", "eq", "neq"):
            groups = {_comparison_group(t) for t in arg_types
                      if not t.is_wildcard}
            groups.discard(None)
            if len(groups) > 1:
                self._problem(
                    stmt,
                    f"@{expr.name} compares incompatible types "
                    f"{arg_types[0]} and {arg_types[1]}")

    def _result_shape(self, expr: ir.BuiltinCall, sig,
                      facts, stmt: ir.Stmt) -> Shape:
        shapes = [f.shape for f in facts]
        rule = sig.shape if sig is not None else "unknown"
        name = expr.name
        if rule == "elementwise":
            builtin = hb.BUILTINS.get(name)
            skip = set(builtin.broadcast_args) if builtin else set()
            operand_shapes = [s for i, s in enumerate(shapes)
                              if i not in skip]
            try:
                return broadcast_shapes(operand_shapes,
                                        context=f"@{name}")
            except HorseTypeError as exc:
                self._problem(stmt, str(exc))
                return vector_shape()
        if rule in ("reduction", "scalar", "masked_reduction"):
            if rule == "masked_reduction" and len(shapes) >= 2:
                try:
                    for other in shapes[1:]:
                        _check_equal_length(shapes[0], other,
                                            f"@{name}")
                except HorseTypeError as exc:
                    self._problem(stmt, str(exc))
            return SCALAR
        if rule == "compress":
            if len(shapes) == 2:
                try:
                    _check_equal_length(shapes[0], shapes[1],
                                        f"@{name}")
                except HorseTypeError as exc:
                    self._problem(stmt, str(exc))
            token = _source_token(expr.args[0], shapes[0])
            return vector_shape(token=("compress", token))
        if rule == "index":
            return shapes[1] if len(shapes) > 1 else vector_shape()
        if rule == "where":
            token = _source_token(expr.args[0], shapes[0])
            return vector_shape(token=("where", token))
        if rule.startswith("same:"):
            position = int(rule.split(":", 1)[1])
            return shapes[position] if position < len(shapes) \
                else vector_shape()
        if rule == "range":
            n = self._const_arg(expr.args[0])
            if n is not None and n >= 0:
                return vector_shape(length=n)
            return vector_shape(
                token=("range", _source_token(expr.args[0], SCALAR)))
        if rule == "fill":
            n = self._const_arg(expr.args[0])
            if n is not None and n >= 0:
                return vector_shape(length=n)
            return vector_shape(
                token=("fill", _source_token(expr.args[0], SCALAR)))
        if rule == "group_agg":
            n = self._const_arg(expr.args[2]) \
                if len(expr.args) > 2 else None
            if n is not None and n >= 0:
                return vector_shape(length=n)
            return vector_shape()
        if rule == "table":
            return TABLE_SHAPE
        if rule == "list":
            return LIST_SHAPE
        if rule == "column":
            table_token = shapes[0].token if shapes else None
            if table_token is None:
                table_token = _source_token(expr.args[0], shapes[0]) \
                    if expr.args else None
            return vector_shape(token=("rows", table_token))
        if rule == "vector":
            return vector_shape()
        return UNKNOWN

    def _const_arg(self, arg: ir.Expr) -> int | None:
        value = _literal_int(arg)
        if value is not None:
            return value
        if isinstance(arg, ir.Var):
            return self.consts.get(arg.name)
        return None


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _shape_of_type(t: ht.HorseType, token: object) -> Shape:
    if t == ht.TABLE:
        return Shape("table", None, token)
    if t.kind == "list":
        return LIST_SHAPE
    if t.is_wildcard:
        return UNKNOWN
    return vector_shape(token=token)


def _literal_int(expr: ir.Expr) -> int | None:
    if isinstance(expr, ir.Literal) \
            and isinstance(expr.value, (int, bool)) \
            and not isinstance(expr.value, float):
        return int(expr.value)
    return None


def _source_token(arg: ir.Expr, shape: Shape) -> object:
    if shape is not None and getattr(shape, "token", None) is not None:
        return shape.token
    if isinstance(arg, ir.Var):
        return ("var", arg.name)
    return ("expr", id(arg))


def _container_kind(t: ht.HorseType) -> str:
    if t == ht.TABLE:
        return "table"
    if t.kind == "list":
        return "list"
    return "vector"


def _assignable(declared: ht.HorseType,
                inferred: ht.HorseType) -> bool:
    """Can a value of ``inferred`` type land in a slot declared
    ``declared``?  Mirrors :func:`repro.core.values.coerce`: vector
    element types re-coerce freely; only container-kind mismatches
    (table/list vs anything else) fail at runtime."""
    if declared is None or declared.is_wildcard or inferred.is_wildcard:
        return True
    return _container_kind(declared) == _container_kind(inferred)


def _join_fact(a: TypeShape, b: TypeShape) -> TypeShape:
    if a == b:
        return a
    try:
        joined_type = ht.unify(a.type, b.type)
    except HorseTypeError:
        joined_type = ht.WILDCARD
    return TypeShape(joined_type, _join_shape(a.shape, b.shape))


def _join_shape(a: Shape, b: Shape) -> Shape:
    if a == b:
        return a
    if a.kind == b.kind == "vector":
        if a.length is not None and a.length == b.length:
            return vector_shape(length=a.length)
        if a.token is not None and a.token == b.token:
            return vector_shape(token=a.token)
        return vector_shape()
    if a.kind in ("scalar", "vector") and b.kind in ("scalar", "vector"):
        return vector_shape()
    if a.kind == b.kind:
        return a
    return UNKNOWN


def _satisfies(t: ht.HorseType, constraint: str) -> bool:
    if t.is_wildcard or constraint == "any":
        return True
    if constraint == "numeric":
        return ht.is_numeric(t)
    if constraint == "numeric_or_date":
        return ht.is_numeric(t) or t == ht.DATE
    if constraint == "bool":
        return t == ht.BOOL
    if constraint == "integer":
        return ht.is_integer(t) or t == ht.BOOL
    if constraint == "comparable":
        return ht.is_comparable(t)
    if constraint == "strlike":
        return t in (ht.STR, ht.SYM)
    if constraint == "date":
        return t == ht.DATE
    if constraint == "table":
        return t == ht.TABLE
    if constraint == "list":
        return t.kind == "list"
    if constraint == "sym":
        return t == ht.SYM
    if constraint == "vector":
        return t != ht.TABLE and t.kind != "list"
    return True


_DESCRIBE = {
    "numeric": "a numeric type",
    "numeric_or_date": "a numeric or date type",
    "bool": "bool",
    "integer": "an integer type",
    "comparable": "a comparable type",
    "strlike": "a string or symbol type",
    "date": "date",
    "table": "a table",
    "list": "a list",
    "sym": "a symbol",
    "vector": "a vector type",
}


def _describe(constraint: str) -> str:
    return _DESCRIBE.get(constraint, constraint)


def _constraint_at(sig, position: int) -> str | None:
    if position < len(sig.args):
        return sig.args[position]
    if sig.variadic and sig.args:
        return sig.args[-1]
    return None


def _comparison_group(t: ht.HorseType) -> str | None:
    if ht.is_numeric(t):
        return "numeric"
    if t in (ht.STR, ht.SYM):
        return "string"
    if t == ht.DATE:
        return "date"
    return None

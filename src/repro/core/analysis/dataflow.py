"""A generic worklist dataflow solver and the standard analyses.

:func:`solve` runs any :class:`DataflowAnalysis` (forward or backward)
over a :class:`~repro.core.analysis.cfg.CFG` to a fixed point, with an
optional widening hook for infinite-height lattices (intervals).  On
top of it:

* :func:`liveness` — per-statement live-in/live-out variable sets;
* :func:`reaching_definitions` — which definitions reach each
  statement (parameters count as definitions at entry);
* :func:`use_def_chains` / :func:`def_use_chains` — the chains derived
  from reaching definitions;
* :func:`constant_facts` — per-statement known-constant environments
  (literal assignments and copies);
* :func:`interval_facts` — per-statement numeric value ranges with
  widening after :data:`WIDEN_AFTER` visits.

All per-statement result dictionaries are keyed by ``id(stmt)`` — the
same convention the fusion segmenter uses — so facts stay attached to
statement objects across in-place rewrites until a pass declares them
invalid.
"""

from __future__ import annotations

from collections import deque

from repro.core import ir
from repro.core.analysis.cfg import CFG, build_cfg
from repro.core.depgraph import stmt_def, stmt_uses

__all__ = ["DataflowAnalysis", "solve", "liveness",
           "reaching_definitions", "use_def_chains", "def_use_chains",
           "constant_facts", "interval_facts", "NONCONST",
           "WIDEN_AFTER"]

#: Block-visit budget before the interval analysis widens to ±inf.
WIDEN_AFTER = 4


class DataflowAnalysis:
    """One analysis: a lattice (``initial``/``join``) plus a transfer
    function folded over each block's statements."""

    name = "dataflow"
    direction = "forward"  # or "backward"

    def boundary(self, cfg: CFG, method: ir.Method):
        """Fact at the entry (forward) or exit (backward) block."""
        return self.initial(cfg, method)

    def initial(self, cfg: CFG, method: ir.Method):
        raise NotImplementedError

    def join(self, facts: list):
        raise NotImplementedError

    def transfer(self, stmt: ir.Stmt, fact):
        """Fact after ``stmt`` given the fact before it (in the
        analysis direction)."""
        raise NotImplementedError

    def widen(self, old, new, visits: int):
        """Hook for infinite lattices; the default never widens."""
        return new


def solve(cfg: CFG, analysis: DataflowAnalysis, method: ir.Method) \
        -> dict[int, tuple]:
    """Run ``analysis`` to a fixed point; returns
    ``{block_index: (fact_in, fact_out)}`` in the analysis direction
    (for backward analyses ``fact_in`` is the fact at block *exit*)."""
    forward = analysis.direction == "forward"
    preds = cfg.preds
    edges_in = preds if forward else cfg.succs
    edges_out = cfg.succs if forward else preds
    start = cfg.entry if forward else cfg.exit

    n = len(cfg.blocks)
    fact_in = [analysis.initial(cfg, method) for _ in range(n)]
    fact_out = [analysis.initial(cfg, method) for _ in range(n)]
    fact_in[start] = analysis.boundary(cfg, method)
    visits = [0] * n

    worklist = deque(range(n))
    while worklist:
        index = worklist.popleft()
        visits[index] += 1
        incoming = [fact_out[p] for p in edges_in[index]]
        if incoming:
            joined = analysis.join(incoming)
            if index != start:
                fact_in[index] = joined
            else:
                fact_in[index] = analysis.join(
                    [fact_in[index]] + incoming)
        fact = fact_in[index]
        stmts = cfg.blocks[index].stmts
        for stmt in (stmts if forward else reversed(stmts)):
            fact = analysis.transfer(stmt, fact)
        fact = analysis.widen(fact_out[index], fact, visits[index])
        if fact != fact_out[index]:
            fact_out[index] = fact
            for succ in edges_out[index]:
                if succ not in worklist:
                    worklist.append(succ)
    return {i: (fact_in[i], fact_out[i]) for i in range(n)}


def _per_stmt(cfg: CFG, analysis: DataflowAnalysis, method: ir.Method) \
        -> dict[int, tuple]:
    """Replay block facts statement by statement:
    ``{id(stmt): (fact_before, fact_after)}`` in program order."""
    block_facts = solve(cfg, analysis, method)
    forward = analysis.direction == "forward"
    result: dict[int, tuple] = {}
    for block in cfg.blocks:
        fact = block_facts[block.index][0]
        stmts = block.stmts if forward else list(reversed(block.stmts))
        for stmt in stmts:
            after = analysis.transfer(stmt, fact)
            if forward:
                result[id(stmt)] = (fact, after)
            else:
                result[id(stmt)] = (after, fact)
            fact = after
    return result


# ---------------------------------------------------------------------------
# liveness (backward, set union)
# ---------------------------------------------------------------------------

class _Liveness(DataflowAnalysis):
    name = "liveness"
    direction = "backward"

    def initial(self, cfg, method):
        return frozenset()

    def join(self, facts):
        out: set[str] = set()
        for fact in facts:
            out |= fact
        return frozenset(out)

    def transfer(self, stmt, fact):
        defined = stmt_def(stmt)
        if defined is not None:
            fact = fact - {defined}
        return frozenset(fact | stmt_uses(stmt))


def liveness(method: ir.Method) -> dict[int, tuple]:
    """``{id(stmt): (live_in, live_out)}`` variable sets."""
    return _per_stmt(build_cfg(method), _Liveness(), method)


# ---------------------------------------------------------------------------
# reaching definitions (forward, set union)
# ---------------------------------------------------------------------------

#: A definition site: ``("param", name)`` or ``("stmt", id(stmt))``.

class _Reaching(DataflowAnalysis):
    name = "reaching-defs"
    direction = "forward"

    def initial(self, cfg, method):
        return frozenset()

    def boundary(self, cfg, method):
        return frozenset((p.name, ("param", p.name))
                         for p in method.params)

    def join(self, facts):
        out: set = set()
        for fact in facts:
            out |= fact
        return frozenset(out)

    def transfer(self, stmt, fact):
        defined = stmt_def(stmt)
        if defined is None:
            return fact
        kept = {entry for entry in fact if entry[0] != defined}
        kept.add((defined, ("stmt", id(stmt))))
        return frozenset(kept)


def reaching_definitions(method: ir.Method) -> dict[int, tuple]:
    """``{id(stmt): (reach_in, reach_out)}`` where each fact is a
    frozenset of ``(var, def_site)`` pairs."""
    return _per_stmt(build_cfg(method), _Reaching(), method)


def use_def_chains(method: ir.Method) -> dict[int, dict]:
    """``{id(stmt): {used_var: tuple(def_sites)}}``."""
    reach = reaching_definitions(method)
    chains: dict[int, dict] = {}
    for stmt in method.walk_stmts():
        fact_in = reach.get(id(stmt))
        if fact_in is None:
            continue
        uses = stmt_uses(stmt)
        per_var: dict[str, tuple] = {}
        for var in sorted(uses):
            sites = tuple(sorted((site for name, site in fact_in[0]
                                  if name == var), key=repr))
            per_var[var] = sites
        chains[id(stmt)] = per_var
    return chains


def def_use_chains(method: ir.Method) -> dict:
    """``{def_site: tuple(id(stmt) of uses)}`` — the inverse chains."""
    chains = use_def_chains(method)
    inverse: dict = {}
    for stmt in method.walk_stmts():
        for sites in chains.get(id(stmt), {}).values():
            for site in sites:
                inverse.setdefault(site, []).append(id(stmt))
    return {site: tuple(uses) for site, uses in inverse.items()}


# ---------------------------------------------------------------------------
# constants (forward, per-variable must-equal lattice)
# ---------------------------------------------------------------------------

class _NonConst:
    """Bottom marker for "assigned, value unknown"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NONCONST"


NONCONST = _NonConst()


def _const_items(fact: dict) -> frozenset:
    return frozenset((k, repr(v)) for k, v in fact.items())


class _Constants(DataflowAnalysis):
    name = "constants"
    direction = "forward"

    def initial(self, cfg, method):
        return {}

    def boundary(self, cfg, method):
        return {p.name: NONCONST for p in method.params}

    def join(self, facts):
        if not facts:
            return {}
        out = dict(facts[0])
        for fact in facts[1:]:
            for name in list(out):
                if name not in fact:
                    del out[name]
                elif repr(out[name]) != repr(fact[name]):
                    out[name] = NONCONST
        return out

    def transfer(self, stmt, fact):
        defined = stmt_def(stmt)
        if defined is None:
            return fact
        out = dict(fact)
        out[defined] = _eval_const(stmt.expr, fact)
        return out


def _eval_const(expr: ir.Expr, fact: dict):
    if isinstance(expr, ir.Literal):
        return expr.value
    if isinstance(expr, ir.SymbolLit):
        return expr.name
    if isinstance(expr, ir.Var):
        return fact.get(expr.name, NONCONST)
    if isinstance(expr, ir.Cast):
        inner = _eval_const(expr.expr, fact)
        if inner is NONCONST:
            return NONCONST
        return inner
    return NONCONST


def constant_facts(method: ir.Method) -> dict[int, tuple]:
    """``{id(stmt): (consts_in, consts_out)}`` — each a
    ``{var: value-or-NONCONST}`` map."""
    return _per_stmt(build_cfg(method), _Constants(), method)


# ---------------------------------------------------------------------------
# intervals (forward, widening)
# ---------------------------------------------------------------------------

_INF = float("inf")

_INTERVAL_OPS = {
    "add": lambda a, b: (a[0] + b[0], a[1] + b[1]),
    "sub": lambda a, b: (a[0] - b[1], a[1] - b[0]),
    "neg": lambda a: (-a[1], -a[0]),
    "abs": lambda a: ((0.0 if a[0] < 0 <= a[1]
                       else min(abs(a[0]), abs(a[1]))),
                      max(abs(a[0]), abs(a[1]))),
    "min2": lambda a, b: (min(a[0], b[0]), min(a[1], b[1])),
    "max2": lambda a, b: (max(a[0], b[0]), max(a[1], b[1])),
}


def _mul_interval(a, b):
    products = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]]
    products = [0.0 if p != p else p for p in products]  # 0*inf -> 0
    return (min(products), max(products))


class _Intervals(DataflowAnalysis):
    name = "intervals"
    direction = "forward"

    def initial(self, cfg, method):
        return {}

    def boundary(self, cfg, method):
        return {p.name: (-_INF, _INF) for p in method.params}

    def join(self, facts):
        if not facts:
            return {}
        out = dict(facts[0])
        for fact in facts[1:]:
            for name in list(out):
                if name not in fact:
                    del out[name]
                else:
                    lo = min(out[name][0], fact[name][0])
                    hi = max(out[name][1], fact[name][1])
                    out[name] = (lo, hi)
        return out

    def transfer(self, stmt, fact):
        defined = stmt_def(stmt)
        if defined is None:
            return fact
        out = dict(fact)
        out[defined] = _eval_interval(stmt.expr, fact)
        return out

    def widen(self, old, new, visits):
        if visits <= WIDEN_AFTER or not isinstance(old, dict):
            return new
        widened = dict(new)
        for name, bounds in widened.items():
            previous = old.get(name)
            if previous is None:
                continue
            lo, hi = bounds
            if lo < previous[0]:
                lo = -_INF
            if hi > previous[1]:
                hi = _INF
            widened[name] = (lo, hi)
        return widened


def _eval_interval(expr: ir.Expr, fact: dict):
    top = (-_INF, _INF)
    if isinstance(expr, ir.Literal):
        if isinstance(expr.value, bool):
            v = float(expr.value)
            return (v, v)
        if isinstance(expr.value, (int, float)):
            v = float(expr.value)
            return (v, v)
        return top
    if isinstance(expr, ir.Var):
        return fact.get(expr.name, top)
    if isinstance(expr, ir.Cast):
        return _eval_interval(expr.expr, fact)
    if isinstance(expr, ir.BuiltinCall):
        if expr.name == "range" and len(expr.args) == 1:
            n = _eval_interval(expr.args[0], fact)
            return (0.0, max(n[1] - 1, 0.0))
        if expr.name in ("len", "count"):
            return (0.0, _INF)
        op = _INTERVAL_OPS.get(expr.name)
        if op is not None:
            args = [_eval_interval(a, fact) for a in expr.args]
            try:
                return op(*args)
            except (TypeError, ValueError):  # pragma: no cover
                return top
        if expr.name == "mul":
            return _mul_interval(_eval_interval(expr.args[0], fact),
                                 _eval_interval(expr.args[1], fact))
        if expr.name in ("sum", "prod", "cumsum", "avg"):
            return top
        if expr.name in ("min", "max", "compress", "index", "take",
                         "reverse", "unique", "concat", "subseq",
                         "fill"):
            # Selection/reordering never widens element bounds beyond
            # the argument's.
            sources = [_eval_interval(a, fact) for a in expr.args]
            lo = min((s[0] for s in sources), default=-_INF)
            hi = max((s[1] for s in sources), default=_INF)
            return (lo, hi)
        if expr.name in ("lt", "gt", "leq", "geq", "eq", "neq", "and",
                         "or", "not", "any", "all"):
            return (0.0, 1.0)
    return top


def interval_facts(method: ir.Method) -> dict[int, tuple]:
    """``{id(stmt): (intervals_in, intervals_out)}`` — each a
    ``{var: (lo, hi)}`` map over element values."""
    return _per_stmt(build_cfg(method), _Intervals(), method)

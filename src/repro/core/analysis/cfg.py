"""Control-flow graph construction over structured HorseIR.

The IR keeps ``if``/``while`` structured (there are no labels or
gotos), so the CFG is derived, not parsed: every straight-line run of
statements becomes a :class:`BasicBlock`, and a block whose *last*
statement is an :class:`~repro.core.ir.If` or
:class:`~repro.core.ir.While` is a branch block — the control
statement appears in the block as a condition *read* (its
:func:`~repro.core.depgraph.stmt_uses` are the condition's variables,
its :func:`~repro.core.depgraph.stmt_def` is ``None``), never as a
definition.  ``return`` statements edge to the synthetic exit block.

This shape is exactly what the worklist solver in
:mod:`~repro.core.analysis.dataflow` consumes: transfer functions fold
over ``block.stmts`` with the ``stmt_uses``/``stmt_def`` vocabulary the
dependence graph already established.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import ir

__all__ = ["CFG", "BasicBlock", "build_cfg"]


@dataclass
class BasicBlock:
    """A straight-line run of statements with single entry/exit."""

    index: int
    stmts: list[ir.Stmt] = field(default_factory=list)


class CFG:
    """Blocks plus directed edges; ``entry`` and ``exit`` are synthetic
    endpoints (``exit`` is always empty, ``entry`` may hold code)."""

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.succs: list[list[int]] = []
        self.entry: int = 0
        self.exit: int = 0

    def new_block(self) -> int:
        index = len(self.blocks)
        self.blocks.append(BasicBlock(index))
        self.succs.append([])
        return index

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.succs[src]:
            self.succs[src].append(dst)

    @property
    def preds(self) -> list[list[int]]:
        result: list[list[int]] = [[] for _ in self.blocks]
        for src, dsts in enumerate(self.succs):
            for dst in dsts:
                result[dst].append(src)
        return result

    def statements(self):
        """Every statement, in block order (branch statements once)."""
        for block in self.blocks:
            yield from block.stmts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = ", ".join(f"{i}->{d}" for i, ds in enumerate(self.succs)
                          for d in ds)
        return f"<CFG {len(self.blocks)} blocks [{edges}]>"


def build_cfg(method: ir.Method) -> CFG:
    """Lower ``method``'s structured body to a CFG."""
    cfg = CFG()
    entry = cfg.new_block()
    exit_block = cfg.new_block()
    cfg.entry = entry
    cfg.exit = exit_block
    last = _lower(method.body, entry, cfg, exit_block)
    if last is not None:
        # A body that falls off the end (the verifier rejects this, but
        # the CFG stays total anyway).
        cfg.add_edge(last, exit_block)
    return cfg


def _lower(body: list[ir.Stmt], current: int | None, cfg: CFG,
           exit_block: int) -> int | None:
    """Append ``body`` starting at ``current``; returns the open block
    at the end, or ``None`` when every path terminated."""
    for stmt in body:
        if current is None:
            # Unreachable code still gets a (predecessor-less) block so
            # analyses see every statement.
            current = cfg.new_block()
        if isinstance(stmt, ir.Return):
            cfg.blocks[current].stmts.append(stmt)
            cfg.add_edge(current, exit_block)
            current = None
        elif isinstance(stmt, ir.If):
            cfg.blocks[current].stmts.append(stmt)
            then_entry = cfg.new_block()
            cfg.add_edge(current, then_entry)
            then_end = _lower(stmt.then_body, then_entry, cfg, exit_block)
            if stmt.else_body:
                else_entry = cfg.new_block()
                cfg.add_edge(current, else_entry)
                else_end = _lower(stmt.else_body, else_entry, cfg,
                                  exit_block)
            else:
                else_end = None
            join = cfg.new_block()
            if then_end is not None:
                cfg.add_edge(then_end, join)
            if stmt.else_body:
                if else_end is not None:
                    cfg.add_edge(else_end, join)
            else:
                cfg.add_edge(current, join)
            current = join if cfg.preds[join] else None
        elif isinstance(stmt, ir.While):
            head = cfg.new_block()
            cfg.add_edge(current, head)
            cfg.blocks[head].stmts.append(stmt)
            body_entry = cfg.new_block()
            cfg.add_edge(head, body_entry)
            body_end = _lower(stmt.body, body_entry, cfg, exit_block)
            if body_end is not None:
                cfg.add_edge(body_end, head)
            after = cfg.new_block()
            cfg.add_edge(head, after)
            current = after
        else:
            cfg.blocks[current].stmts.append(stmt)
    return current

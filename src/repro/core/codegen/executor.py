"""Chunked, multi-threaded execution of fused kernels.

The reproduction's stand-in for the paper's OpenMP parallel loops: the base
iteration space is split into chunks, the fused kernel runs per chunk (its
temporaries are chunk-sized, so the chain stays cache-resident), chunks are
dispatched to a thread pool (NumPy array ops release the GIL), and vector
outputs are concatenated in chunk order while reduction partials merge with
the builtin's ``combine`` rule.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core import types as ht
from repro.core.codegen.pygen import CompiledKernel
from repro.core.context import QueryContext, ensure_context
from repro.core.values import Vector
from repro.errors import BuiltinError, HorseRuntimeError

__all__ = ["run_kernel", "DEFAULT_CHUNK_SIZE"]

#: Elements per chunk.  Sized so a handful of f64 temporaries stay
#: cache-resident (measured sweet spot 8k-32k elements on this class of
#: kernel; see EXPERIMENTS.md).
DEFAULT_CHUNK_SIZE = 1 << 15


def run_kernel(kernel: CompiledKernel, inputs: list[Vector],
               n_threads: int = 1,
               chunk_size: int = DEFAULT_CHUNK_SIZE,
               pool: ThreadPoolExecutor | None = None,
               ctx: QueryContext | None = None) -> list[Vector]:
    """Execute a fused kernel over its inputs; returns the output vectors
    in the order of ``kernel.outputs``.  Spans and kernel metrics report
    into ``ctx`` (ambient process context when not given); parallel runs
    borrow ``pool``, falling back to the context's pool."""
    ctx = ensure_context(ctx)
    start = time.perf_counter()
    outputs = _run_kernel(kernel, inputs, n_threads, chunk_size, pool,
                          ctx)
    metrics = ctx.metrics
    metrics.counter("kernel.invocations").inc()
    metrics.histogram("kernel.seconds").observe(
        time.perf_counter() - start)
    metrics.counter("kernel.rows_in").inc(
        max((len(v) for v in inputs), default=0))
    metrics.counter("kernel.rows_out").inc(
        max((len(v) for v in outputs), default=0))
    profile = ctx.profile
    if profile.enabled:
        charge_kernel_alloc(kernel, inputs, outputs, chunk_size, ctx)
    return outputs


def charge_kernel_alloc(kernel: CompiledKernel, inputs: list[Vector],
                        outputs: list[Vector], chunk_size: int,
                        ctx: QueryContext) -> None:
    """Charge one fused-kernel invocation to the context's profile.

    The fusion story in numbers: the kernel materializes only its
    *outputs* plus its reused per-chunk ``out=`` buffers — each buffer
    is ``min(base_len, chunk_size)`` elements and charged **once** no
    matter how many chunks streamed through it, whereas the naive path
    charges a full-length vector per statement.  The total also lands
    on the current (kernel) span as ``alloc_bytes`` so
    ``EXPLAIN ANALYZE`` shows per-span allocation.
    """
    profile = ctx.profile
    n = max((len(v) for v, stream in zip(inputs, kernel.streamed)
             if stream), default=1)
    buffer_bytes = sum(min(n, chunk_size) * itemsize
                       for itemsize in kernel.buffer_itemsizes)
    output_bytes = sum(v.nbytes() for v in outputs)
    total = output_bytes + buffer_bytes
    site = "kernel:" + kernel.fn.__name__
    profile.record(total, site=site,
                   count=len(outputs) + len(kernel.buffer_itemsizes))
    span = ctx.tracer.current()
    if span is not None:
        span.add("alloc_bytes", total)


def _run_kernel(kernel: CompiledKernel, inputs: list[Vector],
                n_threads: int, chunk_size: int,
                pool: ThreadPoolExecutor | None,
                ctx: QueryContext) -> list[Vector]:
    arrays = [value.data for value in inputs]
    n = _base_length(kernel, arrays)

    if n == 0:
        return _empty_outputs(kernel, arrays)

    limits = ctx.limits

    if n <= chunk_size:
        # The single-chunk fast path is still one chunk of work: count
        # it (kernel.chunks == chunks actually executed, fast path or
        # not) and give it the same cancellation checkpoint.
        ctx.metrics.counter("kernel.chunks").inc()
        if limits.enabled:
            limits.check("chunk")
        results = list(kernel.fn(*arrays))
        for index, (name, role) in enumerate(kernel.outputs):
            if role != "vector" and results[index] is None:
                combine = role.split(":", 1)[1]
                raise BuiltinError(f"@{combine} of an empty vector")
        return _wrap_outputs(kernel, results)

    bounds = [(lo, min(lo + chunk_size, n))
              for lo in range(0, n, chunk_size)]
    ctx.metrics.counter("kernel.chunks").inc(len(bounds))

    tracer = ctx.tracer
    #: Worker threads start with an empty context, so chunk spans anchor
    #: to the kernel span captured here rather than via the contextvar.
    parent = tracer.current() if tracer.enabled else None

    def run_chunk(bound: tuple[int, int]):
        if limits.enabled:
            limits.check("chunk")
        lo, hi = bound
        sliced = [arr[lo:hi] if stream and len(arr) == n else arr
                  for arr, stream in zip(arrays, kernel.streamed)]
        if not tracer.enabled:
            return kernel.fn(*sliced)
        with tracer.span("chunk", parent=parent, lo=lo, hi=hi,
                         rows=hi - lo):
            return kernel.fn(*sliced)

    if n_threads > 1 and len(bounds) > 1:
        if pool is None:
            pool = ctx.executor(n_threads)
        chunk_results = list(pool.map(run_chunk, bounds))
    else:
        chunk_results = [run_chunk(bound) for bound in bounds]

    combined = []
    for index, (name, role) in enumerate(kernel.outputs):
        parts = [chunk[index] for chunk in chunk_results]
        if role == "vector":
            combined.append(np.concatenate(
                [np.atleast_1d(np.asarray(p)) for p in parts]))
        else:
            combine = role.split(":", 1)[1]
            combined.append(_combine(combine, parts,
                                     kernel.output_types[index]))
    return _wrap_outputs(kernel, combined)


def _base_length(kernel: CompiledKernel, arrays: list[np.ndarray]) -> int:
    """The chunked iteration count: the common length of the streamed
    inputs.  Length-1 streamed inputs are broadcast scalars and never
    constrain (or satisfy) the length check, regardless of argument
    order; any other two lengths — including 0 vs. n — must agree."""
    n = None
    first = None
    for name, arr, stream in zip(kernel.inputs, arrays, kernel.streamed):
        if not stream or len(arr) == 1:
            continue
        if n is None:
            n, first = len(arr), name
        elif len(arr) != n:
            raise HorseRuntimeError(
                f"fused segment input {name!r} has length {len(arr)}, "
                f"expected {n} (the length of {first!r})")
    return 1 if n is None else n


def _empty_outputs(kernel: CompiledKernel,
                   arrays: list[np.ndarray]) -> list[Vector]:
    """All-empty inputs: reductions fold to identities, vectors are empty.

    Running the kernel is unsafe for min/max on empty chunks, so outputs
    are synthesized from roles and declared types instead.  Identities
    (and the min/max error) match ``_reduction_identity`` in
    :mod:`repro.core.builtins` exactly, so the compiled path agrees with
    the interpreter on empty inputs — same values, same dtypes, and the
    same error type and message where the interpreter raises.
    """
    outputs: list[Vector] = []
    for (name, role), type_ in zip(kernel.outputs, kernel.output_types):
        dtype = ht.numpy_dtype(type_ if not type_.is_wildcard else ht.F64)
        if role == "vector":
            outputs.append(Vector(
                type_ if not type_.is_wildcard else ht.F64,
                np.empty(0, dtype=dtype)))
            continue
        combine = role.split(":", 1)[1]
        if combine == "sum":
            identity = 0
        elif combine == "prod":
            identity = 1
        elif combine == "avg":
            identity = float("nan")
        elif combine == "any":
            identity = False
        elif combine == "all":
            identity = True
        else:
            # Mirrors BuiltinError("@min of an empty vector") from the
            # interpreter's reduction builtins, message included.
            raise BuiltinError(f"@{combine} of an empty vector")
        out = np.empty(1, dtype=dtype)
        out[0] = identity
        outputs.append(Vector(type_ if not type_.is_wildcard else ht.F64,
                              out))
    return outputs


def _combine(combine: str, parts: list, type_: ht.HorseType):
    """Merge per-chunk reduction partials in the *declared* output dtype.

    ``np.sum(np.asarray(parts))`` would let NumPy pick the accumulator
    (bool partials become int64, int32 accumulates as the platform int),
    silently diverging from the single-chunk run where the kernel result
    is cast to the declared dtype once at the end.  Casting the partials
    first and pinning the accumulator keeps chunked, multi-threaded
    results bit-identical to unchunked ones — integer wraparound is
    modular, so truncate-then-sum equals sum-then-truncate.

    ``None`` partials mark min/max chunks whose compressed selection was
    empty: they drop out of the merge (min-of-mins over the non-empty
    chunks), and if *every* chunk was empty the reduction raises exactly
    like the interpreter's builtin.
    """
    parts = [p for p in parts if p is not None]
    if not parts:
        raise BuiltinError(f"@{combine} of an empty vector")
    arr = np.asarray(parts)
    if not type_.is_wildcard:
        arr = arr.astype(ht.numpy_dtype(type_), copy=False)
    if combine == "sum":
        return np.sum(arr, dtype=arr.dtype)
    if combine == "prod":
        return np.prod(arr, dtype=arr.dtype)
    if combine == "min":
        return np.min(arr)
    if combine == "max":
        return np.max(arr)
    if combine == "any":
        return np.any(arr)
    if combine == "all":
        return np.all(arr)
    raise HorseRuntimeError(f"unknown reduction combine {combine!r}")


def _wrap_outputs(kernel: CompiledKernel, results: list) -> list[Vector]:
    outputs: list[Vector] = []
    for value, type_ in zip(results, kernel.output_types):
        array = np.asarray(value)
        if array.ndim == 0:
            array = array.reshape(1)
        if type_.is_wildcard:
            type_ = ht.type_of_dtype(array.dtype)
        else:
            array = array.astype(ht.numpy_dtype(type_), copy=False)
        outputs.append(Vector(type_, array))
    return outputs

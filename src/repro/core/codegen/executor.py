"""Chunked, multi-threaded execution of fused kernels.

The reproduction's stand-in for the paper's OpenMP parallel loops: the base
iteration space is split into chunks, the fused kernel runs per chunk (its
temporaries are chunk-sized, so the chain stays cache-resident), chunks are
dispatched to a thread pool (NumPy array ops release the GIL), and vector
outputs are concatenated in chunk order while reduction partials merge with
the builtin's ``combine`` rule.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core import types as ht
from repro.core.codegen.pygen import CompiledKernel
from repro.core.values import Vector
from repro.errors import HorseRuntimeError

__all__ = ["run_kernel", "DEFAULT_CHUNK_SIZE"]

#: Elements per chunk.  Sized so a handful of f64 temporaries stay
#: cache-resident (measured sweet spot 8k-32k elements on this class of
#: kernel; see EXPERIMENTS.md).
DEFAULT_CHUNK_SIZE = 1 << 15


def run_kernel(kernel: CompiledKernel, inputs: list[Vector],
               n_threads: int = 1,
               chunk_size: int = DEFAULT_CHUNK_SIZE,
               pool: ThreadPoolExecutor | None = None) -> list[Vector]:
    """Execute a fused kernel over its inputs; returns the output vectors
    in the order of ``kernel.outputs``."""
    arrays = [value.data for value in inputs]
    n = _base_length(kernel, arrays)

    if n == 0:
        return _empty_outputs(kernel, arrays)

    if n <= chunk_size:
        results = kernel.fn(*arrays)
        return _wrap_outputs(kernel, list(results))

    bounds = [(lo, min(lo + chunk_size, n))
              for lo in range(0, n, chunk_size)]

    def run_chunk(bound: tuple[int, int]):
        lo, hi = bound
        sliced = [arr[lo:hi] if stream and len(arr) == n else arr
                  for arr, stream in zip(arrays, kernel.streamed)]
        return kernel.fn(*sliced)

    if n_threads > 1 and len(bounds) > 1:
        if pool is not None:
            chunk_results = list(pool.map(run_chunk, bounds))
        else:
            with ThreadPoolExecutor(max_workers=n_threads) as local_pool:
                chunk_results = list(local_pool.map(run_chunk, bounds))
    else:
        chunk_results = [run_chunk(bound) for bound in bounds]

    combined = []
    for index, (name, role) in enumerate(kernel.outputs):
        parts = [chunk[index] for chunk in chunk_results]
        if role == "vector":
            combined.append(np.concatenate(
                [np.atleast_1d(np.asarray(p)) for p in parts]))
        else:
            combine = role.split(":", 1)[1]
            combined.append(_combine(combine, parts))
    return _wrap_outputs(kernel, combined)


def _base_length(kernel: CompiledKernel, arrays: list[np.ndarray]) -> int:
    n = 1
    for name, arr, stream in zip(kernel.inputs, arrays, kernel.streamed):
        if stream and len(arr) > 1:
            if n > 1 and len(arr) != n:
                raise HorseRuntimeError(
                    f"fused segment input {name!r} has length {len(arr)}, "
                    f"expected {n}")
            n = max(n, len(arr))
    return n if arrays else 1


def _empty_outputs(kernel: CompiledKernel,
                   arrays: list[np.ndarray]) -> list[Vector]:
    """All-empty inputs: reductions fold to identities, vectors are empty.

    Running the kernel is unsafe for min/max on empty chunks, so outputs
    are synthesized from roles and declared types instead.
    """
    outputs: list[Vector] = []
    for (name, role), type_ in zip(kernel.outputs, kernel.output_types):
        dtype = ht.numpy_dtype(type_ if not type_.is_wildcard else ht.F64)
        if role == "vector":
            outputs.append(Vector(
                type_ if not type_.is_wildcard else ht.F64,
                np.empty(0, dtype=dtype)))
            continue
        combine = role.split(":", 1)[1]
        if combine == "sum":
            identity = 0
        elif combine == "prod":
            identity = 1
        elif combine == "any":
            identity = False
        elif combine == "all":
            identity = True
        else:
            raise HorseRuntimeError(
                f"@{combine}-style reduction of an empty vector "
                f"(output {name!r})")
        out = np.empty(1, dtype=dtype)
        out[0] = identity
        outputs.append(Vector(type_ if not type_.is_wildcard else ht.F64,
                              out))
    return outputs


def _combine(combine: str, parts: list):
    if combine == "sum":
        return np.sum(np.asarray(parts))
    if combine == "prod":
        return np.prod(np.asarray(parts))
    if combine == "min":
        return np.min(np.asarray(parts))
    if combine == "max":
        return np.max(np.asarray(parts))
    if combine == "any":
        return np.any(np.asarray(parts))
    if combine == "all":
        return np.all(np.asarray(parts))
    raise HorseRuntimeError(f"unknown reduction combine {combine!r}")


def _wrap_outputs(kernel: CompiledKernel, results: list) -> list[Vector]:
    outputs: list[Vector] = []
    for value, type_ in zip(results, kernel.output_types):
        array = np.asarray(value)
        if array.ndim == 0:
            array = array.reshape(1)
        if type_.is_wildcard:
            type_ = ht.type_of_dtype(array.dtype)
        else:
            array = array.astype(ht.numpy_dtype(type_), copy=False)
        outputs.append(Vector(type_, array))
    return outputs

"""Native backend: fused segments → emitted C → gcc → ctypes.

This is the paper's actual backend (Figure 3): each fused segment becomes
one C function containing a single loop — predicates, compresses,
arithmetic and reductions all inside it — compiled with
``gcc -O3 -march=native -fopenmp`` and invoked through ctypes (which
releases the GIL, so OpenMP threads scale on multi-core hosts).

Eligibility (segments that don't qualify run on the Python-kernel
backend):

* every statement is an elementwise builtin with a ``c_template``, a
  ``@compress``, or a reduction (`sum prod min max count any all`);
* vector outputs live in the base domain (compressed values may only feed
  reductions — compression becomes the loop's ``if`` guard, exactly as in
  Figure 3);
* runtime dtypes are numeric/bool/datetime (object columns fall back).

Kernels are specialized per (dtype, broadcast) signature at first call
and cached; gcc runs once per specialization.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile

import numpy as np

from repro.core import builtins as hb
from repro.core import ir
from repro.core import types as ht
from repro.core.optimizer.fusion import BASE, Segment
from repro.core.values import Vector
from repro.errors import BuiltinError, CodegenError, HorseRuntimeError

__all__ = ["CKernel", "c_backend_available", "gcc_version"]

_REDUCTIONS = {
    "sum": ("+", "0"),
    "prod": ("*", "1"),
    "count": ("+", "0"),
    "min": ("min", None),
    "max": ("max", None),
    "any": ("||", "0"),
    "all": ("&&", "1"),
}

_C_TYPES = {
    "f64": "double", "f32": "float",
    "i64": "long long", "i32": "int", "i16": "short", "i8": "signed char",
    "bool": "int",
}

#: C storage types for output buffers: these must match NumPy's in-memory
#: layout exactly (bool is ONE byte in NumPy; loop locals may stay int).
_C_STORE_TYPES = dict(_C_TYPES, bool="unsigned char")

# Runtime dtype → (C pointer element type, ctypes type)
_DTYPE_C = {
    "float64": ("double", ctypes.c_double),
    "float32": ("float", ctypes.c_float),
    "int64": ("long long", ctypes.c_longlong),
    "int32": ("int", ctypes.c_int),
    "int16": ("short", ctypes.c_short),
    "int8": ("signed char", ctypes.c_byte),
    "bool": ("unsigned char", ctypes.c_ubyte),
    # datetime64[D] is an int64 day count under the hood.
    "datetime64[D]": ("long long", ctypes.c_longlong),
}

_gcc_state: dict = {}


def gcc_version() -> str | None:
    if "version" not in _gcc_state:
        try:
            out = subprocess.run(["gcc", "--version"],
                                 capture_output=True, text=True,
                                 timeout=30)
            _gcc_state["version"] = out.stdout.splitlines()[0] \
                if out.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            _gcc_state["version"] = None
    return _gcc_state["version"]


def c_backend_available() -> bool:
    return gcc_version() is not None


def _build_dir() -> str:
    if "dir" not in _gcc_state:
        _gcc_state["dir"] = tempfile.mkdtemp(prefix="repro-ckernels-")
    return _gcc_state["dir"]


# ---------------------------------------------------------------------------
# eligibility
# ---------------------------------------------------------------------------

def segment_is_c_eligible(segment: Segment) -> bool:
    """Static half of eligibility (dtypes are checked per call)."""
    base_vector_outputs = []
    for name, role in segment.outputs:
        if role == "vector":
            if segment.domains.get(name) != BASE:
                return False
            base_vector_outputs.append(name)
    for stmt in segment.stmts:
        expr = stmt.expr
        if isinstance(expr, (ir.Literal, ir.Var)):
            continue
        if not isinstance(expr, ir.BuiltinCall):
            return False
        builtin = hb.BUILTINS.get(expr.name)
        if builtin is None:
            return False
        if builtin.kind == "elementwise":
            if builtin.c_template is None:
                return False
            if not all(isinstance(a, (ir.Var, ir.Literal))
                       for a in expr.args):
                return False
            if any(isinstance(a, ir.Literal)
                   and a.type in (ht.STR, ht.SYM) for a in expr.args):
                return False
        elif builtin.kind == "compress":
            continue
        elif builtin.kind == "reduction":
            if expr.name not in _REDUCTIONS:
                return False
        else:
            return False
        if stmt.type.kind not in _C_TYPES and stmt.type != ht.WILDCARD:
            return False
        if stmt.type == ht.WILDCARD:
            return False
    return True


# ---------------------------------------------------------------------------
# source generation
# ---------------------------------------------------------------------------

def _c_literal(literal: ir.Literal) -> str:
    if literal.type == ht.BOOL:
        return "1" if literal.value else "0"
    if ht.is_integer(literal.type):
        return f"{int(literal.value)}LL"
    if literal.type == ht.DATE:
        days = int(np.datetime64(literal.value, "D").astype(np.int64))
        return f"{days}LL"
    return repr(float(literal.value))


class _SourceBuilder:
    """Generates the C function for one (segment, signature) pair."""

    def __init__(self, segment: Segment, scalar_flags: list[bool],
                 input_ctypes: list[str], name: str):
        self.segment = segment
        self.scalar_flags = scalar_flags
        self.input_ctypes = input_ctypes
        self.name = name
        #: compress chains: var -> C guard expression (or None for base)
        self._values: dict[str, str] = {}
        self._guards: dict[str, str] = {}

    def build(self) -> str:
        segment = self.segment
        params = ["long long n", "int nt"]
        for input_name, ctype, _ in zip(segment.inputs,
                                        self.input_ctypes,
                                        self.scalar_flags):
            params.append(f"const {ctype}* restrict {input_name}_p")

        vector_outputs = [name for name, role in segment.outputs
                          if role == "vector"]
        reductions = [(name, role.split(":", 1)[1])
                      for name, role in segment.outputs
                      if role != "vector"]
        out_types = {stmt.target: stmt.type for stmt in segment.stmts}
        for name in vector_outputs:
            params.append(
                f"{_C_STORE_TYPES[out_types[name].kind]}"
                f"* restrict {name}_o")
        for name, _ in reductions:
            params.append(f"double* restrict {name}_r")

        lines = ["#include <math.h>", ""]
        # NaN-propagating min/max combiners: np.min/np.max return NaN
        # when any element is NaN, but OpenMP's built-in min/max (and
        # fmin/fmax) silently drop it.
        if any(combine in ("min", "max") for _, combine in reductions):
            for red, fn, init in (("nanmin", "fmin", "INFINITY"),
                                  ("nanmax", "fmax", "-INFINITY")):
                lines.append(
                    f"#pragma omp declare reduction({red} : double : "
                    f"omp_out = ((omp_out != omp_out) || "
                    f"(omp_in != omp_in)) ? NAN : {fn}(omp_out, omp_in)) "
                    f"initializer(omp_priv = {init})")
            lines.append("")
        lines.append(f"void {self.name}({', '.join(params)}) {{")

        acc_decls, omp_reductions, finals = self._accumulators(reductions,
                                                               out_types)
        lines.extend(acc_decls)
        omp = "#pragma omp parallel for schedule(static) num_threads(nt)"
        if omp_reductions:
            omp += " " + " ".join(omp_reductions)
        lines.append(f"    {omp}")
        lines.append("    for (long long i = 0; i < n; i++) {")
        lines.extend(self._loop_body(vector_outputs, reductions,
                                     out_types))
        lines.append("    }")
        lines.extend(finals)
        lines.append("}")
        return "\n".join(lines) + "\n"

    def _accumulators(self, reductions, out_types):
        decls, omp, finals = [], [], []
        for name, combine in reductions:
            op, identity = _REDUCTIONS[combine]
            if combine in ("min", "max"):
                init = "INFINITY" if combine == "min" else "-INFINITY"
                decls.append(f"    double {name}_acc = {init};")
                omp.append(f"reduction(nan{combine}:{name}_acc)")
                # Selected-element count: min/max over an empty
                # selection must raise, not return +/-INFINITY; the
                # invoker checks slot [1].
                decls.append(f"    double {name}_nsel = 0;")
                omp.append(f"reduction(+:{name}_nsel)")
                finals.append(f"    {name}_r[1] = {name}_nsel;")
            else:
                decls.append(f"    double {name}_acc = {identity};")
                omp.append(f"reduction({op}:{name}_acc)")
            finals.append(f"    {name}_r[0] = {name}_acc;")
        return decls, omp, finals

    def _input_ref(self, name: str) -> str:
        index = self.segment.inputs.index(name)
        if self.scalar_flags[index]:
            return f"{name}_p[0]"
        return f"{name}_p[i]"

    def _value_of(self, expr: ir.Expr) -> str:
        if isinstance(expr, ir.Literal):
            return _c_literal(expr)
        assert isinstance(expr, ir.Var)
        if expr.name in self._values:
            return self._values[expr.name]
        return self._input_ref(expr.name)

    def _guard_of(self, name: str) -> str | None:
        if name in self._guards:
            return self._guards[name]
        return None  # inputs live in the base domain (unguarded)

    def _loop_body(self, vector_outputs, reductions, out_types):
        lines = []
        red_combines = dict(reductions)
        for stmt in self.segment.stmts:
            expr = stmt.expr
            target = stmt.target
            ctype = _C_TYPES[stmt.type.kind]
            if isinstance(expr, (ir.Literal, ir.Var)):
                self._values[target] = self._value_of(expr) \
                    if not isinstance(expr, ir.Literal) \
                    else _c_literal(expr)
                if isinstance(expr, ir.Var):
                    guard = self._guard_of(expr.name)
                    if guard is not None:
                        self._guards[target] = guard
                continue
            builtin = hb.get(expr.name)
            if builtin.kind == "elementwise":
                args = [self._value_of(a) for a in expr.args]
                guards = [self._guard_of(a.name) for a in expr.args
                          if isinstance(a, ir.Var)]
                guards = [g for g in guards if g is not None]
                body = builtin.c_template.format(*args)
                lines.append(
                    f"        {ctype} {target}_v = ({ctype})({body});")
                self._values[target] = f"{target}_v"
                if guards:
                    self._guards[target] = guards[0]
            elif builtin.kind == "compress":
                mask, data = expr.args
                mask_value = self._value_of(mask)
                parent = self._guard_of(mask.name)
                guard = mask_value if parent is None \
                    else f"({parent} && {mask_value})"
                self._values[target] = self._value_of(data)
                self._guards[target] = guard
            elif builtin.kind == "reduction":
                arg = expr.args[0]
                value = self._value_of(arg)
                guard = self._guard_of(arg.name) \
                    if isinstance(arg, ir.Var) else None
                update = self._reduction_update(
                    target, expr.name, value)
                if guard is not None:
                    lines.append(f"        if ({guard}) {{ {update} }}")
                else:
                    lines.append(f"        {update}")
        for name in vector_outputs:
            lines.append(
                f"        {name}_o[i] = "
                f"({_C_STORE_TYPES[out_types[name].kind]})"
                f"({self._values[name]});")
        return lines

    @staticmethod
    def _reduction_update(target: str, reducer: str, value: str) -> str:
        if reducer == "sum":
            return f"{target}_acc += (double)({value});"
        if reducer == "prod":
            return f"{target}_acc *= (double)({value});"
        if reducer == "count":
            return f"{target}_acc += 1;"
        if reducer in ("min", "max"):
            # NaN-propagating, like np.min/np.max (fmin/fmax return the
            # non-NaN operand).
            fn = "fmin" if reducer == "min" else "fmax"
            return (f"{target}_acc = (({target}_acc != {target}_acc) || "
                    f"((double)({value}) != (double)({value}))) ? NAN "
                    f": {fn}({target}_acc, (double)({value})); "
                    f"{target}_nsel += 1;")
        if reducer == "any":
            return f"{target}_acc = {target}_acc || ({value} != 0);"
        if reducer == "all":
            return f"{target}_acc = {target}_acc && ({value} != 0);"
        raise CodegenError(f"no C reduction for @{reducer}")


# ---------------------------------------------------------------------------
# compile + invoke
# ---------------------------------------------------------------------------

class CKernel:
    """Per-segment native kernel with per-signature specialization."""

    def __init__(self, segment: Segment):
        self.segment = segment
        self.eligible = segment_is_c_eligible(segment) \
            and c_backend_available()
        self._variants: dict[tuple, object] = {}
        self.sources: list[str] = []

    # -- public ----------------------------------------------------------------

    def try_run(self, inputs: list[Vector],
                n_threads: int) -> list[Vector] | None:
        """Execute natively; None means the caller should fall back."""
        if not self.eligible:
            return None
        arrays = [value.data for value in inputs]
        signature = self._signature(arrays)
        if signature is None:
            return None
        fn = self._variants.get(signature)
        if fn is None:
            fn = self._compile(signature)
            self._variants[signature] = fn
        if fn is False:
            return None
        return self._invoke(fn, arrays, signature, n_threads)

    # -- internals ----------------------------------------------------------------

    def _signature(self, arrays) -> tuple | None:
        parts = []
        n = 1
        for arr in arrays:
            key = str(arr.dtype)
            if key not in _DTYPE_C:
                return None
            scalar = len(arr) == 1
            parts.append((key, scalar))
            if not scalar:
                n = max(n, len(arr))
        # Re-evaluate scalarness against the true base length: an input of
        # length n==1 everywhere means a degenerate base.
        return tuple(parts)

    def _compile(self, signature: tuple):
        scalar_flags = [scalar for _, scalar in signature]
        input_ctypes = [_DTYPE_C[dtype][0] for dtype, _ in signature]
        digest = hashlib.sha1(
            (repr(signature) + self.segment.describe()).encode()
        ).hexdigest()[:16]
        name = f"k{digest}"
        try:
            source = _SourceBuilder(self.segment, scalar_flags,
                                    input_ctypes, name).build()
        except (CodegenError, KeyError, ValueError):
            return False
        self.sources.append(source)
        path = os.path.join(_build_dir(), name)
        with open(path + ".c", "w") as handle:
            handle.write(source)
        cmd = ["gcc", "-O3", "-march=native", "-fopenmp", "-shared",
               "-fPIC", "-o", path + ".so", path + ".c", "-lm"]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            return False
        lib = ctypes.CDLL(path + ".so")
        fn = getattr(lib, name)
        fn.restype = None
        return fn

    def _invoke(self, fn, arrays, signature, n_threads) -> list[Vector]:
        segment = self.segment
        n = None
        for arr, (_, scalar) in zip(arrays, signature):
            if not scalar:
                if n is not None and len(arr) != n:
                    raise HorseRuntimeError(
                        "native kernel input length mismatch")
                n = len(arr)
        if n is None:
            n = 1  # all-scalar segment: a single loop iteration
        if n == 0:
            return None  # delegate empty inputs to the Python path

        out_types = {stmt.target: stmt.type for stmt in segment.stmts}
        args = [ctypes.c_longlong(n), ctypes.c_int(max(1, n_threads))]
        keepalive = []
        for arr in arrays:
            contiguous = np.ascontiguousarray(arr)
            keepalive.append(contiguous)
            args.append(contiguous.ctypes.data_as(ctypes.c_void_p))

        vector_buffers = []
        reduction_buffers = []
        for name, role in segment.outputs:
            if role == "vector":
                buffer = np.empty(
                    n, dtype=ht.numpy_dtype(out_types[name]))
                vector_buffers.append((name, buffer))
                args.append(buffer.ctypes.data_as(ctypes.c_void_p))
            else:
                # min/max kernels write the selected-element count into
                # slot [1] so an empty selection can raise like the
                # interpreter instead of returning +/-INFINITY.
                combine = role.split(":", 1)[1]
                slots = 2 if combine in ("min", "max") else 1
                buffer = np.empty(slots, dtype=np.float64)
                reduction_buffers.append((name, buffer))
                args.append(buffer.ctypes.data_as(ctypes.c_void_p))

        fn(*args)

        outputs: list[Vector] = []
        vector_iter = iter(vector_buffers)
        reduction_iter = iter(reduction_buffers)
        for name, role in segment.outputs:
            type_ = out_types[name]
            if role == "vector":
                _, buffer = next(vector_iter)
                outputs.append(Vector(type_, buffer))
            else:
                _, buffer = next(reduction_iter)
                combine = role.split(":", 1)[1]
                if combine in ("min", "max") and buffer[1] == 0:
                    raise BuiltinError(f"@{combine} of an empty vector")
                value = np.empty(1, dtype=ht.numpy_dtype(type_))
                value[0] = buffer[0]
                outputs.append(Vector(type_, value))
        return outputs

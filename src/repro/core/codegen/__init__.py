"""Fused-kernel code generation and the chunked parallel executor.

This is the reproduction's analog of the paper's HorseIR→C backend with
OpenMP: each fused segment becomes one generated Python function evaluating
the whole chain per chunk (no full-column intermediates), and the executor
runs chunks across a thread pool (NumPy releases the GIL inside array ops).
"""

from repro.core.codegen.pygen import CompiledKernel, generate_kernel  # noqa: F401

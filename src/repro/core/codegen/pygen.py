"""Generate Python source for fused segments.

For the paper's running example, the segment covering statements S0..S4 of
Figure 6 compiles to (compare Figure 3's C loop)::

    def _kernel(t1, t2):
        t3 = (t2 >= 0.05)
        t4 = t1[t3]
        t5 = t2[t3]
        t6 = (t4 * t5)
        t7 = np.sum(t6)
        return (t7,)

The executor calls the kernel once per chunk, so every local above is a
chunk-sized temporary — the fusion payoff — and reduction outputs are
per-chunk partials combined by the executor.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass, field

import numpy as np

from repro.core import builtins as hb
from repro.core import ir
from repro.core import types as ht
from repro.core.optimizer.fusion import ANY, BASE, Segment
from repro.errors import CodegenError

__all__ = ["CompiledKernel", "generate_kernel"]


@dataclass
class CompiledKernel:
    """A compiled fused segment: callable + provenance."""

    segment: Segment
    source: str
    fn: object  # the compiled function
    inputs: list[str]
    #: parallel to ``inputs``: True when the input is sliced per chunk,
    #: False for whole-value (broadcast) inputs like @member pools.
    streamed: list[bool]
    outputs: list[tuple[str, str]]  # (name, role)
    output_types: list[ht.HorseType]
    #: element sizes (bytes) of the kernel's reused per-chunk ``out=``
    #: buffers, one per buffer declaration — the allocation profiler
    #: charges each buffer once per invocation at
    #: ``min(base_len, chunk_size) * itemsize``, which is exactly why
    #: fused segments allocate less than statement-at-a-time execution.
    buffer_itemsizes: list[int] = field(default_factory=list)


# -- kernel helper functions (bound into every kernel's globals) ------------

@functools.lru_cache(maxsize=256)
def _like_regex(pattern: str):
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out) + r"\Z", re.DOTALL)


def _scalar_of(value):
    if isinstance(value, np.ndarray):
        return value[0]
    return value


def _like(values, pattern):
    regex = _like_regex(_scalar_of(pattern))
    return np.fromiter((bool(regex.match(v)) for v in values),
                       dtype=np.bool_, count=len(values))


def _startswith(values, prefix):
    prefix = _scalar_of(prefix)
    return np.fromiter((v.startswith(prefix) for v in values),
                       dtype=np.bool_, count=len(values))


def _member(values, candidates):
    pool = set(np.asarray(candidates).tolist())
    if values.dtype == object:
        return np.fromiter((v in pool for v in values),
                           dtype=np.bool_, count=len(values))
    return np.isin(values, np.asarray(candidates))


def _chunk_min(values):
    """Per-chunk @min partial; None marks an empty selection (the
    executor drops None partials and errors only when every chunk's
    selection was empty, matching the interpreter)."""
    return np.min(values) if len(values) else None


def _chunk_max(values):
    return np.max(values) if len(values) else None


_KERNEL_GLOBALS = {
    "np": np,
    "_like": _like,
    "_startswith": _startswith,
    "_member": _member,
    "_chunk_min": _chunk_min,
    "_chunk_max": _chunk_max,
}

_ASTYPE = {
    "bool": "np.bool_",
    "i8": "np.int8",
    "i16": "np.int16",
    "i32": "np.int32",
    "i64": "np.int64",
    "f32": "np.float32",
    "f64": "np.float64",
}

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


#: dtypes eligible for reused output buffers.
_BUFFER_DTYPES = {
    "f64": "np.float64", "f32": "np.float32",
    "i64": "np.int64", "i32": "np.int32", "bool": "np.bool_",
}

#: buffer dtype spelling → NumPy type, for sizing the profiler's
#: once-per-invocation chunk-buffer charge.
_BUFFER_ITEMSIZE_DTYPES = {
    "np.float64": np.float64, "np.float32": np.float32,
    "np.int64": np.int64, "np.int32": np.int32, "np.bool_": np.bool_,
}

#: logical ufuncs only take buffers when their operands are provably
#: boolean (object operands cannot cast into a bool out-buffer).
_LOGICAL_UFUNCS = ("np.logical_and", "np.logical_or", "np.logical_not")


class _BufferPlanner:
    """Linear-scan assignment of reused per-chunk output buffers.

    This is the register-allocation analog of the paper's generated C:
    instead of one freshly allocated temporary per fused statement, the
    kernel allocates a handful of chunk-sized buffers and ufuncs write
    into them via ``out=`` — the dominant allocation cost of long
    elementwise chains disappears.
    """

    def __init__(self, segment: Segment):
        self.segment = segment
        self._last_use = self._compute_last_use()
        self._outputs = {name for name, _ in segment.outputs}
        self._buffers: list[tuple[str, int]] = []  # (dtype spelling, free_at)
        self.assignments: dict[int, tuple[str, str]] = {}
        self.buffer_decls: list[tuple[str, str]] = []
        self._plan()

    def _compute_last_use(self) -> dict[str, int]:
        last: dict[str, int] = {}
        for index, stmt in enumerate(self.segment.stmts):
            for used in ir.expr_vars(stmt.expr):
                last[used] = index
        return last

    def _eligible(self, index: int) -> tuple[str, str] | None:
        """(ufunc, dtype spelling) when statement ``index`` can write into
        a buffer."""
        stmt = self.segment.stmts[index]
        expr = stmt.expr
        if not isinstance(expr, ir.BuiltinCall):
            return None
        builtin = hb.BUILTINS.get(expr.name)
        if builtin is None or builtin.ufunc is None:
            return None
        if self.segment.domains.get(stmt.target) != BASE:
            return None
        dtype = _BUFFER_DTYPES.get(stmt.type.kind)
        if dtype is None:
            return None
        if not all(isinstance(a, (ir.Var, ir.Literal)) for a in expr.args):
            return None
        if builtin.ufunc in _LOGICAL_UFUNCS \
                and not self._operands_boolean(expr):
            return None
        return (builtin.ufunc, dtype)

    def _operands_boolean(self, expr: ir.BuiltinCall) -> bool:
        declared = {s.target: s.type for s in self.segment.stmts}
        for arg in expr.args:
            if isinstance(arg, ir.Literal):
                if arg.type != ht.BOOL:
                    return False
            elif declared.get(arg.name) != ht.BOOL:
                return False
        return True

    def _plan(self) -> None:
        for index in range(len(self.segment.stmts)):
            spec = self._eligible(index)
            if spec is None:
                continue
            ufunc, dtype = spec
            target = self.segment.stmts[index].target
            if target in self._outputs:
                free_at = len(self.segment.stmts) + 1  # never reused
            else:
                free_at = self._last_use.get(target, index)
            slot = self._acquire(dtype, index, free_at)
            self.assignments[index] = (ufunc, slot)

    def _acquire(self, dtype: str, index: int, free_at: int) -> str:
        for slot, (slot_dtype, busy_until) in enumerate(self._buffers):
            if slot_dtype == dtype and busy_until < index:
                self._buffers[slot] = (dtype, free_at)
                return f"_buf{slot}"
        self._buffers.append((dtype, free_at))
        slot = len(self._buffers) - 1
        self.buffer_decls.append((f"_buf{slot}", dtype))
        return f"_buf{slot}"


def generate_kernel(segment: Segment,
                    name: str = "_kernel") -> CompiledKernel:
    """Compile a fused segment into a Python function."""
    for var in segment.inputs + [s.target for s in segment.stmts]:
        if not _IDENT_RE.match(var):
            raise CodegenError(f"variable name {var!r} is not an identifier")

    streamed = [segment.domains.get(input_name) != ANY
                for input_name in segment.inputs]
    base_input = next((input_name for input_name, stream
                       in zip(segment.inputs, streamed) if stream), None)

    planner = _BufferPlanner(segment) if base_input is not None else None

    lines = [f"def {name}({', '.join(segment.inputs)}):"]
    if planner is not None and planner.buffer_decls:
        # The base length is the longest streamed input: scalar-typed
        # inputs may arrive as length-1 broadcasts in any position.
        streamed_names = [input_name for input_name, stream
                          in zip(segment.inputs, streamed) if stream]
        lens = [f"len({input_name})" for input_name in streamed_names]
        if len(lens) == 1:
            lines.append(f"    _n = {lens[0]}")
        else:
            lines.append(f"    _n = max({', '.join(lens)})")
        for buffer_name, dtype in planner.buffer_decls:
            lines.append(f"    {buffer_name} = np.empty(_n, "
                         f"dtype={dtype})")
    target_types: dict[str, ht.HorseType] = {}
    for index, stmt in enumerate(segment.stmts):
        assignment = planner.assignments.get(index) if planner else None
        if assignment is not None:
            ufunc, slot = assignment
            args = ", ".join(_emit_expr(a) for a in stmt.expr.args)
            lines.append(f"    {stmt.target} = {ufunc}({args}, "
                         f"out={slot}, casting='unsafe')")
        else:
            lines.append(f"    {stmt.target} = {_emit_expr(stmt.expr)}")
        target_types[stmt.target] = stmt.type
    out_names = [out for out, _ in segment.outputs]
    if not out_names:
        raise CodegenError("segment has no outputs")
    lines.append(f"    return ({', '.join(out_names)},)")
    source = "\n".join(lines) + "\n"

    namespace: dict = {}
    exec(compile(source, f"<fused:{name}>", "exec"),  # noqa: S102
         dict(_KERNEL_GLOBALS), namespace)
    fn = namespace[name]

    output_types = [target_types.get(out, ht.WILDCARD) for out in out_names]
    buffer_itemsizes = ([np.dtype(_BUFFER_ITEMSIZE_DTYPES[dtype]).itemsize
                         for _, dtype in planner.buffer_decls]
                        if planner is not None else [])
    return CompiledKernel(segment, source, fn, list(segment.inputs),
                          streamed, list(segment.outputs), output_types,
                          buffer_itemsizes)


def _emit_expr(expr: ir.Expr) -> str:
    if isinstance(expr, ir.Var):
        return expr.name
    if isinstance(expr, ir.Literal):
        return _emit_literal(expr)
    if isinstance(expr, ir.SymbolLit):
        return repr(expr.name)
    if isinstance(expr, ir.Cast):
        inner = _emit_expr(expr.expr)
        ctor = _ASTYPE.get(expr.type.kind)
        if ctor is None:
            raise CodegenError(f"cannot emit cast to {expr.type}")
        return f"({inner}).astype({ctor})"
    if isinstance(expr, ir.BuiltinCall):
        builtin = hb.get(expr.name)
        if builtin.kind == "compress":
            mask, data = (_emit_expr(a) for a in expr.args)
            return f"({data})[{mask}]"
        if builtin.template is None:
            raise CodegenError(f"@{expr.name} has no fusion template")
        args = [_emit_expr(a) for a in expr.args]
        return builtin.template.format(*args)
    raise CodegenError(f"cannot emit {type(expr).__name__} in a kernel")


def _emit_literal(literal: ir.Literal) -> str:
    value = literal.value
    if literal.type == ht.DATE:
        return f"np.datetime64({str(value)!r})"
    if literal.type == ht.BOOL:
        return "True" if value else "False"
    if literal.type in (ht.STR, ht.SYM):
        return repr(str(value))
    if ht.is_float(literal.type):
        return repr(float(value))
    if ht.is_integer(literal.type):
        return repr(int(value))
    raise CodegenError(f"cannot emit literal of type {literal.type}")

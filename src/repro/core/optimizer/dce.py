"""Dead-code elimination by backward slicing (paper Section 3.4.2).

Starting from the slicing criteria — return expressions, control-flow
conditions, and calls to methods that are not known-pure — every statement
whose result cannot reach a criterion is deleted.  After inlining, this is
what removes a table UDF's unused output columns (the bs2_* variants in
Table 4, where HorsePower avoids computing ``optionPrice`` entirely).
"""

from __future__ import annotations

from repro.core import builtins as hb
from repro.core import ir

__all__ = ["eliminate_dead_code", "backward_slice"]

_MAX_ROUNDS = 64


def eliminate_dead_code(method: ir.Method) -> bool:
    """Rewrite ``method`` in place; returns True when anything changed."""
    changed = False
    for _ in range(_MAX_ROUNDS):
        live = backward_slice(method)
        removed = _sweep(method.body, live)
        if not removed:
            break
        changed = True
    return changed


def backward_slice(method: ir.Method) -> set[str]:
    """The set of variable names that can influence the method's result.

    A fixpoint over the whole body: loops make liveness circular (a loop
    body both uses and defines its carried variables), so iterate until
    stable.
    """
    live: set[str] = set()
    while True:
        before = len(live)
        _mark_live(method.body, live)
        if len(live) == before:
            return live


def _mark_live(body: list[ir.Stmt], live: set[str]) -> None:
    # Walk backwards so a single sweep handles straight-line chains.
    for stmt in reversed(body):
        if isinstance(stmt, ir.Return):
            live.update(ir.expr_vars(stmt.expr))
        elif isinstance(stmt, ir.Assign):
            if stmt.target in live or _has_effects(stmt.expr):
                live.update(ir.expr_vars(stmt.expr))
                live.add(stmt.target)
        elif isinstance(stmt, ir.If):
            live.update(ir.expr_vars(stmt.cond))
            _mark_live(stmt.then_body, live)
            _mark_live(stmt.else_body, live)
        elif isinstance(stmt, ir.While):
            live.update(ir.expr_vars(stmt.cond))
            _mark_live(stmt.body, live)


def _has_effects(expr: ir.Expr) -> bool:
    """True when evaluating ``expr`` must be preserved regardless of use.

    Method calls are conservatively treated as effectful (the callee may be
    non-inlinable and opaque); all builtins in this library are pure, so a
    builtin call is removable when its result is dead.
    """
    if isinstance(expr, ir.MethodCall):
        return True
    if isinstance(expr, ir.BuiltinCall):
        builtin = hb.BUILTINS.get(expr.name)
        if builtin is None:
            return True
        return any(_has_effects(a) for a in expr.args)
    if isinstance(expr, ir.Cast):
        return _has_effects(expr.expr)
    return False


def _sweep(body: list[ir.Stmt], live: set[str]) -> bool:
    removed = False
    kept: list[ir.Stmt] = []
    for stmt in body:
        if isinstance(stmt, ir.Assign) and stmt.target not in live \
                and not _has_effects(stmt.expr):
            removed = True
            continue
        if isinstance(stmt, ir.If):
            removed |= _sweep(stmt.then_body, live)
            removed |= _sweep(stmt.else_body, live)
        elif isinstance(stmt, ir.While):
            removed |= _sweep(stmt.body, live)
        kept.append(stmt)
    body[:] = kept
    return removed

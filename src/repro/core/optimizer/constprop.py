"""Constant propagation and folding.

Literal assignments to single-assignment variables are substituted into
their uses, and pure elementwise builtins whose arguments are all literals
are folded by evaluating them once at compile time.
"""

from __future__ import annotations

from repro.core import builtins as hb
from repro.core import ir
from repro.core import types as ht
from repro.core.optimizer import analysis
from repro.core.values import Vector, scalar
from repro.errors import BuiltinError

__all__ = ["propagate_constants"]

_FOLDABLE_KINDS = ("elementwise", "reduction")


def propagate_constants(method: ir.Method) -> bool:
    """Rewrite ``method`` in place; returns True when anything changed."""
    single = analysis.single_assignment_vars(method)
    constants: dict[str, ir.Expr] = {}
    for stmt in method.walk_stmts():
        if isinstance(stmt, ir.Assign) and stmt.target in single \
                and isinstance(stmt.expr, (ir.Literal, ir.SymbolLit)):
            constants[stmt.target] = stmt.expr
    changed = _rewrite_body(method.body, constants)
    return changed


def _rewrite_body(body: list[ir.Stmt], constants: dict[str, ir.Expr]) -> bool:
    changed = False
    for stmt in body:
        if isinstance(stmt, ir.Assign):
            new = _rewrite_expr(stmt.expr, constants)
            if new is not stmt.expr:
                stmt.expr = new
                changed = True
        elif isinstance(stmt, ir.Return):
            new = _rewrite_expr(stmt.expr, constants)
            if new is not stmt.expr:
                stmt.expr = new
                changed = True
        elif isinstance(stmt, ir.If):
            new = _rewrite_expr(stmt.cond, constants)
            if new is not stmt.cond:
                stmt.cond = new
                changed = True
            changed |= _rewrite_body(stmt.then_body, constants)
            changed |= _rewrite_body(stmt.else_body, constants)
        elif isinstance(stmt, ir.While):
            new = _rewrite_expr(stmt.cond, constants)
            if new is not stmt.cond:
                stmt.cond = new
                changed = True
            changed |= _rewrite_body(stmt.body, constants)
    return changed


def _rewrite_expr(expr: ir.Expr, constants: dict[str, ir.Expr]) -> ir.Expr:
    def visit(node: ir.Expr) -> ir.Expr:
        if isinstance(node, ir.Var) and node.name in constants:
            return constants[node.name]
        if isinstance(node, ir.BuiltinCall):
            folded = _try_fold(node)
            if folded is not None:
                return folded
        return node

    rewritten = ir.map_expr(expr, visit)
    if str(rewritten) == str(expr):
        return expr
    return rewritten


def _try_fold(call: ir.BuiltinCall) -> ir.Literal | None:
    builtin = hb.BUILTINS.get(call.name)
    if builtin is None or builtin.kind not in _FOLDABLE_KINDS:
        return None
    values = []
    for arg in call.args:
        if not isinstance(arg, ir.Literal):
            return None
        values.append(scalar(arg.value, arg.type))
    try:
        result = builtin.run(values, hb.EvalContext())
    except BuiltinError:
        return None
    if not isinstance(result, Vector) or len(result) != 1 \
            or result.type in (ht.SYM,):
        return None
    return ir.Literal(result.item(), result.type)

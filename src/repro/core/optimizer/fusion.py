"""Automatic loop fusion (paper Section 3.4.1, Figure 3).

This pass segments each method body into *fused segments* — maximal runs of
fusable statements that the code generator turns into one kernel executing
a single (chunked, parallelizable) loop — and *opaque* statements executed
as individual vectorized calls.

Fusable statement forms:

* elementwise builtins with a code template (``@geq``, ``@mul``, ...);
* ``@compress`` (becomes a mask application inside the loop);
* reductions (``@sum``, ``@min``, ...) as segment *tails*: their result is
  a cross-chunk total, so no statement in the same segment may consume it;
* ``check_cast`` between numeric vector types;
* literal and symbol assignments (inlined as constants).

Fusion never crosses control flow, and respects *domains*: a value produced
under a compress mask lives in that mask's compressed domain, and an
elementwise operation only fuses when all its vector operands share a
domain (scalars and literals broadcast into any domain).  This is the
shape-analysis side of the paper's dependence-graph-driven fusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import builtins as hb
from repro.core import ir
from repro.core import types as ht

__all__ = ["Segment", "FusedItem", "OpaqueItem", "ReturnItem", "IfItem",
           "WhileItem", "segment_method", "segment_block"]

#: Domain marker for values in the block's base iteration space.
BASE = ("base",)
#: Domain marker for scalar / broadcastable values.
ANY = ("any",)

_CASTABLE = (ht.BOOL, ht.I8, ht.I16, ht.I32, ht.I64, ht.F32, ht.F64)


@dataclass
class Segment:
    """A run of fusable statements compiled into one kernel."""

    stmts: list[ir.Assign] = field(default_factory=list)
    #: external vector/scalar inputs, in first-use order.
    inputs: list[str] = field(default_factory=list)
    #: variables the rest of the program needs, with their roles:
    #: ``"vector"`` (chunk results concatenate) or ``"reduce:<combine>"``.
    outputs: list[tuple[str, str]] = field(default_factory=list)
    #: domain of each defined variable (for codegen validation).
    domains: dict[str, tuple] = field(default_factory=dict)

    @property
    def defined(self) -> set[str]:
        return {stmt.target for stmt in self.stmts}

    def describe(self) -> str:
        """Human-readable summary (used by examples and tests)."""
        ins = ", ".join(self.inputs)
        outs = ", ".join(name for name, _ in self.outputs)
        ops = " ; ".join(str(s.expr) for s in self.stmts)
        return f"fuse[{len(self.stmts)} stmts] ({ins}) -> ({outs}): {ops}"


@dataclass
class FusedItem:
    segment: Segment


@dataclass
class OpaqueItem:
    stmt: ir.Stmt  # Assign


@dataclass
class ReturnItem:
    expr: ir.Expr


@dataclass
class IfItem:
    cond: ir.Expr
    then_plan: list
    else_plan: list


@dataclass
class WhileItem:
    cond: ir.Expr
    body_plan: list


def segment_method(method: ir.Method, *, enabled: bool = True) -> list:
    """Build the execution plan for a method.

    With ``enabled=False`` every assignment becomes an opaque item — the
    HorsePower-Naive configuration.
    """
    used_later = _use_sets(method)
    return _segment_body(method.body, used_later, enabled)


def segment_block(body: list[ir.Stmt], live_after: set[str]) -> list:
    """Segment a straight-line block given the variables needed after it."""
    return _segment_body(body, _block_use_sets(body, live_after), True)


# ---------------------------------------------------------------------------
# liveness bookkeeping: which variables are needed after each statement
# ---------------------------------------------------------------------------

def _use_sets(method: ir.Method) -> dict[int, set[str]]:
    """Map id(stmt) -> variables used strictly after that statement.

    Conservative across control flow: a variable used anywhere in a later
    sibling or ancestor region counts as used-after.
    """
    return _block_use_sets(method.body, set())


def _block_use_sets(body: list[ir.Stmt],
                    live_after: set[str]) -> dict[int, set[str]]:
    result: dict[int, set[str]] = {}
    live = set(live_after)
    for stmt in reversed(body):
        result[id(stmt)] = set(live)
        if isinstance(stmt, (ir.Assign, ir.Return)):
            live.update(ir.expr_vars(stmt.expr))
        elif isinstance(stmt, ir.If):
            live.update(ir.expr_vars(stmt.cond))
            result.update(_block_use_sets(stmt.then_body, live))
            result.update(_block_use_sets(stmt.else_body, live))
            inner = _all_uses(stmt.then_body) | _all_uses(stmt.else_body)
            live.update(inner)
        elif isinstance(stmt, ir.While):
            live.update(ir.expr_vars(stmt.cond))
            inner = _all_uses(stmt.body)
            result.update(_block_use_sets(stmt.body, live | inner))
            live.update(inner)
    return result


def _all_uses(body: list[ir.Stmt]) -> set[str]:
    uses: set[str] = set()
    for stmt in body:
        if isinstance(stmt, (ir.Assign, ir.Return)):
            uses.update(ir.expr_vars(stmt.expr))
        elif isinstance(stmt, ir.If):
            uses.update(ir.expr_vars(stmt.cond))
            uses |= _all_uses(stmt.then_body)
            uses |= _all_uses(stmt.else_body)
        elif isinstance(stmt, ir.While):
            uses.update(ir.expr_vars(stmt.cond))
            uses |= _all_uses(stmt.body)
    return uses


# ---------------------------------------------------------------------------
# the segmenter
# ---------------------------------------------------------------------------

#: builtins whose result is always a scalar (length-one) vector.
_SCALAR_RESULT_BUILTINS = ("sum", "prod", "avg", "min", "max", "count",
                           "any", "all", "len", "sum_masked",
                           "dot_masked")


def _produces_scalar(stmt: ir.Stmt) -> bool:
    if not isinstance(stmt, ir.Assign):
        return False
    expr = stmt.expr
    if isinstance(expr, (ir.Literal, ir.SymbolLit)):
        return True
    return (isinstance(expr, ir.BuiltinCall)
            and expr.name in _SCALAR_RESULT_BUILTINS)


def _segment_body(body: list[ir.Stmt], used_later: dict[int, set[str]],
                  enabled: bool) -> list:
    plan: list = []
    # Variables known to hold scalars at the current program point: a
    # later segment must treat them as broadcast (ANY) inputs, not as
    # base-length streams, or buffer-backed kernels would blow them up
    # to full length.
    scalar_vars: set[str] = set()
    builder = _SegmentBuilder(scalar_vars)

    def flush() -> None:
        for item in builder.finish(used_later):
            plan.append(item)

    for stmt in body:
        if isinstance(stmt, ir.Return):
            flush()
            plan.append(ReturnItem(stmt.expr))
        elif isinstance(stmt, ir.If):
            flush()
            plan.append(IfItem(stmt.cond,
                               _segment_body(stmt.then_body, used_later,
                                             enabled),
                               _segment_body(stmt.else_body, used_later,
                                             enabled)))
        elif isinstance(stmt, ir.While):
            flush()
            plan.append(WhileItem(stmt.cond,
                                  _segment_body(stmt.body, used_later,
                                                enabled)))
        elif isinstance(stmt, ir.Assign):
            if _produces_scalar(stmt):
                scalar_vars.add(stmt.target)
            elif stmt.target in scalar_vars:
                scalar_vars.discard(stmt.target)
            if enabled and builder.try_add(stmt, used_later):
                # Scalar-ness propagates through broadcast-only chains
                # (e.g. arithmetic over two reduction results).
                if builder.domain_of_target(stmt.target) == ANY:
                    scalar_vars.add(stmt.target)
                continue
            if enabled and _fusable(stmt):
                # Fusable but incompatible with the open segment: flush and
                # start a new one.
                flush()
                if builder.try_add(stmt, used_later):
                    continue
            flush()
            plan.append(OpaqueItem(stmt))
        else:
            flush()
            plan.append(OpaqueItem(stmt))
    flush()
    return plan


def _fusable(stmt: ir.Assign) -> bool:
    return _classify(stmt) is not None


def _classify(stmt: ir.Assign) -> str | None:
    """Kind of a fusable statement, or None."""
    expr = stmt.expr
    if isinstance(expr, (ir.Literal, ir.SymbolLit)):
        return "const"
    if isinstance(expr, ir.Cast):
        if isinstance(expr.expr, ir.Var) and expr.type in _CASTABLE:
            return "cast"
        return None
    if isinstance(expr, ir.Var):
        return "alias"
    if not isinstance(expr, ir.BuiltinCall):
        return None
    builtin = hb.BUILTINS.get(expr.name)
    if builtin is None:
        return None
    if builtin.kind == "elementwise" and builtin.template is not None:
        if all(isinstance(a, (ir.Var, ir.Literal, ir.SymbolLit))
               for a in expr.args):
            return "elementwise"
        return None
    if builtin.kind == "compress":
        if all(isinstance(a, ir.Var) for a in expr.args):
            return "compress"
        return None
    if builtin.kind == "reduction" and builtin.template is not None \
            and builtin.combine is not None and builtin.name != "avg":
        if isinstance(expr.args[0], ir.Var):
            return "reduction"
        return None
    return None


class _SegmentBuilder:
    """Grows one segment statement by statement, tracking domains."""

    def __init__(self, scalar_vars: set[str] | None = None):
        self._stmts: list[ir.Assign] = []
        self._domains: dict[str, tuple] = {}
        self._inputs: list[str] = []
        self._reduced: set[str] = set()
        #: block-level set of variables known to be scalars (shared with
        #: the segmenter; consulted when labelling external inputs).
        self._scalar_vars = scalar_vars if scalar_vars is not None \
            else set()

    def try_add(self, stmt: ir.Assign,
                used_later: dict[int, set[str]]) -> bool:
        kind = _classify(stmt)
        if kind is None:
            return False
        expr = stmt.expr

        if kind == "const":
            self._domains[stmt.target] = ANY
            self._stmts.append(stmt)
            return True

        broadcast_positions: tuple = ()
        if isinstance(expr, ir.BuiltinCall):
            builtin = hb.BUILTINS.get(expr.name)
            if builtin is not None:
                broadcast_positions = builtin.broadcast_args

        arg_vars: list[str] = []
        broadcast_vars: set[str] = set()
        if isinstance(expr, ir.BuiltinCall):
            for position, arg in enumerate(expr.args):
                if isinstance(arg, ir.Var):
                    arg_vars.append(arg.name)
                    if position in broadcast_positions:
                        broadcast_vars.add(arg.name)
        else:
            arg_vars = [a.name for a in _expr_var_args(expr)]

        # A value produced by a reduction in this segment is a cross-chunk
        # total; nothing in the same kernel may read it.
        if any(name in self._reduced for name in arg_vars):
            return False

        domains = [ANY if name in broadcast_vars else self._domain_of(name)
                   for name in arg_vars]

        if kind in ("elementwise", "cast", "alias"):
            merged = _merge_domains(domains)
            if merged is None:
                return False
            self._admit(stmt, arg_vars, broadcast_vars)
            self._domains[stmt.target] = merged
            return True

        if kind == "compress":
            mask, data = arg_vars
            mask_domain = self._domain_of(mask)
            data_domain = self._domain_of(data)
            merged = _merge_domains([mask_domain, data_domain])
            if merged is None or merged == ANY:
                return False
            self._admit(stmt, arg_vars, broadcast_vars)
            self._domains[stmt.target] = merged + (f"m:{mask}",)
            return True

        if kind == "reduction":
            if domains[0] == ANY and self._domain_of(arg_vars[0]) == ANY:
                # Reducing a constant is legal but pointless to fuse.
                return False
            self._admit(stmt, arg_vars, broadcast_vars)
            self._domains[stmt.target] = ANY
            self._reduced.add(stmt.target)
            return True
        return False

    def domain_of_target(self, name: str) -> tuple:
        """Domain recorded for a variable defined in the open segment."""
        return self._domains.get(name, BASE)

    def _domain_of(self, name: str) -> tuple:
        domain = self._domains.get(name)
        if domain is not None:
            return domain
        return ANY if name in self._scalar_vars else BASE

    def _admit(self, stmt: ir.Assign, arg_vars: list[str],
               broadcast_vars: set[str] = frozenset()) -> None:
        for name in arg_vars:
            if name not in self._domains and name not in self._inputs:
                self._inputs.append(name)
                if name in broadcast_vars or name in self._scalar_vars:
                    self._domains[name] = ANY
                else:
                    self._domains[name] = BASE
        self._stmts.append(stmt)

    def finish(self, used_later: dict[int, set[str]]) -> list:
        """Close the segment; returns the plan items it contributes."""
        stmts = self._stmts
        if not stmts:
            self._reset()
            return []
        # The segment is a contiguous run, so the set of variables needed
        # after its *last* statement is exactly what must materialize.
        needed = used_later.get(id(stmts[-1]), set())
        outputs: list[tuple[str, str]] = []
        for stmt in stmts:
            if stmt.target in needed:
                role = self._output_role(stmt)
                if all(name != stmt.target for name, _ in outputs):
                    outputs.append((stmt.target, role))
        # Count statements doing real work (consts are free).
        real = [s for s in stmts if _classify(s) not in ("const", "alias")]
        if len(real) < 2:
            items = [OpaqueItem(s) for s in stmts]
            self._reset()
            return items
        segment = Segment(stmts, list(self._inputs), outputs,
                          dict(self._domains))
        self._reset()
        return [FusedItem(segment)]

    def _output_role(self, stmt: ir.Assign) -> str:
        if stmt.target in self._reduced:
            builtin = hb.get(stmt.expr.name)
            return f"reduce:{builtin.combine}"
        return "vector"

    def _reset(self) -> None:
        self._stmts = []
        self._domains = {}
        self._inputs = []
        self._reduced = set()


def _expr_var_args(expr: ir.Expr) -> list[ir.Var]:
    if isinstance(expr, ir.BuiltinCall):
        return [a for a in expr.args if isinstance(a, ir.Var)]
    if isinstance(expr, ir.Cast):
        return [expr.expr] if isinstance(expr.expr, ir.Var) else []
    if isinstance(expr, ir.Var):
        return [expr]
    return []


def _merge_domains(domains: list[tuple]) -> tuple | None:
    """Unify operand domains; None when they conflict (no fusion)."""
    merged = ANY
    for domain in domains:
        if domain == ANY:
            continue
        if merged == ANY:
            merged = domain
        elif merged != domain:
            return None
    return merged

"""Method inlining — HorsePower's cross-optimization enabler.

Per Section 3.4.2: replacing UDF method calls with the callee's body lets
the dependence graph span the whole query, so loop fusion can run across
the SQL/UDF boundary (Figure 7).  Rules implemented here, as in the paper:

* the callee body is alpha-renamed so no names collide with the caller;
* pass-by-value is respected: a parameter the callee *reassigns* gets a
  fresh local bound to the argument (our IR has no in-place mutation, so
  reassignment is the only hazard); read-only parameters alias the argument
  directly (the paper's copy-on-write shortcut);
* a method is removed from the module once it is inlined at every call
  site (and is not the entry method);
* only straight-line callees are inlined at expression position; callees
  with control flow keep their call (the backend interprets them).
"""

from __future__ import annotations

from repro.core import ir
from repro.core.optimizer import analysis
from repro.errors import OptimizerError

__all__ = ["inline_methods", "can_inline"]

_MAX_ROUNDS = 32


def can_inline(method: ir.Method) -> bool:
    """True if a method body is straight-line ending in a single return."""
    if not method.body:
        return False
    *front, last = method.body
    if not isinstance(last, ir.Return):
        return False
    return all(isinstance(stmt, ir.Assign) for stmt in front)


def inline_methods(module: ir.Module, entry: str | None = None) -> ir.Module:
    """Inline every inlinable call site in every method, to fixpoint.

    Returns a new module; the input is not mutated.  The entry method (by
    default the module's ``entry``) is always retained.
    """
    entry_name = entry if entry is not None else module.entry.name
    methods = {name: _copy_method(m) for name, m in module.methods.items()}

    for _ in range(_MAX_ROUNDS):
        changed = False
        for method in methods.values():
            if _inline_in_method(method, methods):
                changed = True
        if not changed:
            break
    else:
        raise OptimizerError(
            "inlining did not reach a fixpoint (recursive methods?)")

    survivors = _reachable_methods(methods, entry_name)
    result = ir.Module(module.name)
    for name, method in methods.items():
        if name in survivors:
            result.add(method)
    return result


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------

def _copy_method(method: ir.Method) -> ir.Method:
    return ir.Method(method.name, list(method.params), method.ret_type,
                     _copy_body(method.body))


def _copy_body(body: list[ir.Stmt]) -> list[ir.Stmt]:
    out: list[ir.Stmt] = []
    for stmt in body:
        if isinstance(stmt, ir.Assign):
            out.append(ir.Assign(stmt.target, stmt.type, stmt.expr))
        elif isinstance(stmt, ir.Return):
            out.append(ir.Return(stmt.expr))
        elif isinstance(stmt, ir.If):
            out.append(ir.If(stmt.cond, _copy_body(stmt.then_body),
                             _copy_body(stmt.else_body)))
        elif isinstance(stmt, ir.While):
            out.append(ir.While(stmt.cond, _copy_body(stmt.body)))
        else:
            raise OptimizerError(f"unknown statement {type(stmt).__name__}")
    return out


def _inline_in_method(method: ir.Method,
                      methods: dict[str, ir.Method]) -> bool:
    taken = analysis.method_names(method)
    fresh = analysis.fresh_namer(taken)
    changed = _inline_in_body(method.body, method.name, methods, fresh)
    return changed


def _inline_in_body(body: list[ir.Stmt], caller: str,
                    methods: dict[str, ir.Method], fresh) -> bool:
    changed = False
    i = 0
    while i < len(body):
        stmt = body[i]
        if isinstance(stmt, ir.If):
            changed |= _inline_in_body(stmt.then_body, caller, methods, fresh)
            changed |= _inline_in_body(stmt.else_body, caller, methods, fresh)
        elif isinstance(stmt, ir.While):
            changed |= _inline_in_body(stmt.body, caller, methods, fresh)
        elif isinstance(stmt, ir.Assign) \
                and isinstance(stmt.expr, ir.MethodCall):
            call = stmt.expr
            callee = methods.get(call.name)
            if callee is not None and call.name != caller \
                    and can_inline(callee):
                expansion = _expand_call(stmt, call, callee, fresh)
                body[i:i + 1] = expansion
                i += len(expansion)
                changed = True
                continue
        i += 1
    return changed


def _expand_call(site: ir.Assign, call: ir.MethodCall, callee: ir.Method,
                 fresh) -> list[ir.Stmt]:
    """The inlined statements replacing ``site``."""
    if len(call.args) != len(callee.params):
        raise OptimizerError(
            f"call to {callee.name!r} with {len(call.args)} args, "
            f"expected {len(callee.params)}")

    reassigned = _reassigned_params(callee)
    rename: dict[str, str] = {}
    out: list[ir.Stmt] = []

    for param, arg in zip(callee.params, call.args):
        if isinstance(arg, ir.Var) and param.name not in reassigned:
            # Read-only parameter: alias the argument (copy-on-write says a
            # physical copy is unnecessary).
            rename[param.name] = arg.name
        else:
            local = fresh(param.name)
            rename[param.name] = local
            out.append(ir.Assign(local, param.type, arg))

    *front, last = callee.body
    for stmt in front:
        assert isinstance(stmt, ir.Assign)
        local = fresh(stmt.target)
        expr = ir.rename_expr(stmt.expr, rename)
        rename[stmt.target] = local
        out.append(ir.Assign(local, stmt.type, expr))

    assert isinstance(last, ir.Return)
    out.append(ir.Assign(site.target, site.type,
                         ir.rename_expr(last.expr, rename)))
    return out


def _reassigned_params(callee: ir.Method) -> set[str]:
    params = set(callee.param_names())
    counts = analysis.assign_counts(callee)
    # Parameters start with count 1 (the binding); any extra assignment in
    # the body means the callee overwrites its copy.
    return {name for name in params if counts[name] > 1}


def _reachable_methods(methods: dict[str, ir.Method],
                       entry: str) -> set[str]:
    reachable = {entry}
    frontier = [entry]
    while frontier:
        current = methods.get(frontier.pop())
        if current is None:
            continue
        for stmt in current.walk_stmts():
            exprs: list[ir.Expr] = []
            if isinstance(stmt, (ir.Assign, ir.Return)):
                exprs.append(stmt.expr)
            elif isinstance(stmt, (ir.If, ir.While)):
                exprs.append(stmt.cond)
            for expr in exprs:
                for name in _called_methods(expr):
                    if name not in reachable:
                        reachable.add(name)
                        frontier.append(name)
    return reachable


def _called_methods(expr: ir.Expr) -> set[str]:
    names: set[str] = set()

    def visit(node: ir.Expr) -> ir.Expr:
        if isinstance(node, ir.MethodCall):
            names.add(node.name)
        return node

    ir.map_expr(expr, visit)
    return names

"""The optimization pipeline (paper Section 3.4).

``optimize`` rewrites a module through the paper's pass order: method
inlining first (the cross-optimization enabler), then scalar cleanups
(constants, copies, CSE), backward slicing, and pattern-based fusion.
Automatic loop fusion itself runs in the compiler, because its result is an
execution plan rather than IR.

Since the pass-manager refactor this module is a thin preset invocation:
the pass order, fixed-point rounds, spans and statistics live in
:mod:`repro.core.passes`, and ``optimize(...)`` is exactly
``PassManager(preset("O2")).run_module(...)`` (``O1`` when
``enable_patterns=False``).  Callers wanting custom pipelines,
inter-pass verification or IR dumps pass ``pipeline=`` / ``verify_ir=``
/ ``dump_ir=`` straight through.
"""

from __future__ import annotations

from repro.core import ir
from repro.core.passes import (MAX_ROUNDS, OptimizeStats, PassManager,
                               PassStat, resolve_pipeline)

__all__ = ["optimize", "OptimizeStats", "PassStat"]

#: Fixed-point round budget (re-exported for backward compatibility).
_MAX_ROUNDS = MAX_ROUNDS


def optimize(module: ir.Module, *, entry: str | None = None,
             enable_patterns: bool = True,
             tracer=None, limits=None, pipeline=None, metrics=None,
             span=None, verify_ir: bool = False,
             dump_ir: str | None = None) \
        -> tuple[ir.Module, OptimizeStats]:
    """Optimize ``module``; returns a new module and pass statistics.

    ``tracer`` names where per-pass spans go; ``None`` falls back to the
    process-ambient tracer (callers inside a session pass
    ``ctx.tracer``).  ``limits`` is the query's
    :class:`~repro.core.limits.QueryLimits` checkpoint surface, checked
    once per pass so a deadline can cancel a pathological optimization
    (``None`` means ungoverned).

    ``pipeline`` overrides the preset (a name, a comma list of pass
    names, or a :class:`~repro.core.passes.Pipeline`); when given,
    ``enable_patterns`` is ignored.  ``metrics`` receives the
    ``optimizer.fixed_point_exhausted`` counter and ``span`` (the
    enclosing ``optimize`` span) its annotation when the fixed-point
    round budget runs out.  ``verify_ir=True`` re-verifies the IR after
    every pass (:class:`~repro.errors.PassVerificationError` on
    failure); ``dump_ir`` names a directory for per-pass IR snapshots.
    """
    if pipeline is None:
        pipeline = "O2" if enable_patterns else "O1"
    pipeline = resolve_pipeline(pipeline)
    manager = PassManager(pipeline, verify=verify_ir, dump_dir=dump_ir)
    return manager.run_module(module, entry=entry, tracer=tracer,
                              limits=limits, metrics=metrics, span=span)

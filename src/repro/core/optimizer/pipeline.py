"""The optimization pipeline (paper Section 3.4).

``optimize`` rewrites a module through the paper's pass order: method
inlining first (the cross-optimization enabler), then scalar cleanups
(constants, copies, CSE), backward slicing, and pattern-based fusion.
Automatic loop fusion itself runs in the compiler, because its result is an
execution plan rather than IR.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core import ir
from repro.core.optimizer.constprop import propagate_constants
from repro.core.optimizer.copyprop import propagate_copies
from repro.core.optimizer.cse import eliminate_common_subexpressions
from repro.core.optimizer.dce import eliminate_dead_code
from repro.core.optimizer.inline import inline_methods
from repro.core.optimizer.patterns import (apply_patterns,
                                            forward_list_items)
from repro.core.limits import NULL_LIMITS
from repro.obs import get_tracer

__all__ = ["optimize", "OptimizeStats"]

_MAX_ROUNDS = 16


@dataclass
class OptimizeStats:
    """What the pipeline did — surfaced by examples and benchmarks."""

    rounds: int = 0
    inlined_methods_removed: int = 0
    passes_applied: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0


#: The rewrite passes of the fixed-point loop, in the paper's order.
_ROUND_PASSES = (
    ("list-forwarding", forward_list_items),
    ("constprop", propagate_constants),
    ("copyprop", propagate_copies),
    ("cse", eliminate_common_subexpressions),
    ("dce", eliminate_dead_code),
)


def optimize(module: ir.Module, *, entry: str | None = None,
             enable_patterns: bool = True,
             tracer=None, limits=None) -> tuple[ir.Module, OptimizeStats]:
    """Optimize ``module``; returns a new module and pass statistics.

    ``tracer`` names where per-pass spans go; ``None`` falls back to the
    process-ambient tracer (callers inside a session pass
    ``ctx.tracer``).  ``limits`` is the query's
    :class:`~repro.core.limits.QueryLimits` checkpoint surface, checked
    once per pass so a deadline can cancel a pathological optimization
    (``None`` means ungoverned)."""
    stats = OptimizeStats()
    if tracer is None:
        tracer = get_tracer()
    if limits is None:
        limits = NULL_LIMITS
    start = time.perf_counter()

    before = len(module.methods)
    if limits.enabled:
        limits.check("pass:inline")
    with tracer.span("pass:inline", methods_before=before):
        module = inline_methods(module, entry=entry)
    stats.inlined_methods_removed = before - len(module.methods)
    if stats.inlined_methods_removed:
        stats.passes_applied.append("inline")

    for round_index in range(_MAX_ROUNDS):
        changed = False
        for method in module.methods.values():
            for name, pass_fn in _ROUND_PASSES:
                if _run_pass(stats, tracer, name, pass_fn, method,
                             round_index, limits=limits):
                    changed = True
        stats.rounds = round_index + 1
        if not changed:
            break

    if enable_patterns:
        for method in module.methods.values():
            _run_pass(stats, tracer, "patterns", apply_patterns, method,
                      limits=limits)
        # Pattern rewrites can orphan mask definitions; sweep once more.
        for method in module.methods.values():
            eliminate_dead_code(method)

    stats.elapsed_seconds = time.perf_counter() - start
    return module, stats


def _run_pass(stats: OptimizeStats, tracer, name: str, pass_fn,
              method: ir.Method, round_index: int | None = None,
              limits=NULL_LIMITS) -> bool:
    """Run one pass over one method, noting it in ``stats`` and (when
    tracing) recording a per-pass span with before/after statement
    counts.  Each pass is a cooperative cancellation checkpoint."""
    if limits.enabled:
        limits.check(f"pass:{name}")
    if not tracer.enabled:
        changed = pass_fn(method)
    else:
        attrs = {"method": method.name}
        if round_index is not None:
            attrs["round"] = round_index
        with tracer.span(f"pass:{name}", **attrs) as span:
            before = _count_statements(method.body)
            changed = pass_fn(method)
            span.set(stmts_before=before,
                     stmts_after=_count_statements(method.body),
                     changed=changed)
    if changed:
        _note(stats, name)
    return changed


def _count_statements(body: list[ir.Stmt]) -> int:
    """Statements in a method body, descending into control flow."""
    count = 0
    for stmt in body:
        count += 1
        if isinstance(stmt, ir.If):
            count += _count_statements(stmt.then_body)
            count += _count_statements(stmt.else_body)
        elif isinstance(stmt, ir.While):
            count += _count_statements(stmt.body)
    return count


def _note(stats: OptimizeStats, name: str) -> None:
    if name not in stats.passes_applied:
        stats.passes_applied.append(name)

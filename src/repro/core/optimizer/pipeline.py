"""The optimization pipeline (paper Section 3.4).

``optimize`` rewrites a module through the paper's pass order: method
inlining first (the cross-optimization enabler), then scalar cleanups
(constants, copies, CSE), backward slicing, and pattern-based fusion.
Automatic loop fusion itself runs in the compiler, because its result is an
execution plan rather than IR.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core import ir
from repro.core.optimizer.constprop import propagate_constants
from repro.core.optimizer.copyprop import propagate_copies
from repro.core.optimizer.cse import eliminate_common_subexpressions
from repro.core.optimizer.dce import eliminate_dead_code
from repro.core.optimizer.inline import inline_methods
from repro.core.optimizer.patterns import (apply_patterns,
                                            forward_list_items)

__all__ = ["optimize", "OptimizeStats"]

_MAX_ROUNDS = 16


@dataclass
class OptimizeStats:
    """What the pipeline did — surfaced by examples and benchmarks."""

    rounds: int = 0
    inlined_methods_removed: int = 0
    passes_applied: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0


def optimize(module: ir.Module, *, entry: str | None = None,
             enable_patterns: bool = True) -> tuple[ir.Module, OptimizeStats]:
    """Optimize ``module``; returns a new module and pass statistics."""
    stats = OptimizeStats()
    start = time.perf_counter()

    before = len(module.methods)
    module = inline_methods(module, entry=entry)
    stats.inlined_methods_removed = before - len(module.methods)
    if stats.inlined_methods_removed:
        stats.passes_applied.append("inline")

    for round_index in range(_MAX_ROUNDS):
        changed = False
        for method in module.methods.values():
            if forward_list_items(method):
                changed = True
                _note(stats, "list-forwarding")
            if propagate_constants(method):
                changed = True
                _note(stats, "constprop")
            if propagate_copies(method):
                changed = True
                _note(stats, "copyprop")
            if eliminate_common_subexpressions(method):
                changed = True
                _note(stats, "cse")
            if eliminate_dead_code(method):
                changed = True
                _note(stats, "dce")
        stats.rounds = round_index + 1
        if not changed:
            break

    if enable_patterns:
        for method in module.methods.values():
            if apply_patterns(method):
                _note(stats, "patterns")
        # Pattern rewrites can orphan mask definitions; sweep once more.
        for method in module.methods.values():
            eliminate_dead_code(method)

    stats.elapsed_seconds = time.perf_counter() - start
    return module, stats


def _note(stats: OptimizeStats, name: str) -> None:
    if name not in stats.passes_applied:
        stats.passes_applied.append(name)

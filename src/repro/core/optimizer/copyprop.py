"""Copy propagation: collapse ``t = s`` aliases.

Only single-assignment targets whose source is itself single-assignment are
propagated — that is sufficient after inlining, which introduces exactly
this kind of alias when binding read-only parameters.
"""

from __future__ import annotations

from repro.core import ir
from repro.core.optimizer import analysis

__all__ = ["propagate_copies"]


def propagate_copies(method: ir.Method) -> bool:
    """Rewrite ``method`` in place; returns True when anything changed."""
    single = analysis.single_assignment_vars(method)
    aliases: dict[str, str] = {}
    for stmt in method.walk_stmts():
        if isinstance(stmt, ir.Assign) and isinstance(stmt.expr, ir.Var):
            if stmt.target in single and stmt.expr.name in single:
                aliases[stmt.target] = stmt.expr.name
    if not aliases:
        return False
    # Resolve chains a -> b -> c so one pass suffices.
    resolved = {name: _resolve(name, aliases) for name in aliases}
    return _rewrite_body(method.body, resolved)


def _resolve(name: str, aliases: dict[str, str]) -> str:
    seen = {name}
    while name in aliases:
        name = aliases[name]
        if name in seen:  # defensive: cycles cannot arise from SSA aliases
            break
        seen.add(name)
    return name


def _rewrite_body(body: list[ir.Stmt], aliases: dict[str, str]) -> bool:
    changed = False
    for stmt in body:
        if isinstance(stmt, (ir.Assign, ir.Return)):
            new = ir.rename_expr(stmt.expr, aliases)
            if str(new) != str(stmt.expr):
                stmt.expr = new
                changed = True
        elif isinstance(stmt, ir.If):
            new = ir.rename_expr(stmt.cond, aliases)
            if str(new) != str(stmt.cond):
                stmt.cond = new
                changed = True
            changed |= _rewrite_body(stmt.then_body, aliases)
            changed |= _rewrite_body(stmt.else_body, aliases)
        elif isinstance(stmt, ir.While):
            new = ir.rename_expr(stmt.cond, aliases)
            if str(new) != str(stmt.cond):
                stmt.cond = new
                changed = True
            changed |= _rewrite_body(stmt.body, aliases)
    return changed

"""HorsePower's compiler optimizations (paper Section 3.4).

Passes, in pipeline order:

1. :mod:`.inline` — method inlining: the cross-optimization enabler that
   merges UDF bodies into the query body (Section 3.4.2, Figure 7);
2. :mod:`.constprop` — constant propagation and folding;
3. :mod:`.copyprop` — copy propagation;
4. :mod:`.cse` — common-subexpression elimination;
5. :mod:`.dce` — dead-code elimination by backward slicing, which removes
   UDF outputs the enclosing query never consumes (the bs2 variant);
6. :mod:`.patterns` — pattern-based fusion rewrites;
7. :mod:`.fusion` — automatic loop fusion: segments the method into fused
   kernels and opaque statements for the code generator.

:func:`optimize` runs 1-6 and returns the rewritten module; segmenting
(pass 7) happens in the compiler because its output is a plan, not IR.

Since the pass-manager refactor, every pass above is a registered
:class:`~repro.core.passes.Pass` object and :func:`optimize` is a
preset invocation of the :class:`~repro.core.passes.PassManager`
(``O2`` = the list above; ``O1`` drops patterns; ``O0`` runs no IR
passes at all).  See ``docs/compiler_pipeline.md``.
"""

from repro.core.optimizer.pipeline import (  # noqa: F401
    OptimizeStats, PassStat, optimize,
)

__all__ = ["optimize", "OptimizeStats", "PassStat"]

"""Common-subexpression elimination.

Within each straight-line block, pure builtin calls with identical printed
form are computed once; later occurrences become aliases of the first
result.  Only expressions over single-assignment variables participate, so
availability cannot be invalidated by a redefinition.
"""

from __future__ import annotations

from repro.core import builtins as hb
from repro.core import ir
from repro.core.optimizer import analysis

__all__ = ["eliminate_common_subexpressions"]


def eliminate_common_subexpressions(method: ir.Method) -> bool:
    """Rewrite ``method`` in place; returns True when anything changed."""
    single = analysis.single_assignment_vars(method)
    return _rewrite_body(method.body, single)


def _rewrite_body(body: list[ir.Stmt], single: set[str]) -> bool:
    changed = False
    available: dict[str, str] = {}
    for stmt in body:
        if isinstance(stmt, ir.If):
            changed |= _rewrite_body(stmt.then_body, single)
            changed |= _rewrite_body(stmt.else_body, single)
            continue
        if isinstance(stmt, ir.While):
            changed |= _rewrite_body(stmt.body, single)
            continue
        if not isinstance(stmt, ir.Assign):
            continue
        if stmt.target not in single:
            continue
        if not _is_cse_candidate(stmt.expr, single):
            continue
        key = f"{stmt.expr}::{stmt.type}"
        existing = available.get(key)
        if existing is not None:
            stmt.expr = ir.Var(existing)
            changed = True
        else:
            available[key] = stmt.target
    return changed


def _is_cse_candidate(expr: ir.Expr, single: set[str]) -> bool:
    if isinstance(expr, ir.BuiltinCall):
        builtin = hb.BUILTINS.get(expr.name)
        if builtin is None or not builtin.is_pure:
            return False
        return all(_operand_stable(arg, single) for arg in expr.args)
    if isinstance(expr, ir.Cast):
        return _operand_stable(expr.expr, single)
    return False


def _operand_stable(expr: ir.Expr, single: set[str]) -> bool:
    if isinstance(expr, ir.Var):
        return expr.name in single
    if isinstance(expr, (ir.Literal, ir.SymbolLit)):
        return True
    if isinstance(expr, ir.Cast):
        return _operand_stable(expr.expr, single)
    if isinstance(expr, ir.BuiltinCall):
        builtin = hb.BUILTINS.get(expr.name)
        if builtin is None or not builtin.is_pure:
            return False
        return all(_operand_stable(arg, single) for arg in expr.args)
    return False

"""Pattern-based fusion (paper Section 3.4.1).

A pattern is an operator sequence the compiler recognizes and rewrites into
a form with a cheaper template.  The repertoire implemented here covers the
SQL shapes the evaluation exercises:

* ``avg-split`` — ``@avg(x)`` becomes ``@div(@sum(x), @count(x))`` so the
  average participates in loop fusion (plain reductions fuse; avg needs a
  two-part accumulator otherwise).
* ``masked-dot`` — the Figure 2/3 sequence ``m = pred; a = @compress(m, x);
  b = @compress(m, y); p = @mul(a, b); s = @sum(p)`` collapses to
  ``s = @dot_masked(m, x, y)``: one multiply-add pass without gathering the
  compressed operands.
* ``masked-sum`` — ``a = @compress(m, x); s = @sum(a)`` collapses to
  ``s = @sum_masked(m, x)``.
* ``redundant-cast`` — ``x = check_cast(v, T)`` becomes the alias
  ``x = v`` when every definition of ``v`` declares exactly ``T``:
  assignment coerces to the declared type, so the cast is an identity.
  List-forwarding creates these when it substitutes an already-cast
  column into a table UDF's output cast.

Patterns only fire when every interior value has a single consumer (the
rewrite removes those values), which the block dependence graph provides.
"""

from __future__ import annotations

from repro.core import ir
from repro.core import types as ht
from repro.core.depgraph import block_uses, build_depgraph
from repro.core.optimizer import analysis

__all__ = ["apply_patterns"]


def apply_patterns(method: ir.Method) -> bool:
    """Rewrite ``method`` in place; returns True when anything changed."""
    taken = analysis.method_names(method)
    fresh = analysis.fresh_namer(taken)
    changed = _rewrite_body(method.body, fresh)
    changed |= _drop_redundant_casts(method)
    return changed


def _drop_redundant_casts(method: ir.Method) -> bool:
    """Replace ``check_cast(v, T)`` with ``v`` when ``v``'s declared
    type is consistently ``T`` (conflicting redeclarations disable the
    rewrite for that variable)."""
    declared: dict[str, ht.HorseType | None] = \
        {p.name: p.type for p in method.params}
    for stmt in method.walk_stmts():
        if isinstance(stmt, ir.Assign):
            if stmt.target in declared \
                    and declared[stmt.target] != stmt.type:
                declared[stmt.target] = None
            else:
                declared.setdefault(stmt.target, stmt.type)
    changed = False
    for stmt in method.walk_stmts():
        if not isinstance(stmt, ir.Assign) \
                or not isinstance(stmt.expr, ir.Cast):
            continue
        operand = stmt.expr.expr
        if not isinstance(operand, ir.Var):
            continue
        source = declared.get(operand.name)
        if source is not None and not source.is_wildcard \
                and source == stmt.expr.type:
            stmt.expr = operand
            changed = True
    return changed


def _rewrite_body(body: list[ir.Stmt], fresh) -> bool:
    changed = False
    for stmt in body:
        if isinstance(stmt, ir.If):
            changed |= _rewrite_body(stmt.then_body, fresh)
            changed |= _rewrite_body(stmt.else_body, fresh)
        elif isinstance(stmt, ir.While):
            changed |= _rewrite_body(stmt.body, fresh)
    changed |= _split_avg(body, fresh)
    changed |= _masked_reductions(body)
    return changed


def _split_avg(body: list[ir.Stmt], fresh) -> bool:
    changed = False
    i = 0
    while i < len(body):
        stmt = body[i]
        if isinstance(stmt, ir.Assign) \
                and isinstance(stmt.expr, ir.BuiltinCall) \
                and stmt.expr.name == "avg":
            arg = stmt.expr.args[0]
            total = fresh("avg_sum")
            count = fresh("avg_cnt")
            body[i:i + 1] = [
                ir.Assign(total, ht.F64,
                          ir.BuiltinCall("sum", [arg])),
                ir.Assign(count, ht.I64,
                          ir.BuiltinCall("count", [arg])),
                ir.Assign(stmt.target, stmt.type,
                          ir.BuiltinCall("div",
                                         [ir.Var(total), ir.Var(count)])),
            ]
            changed = True
            i += 3
        else:
            i += 1
    return changed


def _masked_reductions(body: list[ir.Stmt]) -> bool:
    """Collapse compress(+mul)+sum chains into masked reductions."""
    changed = False
    while _masked_reduction_once(body):
        changed = True
    return changed


def _masked_reduction_once(body: list[ir.Stmt]) -> bool:
    graph = build_depgraph(body)
    # Variables consumed inside nested if/while bodies are invisible to the
    # block dependence graph; treat them as extra consumers so the rewrite
    # never deletes a statement they need.
    nested_uses: set[str] = set()
    for stmt in body:
        if isinstance(stmt, ir.If):
            nested_uses |= block_uses(stmt.then_body)
            nested_uses |= block_uses(stmt.else_body)
        elif isinstance(stmt, ir.While):
            nested_uses |= block_uses(stmt.body)
    producers: dict[str, int] = {}
    for i, stmt in enumerate(body):
        if isinstance(stmt, ir.Assign):
            producers[stmt.target] = i

    for i, stmt in enumerate(body):
        if not (isinstance(stmt, ir.Assign)
                and isinstance(stmt.expr, ir.BuiltinCall)
                and stmt.expr.name == "sum"
                and isinstance(stmt.expr.args[0], ir.Var)):
            continue
        operand = stmt.expr.args[0].name
        src = producers.get(operand)
        if src is None or not graph.single_consumer(src) \
                or operand in nested_uses:
            continue
        src_stmt = body[src]
        assert isinstance(src_stmt, ir.Assign)
        expr = src_stmt.expr
        if not isinstance(expr, ir.BuiltinCall):
            continue

        if expr.name == "compress":
            mask, data = expr.args
            stmt.expr = ir.BuiltinCall("sum_masked", [mask, data])
            del body[src]
            return True

        if expr.name == "mul" \
                and all(isinstance(a, ir.Var) for a in expr.args):
            left = producers.get(expr.args[0].name)
            right = producers.get(expr.args[1].name)
            if left is None or right is None:
                continue
            if not (graph.single_consumer(left)
                    and graph.single_consumer(right)):
                continue
            if expr.args[0].name in nested_uses \
                    or expr.args[1].name in nested_uses:
                continue
            left_stmt, right_stmt = body[left], body[right]
            if not (_is_compress(left_stmt) and _is_compress(right_stmt)):
                continue
            left_mask = left_stmt.expr.args[0]
            right_mask = right_stmt.expr.args[0]
            if str(left_mask) != str(right_mask):
                continue
            stmt.expr = ir.BuiltinCall(
                "dot_masked",
                [left_mask, left_stmt.expr.args[1],
                 right_stmt.expr.args[1]])
            # left and right may be the same statement (sum of a square).
            for index in sorted({src, left, right}, reverse=True):
                del body[index]
            return True
    return False


def _is_compress(stmt: ir.Stmt) -> bool:
    return (isinstance(stmt, ir.Assign)
            and isinstance(stmt.expr, ir.BuiltinCall)
            and stmt.expr.name == "compress")


def forward_list_items(method: ir.Method) -> bool:
    """Forward ``x = @list_item(l, k)`` to ``l``'s k-th element.

    After a table UDF inlines, ``main`` holds ``l = @list(c0, c1, ...)``
    followed by ``@list_item`` projections.  Forwarding each projection to
    the underlying column turns unused UDF outputs into dead code, which
    backward slicing then removes — the paper's bs2 behaviour.
    """
    single = analysis.single_assignment_vars(method)
    producers: dict[str, ir.BuiltinCall] = {}
    for stmt in method.walk_stmts():
        if isinstance(stmt, ir.Assign) and stmt.target in single \
                and isinstance(stmt.expr, ir.BuiltinCall) \
                and stmt.expr.name == "list" \
                and all(isinstance(a, ir.Var) and a.name in single
                        for a in stmt.expr.args):
            producers[stmt.target] = stmt.expr

    if not producers:
        return False
    changed = False
    for stmt in method.walk_stmts():
        if not isinstance(stmt, ir.Assign):
            continue
        expr = stmt.expr
        # Allow the projection to sit under a check_cast.
        cast = None
        if isinstance(expr, ir.Cast):
            cast = expr.type
            expr = expr.expr
        if not (isinstance(expr, ir.BuiltinCall)
                and expr.name == "list_item"
                and isinstance(expr.args[0], ir.Var)
                and isinstance(expr.args[1], ir.Literal)):
            continue
        source = producers.get(expr.args[0].name)
        if source is None:
            continue
        index = int(expr.args[1].value)
        if not (0 <= index < len(source.args)):
            continue
        replacement: ir.Expr = source.args[index]
        if cast is not None:
            replacement = ir.Cast(replacement, cast)
        stmt.expr = replacement
        changed = True
    return changed

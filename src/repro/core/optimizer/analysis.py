"""Shared dataflow helpers for the optimizer passes."""

from __future__ import annotations

from collections import Counter

from repro.core import ir
from repro.core.depgraph import block_uses

__all__ = ["assign_counts", "single_assignment_vars", "use_counts",
           "fresh_namer"]


def assign_counts(method: ir.Method) -> Counter:
    """How many times each variable is assigned anywhere in the method.

    Assignments inside ``while`` bodies count twice: they may execute many
    times, so the variable is not single-assignment even if it appears once
    textually.
    """
    counts: Counter = Counter()
    _count_assigns(method.body, counts, in_loop=False)
    for param in method.params:
        counts[param.name] += 1
    return counts


def _count_assigns(body: list[ir.Stmt], counts: Counter,
                   in_loop: bool) -> None:
    for stmt in body:
        if isinstance(stmt, ir.Assign):
            counts[stmt.target] += 2 if in_loop else 1
        elif isinstance(stmt, ir.If):
            _count_assigns(stmt.then_body, counts, in_loop)
            _count_assigns(stmt.else_body, counts, in_loop)
        elif isinstance(stmt, ir.While):
            _count_assigns(stmt.body, counts, in_loop=True)


def single_assignment_vars(method: ir.Method) -> set[str]:
    """Variables assigned exactly once on every path (SSA-like)."""
    counts = assign_counts(method)
    return {name for name, count in counts.items() if count == 1}


def use_counts(method: ir.Method) -> Counter:
    """How many statement-level references each variable has."""
    counts: Counter = Counter()
    _count_uses(method.body, counts)
    return counts


def _count_uses(body: list[ir.Stmt], counts: Counter) -> None:
    for stmt in body:
        if isinstance(stmt, (ir.Assign, ir.Return)):
            for name in ir.expr_vars(stmt.expr):
                counts[name] += 1
        elif isinstance(stmt, ir.If):
            for name in ir.expr_vars(stmt.cond):
                counts[name] += 1
            _count_uses(stmt.then_body, counts)
            _count_uses(stmt.else_body, counts)
        elif isinstance(stmt, ir.While):
            for name in ir.expr_vars(stmt.cond):
                counts[name] += 1
            _count_uses(stmt.body, counts)


def fresh_namer(taken: set[str], prefix: str = "v"):
    """A generator of variable names guaranteed not to collide.

    Returns a callable ``fresh(hint) -> str`` that registers each result in
    ``taken`` (the caller's live set, mutated in place).
    """
    counters: dict[str, int] = {}

    def fresh(hint: str = prefix) -> str:
        index = counters.get(hint, 0)
        while True:
            candidate = f"{hint}_{index}"
            index += 1
            if candidate not in taken:
                counters[hint] = index
                taken.add(candidate)
                return candidate

    return fresh


def method_names(method: ir.Method) -> set[str]:
    """Every variable name appearing in the method (defs, uses, params)."""
    names = set(method.param_names())
    names |= block_uses(method.body)
    names |= _all_defs(method.body)
    return names


def _all_defs(body: list[ir.Stmt]) -> set[str]:
    defs: set[str] = set()
    for stmt in body:
        if isinstance(stmt, ir.Assign):
            defs.add(stmt.target)
        elif isinstance(stmt, ir.If):
            defs |= _all_defs(stmt.then_body)
            defs |= _all_defs(stmt.else_body)
        elif isinstance(stmt, ir.While):
            defs |= _all_defs(stmt.body)
    return defs

"""Reference interpreter for HorseIR.

Executes a module statement-at-a-time, fully materializing every
intermediate vector — precisely the execution style of MonetDB's MAL
interpreter and of the paper's **HorsePower-Naive** configuration (HorseIR
compiled to C without fusion).  The optimized backend lives in
:mod:`repro.core.codegen`; both produce identical results, which the test
suite checks property-style.
"""

from __future__ import annotations

from repro.core import builtins as hb
from repro.core import ir
from repro.core import types as ht
from repro.core.context import QueryContext, ensure_context
from repro.core.values import (TableValue, Value, Vector, coerce, scalar,
                               value_nbytes)
from repro.errors import HorseRuntimeError

__all__ = ["Interpreter", "run_module"]

_MAX_LOOP_ITERATIONS = 100_000_000


class _ReturnSignal(Exception):
    """Internal control-flow signal carrying a method's return value."""

    def __init__(self, value: Value):
        self.value = value


class Interpreter:
    """Statement-at-a-time evaluator for a HorseIR module."""

    def __init__(self, module: ir.Module,
                 context: hb.EvalContext | None = None,
                 qctx: QueryContext | None = None):
        self.module = module
        self.context = context if context is not None else hb.EvalContext()
        #: The query context naming the tracer/metrics this run reports
        #: into (the ambient process context when not given).
        self.qctx = ensure_context(qctx)
        #: Where materialized bytes are charged (NULL_PROFILE when the
        #: query is not being profiled; every charge site checks
        #: ``.enabled`` first so disabled profiling costs one attribute
        #: read per statement).
        self.profile = self.qctx.profile
        #: The query's cooperative-cancellation surface (NULL_LIMITS
        #: when ungoverned); checked once per executed statement so a
        #: deadline cancels interpreted runs at statement granularity.
        self.limits = self.qctx.limits
        #: Number of vector intermediates materialized (for the evaluation
        #: narrative: naive mode materializes one per statement).
        self.materialized = 0

    def run(self, method_name: str | None = None,
            args: list[Value] | None = None) -> Value:
        """Execute a method (the entry method by default) and return its
        result."""
        if method_name is None:
            method = self.module.entry
        else:
            try:
                method = self.module.methods[method_name]
            except KeyError:
                raise HorseRuntimeError(
                    f"module {self.module.name!r} has no method "
                    f"{method_name!r}") from None
        tracer = self.qctx.tracer
        if not tracer.enabled:
            return self._traced_call(method, args, None)
        with tracer.span("interpret", method=method.name,
                         module=self.module.name) as span:
            return self._traced_call(method, args, span)

    def _traced_call(self, method: ir.Method, args, span) -> Value:
        before = self.materialized
        bytes_before = (self.profile.counters()[0]
                        if self.profile.enabled else 0)
        try:
            return self._call(method, list(args or []))
        finally:
            materialized = self.materialized - before
            metrics = self.qctx.metrics
            metrics.counter("interp.runs").inc()
            metrics.counter("interp.materialized").inc(materialized)
            if span is not None:
                span.set(materialized=materialized)
                if self.profile.enabled:
                    span.set(alloc_bytes=self.profile.counters()[0]
                             - bytes_before)

    # -- internals ----------------------------------------------------------

    def _call(self, method: ir.Method, args: list[Value]) -> Value:
        if len(args) != len(method.params):
            raise HorseRuntimeError(
                f"method {method.name!r} expects {len(method.params)} "
                f"argument(s), got {len(args)}")
        env: dict[str, Value] = {
            param.name: value
            for param, value in zip(method.params, args)
        }
        try:
            self._exec_body(method.body, env)
        except _ReturnSignal as signal:
            return signal.value
        raise HorseRuntimeError(
            f"method {method.name!r} finished without returning")

    def _exec_body(self, body: list[ir.Stmt], env: dict[str, Value]) -> None:
        profile = self.profile
        limits = self.limits
        for stmt in body:
            if limits.enabled:
                limits.check("statement")
            if isinstance(stmt, ir.Assign):
                env[stmt.target] = self._coerce(
                    self._eval(stmt.expr, env), stmt.type)
                self.materialized += 1
                if profile.enabled:
                    # Naive-mode accounting: every assignment fully
                    # materializes its result vector — except reference
                    # hand-outs (@load_table/@column_value), which are
                    # skipped identically in the compiled path.
                    if not isinstance(stmt.expr, ir.BuiltinCall) \
                            or hb.materializes_output(stmt.expr.name):
                        profile.record(value_nbytes(env[stmt.target]),
                                       site=f"interp:{stmt.target}")
                    profile.update_peak(
                        sum(value_nbytes(v) for v in env.values()))
            elif isinstance(stmt, ir.Return):
                raise _ReturnSignal(self._eval(stmt.expr, env))
            elif isinstance(stmt, ir.If):
                if self._truth(stmt.cond, env):
                    self._exec_body(stmt.then_body, env)
                else:
                    self._exec_body(stmt.else_body, env)
            elif isinstance(stmt, ir.While):
                iterations = 0
                while self._truth(stmt.cond, env):
                    self._exec_body(stmt.body, env)
                    iterations += 1
                    if iterations > _MAX_LOOP_ITERATIONS:
                        raise HorseRuntimeError(
                            "while loop exceeded the iteration limit")
            else:
                raise HorseRuntimeError(
                    f"unknown statement {type(stmt).__name__}")

    def _truth(self, cond: ir.Expr, env: dict[str, Value]) -> bool:
        value = self._eval(cond, env)
        if not isinstance(value, Vector) or len(value) != 1:
            raise HorseRuntimeError(
                "control-flow conditions must be scalar booleans "
                "(MATLAB's non-empty-set truthiness is unsupported, "
                "per the paper's translation rules)")
        return bool(value.item())

    def _eval(self, expr: ir.Expr, env: dict[str, Value]) -> Value:
        if isinstance(expr, ir.Var):
            try:
                return env[expr.name]
            except KeyError:
                raise HorseRuntimeError(
                    f"undefined variable {expr.name!r}") from None
        if isinstance(expr, ir.Literal):
            return scalar(expr.value, expr.type)
        if isinstance(expr, ir.SymbolLit):
            return scalar(expr.name, ht.SYM)
        if isinstance(expr, ir.Cast):
            return self._coerce(self._eval(expr.expr, env), expr.type)
        if isinstance(expr, ir.BuiltinCall):
            builtin = hb.get(expr.name)
            args = [self._eval(a, env) for a in expr.args]
            if self.profile.enabled:
                return hb.run_profiled(builtin, args, self.context,
                                       self.profile)
            return builtin.run(args, self.context)
        if isinstance(expr, ir.MethodCall):
            callee = self.module.methods.get(expr.name)
            if callee is None:
                raise HorseRuntimeError(
                    f"call to unknown method {expr.name!r}")
            args = [self._eval(a, env) for a in expr.args]
            return self._call(callee, args)
        raise HorseRuntimeError(
            f"unknown expression {type(expr).__name__}")

    #: The cast rule is shared with the compiled runtime (see
    #: :func:`repro.core.values.coerce`) so both modes fail identically.
    _coerce = staticmethod(coerce)


def run_module(module: ir.Module, tables: dict[str, TableValue] | None = None,
               method: str | None = None,
               args: list[Value] | None = None,
               ctx: QueryContext | None = None) -> Value:
    """Convenience wrapper: interpret ``module`` against ``tables``."""
    interp = Interpreter(module, hb.EvalContext(tables), qctx=ctx)
    return interp.run(method, args)

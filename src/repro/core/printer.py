"""Pretty-printer for HorseIR modules.

Round-trips with :mod:`repro.core.parser`: ``parse_module(print_module(m))``
reproduces ``m`` (modulo whitespace), which the tests rely on.
"""

from __future__ import annotations

from repro.core import ir

__all__ = ["print_module", "print_method", "print_stmt"]

_INDENT = "    "


def print_module(module: ir.Module) -> str:
    lines = [f"module {module.name} {{"]
    for method in module.methods.values():
        lines.append(_format_method(method, 1))
    lines.append("}")
    return "\n".join(lines) + "\n"


def print_method(method: ir.Method) -> str:
    return _format_method(method, 0) + "\n"


def _format_method(method: ir.Method, depth: int) -> str:
    pad = _INDENT * depth
    params = ", ".join(str(p) for p in method.params)
    lines = [f"{pad}def {method.name}({params}): {method.ret_type} {{"]
    lines.extend(_format_body(method.body, depth + 1))
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def _format_body(body: list[ir.Stmt], depth: int) -> list[str]:
    lines: list[str] = []
    for stmt in body:
        lines.extend(_format_stmt(stmt, depth))
    return lines


def _format_stmt(stmt: ir.Stmt, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(stmt, ir.Assign):
        return [f"{pad}{stmt}"]
    if isinstance(stmt, ir.Return):
        return [f"{pad}{stmt}"]
    if isinstance(stmt, ir.If):
        lines = [f"{pad}if ({stmt.cond}) {{"]
        lines.extend(_format_body(stmt.then_body, depth + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            lines.extend(_format_body(stmt.else_body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ir.While):
        lines = [f"{pad}while ({stmt.cond}) {{"]
        lines.extend(_format_body(stmt.body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"unknown statement {type(stmt).__name__}")


def print_stmt(stmt: ir.Stmt) -> str:
    return "\n".join(_format_stmt(stmt, 0))

"""The explicit per-query execution context.

Every stage of the pipeline — parse → plan → translate → compile →
execute — receives a :class:`QueryContext` naming the tracer to record
spans into, the metrics registry to report into, and the executor pool
to borrow worker threads from.  Nothing below the session layer reaches
for process-global state; an isolated :class:`~repro.engine.EngineSession`
builds contexts bound to its own tracer/metrics/pool, so N sessions can
run concurrently in one process without sharing a single mutable object.

For backward compatibility every ``ctx`` parameter is optional:
:func:`ensure_context` falls back to the *ambient* context — the
process-global tracer (:func:`repro.obs.get_tracer`), the process-global
metrics registry (:func:`repro.obs.global_metrics`) and the shared
executor pool — which is exactly the pre-session behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.limits import NULL_LIMITS, NullQueryLimits, QueryLimits
from repro.obs import MetricsRegistry, get_tracer, global_metrics
from repro.obs.prof import AllocationProfile, NullAllocationProfile, \
    get_profile
from repro.obs.tracer import NullTracer, Tracer

__all__ = ["QueryContext", "ambient_context", "ensure_context"]


@dataclass
class QueryContext:
    """What one query needs from its surroundings, made explicit.

    * ``tracer`` — where spans go (a real :class:`~repro.obs.Tracer` or
      the no-op ``NULL_TRACER``);
    * ``metrics`` — the :class:`~repro.obs.MetricsRegistry` instruments
      report into;
    * ``pool`` — the :class:`~repro.core.execpool.ExecutorPool` chunked
      parallel work borrows threads from (``None`` defers to the
      process-shared pool on first parallel use);
    * ``session`` — the owning :class:`~repro.engine.EngineSession`,
      when there is one (backends use it to reach session-scoped state
      such as the baseline plan executor);
    * ``profile`` — the :class:`~repro.obs.prof.AllocationProfile`
      materialized bytes are charged to (the no-op ``NULL_PROFILE``
      unless profiling was requested);
    * ``limits`` — the :class:`~repro.core.limits.QueryLimits` the
      execution layers checkpoint against (deadline, memory budget,
      cooperative cancellation); the no-op ``NULL_LIMITS`` unless the
      session's :class:`~repro.engine.governor.QueryGovernor` granted
      limits for this query.
    """

    tracer: "Tracer | NullTracer" = field(default_factory=get_tracer)
    metrics: MetricsRegistry = field(default_factory=global_metrics)
    pool: object | None = None
    session: object | None = None
    profile: "AllocationProfile | NullAllocationProfile" = \
        field(default_factory=get_profile)
    limits: "QueryLimits | NullQueryLimits" = NULL_LIMITS

    def executor(self, n_threads: int):
        """An instrumented executor with ``n_threads`` workers, or
        ``None`` when the run is serial.  Uses the context's pool when
        one is bound, the process-shared pool otherwise."""
        if n_threads <= 1:
            return None
        pool = self.pool
        if pool is None:
            from repro.core.execpool import shared_pool
            pool = shared_pool()
        return pool.get(n_threads)


def ambient_context() -> QueryContext:
    """The backward-compatible context: process tracer, process metrics,
    process-shared pool.  Built fresh per call so ``set_tracer`` /
    ``use_tracer`` (and ``set_profile``/``use_profile``) swaps are
    honored."""
    return QueryContext(tracer=get_tracer(), metrics=global_metrics(),
                        pool=None, profile=get_profile())


def ensure_context(ctx: QueryContext | None) -> QueryContext:
    """``ctx`` itself, or the ambient context when ``None``."""
    return ctx if ctx is not None else ambient_context()

"""Hierarchical query tracing (the observability core).

The paper's evaluation decomposes query cost into compile (COMP) and
execute time and attributes speedups to individual optimizations; this
module provides the machinery to see that decomposition on every run:

* :class:`Span` — one timed region (``query``, ``parse``, ``plan``,
  ``translate``, ``compile`` → ``optimize``/``codegen``, ``execute`` →
  ``kernel:*`` → ``chunk``), with attributes (row counts, pass
  statistics, backend) and parent/child structure;
* :class:`Tracer` — collects spans into trees.  The *current* span is
  tracked per-thread via a :mod:`contextvars` variable, so nested
  instrumentation sites compose without threading a span through every
  call signature.  Worker threads do not inherit the caller's context —
  chunk-level instrumentation passes ``parent=`` explicitly;
* :data:`NULL_TRACER` — the default.  Disabled tracing must be near
  free: ``NullTracer.span`` returns one shared no-op context manager and
  every instrumentation site checks ``tracer.enabled`` before computing
  anything expensive (string formatting, row counting), so the disabled
  cost is one global read plus one method call per site
  (``benchmarks/bench_obs_overhead.py`` bounds it at <2% on TPC-H Q6).

Spans are exported as a human ``EXPLAIN ANALYZE`` tree or Chrome-trace
JSON by :mod:`repro.obs.render`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "get_tracer",
           "set_tracer", "use_tracer"]

#: The span enclosing the caller, per thread of execution (worker threads
#: start empty: cross-thread children pass ``parent=`` explicitly).
_current_span: ContextVar["Span | None"] = ContextVar(
    "repro_obs_current_span", default=None)


class Span:
    """A timed, attributed region of query processing.

    Used as a context manager; entering starts the clock and makes the
    span current for nested instrumentation, exiting stops the clock and
    attaches the span to its parent (or the tracer's roots).  An
    exception propagating through still closes the span and records the
    error as an attribute.
    """

    __slots__ = ("name", "attrs", "parent", "children", "start", "end",
                 "thread_id", "_tracer", "_token")

    #: Class-level so instrumentation can gate work on ``span.enabled``.
    enabled = True

    def __init__(self, tracer: "Tracer", name: str,
                 parent: "Span | None", attrs: dict):
        self.name = name
        self.attrs = attrs
        self.parent = parent
        self.children: list[Span] = []
        self.start = 0.0
        self.end = 0.0
        self.thread_id = 0
        self._tracer = tracer
        self._token = None

    @property
    def seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        return max(0.0, self.end - self.start)

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes (row counts, pass stats, ...)."""
        self.attrs.update(attrs)
        return self

    def add(self, key: str, amount: float = 1) -> "Span":
        """Increment a numeric attribute (e.g. per-chunk row totals)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount
        return self

    def __enter__(self) -> "Span":
        self.thread_id = threading.get_ident()
        if self.parent is None:
            self.parent = _current_span.get()
        self._token = _current_span.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        if exc is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer._attach(self)
        return False

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.seconds * 1000:.3f}ms, "
                f"children={len(self.children)})")


class Tracer:
    """Collects span trees.  Thread-safe: children attach under a lock,
    so chunk spans recorded from pool workers never race."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self.roots: list[Span] = []

    def span(self, name: str, parent: Span | None = None,
             **attrs) -> Span:
        """A new span, parented to ``parent`` (or the current span)."""
        return Span(self, name, parent, attrs)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        return _current_span.get()

    def _attach(self, span: Span) -> None:
        with self._lock:
            if span.parent is not None and span.parent.enabled:
                span.parent.children.append(span)
            else:
                span.parent = None
                self.roots.append(span)

    def last_root(self) -> Span | None:
        with self._lock:
            return self.roots[-1] if self.roots else None

    def reset(self) -> None:
        with self._lock:
            self.roots = []

    def all_spans(self) -> list[Span]:
        with self._lock:
            roots = list(self.roots)
        spans: list[Span] = []
        for root in roots:
            spans.extend(root.walk())
        return spans


class _NullSpan:
    """The shared do-nothing span: every no-op site reuses one object."""

    __slots__ = ()
    enabled = False
    name = ""
    children: list = []
    attrs: dict = {}
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self

    def add(self, key: str, amount: float = 1) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: allocation-free, state-free, thread-safe."""

    __slots__ = ()
    enabled = False
    roots: list = []

    def span(self, name: str, parent=None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def last_root(self) -> None:
        return None

    def reset(self) -> None:
        pass

    def all_spans(self) -> list:
        return []


NULL_TRACER = NullTracer()

_tracer: "Tracer | NullTracer" = NULL_TRACER


def get_tracer() -> "Tracer | NullTracer":
    """The active tracer (the no-op :data:`NULL_TRACER` by default)."""
    return _tracer


def set_tracer(tracer: "Tracer | NullTracer | None") -> None:
    """Install ``tracer`` process-wide (``None`` restores the no-op)."""
    global _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer"):
    """Temporarily install ``tracer`` (tests, benchmark harness)."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    try:
        yield tracer
    finally:
        _tracer = previous

"""Process-global runtime metrics.

A zero-dependency registry of named instruments, reported into by the
plan cache (hits/misses/evictions), the executor pool (tasks, peak
concurrency, wall time), the kernel executor (invocations, rows, wall
time histogram) and the baseline operators (rows scanned/produced):

* :class:`Counter` — monotonically increasing total (int or float);
* :class:`Gauge` — last-set value (pool size, peak concurrency);
* :class:`Histogram` — count/sum/min/max plus log-scale bucket counts.
  Bounds are a per-instrument constructor argument: the default
  :data:`DEFAULT_BUCKETS` is sized for kernel wall times (1µs – 10s),
  and byte-valued histograms (the allocation profiler's
  ``prof.query_bytes``) pass :data:`BYTE_BUCKETS` (1KiB – 1GiB) so
  observations don't all land in one overflow bucket.

All instruments are thread-safe.  ``global_metrics()`` returns the one
process-wide registry; instruments are created on first use and keep
their identity across :meth:`MetricsRegistry.reset` (values zero in
place), so modules may cache instrument references at import time.

The flat JSON form (:meth:`MetricsRegistry.snapshot`) is what the CLI's
``--metrics-json`` writes and what ``benchmarks/report.py`` consumes to
split the paper's COMP column into per-phase figures.
:meth:`MetricsRegistry.to_prometheus` renders the same instruments in
the Prometheus text exposition format (dotted names sanitized,
histogram buckets cumulative and ending in ``+Inf``) — the payload the
:class:`~repro.obs.telemetry.MetricsServer` serves on ``/metrics``.
"""

from __future__ import annotations

import re
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "global_metrics", "DEFAULT_BUCKETS", "BYTE_BUCKETS",
           "QERROR_BUCKETS"]

#: Characters the Prometheus exposition format forbids in metric names;
#: everything outside ``[a-zA-Z0-9_:]`` becomes ``_`` (``a.b`` → ``a_b``).
_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Default histogram bucket upper bounds, in seconds.
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

#: Bucket upper bounds for byte-valued histograms: 1KiB … 1GiB in
#: powers of 8, plus the KiB/MiB/GiB decades in between.  Values above
#: the last bound land in the implicit overflow (``+Inf``) bucket
#: (same convention as DEFAULT_BUCKETS); count/sum/min/max record them
#: too.
BYTE_BUCKETS = (1 << 10, 1 << 13, 1 << 16, 1 << 20, 1 << 23,
                1 << 26, 1 << 30)

#: Bucket upper bounds for q-error histograms (``stats.q_error``).
#: Q-error is ``max(est/actual, actual/est)`` ≥ 1: the low buckets
#: resolve the "estimates are good" range (≤2 is the acceptance bar
#: on the TPC-H filters), the high ones the order-of-magnitude misses
#: stale statistics produce.
QERROR_BUCKETS = (1.1, 1.25, 1.5, 2.0, 4.0, 16.0, 64.0, 256.0)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _snapshot(self):
        return self.value


class Gauge:
    """A point-in-time value; ``set_max`` records high-water marks."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self):
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _snapshot(self):
        return self.value


class Histogram:
    """Count/sum/min/max plus log-scale bucket counts.

    Values above the last configured bound land in an implicit
    overflow (``+Inf``) bucket, so per-bucket counts always sum to
    ``count`` and the Prometheus cumulative mapping is exact.  The
    overflow bucket appears in snapshots (as ``le_inf``) only when it
    is non-empty, keeping historical snapshots byte-identical for
    distributions that never overflowed."""

    __slots__ = ("name", "_lock", "_bounds", "_buckets", "_overflow",
                 "count", "sum", "min", "max")

    def __init__(self, name: str, bounds=DEFAULT_BUCKETS):
        self.name = name
        self._lock = threading.Lock()
        self._bounds = tuple(bounds)
        self._buckets = [0] * len(self._bounds)
        self._overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for index, bound in enumerate(self._bounds):
                if value <= bound:
                    self._buckets[index] += 1
                    break
            else:
                self._overflow += 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def bucket_state(self):
        """``(bounds, per-bucket counts, overflow, count, sum)`` under
        one lock acquisition — the exporter's consistent view."""
        with self._lock:
            return (self._bounds, tuple(self._buckets), self._overflow,
                    self.count, self.sum)

    def _reset(self) -> None:
        with self._lock:
            self._buckets = [0] * len(self._bounds)
            self._overflow = 0
            self.count = 0
            self.sum = 0.0
            self.min = None
            self.max = None

    def _snapshot(self):
        with self._lock:
            buckets = {f"le_{bound:g}": count for bound, count
                       in zip(self._bounds, self._buckets)}
            if self._overflow:
                buckets["le_inf"] = self._overflow
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "mean": self.sum / self.count if self.count else 0.0,
                "buckets": buckets,
            }


class MetricsRegistry:
    """Named instruments, created on first use.

    A name is bound to one instrument kind for the registry's lifetime —
    asking for ``counter("x")`` after ``gauge("x")`` is a programming
    error and raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, *args)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} is a "
                    f"{type(instrument).__name__}, not a {cls.__name__}")
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, bounds)

    def snapshot(self) -> dict:
        """Flat ``{name: value-or-summary}`` dict, sorted by name."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: instrument._snapshot()
                for name, instrument in instruments}

    def to_prometheus(self) -> str:
        """Every instrument in the Prometheus text exposition format
        (version 0.0.4) — what the telemetry ``/metrics`` endpoint
        serves and any standard Prometheus scraper parses.

        Dotted names sanitize mechanically (``a.b`` → ``a_b``; no
        ``_total`` suffixing, so a scrape greps exactly like a
        snapshot).  Histogram buckets are emitted cumulatively with a
        final ``le="+Inf"`` bucket equal to ``_count``, which the
        implicit overflow bucket makes exact rather than approximate.
        """
        with self._lock:
            instruments = sorted(self._instruments.items())
        lines: list[str] = []
        for name, instrument in instruments:
            pname = _prometheus_name(name)
            if isinstance(instrument, Counter):
                lines.append(f"# HELP {pname} counter {name}")
                lines.append(f"# TYPE {pname} counter")
                lines.append(f"{pname} {_prometheus_value(instrument.value)}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# HELP {pname} gauge {name}")
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {_prometheus_value(instrument.value)}")
            elif isinstance(instrument, Histogram):
                bounds, buckets, _overflow, count, total = \
                    instrument.bucket_state()
                lines.append(f"# HELP {pname} histogram {name}")
                lines.append(f"# TYPE {pname} histogram")
                cumulative = 0
                for bound, bucket_count in zip(bounds, buckets):
                    cumulative += bucket_count
                    lines.append(f'{pname}_bucket{{le="{bound:g}"}} '
                                 f"{cumulative}")
                # +Inf == count exactly: overflow observations are
                # accounted, so cumulative + overflow == count.
                lines.append(f'{pname}_bucket{{le="+Inf"}} {count}')
                lines.append(f"{pname}_sum {_prometheus_value(total)}")
                lines.append(f"{pname}_count {count}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every instrument in place (identities survive, so
        modules caching instrument references stay wired up)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument._reset()


def _prometheus_name(name: str) -> str:
    """``a.b-c`` → ``a_b_c``; a leading digit gains a ``_`` prefix."""
    sanitized = _PROM_NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prometheus_value(value) -> str:
    """Integers render as integers, floats via ``repr`` (full
    precision; Prometheus accepts any Go-parseable float)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


_global = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The process-wide registry every subsystem reports into."""
    return _global

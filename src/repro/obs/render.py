"""Renderers for traces and metrics.

Three consumers, three formats:

* :func:`render_explain_analyze` — the human ``EXPLAIN ANALYZE`` view: a
  span tree annotated with wall times, percent-of-query shares, and the
  attributes instrumentation recorded (row counts, pass statistics,
  backend, cache provenance);
* :func:`chrome_trace` / :func:`chrome_trace_json` — Chrome-trace-format
  events (open ``chrome://tracing`` or https://ui.perfetto.dev and load
  the file) with one complete (``"ph": "X"``) event per span, placed on
  the thread that ran it;
* :func:`phase_coverage` — the explain tree's self-check: how much of a
  root span its children account for (the CLI prints it; the acceptance
  bar is ≥95% on a query span).
"""

from __future__ import annotations

import json
import os

from repro.obs.prof import format_bytes
from repro.obs.tracer import Span

__all__ = ["render_explain_analyze", "render_plan", "chrome_trace",
           "chrome_trace_json", "phase_coverage", "format_pass_stats",
           "format_lint_findings"]

#: Attributes whose values are unstable across runs (golden tests render
#: with ``timings=False`` and rely on the remaining attributes only).
_UNSTABLE_ATTRS = ("error",)

_MAX_ATTR_LEN = 48

#: Byte-valued span attributes recorded by the allocation profiler;
#: rendered humanized (``alloc=1.2MiB``) outside the bracketed attr
#: list's ``key=value`` form.  These attributes exist only when
#: profiling was on, so default ``EXPLAIN ANALYZE`` output (and the PR 2
#: golden files) are byte-identical with the profiler off.
_BYTE_ATTRS = {"alloc_bytes": "alloc", "peak_bytes": "peak"}

#: Attributes renamed for display.  ``rows_returned`` is set on the
#: query span only when session telemetry is enabled, so — exactly like
#: the profiler's byte attrs — default output and the PR 2 golden files
#: are byte-identical with telemetry off.
_RENAMED_ATTRS = {"rows_returned": "rows"}


def _format_attr(value) -> str:
    if isinstance(value, float):
        text = f"{value:g}"
    elif isinstance(value, bool):
        text = str(value)
    else:
        text = str(value)
    text = " ".join(text.split())
    if len(text) > _MAX_ATTR_LEN:
        text = text[:_MAX_ATTR_LEN - 1] + "…"
    return text


#: Attributes folded into one ``rows est=… actual=… q=…`` token when a
#: cardinality estimate is present.  ``est_rows``/``q_error`` exist
#: only after an ``ANALYZE`` populated the session's statistics, so
#: stats-free output (and the PR 2 golden files) stays byte-identical.
_EST_ACTUAL_ATTRS = ("est_rows", "q_error", "rows_out", "rows_returned")


def _est_actual_token(attrs: dict) -> str:
    """``rows est=E actual=A q=Q`` for a span carrying an estimate
    (``actual``/``q`` only when an actual row count was recorded)."""
    est = attrs["est_rows"]
    actual = attrs.get("rows_out", attrs.get("rows_returned"))
    if actual is None:
        return f"rows est={est}"
    q = attrs.get("q_error")
    if q is None:
        from repro.stats import q_error
        q = round(q_error(est, actual), 3)
    return f"rows est={est} actual={actual} q={_format_attr(q)}"


def _attr_suffix(span: Span) -> str:
    parts = []
    attrs = span.attrs
    estimated = attrs.get("est_rows") is not None
    for key, value in attrs.items():
        if estimated and key in _EST_ACTUAL_ATTRS:
            continue
        label = _BYTE_ATTRS.get(key)
        if label is not None:
            parts.append(f"{label}={format_bytes(value)}")
        else:
            key = _RENAMED_ATTRS.get(key, key)
            parts.append(f"{key}={_format_attr(value)}")
    if estimated:
        parts.append(_est_actual_token(attrs))
    return f"  [{' '.join(parts)}]" if parts else ""


def render_explain_analyze(root: Span, *, timings: bool = True) -> str:
    """The span tree as indented text (one line per span).

    ``timings=False`` drops wall times and percentages — the stable form
    golden tests compare against."""
    total = root.seconds or 0.0
    lines: list[str] = []

    def emit(span: Span, prefix: str, branch: str, last: bool) -> None:
        label = span.name
        timing = ""
        if timings:
            timing = f"  {span.seconds * 1000:.3f} ms"
            if span is not root and total > 0:
                timing += f" ({span.seconds / total * 100:.1f}%)"
        lines.append(prefix + branch + label + timing
                     + _attr_suffix(span))
        child_prefix = prefix
        if branch:
            child_prefix += "   " if last else "│  "
        for index, child in enumerate(span.children):
            child_last = index == len(span.children) - 1
            emit(child, child_prefix,
                 "└─ " if child_last else "├─ ", child_last)

    emit(root, "", "", True)
    if timings:
        covered, total_s, fraction = phase_coverage(root)
        if total_s > 0 and root.children:
            lines.append(f"-- phases cover {covered * 1000:.3f} of "
                         f"{total_s * 1000:.3f} ms "
                         f"({fraction * 100:.1f}%)")
    return "\n".join(lines)


def render_plan(plan) -> str:
    """The classic ``EXPLAIN`` view: the logical plan as an indented
    tree, one line per operator, annotated with the estimated row count
    (when the session's statistics cover the operator) and the output
    columns.

    ``plan`` is duck-typed — any tree whose nodes expose
    ``describe()``, ``children()``, ``output_names()`` and an optional
    ``est_rows`` renders, so this module needs no import of
    :mod:`repro.sql.plan`."""
    lines: list[str] = []

    def emit(node, prefix: str, branch: str, last: bool) -> None:
        parts = []
        est = getattr(node, "est_rows", None)
        if est is not None:
            parts.append(f"est_rows={est}")
        names = node.output_names()
        if names:
            parts.append("out=[" + ", ".join(names) + "]")
        suffix = f"  [{' '.join(parts)}]" if parts else ""
        lines.append(prefix + branch + node.describe() + suffix)
        child_prefix = prefix
        if branch:
            child_prefix += "   " if last else "│  "
        children = node.children()
        for index, child in enumerate(children):
            child_last = index == len(children) - 1
            emit(child, child_prefix,
                 "└─ " if child_last else "├─ ", child_last)

    emit(plan, "", "", True)
    return "\n".join(lines)


def format_pass_stats(stats) -> str:
    """The optimizer's per-pass statistics as an aligned text table.

    ``stats`` is an :class:`~repro.core.passes.OptimizeStats`; one row
    per registered :class:`~repro.core.passes.PassStat` (pipeline
    order): how many times the pass ran, how many of those runs rewrote
    something, and the total time it took.  The CLI's ``compile-sql``
    prints this under the fused kernels."""
    rows = [(ps.name, ps.level, str(ps.runs), str(ps.rewrites),
             f"{ps.seconds * 1000:.3f}")
            for ps in stats.pass_stats]
    header = ("pass", "level", "runs", "rewrites", "ms")
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              if rows else len(header[i]) for i in range(5)]
    def fmt(row):
        return "  ".join(
            cell.ljust(widths[i]) if i < 2 else cell.rjust(widths[i])
            for i, cell in enumerate(row))
    lines = [fmt(header), fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(row) for row in rows)
    lines.append(f"pipeline={stats.pipeline} rounds={stats.rounds}"
                 + (" (fixed point not reached)"
                    if stats.fixed_point_exhausted else ""))
    return "\n".join(lines)


def phase_coverage(root: Span) -> tuple[float, float, float]:
    """``(children_seconds, root_seconds, fraction)`` for a root span.

    The explain tree is trustworthy only if the phases it shows account
    for (almost) all of the time it reports; this is the number the
    acceptance criterion checks (children sum within 5% of the total)."""
    covered = sum(child.seconds for child in root.children)
    total = root.seconds
    return covered, total, (covered / total if total > 0 else 0.0)


def chrome_trace(spans: list[Span]) -> dict:
    """Spans (roots or a full list of trees) as a Chrome-trace dict.

    Each span becomes one complete event: ``ph`` (phase type) ``"X"``,
    ``ts``/``dur`` in microseconds, ``tid`` the OS thread that ran the
    span — so pool workers show up as separate tracks in Perfetto.

    Spans carrying profiler ``alloc_bytes`` additionally emit counter
    (``"ph": "C"``) samples on an ``allocated bytes`` track — a running
    memory total alongside the timing view.  Each sample adds the
    span's *self* allocation (its ``alloc_bytes`` minus what nested
    profiled spans already account for — a query span's total includes
    its kernels'), so the track's final value equals the profile's
    ``bytes_allocated``.  With profiling off no span has the attribute
    and the trace is exactly one event per span, as before."""
    all_spans: list[Span] = []
    for span in spans:
        all_spans.extend(span.walk())
    base = min((s.start for s in all_spans), default=0.0)
    pid = os.getpid()
    events = []
    alloc_running = 0
    for span in sorted(all_spans, key=lambda s: s.start):
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": (span.start - base) * 1e6,
            "dur": span.seconds * 1e6,
            "pid": pid,
            "tid": span.thread_id,
            "args": {key: value for key, value in span.attrs.items()},
        })
        alloc = span.attrs.get("alloc_bytes")
        if alloc is not None:
            alloc_running += max(alloc - _nested_alloc(span), 0)
            events.append({
                "name": "allocated bytes",
                "cat": "repro",
                "ph": "C",
                # Sampled at span end: the span's charge is complete.
                "ts": (span.start - base + span.seconds) * 1e6,
                "pid": pid,
                "tid": span.thread_id,
                "args": {"allocated": alloc_running},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _nested_alloc(span: Span) -> float:
    """Bytes the nearest profiled descendants of ``span`` already
    charged (their own nested charges included in their attr)."""
    total = 0
    for child in span.children:
        alloc = child.attrs.get("alloc_bytes")
        if alloc is not None:
            total += alloc
        else:
            total += _nested_alloc(child)
    return total


def chrome_trace_json(spans: list[Span], *, indent: int | None = None
                      ) -> str:
    return json.dumps(chrome_trace(spans), indent=indent, default=str)


def format_lint_findings(findings) -> str:
    """Lint findings as an aligned text table (the ``lint`` command's
    ``--format text`` output).

    ``findings`` is a list of
    :class:`~repro.core.analysis.lint.Finding`; one row per finding
    with the stable rule ID, severity, layer, location, and message.
    An empty list renders as the single line ``no findings``."""
    if not findings:
        return "no findings"
    rows = [(f.rule, f.severity, f.layer, f.location, f.message)
            for f in findings]
    header = ("rule", "severity", "layer", "location", "message")
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(4)]

    def fmt(row):
        cells = [row[i].ljust(widths[i]) for i in range(4)]
        return "  ".join(cells + [row[4]])

    lines = [fmt(header),
             fmt(tuple("-" * w for w in widths) + ("-" * 7,))]
    lines.extend(fmt(row) for row in rows)
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.severity] = counts.get(f.severity, 0) + 1
    summary = ", ".join(f"{n} {sev}" for sev, n in sorted(counts.items()))
    lines.append(f"{len(findings)} finding"
                 f"{'' if len(findings) == 1 else 's'} ({summary})")
    return "\n".join(lines)

"""Production telemetry: query log, flight recorder, metrics export.

PR 2's tracer, PR 4's profiler, and PR 6's governor counters are all
*pull-at-the-end* observability: you get a span tree or a snapshot only
if you asked up front, and when a query is refused or a backend falls
over there is no durable record of what happened.  This module is the
push side — per-query provenance recorded as it happens, the substrate
serving-oriented systems assume for optimization decisions:

* :class:`QueryLog` — one JSONL record per ``EngineSession.run_sql``
  (monotonic ``query_id``, SQL fingerprint, backend actually used,
  cache hit/miss, per-phase wall times, rows returned, profiler bytes
  when enabled, governor outcome including retries and refusal class),
  with a deterministic sampling rate; slow and failed queries are
  always logged regardless of sampling;
* :class:`FlightRecorder` — a bounded ring buffer of the last N query
  records, kept in memory for postmortems and included in diagnostics
  bundles;
* :class:`SessionTelemetry` — the per-session owner of both (plus the
  optional :class:`MetricsServer`), wired by
  ``EngineSession(query_log=...)`` or
  ``EngineSession.configure_telemetry(...)``.  On any
  :class:`~repro.errors.GovernorError` or
  :class:`~repro.errors.HorseRuntimeError` with a configured
  ``diagnostics_dir``, it dumps an automatic diagnostics bundle (span
  tree, metrics snapshot, profile, backend registry, environment
  summary, flight-recorder contents);
* :class:`MetricsServer` — a stdlib ``http.server`` background thread
  serving :meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus` on
  ``/metrics``.

Everything here is *instance-owned* (the no-globals guard audits this
module): two sessions never share a ring buffer, a query-id sequence,
or an HTTP server.  Everything is off by default — an unconfigured
``SessionTelemetry`` costs one attribute read per query
(``benchmarks/bench_obs_overhead.py`` bounds the disabled cost at <2%
on warm TPC-H Q6, the same bar as the tracer/profiler/governor).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import platform
import sys
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import GovernorError, HorseRuntimeError
from repro.obs.metrics import MetricsRegistry
from repro.obs.render import render_explain_analyze
from repro.obs.tracer import Span

__all__ = ["QueryLog", "FlightRecorder", "SessionTelemetry",
           "MetricsServer", "DEFAULT_FLIGHT_RECORDER_CAPACITY",
           "QUERY_LOG_FIELDS"]

_log = logging.getLogger("repro.obs.telemetry")

#: Ring-buffer size when telemetry is enabled without an explicit
#: ``flight_recorder=`` capacity.
DEFAULT_FLIGHT_RECORDER_CAPACITY = 64

#: SQL text longer than this is truncated in records (the fingerprint
#: identifies the full statement).
_MAX_SQL_CHARS = 500

#: Span names whose per-phase wall times a record aggregates.
_PHASES = ("parse", "plan", "translate", "compile", "optimize",
           "codegen", "execute")

#: The fixed query-log record schema, in emission order.  Every record
#: carries every key (``None`` where not applicable) so downstream
#: consumers never branch on key presence.
QUERY_LOG_FIELDS = (
    "query_id", "ts", "fingerprint", "sql", "backend_requested",
    "backend", "opt_level", "n_threads", "cache_hit", "outcome",
    "error", "retries", "retried_from", "rows", "wall_seconds",
    "phases", "slow", "alloc_bytes", "peak_bytes", "est_rows",
    "q_error",
)


def sql_fingerprint(sql: str) -> str:
    """A stable 16-hex-digit identity for a statement: SHA-256 over the
    whitespace-collapsed text, so reformatting never splits a query's
    history across fingerprints."""
    normalized = " ".join(sql.split())
    return hashlib.sha256(normalized.encode()).hexdigest()[:16]


def phase_seconds(root: Span | None) -> dict:
    """Per-phase wall times summed over a query's span tree (a phase
    appearing twice — e.g. ``execute`` on a retried query — sums)."""
    totals: dict[str, float] = {}
    if root is None:
        return totals
    for span in root.walk():
        if span.name in _PHASES:
            totals[span.name] = totals.get(span.name, 0.0) + span.seconds
    return totals


class QueryLog:
    """A JSONL sink for query records.

    ``sink`` is a path (opened in append mode, owned and closed by the
    log) or any writable text stream (borrowed, never closed).
    ``sample_rate`` in ``(0, 1]`` drops a deterministic fraction of
    *successful, fast* records — a credit accumulator, not a PRNG, so
    N records at rate r always log exactly ``floor`` / ``ceil`` of
    ``N*r``; slow and non-``ok`` records bypass sampling entirely.
    Thread-safe: concurrent sessions may share one log.
    """

    def __init__(self, sink, *, sample_rate: float = 1.0):
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in (0, 1], got {sample_rate}")
        self._lock = threading.Lock()
        self.sample_rate = sample_rate
        self._sample_credit = 0.0
        self.emitted = 0
        self.sampled_out = 0
        if isinstance(sink, (str, os.PathLike)):
            self.path = os.fspath(sink)
            self._stream = open(self.path, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self.path = None
            self._stream = sink
            self._owns_stream = False

    def emit(self, record: dict) -> bool:
        """Write one record (subject to sampling); returns whether the
        record was written."""
        must_log = record.get("outcome") != "ok" or record.get("slow")
        line = json.dumps(record, default=str)
        with self._lock:
            if not must_log and self.sample_rate < 1.0:
                self._sample_credit += self.sample_rate
                if self._sample_credit < 1.0:
                    self.sampled_out += 1
                    return False
                self._sample_credit -= 1.0
            self._stream.write(line + "\n")
            self._stream.flush()
            self.emitted += 1
            return True

    def close(self) -> None:
        with self._lock:
            if self._owns_stream and self._stream is not None:
                self._stream.close()
                self._stream = None
                self._owns_stream = False


class FlightRecorder:
    """The last N query records, oldest first — an in-memory black box
    that costs one deque append per query and pays for itself the first
    time a production query dies with no reproducer."""

    def __init__(self, capacity: int = DEFAULT_FLIGHT_RECORDER_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: deque = deque(maxlen=capacity)

    def record(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    def records(self) -> list[dict]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class _MetricsRequestHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` from the owning server's registry; the class
    itself is stateless (registry reached via ``self.server``)."""

    server_version = "repro-metrics/1.0"

    def do_GET(self):  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] in ("/metrics", "/"):
            body = self.server.metrics_registry.to_prometheus() \
                .encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404, "only /metrics is served")

    def log_message(self, format, *args):  # noqa: A002 - API name
        _log.debug("metrics scrape: " + format, *args)


class _MetricsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    metrics_registry: MetricsRegistry  # set by MetricsServer


class MetricsServer:
    """A background Prometheus scrape endpoint for one registry.

    Binds immediately (``port=0`` picks a free port, read back via
    :attr:`port`); ``serve_forever`` runs on a daemon thread so the
    server never blocks interpreter exit.  Instance-owned by a
    :class:`SessionTelemetry` — never a module global."""

    def __init__(self, registry: MetricsRegistry, port: int = 0,
                 host: str = "127.0.0.1"):
        self.registry = registry
        self._server = _MetricsHTTPServer((host, port),
                                          _MetricsRequestHandler)
        self._server.metrics_registry = registry
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True,
            name=f"repro-metrics-:{self.port}")
        self._thread.start()
        self._closed = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)


class SessionTelemetry:
    """Per-session telemetry state and policy.

    Owned by every :class:`~repro.engine.session.EngineSession`
    (constructed unconfigured — ``enabled`` is a plain ``False``
    attribute, so the per-query cost of disabled telemetry is a single
    attribute read).  :meth:`configure` turns on any subset of the
    query log, the flight recorder, automatic diagnostics bundles, and
    the Prometheus endpoint.
    """

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.metrics = metrics
        self.query_log: QueryLog | None = None
        self.recorder: FlightRecorder | None = None
        self.diagnostics_dir: str | None = None
        self.server: MetricsServer | None = None
        self.slow_query_ms: float | None = None
        #: Recomputed on configure; read once per run_sql.
        self.enabled = False
        self._lock = threading.Lock()
        self._next_query_id = 0
        self._owns_query_log = False
        #: The most recent query's root span and record — what a manual
        #: ``dump_diagnostics`` bundles when no failure is in hand.
        self.last_root: Span | None = None
        self.last_record: dict | None = None

    def configure(self, *, query_log=..., slow_query_ms=...,
                  sample_rate: float = 1.0, flight_recorder=...,
                  diagnostics_dir=..., serve_metrics=...) \
            -> "SessionTelemetry":
        """Re-point any subset of the telemetry knobs.

        ``query_log`` — a path, a writable stream, or a
        :class:`QueryLog` (``None`` turns the log off); ``sample_rate``
        applies when the log is built here from a path/stream.
        ``slow_query_ms`` — wall-time threshold marking records
        ``slow`` (always logged).  ``flight_recorder`` — a capacity or
        a :class:`FlightRecorder` (``None`` disables).
        ``diagnostics_dir`` — enables automatic bundles on
        ``GovernorError``/``HorseRuntimeError``.  ``serve_metrics`` — a
        port (0 = ephemeral) starting a :class:`MetricsServer` over the
        session registry (``None`` stops a running one).
        """
        if query_log is not ...:
            if self._owns_query_log and self.query_log is not None:
                self.query_log.close()
            self._owns_query_log = False
            if query_log is None or isinstance(query_log, QueryLog):
                self.query_log = query_log
            else:
                # QueryLog.close only closes streams it opened itself,
                # so owning a stream-backed log here is harmless.
                self.query_log = QueryLog(query_log,
                                          sample_rate=sample_rate)
                self._owns_query_log = True
        if slow_query_ms is not ...:
            self.slow_query_ms = slow_query_ms
        if flight_recorder is not ...:
            if flight_recorder is None or isinstance(flight_recorder,
                                                     FlightRecorder):
                self.recorder = flight_recorder
            else:
                self.recorder = FlightRecorder(int(flight_recorder))
        if diagnostics_dir is not ...:
            self.diagnostics_dir = (
                None if diagnostics_dir is None
                else os.fspath(diagnostics_dir))
        if serve_metrics is not ...:
            if self.server is not None:
                self.server.close()
                self.server = None
            if serve_metrics is not None:
                registry = (self.metrics if self.metrics is not None
                            else MetricsRegistry())
                self.metrics = registry
                self.server = MetricsServer(registry,
                                            port=int(serve_metrics))
        active = (self.query_log is not None
                  or self.diagnostics_dir is not None
                  or self.slow_query_ms is not None)
        if active and self.recorder is None:
            self.recorder = FlightRecorder()
        self.enabled = active or self.recorder is not None
        return self

    def close(self) -> None:
        """Release owned resources (log file handle, HTTP server)."""
        if self._owns_query_log and self.query_log is not None:
            self.query_log.close()
            self._owns_query_log = False
        if self.server is not None:
            self.server.close()
            self.server = None

    # -- per-query recording ---------------------------------------------------

    def begin_query(self, sql: str, *, backend: str, opt_level: str,
                    n_threads: int) -> dict:
        """Allocate the next monotonic ``query_id`` and the skeleton
        record for one ``run_sql`` call."""
        with self._lock:
            self._next_query_id += 1
            query_id = self._next_query_id
        return {
            "query_id": query_id,
            "ts": time.time(),
            "fingerprint": sql_fingerprint(sql),
            "sql": (sql if len(sql) <= _MAX_SQL_CHARS
                    else sql[:_MAX_SQL_CHARS] + "…"),
            "backend_requested": backend,
            "backend": backend,
            "opt_level": opt_level,
            "n_threads": n_threads,
            "cache_hit": None,
            "outcome": "ok",
            "error": None,
            "retries": 0,
            "retried_from": None,
            "rows": None,
            "wall_seconds": 0.0,
            "phases": {},
            "slow": False,
            "alloc_bytes": None,
            "peak_bytes": None,
            "est_rows": None,
            "q_error": None,
        }

    def finish_query(self, record: dict, session, root: Span | None,
                     *, wall_seconds: float,
                     error: BaseException | None) -> dict:
        """Complete ``record`` from the query's span tree and outcome,
        feed the flight recorder and query log, and auto-dump a
        diagnostics bundle on engine/governor failures.  Never raises:
        telemetry failures must not mask (or fail) the query itself."""
        try:
            record["wall_seconds"] = wall_seconds
            if error is not None:
                record["outcome"] = getattr(error, "refusal", "error") \
                    if isinstance(error, GovernorError) else "error"
                record["error"] = f"{type(error).__name__}: {error}"
            if root is not None:
                attrs = root.attrs
                record["backend"] = attrs.get("backend",
                                              record["backend"])
                record["retries"] = attrs.get("retries", 0)
                record["retried_from"] = attrs.get("retried_from")
                record["rows"] = attrs.get("rows_returned")
                if "alloc_bytes" in attrs:
                    record["alloc_bytes"] = attrs["alloc_bytes"]
                    record["peak_bytes"] = attrs.get("peak_bytes")
                if "est_rows" in attrs:
                    record["est_rows"] = attrs["est_rows"]
                    record["q_error"] = attrs.get("q_error")
                record["phases"] = {
                    name: round(seconds, 9) for name, seconds
                    in phase_seconds(root).items()}
                for span in root.walk():
                    if span.name == "prepare":
                        record["cache_hit"] = bool(
                            span.attrs.get("cached", False))
            if self.slow_query_ms is not None:
                record["slow"] = (wall_seconds * 1000.0
                                  >= self.slow_query_ms)
            self.last_root = root
            self.last_record = record
            if self.recorder is not None:
                self.recorder.record(record)
            metrics = session.metrics
            metrics.counter("telemetry.records").inc()
            if record["slow"]:
                metrics.counter("telemetry.slow_queries").inc()
            if self.query_log is not None:
                self.query_log.emit(record)
            if (self.diagnostics_dir is not None and error is not None
                    and isinstance(error,
                                   (GovernorError, HorseRuntimeError))):
                self.dump_diagnostics(session, self.diagnostics_dir,
                                      record=record, root=root)
        except Exception:  # pragma: no cover - defensive
            _log.exception("telemetry recording failed")
        return record

    # -- diagnostics bundles ---------------------------------------------------

    def dump_diagnostics(self, session, directory, *,
                         record: dict | None = None,
                         root: Span | None = None) -> str:
        """Write a postmortem bundle for ``record`` (defaulting to the
        last observed query) under ``directory`` and return the bundle
        path.

        Layout (one directory per bundle)::

            diag-q000007-timeout/
              record.json           the query-log record
              span_tree.txt         EXPLAIN ANALYZE of the final span tree
              metrics.json          session metrics snapshot
              profile.json          allocation profile (zeros when off)
              backends.json         registry, default backend, governor
              env.json              python/platform/pid summary
              flight_records.jsonl  ring-buffer contents, oldest first
        """
        if record is None:
            record = self.last_record or {}
        if root is None:
            root = self.last_root
        name = (f"diag-q{record.get('query_id', 0):06d}"
                f"-{record.get('outcome', 'manual')}")
        bundle = os.path.join(os.fspath(directory), name)
        os.makedirs(bundle, exist_ok=True)

        def write_json(filename: str, payload) -> None:
            with open(os.path.join(bundle, filename), "w",
                      encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, default=str)
                handle.write("\n")

        write_json("record.json", record)
        tree = ("no span tree recorded (tracing was off and the query "
                "never opened its span)" if root is None
                else render_explain_analyze(root))
        with open(os.path.join(bundle, "span_tree.txt"), "w",
                  encoding="utf-8") as handle:
            handle.write(tree + "\n")
        write_json("metrics.json", session.metrics.snapshot())
        write_json("profile.json", session.profile.to_dict())
        registry = session.backends
        write_json("backends.json", {
            "default_backend": session.default_backend,
            "governor": repr(session.governor),
            "backends": {
                backend_name: {
                    "available": registry.get(backend_name).available(),
                    "capabilities": sorted(
                        registry.get(backend_name).capabilities),
                    "fallback": registry.get(backend_name).fallback,
                    "aliases": registry.aliases(backend_name),
                } for backend_name in registry.names()},
        })
        write_json("env.json", {
            "python": sys.version,
            "platform": platform.platform(),
            "pid": os.getpid(),
            "argv": sys.argv,
            "wrote_at": time.time(),
        })
        with open(os.path.join(bundle, "flight_records.jsonl"), "w",
                  encoding="utf-8") as handle:
            for past in (self.recorder.records()
                         if self.recorder is not None else []):
                handle.write(json.dumps(past, default=str) + "\n")
        session.metrics.counter("telemetry.diagnostics_bundles").inc()
        return bundle

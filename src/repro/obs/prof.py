"""Allocation/materialization profiling (the memory side of obs).

The paper's headline claim is that inlining + fusion *eliminate
intermediate materialization*; the tracer (PR 2) only shows where the
time went.  This module charges every materialized vector to the
statement, builtin, and kernel that produced it, so the claim becomes a
measured number instead of a narrative:

* :class:`AllocationProfile` — a per-:class:`~repro.core.context.QueryContext`
  recorder.  The reference interpreter charges one entry per executed
  assignment (the naive mode's statement-at-a-time materialization),
  the compiled executor charges each fused kernel's *outputs* plus its
  reused chunk buffers **once per invocation** (the fusion payoff:
  chunk-sized temporaries written through ``out=`` never re-charge),
  and opaque statements charge like interpreter assignments.  A
  peak-footprint gauge tracks the largest live set any charge site
  observed;
* :data:`NULL_PROFILE` — the default.  Disabled profiling must be near
  free: every instrumentation site checks ``profile.enabled`` (one
  attribute read) before computing any byte count
  (``benchmarks/bench_obs_overhead.py`` bounds the disabled cost at
  <2% on warm TPC-H Q6, same bar as the tracer);
* :func:`fusion_savings` — the paper-style "intermediates eliminated"
  report comparing a naive profile against an optimized one for the
  same query.

Like the tracer, an *ambient* profile slot (:func:`get_profile` /
:func:`set_profile` / :func:`use_profile`) serves code that does not
thread an explicit context; isolated
:class:`~repro.engine.session.EngineSession` instances own their
profile instead and never read the slot.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from types import MappingProxyType

__all__ = ["AllocationProfile", "NullAllocationProfile", "NULL_PROFILE",
           "FusionSavings", "fusion_savings", "format_fusion_savings",
           "format_bytes", "get_profile", "set_profile", "use_profile"]


def format_bytes(n: float) -> str:
    """``1536`` → ``"1.5KiB"`` — the human form the renderers print."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{n:.0f}B"
            return f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}GiB"  # pragma: no cover - loop always returns


class AllocationProfile:
    """Byte-level accounting for one query (or one batch of queries).

    Thread-safe: chunk workers never charge (buffers are charged once on
    the dispatching thread), but concurrent sessions sharing an ambient
    profile must not lose updates.

    ``events`` counts every instrumentation call (record, builtin
    breakdown, peak update) — the number the overhead benchmark
    multiplies by the disabled-site cost.
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self.bytes_allocated = 0
        self.intermediates_materialized = 0
        self.peak_bytes = 0
        self.events = 0
        #: site label → [count, bytes]; sites are ``interp:<target>``,
        #: ``stmt:<target>`` (opaque statements under the compiled
        #: plan), and ``kernel:<fn>`` (fused segments).
        self.sites: dict[str, list] = {}
        #: builtin name → [count, bytes] — the per-builtin aggregate
        #: (a breakdown of the statement-level total, not added twice).
        self.builtins: dict[str, list] = {}

    def record(self, nbytes: int, site: str | None = None,
               count: int = 1) -> None:
        """Charge ``nbytes`` of materialized output to ``site`` and
        count ``count`` intermediates."""
        with self._lock:
            self.bytes_allocated += nbytes
            self.intermediates_materialized += count
            self.events += 1
            if site is not None:
                entry = self.sites.get(site)
                if entry is None:
                    self.sites[site] = [count, nbytes]
                else:
                    entry[0] += count
                    entry[1] += nbytes

    def record_builtin(self, name: str, nbytes: int) -> None:
        """Feed the per-builtin breakdown (no effect on the total —
        the owning statement already charged these bytes)."""
        with self._lock:
            self.events += 1
            entry = self.builtins.get(name)
            if entry is None:
                self.builtins[name] = [1, nbytes]
            else:
                entry[0] += 1
                entry[1] += nbytes

    def update_peak(self, live_bytes: int) -> None:
        """Report the charge site's current live-set estimate; the
        profile keeps the high-water mark."""
        with self._lock:
            self.events += 1
            if live_bytes > self.peak_bytes:
                self.peak_bytes = live_bytes

    def counters(self) -> tuple[int, int]:
        """``(bytes_allocated, intermediates_materialized)`` — snapshot
        for per-query delta computation."""
        with self._lock:
            return self.bytes_allocated, self.intermediates_materialized

    def reset(self) -> None:
        with self._lock:
            self.bytes_allocated = 0
            self.intermediates_materialized = 0
            self.peak_bytes = 0
            self.events = 0
            self.sites = {}
            self.builtins = {}

    def to_dict(self) -> dict:
        """The JSON form ``--profile`` writes."""
        with self._lock:
            return {
                "bytes_allocated": self.bytes_allocated,
                "intermediates_materialized":
                    self.intermediates_materialized,
                "peak_bytes": self.peak_bytes,
                "sites": {name: {"count": count, "bytes": nbytes}
                          for name, (count, nbytes)
                          in sorted(self.sites.items())},
                "builtins": {name: {"count": count, "bytes": nbytes}
                             for name, (count, nbytes)
                             in sorted(self.builtins.items())},
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AllocationProfile({format_bytes(self.bytes_allocated)}"
                f", {self.intermediates_materialized} intermediates, "
                f"peak {format_bytes(self.peak_bytes)})")


class NullAllocationProfile:
    """The disabled profile: allocation-free, state-free, shared."""

    __slots__ = ()
    enabled = False
    bytes_allocated = 0
    intermediates_materialized = 0
    peak_bytes = 0
    events = 0
    # Read-only so the singleton truly carries no mutable state (the
    # no-globals guard audits this).
    sites = MappingProxyType({})
    builtins = MappingProxyType({})

    def record(self, nbytes, site=None, count=1) -> None:
        pass

    def record_builtin(self, name, nbytes) -> None:
        pass

    def update_peak(self, live_bytes) -> None:
        pass

    def counters(self) -> tuple[int, int]:
        return (0, 0)

    def reset(self) -> None:
        pass

    def to_dict(self) -> dict:
        return {"bytes_allocated": 0, "intermediates_materialized": 0,
                "peak_bytes": 0, "sites": {}, "builtins": {}}


NULL_PROFILE = NullAllocationProfile()

#: The ambient profile slot, mirroring ``repro.obs.tracer._tracer``:
#: the process-wide default for code that threads no explicit context.
_profile: "AllocationProfile | NullAllocationProfile" = NULL_PROFILE


def get_profile() -> "AllocationProfile | NullAllocationProfile":
    """The ambient profile (the no-op :data:`NULL_PROFILE` by default)."""
    return _profile


def set_profile(profile: "AllocationProfile | None") -> None:
    """Install ``profile`` process-wide (``None`` restores the no-op)."""
    global _profile
    _profile = profile if profile is not None else NULL_PROFILE


@contextmanager
def use_profile(profile: "AllocationProfile | NullAllocationProfile"):
    """Temporarily install ``profile`` (tests, benchmark harness)."""
    global _profile
    previous = _profile
    _profile = profile
    try:
        yield profile
    finally:
        _profile = previous


@dataclass(frozen=True)
class FusionSavings:
    """The paper-style delta between a naive and an optimized profile
    of the same query: how much materialization fusion eliminated."""

    naive_bytes: int
    opt_bytes: int
    naive_intermediates: int
    opt_intermediates: int
    naive_peak: int
    opt_peak: int

    @property
    def bytes_saved(self) -> int:
        return self.naive_bytes - self.opt_bytes

    @property
    def intermediates_eliminated(self) -> int:
        return self.naive_intermediates - self.opt_intermediates

    @property
    def bytes_ratio(self) -> float:
        """opt/naive bytes (lower is better; 1.0 = no savings)."""
        return (self.opt_bytes / self.naive_bytes
                if self.naive_bytes else 1.0)

    def to_dict(self) -> dict:
        return {
            "naive_bytes": self.naive_bytes,
            "opt_bytes": self.opt_bytes,
            "bytes_saved": self.bytes_saved,
            "naive_intermediates": self.naive_intermediates,
            "opt_intermediates": self.opt_intermediates,
            "intermediates_eliminated": self.intermediates_eliminated,
            "naive_peak": self.naive_peak,
            "opt_peak": self.opt_peak,
            "bytes_ratio": self.bytes_ratio,
        }


def fusion_savings(naive_profile, opt_profile) -> FusionSavings:
    """Compare two profiles of the *same* query — naive (full
    materialization) vs optimized (fused) — and report the avoided
    materialization."""
    return FusionSavings(
        naive_bytes=naive_profile.bytes_allocated,
        opt_bytes=opt_profile.bytes_allocated,
        naive_intermediates=naive_profile.intermediates_materialized,
        opt_intermediates=opt_profile.intermediates_materialized,
        naive_peak=naive_profile.peak_bytes,
        opt_peak=opt_profile.peak_bytes,
    )


def format_fusion_savings(savings: FusionSavings,
                          title: str = "fusion savings") -> str:
    """The printable report (benchmarks and the worked example in
    docs/observability.md)."""
    lines = [
        f"# {title}",
        f"bytes allocated   : naive {format_bytes(savings.naive_bytes):>10}"
        f"  opt {format_bytes(savings.opt_bytes):>10}"
        f"  saved {format_bytes(savings.bytes_saved):>10}"
        f"  ({(1.0 - savings.bytes_ratio) * 100:.1f}% less)",
        f"intermediates     : naive {savings.naive_intermediates:>10}"
        f"  opt {savings.opt_intermediates:>10}"
        f"  intermediates eliminated {savings.intermediates_eliminated}",
        f"peak footprint    : naive {format_bytes(savings.naive_peak):>10}"
        f"  opt {format_bytes(savings.opt_peak):>10}",
    ]
    return "\n".join(lines)

"""``repro.obs`` — zero-dependency observability for the pipeline.

Three pieces (see ``docs/observability.md`` for the span taxonomy and
metric names):

* :mod:`repro.obs.tracer` — hierarchical spans
  (``query → parse/plan/translate/compile(optimize/codegen)/execute``,
  optimizer spans per pass, executor spans per kernel and per chunk);
  off by default via a near-free no-op tracer;
* :mod:`repro.obs.metrics` — the process-global registry of counters,
  gauges and histograms every subsystem reports into (plan cache,
  executor pool, kernel executor, baseline operators);
* :mod:`repro.obs.render` — ``EXPLAIN ANALYZE`` text, Chrome-trace JSON
  (Perfetto-loadable) and the flat metrics dump;
* :mod:`repro.obs.prof` — the allocation/materialization profiler
  (bytes charged per statement/builtin/kernel, peak footprint, and the
  paper-style ``fusion_savings`` naive-vs-opt report); off by default
  via a near-free no-op profile;
* :mod:`repro.obs.telemetry` — production telemetry (see
  ``docs/telemetry.md``): the structured JSONL query log, the
  flight-recorder ring buffer with diagnostics bundles, and the
  Prometheus ``/metrics`` endpoint over
  :meth:`MetricsRegistry.to_prometheus`; off by default at one
  attribute read per query.
"""

from repro.obs.metrics import (BYTE_BUCKETS, QERROR_BUCKETS, Counter,
                               Gauge, Histogram, MetricsRegistry,
                               global_metrics)
from repro.obs.prof import (NULL_PROFILE, AllocationProfile, FusionSavings,
                            NullAllocationProfile, format_fusion_savings,
                            fusion_savings, get_profile, set_profile,
                            use_profile)
from repro.obs.render import (chrome_trace, chrome_trace_json,
                              format_lint_findings, format_pass_stats,
                              phase_coverage, render_explain_analyze,
                              render_plan)
from repro.obs.tracer import (NULL_TRACER, NullTracer, Span, Tracer,
                              get_tracer, set_tracer, use_tracer)
from repro.obs.telemetry import (FlightRecorder, MetricsServer, QueryLog,
                                 SessionTelemetry)

__all__ = [
    "FlightRecorder", "MetricsServer", "QueryLog", "SessionTelemetry",
    "BYTE_BUCKETS", "QERROR_BUCKETS", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "global_metrics",
    "NULL_PROFILE", "AllocationProfile", "FusionSavings",
    "NullAllocationProfile", "format_fusion_savings", "fusion_savings",
    "get_profile", "set_profile", "use_profile",
    "chrome_trace", "chrome_trace_json", "phase_coverage",
    "format_pass_stats", "format_lint_findings",
    "render_explain_analyze", "render_plan",
    "NULL_TRACER", "NullTracer", "Span", "Tracer", "get_tracer",
    "set_tracer", "use_tracer",
]
